// Ablation (§III-B implementation notes) — the PLM engineering choices:
//  * parallel per-thread partial coarsening vs the sequential hash
//    aggregation it replaced ("a major sequential bottleneck"),
//  * the resolution parameter gamma's effect on community count, the
//    paper's remedy for the resolution limit.
//
// The paper's cached-neighbor-map strategy (a std::map + lock per node,
// found slower and dropped) is represented by its replacement: the
// recompute-with-scratch strategy is the shipped one; this bench times the
// coarsening half of that engineering story.

#include <cstdio>

#include "bench_common.hpp"
#include "coarsening/parallel_coarsening.hpp"
#include "community/plm.hpp"
#include "quality/modularity.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Ablation: PLM coarsening strategy and gamma");
    const int repetitions = quickMode() ? 1 : 3;

    const std::vector<std::string> subset = {"coPapersDBLP",
                                             "soc-LiveJournal", "uk-2002"};
    std::printf("--- coarsening strategy (full PLM run) ---\n");
    std::printf("%-22s %-12s %12s %12s\n", "network", "coarsening",
                "time[s]", "modularity");
    for (const auto& spec : replicaSuite()) {
        if (std::find(subset.begin(), subset.end(), spec.name) ==
            subset.end()) {
            continue;
        }
        const Graph g = loadReplica(spec);
        for (bool parallelCoarsening : {true, false}) {
            double totalSeconds = 0.0;
            double totalQuality = 0.0;
            for (int r = 0; r < repetitions; ++r) {
                Random::setSeed(60 + static_cast<std::uint64_t>(r));
                Plm plm(PlmConfig{.parallelCoarsening = parallelCoarsening});
                Timer timer;
                const Partition zeta = plm.run(g);
                totalSeconds += timer.elapsed();
                totalQuality += Modularity().getQuality(zeta, g);
            }
            std::printf("%-22s %-12s %12.4f %12.4f\n", spec.name.c_str(),
                        parallelCoarsening ? "parallel" : "sequential",
                        totalSeconds / repetitions,
                        totalQuality / repetitions);
            std::fflush(stdout);
        }
    }

    std::printf("--- raw coarsening phase only ---\n");
    std::printf("%-22s %-12s %12s\n", "network", "strategy", "time[s]");
    for (const auto& spec : replicaSuite()) {
        if (std::find(subset.begin(), subset.end(), spec.name) ==
            subset.end()) {
            continue;
        }
        const Graph g = loadReplica(spec);
        // A realistic PLM level-one partition to coarsen by.
        Random::setSeed(61);
        Partition zeta(g.upperNodeIdBound());
        zeta.allToSingletons();
        Plm::movePhase(g, zeta, 1.0, 8, nullptr);

        for (bool parallel : {true, false}) {
            Timer timer;
            const CoarseningResult result =
                ParallelPartitionCoarsening(parallel).run(g, zeta);
            std::printf("%-22s %-12s %12.4f\n", spec.name.c_str(),
                        parallel ? "parallel" : "sequential",
                        timer.elapsed());
            std::fflush(stdout);
        }
    }

    std::printf("--- neighbor-community weight strategy (full PLM run) ---\n");
    std::printf("%-22s %-12s %12s %12s\n", "network", "strategy", "time[s]",
                "modularity");
    for (const auto& spec : replicaSuite()) {
        if (std::find(subset.begin(), subset.end(), spec.name) ==
            subset.end()) {
            continue;
        }
        const Graph g = loadReplica(spec);
        for (PlmWeightStrategy strategy :
             {PlmWeightStrategy::Recompute, PlmWeightStrategy::CachedMaps}) {
            double totalSeconds = 0.0;
            double totalQuality = 0.0;
            for (int r = 0; r < repetitions; ++r) {
                Random::setSeed(63 + static_cast<std::uint64_t>(r));
                Plm plm(PlmConfig{.strategy = strategy});
                Timer timer;
                const Partition zeta = plm.run(g);
                totalSeconds += timer.elapsed();
                totalQuality += Modularity().getQuality(zeta, g);
            }
            std::printf("%-22s %-12s %12.4f %12.4f\n", spec.name.c_str(),
                        strategy == PlmWeightStrategy::Recompute
                            ? "recompute"
                            : "maps+locks",
                        totalSeconds / repetitions,
                        totalQuality / repetitions);
            std::fflush(stdout);
        }
    }

    std::printf("--- gamma resolution sweep (PLM on PGP replica) ---\n");
    std::printf("%-8s %14s %12s\n", "gamma", "#communities", "modularity");
    const auto suite = replicaSuite();
    for (const auto& spec : suite) {
        if (spec.name != "PGPgiantcompo") continue;
        const Graph g = loadReplica(spec);
        for (double gamma : {0.1, 0.5, 1.0, 2.0, 5.0}) {
            Random::setSeed(62);
            Plm plm(PlmConfig{.gamma = gamma});
            const Partition zeta = plm.run(g);
            std::printf("%-8.1f %14llu %12.4f\n", gamma,
                        static_cast<unsigned long long>(
                            zeta.numberOfSubsets()),
                        Modularity().getQuality(zeta, g));
            std::fflush(stdout);
        }
    }
    return 0;
}
