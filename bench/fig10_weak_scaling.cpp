// Figure 10 — weak scaling of PLP (left) and PLM (right) on a series of
// Kronecker/R-MAT graphs where each graph doubles its predecessor's size
// and the thread count doubles alongside (paper: logn 16..22, threads
// 1..32, R-MAT params (0.57,0.19,0.19,0.05), edge factor 48; this replica
// uses a smaller base scale and edge factor 16 to fit the container —
// and the single physical core makes flat wall time unattainable; see the
// hardware substitution note in EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "generators/rmat.hpp"
#include "io/binary_io.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

#include <filesystem>

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner(
        "Figure 10: PLP/PLM weak scaling on the Kronecker series");
    const count baseScale = quickMode() ? 11 : 15;
    const count edgeFactor = 16;
    const int steps = 4; // scale 15..18 with threads 1..8

    std::printf("%-8s %8s %12s %14s %14s %14s %14s\n", "logn", "threads",
                "m", "t(PLP)[s]", "PLP edges/s", "t(PLM)[s]",
                "PLM edges/s");

    const int originalThreads = Parallel::maxThreads();
    int threads = 1;
    for (int step = 0; step < steps; ++step, threads *= 2) {
        const count scale = baseScale + static_cast<count>(step);
        const std::string cachePath = dataDirectory() + "/weak_s" +
                                      std::to_string(scale) + ".grpr";
        Graph g = [&] {
            if (std::filesystem::exists(cachePath)) {
                return io::readBinary(cachePath);
            }
            Random::setSeed(100 + scale);
            Graph fresh =
                RmatGenerator(scale, edgeFactor, 0.57, 0.19, 0.19, 0.05)
                    .generate();
            io::writeBinary(fresh, cachePath);
            return fresh;
        }();

        Parallel::setThreads(threads);
        Random::setSeed(10);
        Plp plp;
        const RunResult plpResult = measureDetector(plp, g, 1);
        Random::setSeed(10);
        Plm plm;
        const RunResult plmResult = measureDetector(plm, g, 1);

        std::printf("%-8llu %8d %12llu %14.3f %14.0f %14.3f %14.0f\n",
                    static_cast<unsigned long long>(scale), threads,
                    static_cast<unsigned long long>(g.numberOfEdges()),
                    plpResult.seconds,
                    static_cast<double>(g.numberOfEdges()) /
                        plpResult.seconds,
                    plmResult.seconds,
                    static_cast<double>(g.numberOfEdges()) /
                        plmResult.seconds);
        std::fflush(stdout);
    }
    Parallel::setThreads(originalThreads);
    return 0;
}
