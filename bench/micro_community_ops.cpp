// Micro benchmarks (google-benchmark) for the community detection inner
// loops: one PLP sweep, one PLM move phase, the hash combiner, and the
// modularity evaluation — the paper's "Δmod computation must be very fast"
// engineering target made measurable.

#include <benchmark/benchmark.h>

#include "community/combiner.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "generators/rmat.hpp"
#include "quality/modularity.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

const Graph& testGraph() {
    static const Graph g = [] {
        Random::setSeed(2000);
        return RmatGenerator(15, 8).generate();
    }();
    return g;
}

} // namespace

static void BM_PlpFullRun(benchmark::State& state) {
    const Graph& g = testGraph();
    for (auto _ : state) {
        Random::setSeed(2001);
        Plp plp;
        Partition zeta = plp.run(g);
        benchmark::DoNotOptimize(zeta.numberOfElements());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(g.numberOfEdges()));
}
BENCHMARK(BM_PlpFullRun);

static void BM_PlmMovePhaseOneSweep(benchmark::State& state) {
    const Graph& g = testGraph();
    for (auto _ : state) {
        Random::setSeed(2002);
        Partition zeta(g.upperNodeIdBound());
        zeta.allToSingletons();
        const count moves = Plm::movePhase(g, zeta, 1.0, 1, nullptr);
        benchmark::DoNotOptimize(moves);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(g.numberOfNodes()));
}
BENCHMARK(BM_PlmMovePhaseOneSweep);

static void BM_PlmFullRun(benchmark::State& state) {
    const Graph& g = testGraph();
    for (auto _ : state) {
        Random::setSeed(2003);
        Plm plm;
        Partition zeta = plm.run(g);
        benchmark::DoNotOptimize(zeta.numberOfElements());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(g.numberOfEdges()));
}
BENCHMARK(BM_PlmFullRun);

static void BM_HashCombiner(benchmark::State& state) {
    const count n = 1 << 18;
    const int b = static_cast<int>(state.range(0));
    Random::setSeed(2004);
    std::vector<Partition> bases;
    for (int i = 0; i < b; ++i) {
        Partition p(n);
        for (node v = 0; v < n; ++v) {
            p.set(v, static_cast<node>(Random::integer(5000)));
        }
        p.setUpperBound(5000);
        bases.push_back(std::move(p));
    }
    for (auto _ : state) {
        Partition cores = HashingCombiner::combine(bases);
        benchmark::DoNotOptimize(cores.upperBound());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n) * b);
}
BENCHMARK(BM_HashCombiner)->Arg(2)->Arg(4)->Arg(8);

static void BM_ModularityEvaluation(benchmark::State& state) {
    const Graph& g = testGraph();
    Random::setSeed(2005);
    Plp plp;
    const Partition zeta = plp.run(g);
    const Modularity modularity;
    for (auto _ : state) {
        benchmark::DoNotOptimize(modularity.getQuality(zeta, g));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(g.numberOfEdges()));
}
BENCHMARK(BM_ModularityEvaluation);
