// Streaming-engine micro benchmark (PR 7): sustained batch-update
// throughput, concurrent-query throughput under a churning writer, and
// the incremental-detection economics of StreamingPlm.
//
// Three sections per instance:
//   * update throughput — apply a recorded stream of Permissive batches
//     through StreamingGraph::apply (parallel delta-CSR merge, one publish
//     per batch) against the naive alternative that rebuilds the frozen
//     CSR from a mutable Graph after every batch. The committed
//     updates/sec number is the PR-over-PR trajectory metric; the
//     batched-vs-rebuild speedup is the within-run ratio that transfers
//     across machines.
//   * concurrent queries — one writer thread churns batches while reader
//     threads pin() snapshots and run a full volume scan per query; both
//     sides are counted. This is the snapshot-isolation payoff: readers
//     never block the writer and vice versa.
//   * incremental detection — a ~1% edge-churn batch, then
//     StreamingPlm::applyBatch (seeded from the converged partition,
//     re-activating only the touched frontier) against a from-scratch
//     Plm::runFrozen on the same snapshot. Reports the re-activated
//     fraction and the modularity gap — the acceptance numbers of the
//     streaming PR (<10% of nodes, gap <= 5e-3 on rmat_s18).
//
// Batch streams are recorded once against the evolving state (the
// workload generator is counter-based and deterministic), then replayed
// for every timed repetition, interleaved round-robin after a warmup so
// machine-load swings hit all variants alike; speedups use minima.
//
// Emits BENCH_stream.json; tools/check_perf_regression.py (--metric
// updates_per_sec:... --metric speedup_batch_vs_rebuild:...) compares a
// fresh --quick run against the committed file in CI, with rmat_s13 as
// the shared anchor instance (measured in both modes).
//
// Flags/environment: --quick or GRAPR_BENCH_QUICK=1 shrinks the instance
// list; GRAPR_BENCH_THREADS overrides the thread count (default 4).

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "community/plm.hpp"
#include "community/streaming_update.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/stream_workload.hpp"
#include "support/timer.hpp"

using namespace grapr;
using grapr::testing::StreamWorkload;
using grapr::testing::StreamWorkloadConfig;

namespace {

constexpr int kRepetitions = 5;

struct Measurement {
    double minimum = 0.0;
    double median = 0.0;
};

struct Variant {
    std::string name;
    std::function<void()> run;
    Measurement timing;
};

Measurement toMeasurement(std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    return {samples.front(), samples[samples.size() / 2]};
}

void measureInterleaved(std::vector<Variant>& variants) {
    for (auto& v : variants) v.run();
    std::vector<std::vector<double>> samples(variants.size());
    for (int rep = 0; rep < kRepetitions; ++rep) {
        for (std::size_t i = 0; i < variants.size(); ++i) {
            Timer t;
            variants[i].run();
            samples[i].push_back(t.elapsed());
        }
    }
    for (std::size_t i = 0; i < variants.size(); ++i) {
        variants[i].timing = toMeasurement(std::move(samples[i]));
    }
}

/// Replay one batch into a mutable Graph with the engine's Permissive
/// rules (insert-if-absent, remove-if-present) — the rebuild baseline's
/// mutation step.
void replayIntoGraph(Graph& g, const EdgeBatch& batch) {
    for (const EdgeOp& op : batch.ops()) {
        while (g.upperNodeIdBound() <= std::max(op.u, op.v)) g.addNode();
        if (op.kind == EdgeOp::Kind::Insert) {
            if (!g.hasEdge(op.u, op.v)) g.addEdge(op.u, op.v, op.w);
        } else {
            if (g.hasEdge(op.u, op.v)) g.removeEdge(op.u, op.v);
        }
    }
}

struct ConcurrentReport {
    int readers = 0;
    double elapsedSeconds = 0.0;
    double readerQueriesPerSec = 0.0;
    double writerUpdatesPerSec = 0.0;
};

struct IncrementalReport {
    count churnOps = 0;
    count touchedNodes = 0;
    count reactivated = 0;
    double reactivatedFraction = 0.0;
    double modularityIncremental = 0.0;
    double modularityScratch = 0.0;
    double secondsIncremental = 0.0;
    double secondsScratch = 0.0;

    double gap() const {
        return modularityScratch - modularityIncremental;
    }
    double speedup() const {
        return secondsIncremental > 0.0
                   ? secondsScratch / secondsIncremental
                   : 0.0;
    }
};

struct InstanceReport {
    std::string name;
    std::string recipe;
    count nodes = 0;
    count edges = 0;
    count batches = 0;
    count opsPerBatch = 0;
    std::vector<Variant> throughput; // [0]=rebuild baseline, [1]=batched
    ConcurrentReport concurrent;
    IncrementalReport incremental;

    double updatesPerSec() const {
        const double t = throughput.back().timing.minimum;
        return t > 0.0
                   ? static_cast<double>(batches * opsPerBatch) / t
                   : 0.0;
    }
    double batchedSpeedup() const {
        const double rebuild = throughput.front().timing.minimum;
        const double batched = throughput.back().timing.minimum;
        return batched > 0.0 ? rebuild / batched : 0.0;
    }
};

/// Record the batch stream once against the evolving engine state; the
/// workload is counter-based, so this is THE stream for (config, base).
std::vector<EdgeBatch> recordStream(const CsrGraph& base,
                                    const StreamWorkload& workload,
                                    count batches) {
    StreamingGraph engine(base);
    std::vector<EdgeBatch> stream;
    stream.reserve(batches);
    for (count i = 0; i < batches; ++i) {
        stream.push_back(
            workload.batch(i, engine.pin()->graph));
        engine.apply(stream.back(), StreamApplyMode::Permissive);
    }
    return stream;
}

InstanceReport measureInstance(const std::string& name,
                               const std::string& recipe, const Graph& g,
                               count batches, count opsPerBatch,
                               bool quick) {
    InstanceReport report;
    report.name = name;
    report.recipe = recipe;
    report.nodes = g.numberOfNodes();
    report.edges = g.numberOfEdges();
    report.batches = batches;
    report.opsPerBatch = opsPerBatch;

    Graph sorted = g;
    sorted.sortNeighborLists();
    const CsrGraph base(sorted);

    StreamWorkloadConfig cfg;
    cfg.nodes = base.upperNodeIdBound();
    cfg.opsPerBatch = opsPerBatch;
    cfg.insertFraction = 0.5; // steady state: churn, not growth
    cfg.skew = 0.6;           // hot-node contention, the streaming regime
    cfg.seed = 6200;
    const StreamWorkload workload(cfg);
    const std::vector<EdgeBatch> stream =
        recordStream(base, workload, batches);

    // --- Section 1: sustained update throughput --------------------------
    report.throughput.push_back(
        {"rebuild",
         [&] {
             // Naive alternative: mutate a Graph, re-sort, re-freeze the
             // whole CSR after every batch — what a consumer of frozen
             // snapshots had to do before the delta merge existed.
             Graph live = sorted;
             for (const EdgeBatch& batch : stream) {
                 replayIntoGraph(live, batch);
                 live.sortNeighborLists();
                 const CsrGraph frozen(live);
                 if (frozen.numberOfNodes() == 0) std::abort();
             }
         },
         {}});
    report.throughput.push_back(
        {"batched",
         [&] {
             StreamingGraph engine(base);
             for (const EdgeBatch& batch : stream) {
                 engine.apply(batch, StreamApplyMode::Permissive);
             }
         },
         {}});
    measureInterleaved(report.throughput);

    // --- Section 2: concurrent readers under a churning writer -----------
    {
        const int readers = 2;
        StreamingGraph engine(base);
        std::atomic<bool> done{false};
        std::atomic<std::uint64_t> queries{0};
        const count writerLaps = quick ? 2 : 4;

        std::vector<std::thread> pool;
        for (int r = 0; r < readers; ++r) {
            pool.emplace_back([&] {
                // Each query pins the head and scans every node volume —
                // a full read pass over whichever generation is current.
                while (!done.load(std::memory_order_acquire)) {
                    const SnapshotPtr snap = engine.pin();
                    edgeweight sink = 0.0;
                    const count bound = snap->graph.upperNodeIdBound();
                    for (node v = 0; v < bound; ++v) {
                        sink += snap->graph.volume(v);
                    }
                    if (sink < 0.0) std::abort(); // keep the scan live
                    queries.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }
        Timer t;
        for (count lap = 0; lap < writerLaps; ++lap) {
            for (const EdgeBatch& batch : stream) {
                engine.apply(batch, StreamApplyMode::Permissive);
            }
        }
        const double elapsed = t.elapsed();
        done.store(true, std::memory_order_release);
        for (std::thread& th : pool) th.join();

        report.concurrent.readers = readers;
        report.concurrent.elapsedSeconds = elapsed;
        report.concurrent.readerQueriesPerSec =
            static_cast<double>(queries.load()) / elapsed;
        report.concurrent.writerUpdatesPerSec =
            static_cast<double>(writerLaps * batches * opsPerBatch) /
            elapsed;
    }

    // --- Section 3: incremental vs from-scratch detection -----------------
    {
        // One ~1% edge-churn batch on the converged base partition. Churn
        // in real streams is activity-skewed: a few hot nodes see most of
        // the updates, so the touched set is far smaller than 2x the op
        // count. skew 2.5 models that regime (uniform endpoints would make
        // the raw endpoint set alone ~2(m/n)/100 of all nodes — locality
        // would be meaningless to measure).
        StreamWorkloadConfig churnCfg = cfg;
        churnCfg.opsPerBatch = std::max<count>(64, base.numberOfEdges() / 100);
        churnCfg.skew = 2.5;
        churnCfg.seed = 6300;
        const StreamWorkload churn(churnCfg);

        StreamingGraph engine(base);
        StreamingPlm incremental;
        Random::setSeed(6301);
        incremental.initialize(engine.pin()->graph);
        const StreamingPlm warm = incremental; // converged seed state

        const EdgeBatch batch = churn.batch(0, engine.pin()->graph);
        const BatchResult result =
            engine.apply(batch, StreamApplyMode::Permissive);
        const SnapshotPtr next = engine.pin();

        report.incremental.churnOps = churnCfg.opsPerBatch;
        report.incremental.touchedNodes = result.touched.size();

        std::vector<double> incSamples, scratchSamples;
        Partition scratch;
        for (int rep = 0; rep < (quick ? 3 : kRepetitions); ++rep) {
            {
                StreamingPlm run = warm; // re-seed from the converged state
                Timer t;
                run.applyBatch(next->graph, result.touched);
                incSamples.push_back(t.elapsed());
                if (rep == 0) {
                    incremental = run;
                    report.incremental.reactivated = run.lastReactivated();
                }
            }
            {
                Random::setSeed(6302);
                Timer t;
                scratch = Plm().runFrozen(next->graph);
                scratchSamples.push_back(t.elapsed());
            }
        }
        report.incremental.secondsIncremental =
            toMeasurement(std::move(incSamples)).minimum;
        report.incremental.secondsScratch =
            toMeasurement(std::move(scratchSamples)).minimum;
        report.incremental.reactivatedFraction =
            static_cast<double>(report.incremental.reactivated) /
            static_cast<double>(next->graph.upperNodeIdBound());
        report.incremental.modularityIncremental =
            Modularity().getQuality(incremental.communities(), next->graph);
        report.incremental.modularityScratch =
            Modularity().getQuality(scratch, next->graph);
    }

    return report;
}

void writeJson(const std::vector<InstanceReport>& reports, int threads,
               bool quick) {
    std::ostringstream json;
    json << "{\n";
    json << "  \"bench\": \"micro_stream\",\n";
    json << "  \"threads\": " << threads << ",\n";
    json << "  \"repetitions\": " << kRepetitions << ",\n";
    json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    json << "  \"updates_per_sec_definition\": "
            "\"(batches * ops_per_batch) / batched.min_seconds\",\n";
    json << "  \"instances\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto& rep = reports[i];
        json << "    {\n";
        json << "      \"name\": \"" << rep.name << "\",\n";
        json << "      \"recipe\": \"" << rep.recipe << "\",\n";
        json << "      \"nodes\": " << rep.nodes << ",\n";
        json << "      \"edges\": " << rep.edges << ",\n";
        json << "      \"batches\": " << rep.batches << ",\n";
        json << "      \"ops_per_batch\": " << rep.opsPerBatch << ",\n";
        json << "      \"update_throughput\": {\n";
        for (std::size_t v = 0; v < rep.throughput.size(); ++v) {
            const auto& var = rep.throughput[v];
            json << "        \"" << var.name
                 << "\": {\"min_seconds\": " << var.timing.minimum
                 << ", \"median_seconds\": " << var.timing.median << "}"
                 << (v + 1 < rep.throughput.size() ? "," : "") << "\n";
        }
        json << "      },\n";
        json << "      \"updates_per_sec\": " << rep.updatesPerSec()
             << ",\n";
        json << "      \"speedup_batch_vs_rebuild\": "
             << rep.batchedSpeedup() << ",\n";
        json << "      \"concurrent\": {\"readers\": "
             << rep.concurrent.readers
             << ", \"elapsed_seconds\": " << rep.concurrent.elapsedSeconds
             << ", \"reader_queries_per_sec\": "
             << rep.concurrent.readerQueriesPerSec
             << ", \"writer_updates_per_sec\": "
             << rep.concurrent.writerUpdatesPerSec << "},\n";
        const auto& inc = rep.incremental;
        json << "      \"incremental\": {\"churn_ops\": " << inc.churnOps
             << ", \"touched_nodes\": " << inc.touchedNodes
             << ", \"reactivated\": " << inc.reactivated
             << ", \"reactivated_fraction\": " << inc.reactivatedFraction
             << ", \"modularity_incremental\": "
             << inc.modularityIncremental
             << ", \"modularity_scratch\": " << inc.modularityScratch
             << ", \"modularity_gap\": " << inc.gap()
             << ", \"min_seconds_incremental\": " << inc.secondsIncremental
             << ", \"min_seconds_scratch\": " << inc.secondsScratch
             << ", \"speedup_incremental_vs_scratch\": " << inc.speedup()
             << "}\n";
        json << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ]\n";
    json << "}\n";

    std::ofstream out("BENCH_stream.json");
    out << json.str();
    std::cout << "\nwrote BENCH_stream.json\n";
}

} // namespace

int main(int argc, char** argv) {
    bool quick = grapr::bench::quickMode();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    }

    int threads = 4;
    if (const char* env = std::getenv("GRAPR_BENCH_THREADS")) {
        threads = std::max(1, std::atoi(env));
    }
    Parallel::setThreads(threads);
    bench::printPlatformBanner("micro_stream");
    std::cout << "threads fixed to " << threads
              << (quick ? ", quick mode" : "") << "\n";

    // rmat_s13 is measured in BOTH modes: it is the anchor instance the
    // CI perf-smoke check compares across committed (full) and fresh
    // (quick) JSON.
    std::vector<InstanceReport> reports;
    {
        Random::setSeed(6013);
        const Graph g = RmatGenerator(13, 8).generate();
        reports.push_back(measureInstance(
            "rmat_s13", "RMAT scale 13, edge factor 8", g,
            /*batches=*/32, /*opsPerBatch=*/512, quick));
    }
    if (!quick) {
        Random::setSeed(6018);
        const Graph g = RmatGenerator(18, 8).generate();
        reports.push_back(measureInstance(
            "rmat_s18", "RMAT scale 18, edge factor 8", g,
            /*batches=*/32, /*opsPerBatch=*/2048, quick));
    }

    std::cout << "\n";
    for (const auto& rep : reports) {
        std::cout << rep.name << "  (n=" << rep.nodes << ", m=" << rep.edges
                  << ", " << rep.batches << "x" << rep.opsPerBatch
                  << " ops)\n";
        std::cout << "  updates/sec " << rep.updatesPerSec()
                  << "  (batched vs rebuild " << rep.batchedSpeedup()
                  << "x)\n";
        std::cout << "  concurrent: " << rep.concurrent.readers
                  << " readers at "
                  << rep.concurrent.readerQueriesPerSec
                  << " queries/sec while writer sustains "
                  << rep.concurrent.writerUpdatesPerSec
                  << " updates/sec\n";
        const auto& inc = rep.incremental;
        std::cout << "  incremental: reactivated "
                  << 100.0 * inc.reactivatedFraction
                  << "% of nodes, modularity gap " << inc.gap()
                  << ", speedup vs scratch " << inc.speedup() << "x\n";
    }

    writeJson(reports, threads, quick);
    return 0;
}
