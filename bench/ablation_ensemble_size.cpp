// Ablation (§V-D) — effect of the ensemble size: EPP(b, PLP, PLM) for
// b = 1, 2, 4, 8 on a subset of the replica suite, plus the base-solution
// diversity probe (pairwise Jaccard dissimilarity of the PLP base runs)
// the paper uses to explain when ensembles pay off.
//
// Expected shape: quality grows with b on average with strongly
// instance-dependent gains; running time grows at least proportionally —
// the basis of the paper's default choice b = 4.

#include <cstdio>

#include "bench_common.hpp"
#include "community/epp.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;
using namespace grapr::bench;

namespace {

DetectorMaker plpMaker() {
    return [] { return std::unique_ptr<CommunityDetector>(new Plp()); };
}

DetectorMaker plmMaker() {
    return [] { return std::unique_ptr<CommunityDetector>(new Plm()); };
}

} // namespace

int main() {
    printPlatformBanner("Ablation: EPP ensemble size b = 1, 2, 4, 8");

    const std::vector<std::string> subset = {"PGPgiantcompo", "as-22july06",
                                             "G_n_pin_pout",
                                             "coAuthorsCiteseer"};
    const auto suite = replicaSuite();

    std::printf("%-22s %4s %12s %12s %14s\n", "network", "b", "modularity",
                "time[s]", "base diversity");
    for (const auto& spec : suite) {
        if (std::find(subset.begin(), subset.end(), spec.name) ==
            subset.end()) {
            continue;
        }
        const Graph g = loadReplica(spec);

        // Base-solution diversity: mean pairwise Jaccard dissimilarity of
        // four independent PLP runs (the paper's §V-D probe).
        Random::setSeed(40);
        std::vector<Partition> bases;
        for (int i = 0; i < 4; ++i) bases.push_back(Plp().run(g));
        double dissimilarity = 0.0;
        int pairs = 0;
        for (std::size_t i = 0; i < bases.size(); ++i) {
            for (std::size_t j = i + 1; j < bases.size(); ++j) {
                dissimilarity += 1.0 - jaccardIndex(bases[i], bases[j]);
                ++pairs;
            }
        }
        dissimilarity /= pairs;

        for (count b : {1u, 2u, 4u, 8u}) {
            Random::setSeed(41 + b);
            Epp epp(b, plpMaker(), plmMaker(), "EPP");
            Timer timer;
            const Partition zeta = epp.run(g);
            const double seconds = timer.elapsed();
            std::printf("%-22s %4llu %12.4f %12.4f %14.4f\n",
                        spec.name.c_str(),
                        static_cast<unsigned long long>(b),
                        Modularity().getQuality(zeta, g), seconds,
                        dissimilarity);
            std::fflush(stdout);
        }
    }
    return 0;
}
