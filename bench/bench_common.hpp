#pragma once
// Shared infrastructure for the per-figure benchmark harnesses:
//  * the replica suite — synthetic stand-ins for the paper's 13-network
//    test set (Table I), generated once and cached on disk,
//  * timing/quality measurement helpers,
//  * the platform banner every harness prints (the paper's Table II).
//
// Replica mapping rationale is documented per instance in DESIGN.md: each
// paper network is replaced by a generator that reproduces its structural
// signature (degree skew, clustering, component structure) at a scale a
// single-core CI container can sweep in minutes.

#include <functional>
#include <string>
#include <vector>

#include "community/detector.hpp"
#include "graph/graph.hpp"

namespace grapr::bench {

struct ReplicaSpec {
    std::string name;        ///< paper network this replica stands in for
    std::string recipe;      ///< human-readable generator recipe
    std::function<Graph()> make;
};

/// The 13-instance replica suite in ascending size order (the paper sorts
/// its per-network charts by graph size).
std::vector<ReplicaSpec> replicaSuite();

/// Generate-or-load a replica: cached as data/<name>.grpr next to the
/// build tree. Deterministic: generation always reseeds from the name.
Graph loadReplica(const ReplicaSpec& spec);

/// Directory used for cached instances ("data", created on demand).
std::string dataDirectory();

/// Measurement of one detector on one graph.
struct RunResult {
    double seconds = 0.0;     ///< median wall time over repetitions
    double modularity = 0.0;  ///< mean modularity over repetitions
    count communities = 0;    ///< from the last repetition
};

/// Run `detector` `repetitions` times on g; median time, mean modularity.
RunResult measureDetector(CommunityDetector& detector, const Graph& g,
                          int repetitions);

/// Cached variant: results are persisted per (algorithm, instance,
/// repetitions, quick-mode) in <data>/results.tsv so the comparison
/// harnesses (Figures 5, 6, 7) share one sweep instead of re-running the
/// expensive competitors three times. Delete the file to re-measure.
RunResult measureDetectorCached(const std::string& algorithmName,
                                const std::string& instanceName,
                                const Graph& g, int repetitions);

/// Print the platform banner (threads, compiler, mode) — the analogue of
/// the paper's Table II so every output file is self-describing.
void printPlatformBanner(const std::string& benchName);

/// Edge threshold above which the expensive sequential competitors
/// (RG, CGGC, CGGCi) are skipped unless GRAPR_BENCH_FULL=1 is set; the
/// harnesses print an explicit "skipped" marker, mirroring how the paper
/// reports non-viable runs (e.g. CLU_TBB failing on uk-2007-05).
count expensiveAlgorithmEdgeCap();

/// True when GRAPR_BENCH_QUICK=1: harnesses shrink instance sizes and
/// repetition counts for smoke-testing the full bench pipeline.
bool quickMode();

} // namespace grapr::bench
