// Figure 4 — EPP(4,PLP,PLM) compared to a single PLP, per network:
// difference in modularity (above in the paper's chart) and running time
// ratio (below).
//
// Expected shape: EPP gains modularity on most instances, at roughly ~5x
// the PLP running time on large networks and worse ratios on small ones
// where ensemble overhead dominates.

#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"
#include "support/random.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner(
        "Figure 4: EPP(4,PLP,PLM) vs a single PLP, per network");
    std::printf("%-22s %12s %12s %12s %12s %10s\n", "network", "q(PLP)",
                "q(EPP)", "delta q", "t(EPP)/t(PLP)", "t(EPP)[s]");

    const int repetitions = quickMode() ? 1 : 3;
    for (const auto& spec : replicaSuite()) {
        const Graph g = loadReplica(spec);

        Random::setSeed(4);
        auto plp = makeDetector("PLP");
        const RunResult plpResult = measureDetector(*plp, g, repetitions);

        Random::setSeed(4);
        auto epp = makeDetector("EPP(4,PLP,PLM)");
        const RunResult eppResult = measureDetector(*epp, g, repetitions);

        std::printf("%-22s %12.4f %12.4f %+12.4f %12.2f %10.3f\n",
                    spec.name.c_str(), plpResult.modularity,
                    eppResult.modularity,
                    eppResult.modularity - plpResult.modularity,
                    eppResult.seconds / plpResult.seconds, eppResult.seconds);
        std::fflush(stdout);
    }
    return 0;
}
