// Figure 8 — LFR benchmark: accuracy (Jaccard index between detected and
// ground-truth communities) of PLP, PLM, PLMR and EPP(4,PLP,PLM) as the
// mixing parameter mu increases from 0.1 to 0.9.
//
// Expected shape: all algorithms near 1.0 for small mu; PLM/PLMR stay
// accurate through strong noise (paper: detects ground truth even at
// mu = 0.8 on its instances), PLP (and hence EPP) degrades earlier.

#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"
#include "generators/lfr.hpp"
#include "quality/partition_similarity.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Figure 8: LFR accuracy vs mixing parameter");
    const count n = quickMode() ? 2000 : 10000;
    const int trials = quickMode() ? 1 : 3;

    const std::vector<std::string> algorithms = {"PLP", "PLM", "PLMR",
                                                 "EPP(4,PLP,PLM)"};
    std::printf("# LFR: n=%llu deg 10..100 tau1=2, communities 100..1000 tau2=1, "
                "%d trial(s) per point\n",
                static_cast<unsigned long long>(n), trials);
    std::printf("%-6s", "mu");
    for (const auto& a : algorithms) std::printf(" %16s", a.c_str());
    std::printf(" %10s\n", "realized");

    for (double mu = 0.1; mu <= 0.91; mu += 0.1) {
        std::vector<double> agreement(algorithms.size(), 0.0);
        double realizedTotal = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
            Random::setSeed(800 + static_cast<std::uint64_t>(mu * 100) +
                            static_cast<std::uint64_t>(trial));
            LfrParameters params;
            params.n = n;
            params.minDegree = 10;
            params.maxDegree = 100;
            params.degreeExponent = 2.0;
            params.minCommunitySize = 100;
            params.maxCommunitySize = 1000;
            params.communityExponent = 1.0;
            params.mu = mu;
            LfrGenerator generator(params);
            const Graph g = generator.generate();
            realizedTotal += generator.realizedMu();

            for (std::size_t a = 0; a < algorithms.size(); ++a) {
                auto detector = makeDetector(algorithms[a]);
                const Partition zeta = detector->run(g);
                agreement[a] += jaccardIndex(zeta, generator.groundTruth());
            }
        }
        std::printf("%-6.1f", mu);
        for (double total : agreement) std::printf(" %16.4f", total / trials);
        std::printf(" %10.3f\n", realizedTotal / trials);
        std::fflush(stdout);
    }
    return 0;
}
