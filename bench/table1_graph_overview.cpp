// Table I — overview of the graphs used in experiments: n, m, maximum
// degree, number of connected components, average local clustering
// coefficient, for every instance of the replica suite.
//
// Paper values are for the original DIMACS/SNAP networks; the replicas are
// scaled-down synthetic stand-ins (see DESIGN.md), so absolute n/m differ
// by design while the structural signature per row (degree skew, component
// structure, clustering regime) should echo the paper's.

#include <cstdio>

#include "bench_common.hpp"
#include "quality/graph_stats.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Table I: overview of graphs used in experiments");
    std::printf("%-22s %12s %14s %9s %9s %8s   %s\n", "network", "n", "m",
                "max.d.", "comp.", "LCC", "recipe");

    for (const auto& spec : replicaSuite()) {
        const Graph g = loadReplica(spec);
        // Exact LCC below 10^6 edges, wedge sampling above.
        const count samples = g.numberOfEdges() > 1000000 ? 2000000 : 0;
        const GraphProfile profile = profileGraph(g, samples);
        std::printf("%s   %s\n",
                    formatProfileRow(spec.name, profile).c_str(),
                    spec.recipe.c_str());
        std::fflush(stdout);
    }
    return 0;
}
