// Figure 3 — PLM strong scaling on the large web-graph replica. Same
// harness shape and hardware caveat as Figure 2: both the node-move phase
// and the coarsening phase are parallel, so on real multicore hardware the
// paper measures a ~12x speedup at 32 threads.
//
// Two sweeps: the default PLM configuration, and the tuned move-kernel
// stack from PR 6 (active-set frontier + vertex following on top of the
// degree-bucketed default) — the per-thread-count ratio between the two
// is the figure's evidence that the kernel engineering survives under
// scaling, not just in the fixed-thread micro bench.

#include <cstdio>

#include "bench_common.hpp"
#include "community/plm.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner(
        "Figure 3: PLM strong scaling (uk-2007-05 replica, threads 1..8)");

    const auto suite = replicaSuite();
    const ReplicaSpec* spec = nullptr;
    for (const auto& candidate : suite) {
        if (candidate.name == "uk-2002") spec = &candidate;
    }
    const Graph g = loadReplica(*spec);
    std::printf("# instance: %s  n=%llu  m=%llu\n", spec->name.c_str(),
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    const int repetitions = quickMode() ? 1 : 3;
    const int originalThreads = Parallel::maxThreads();

    PlmConfig tunedConfig;
    tunedConfig.kernel.activeNodes = true;
    tunedConfig.vertexFollowing = true;

    struct Sweep {
        const char* label;
        PlmConfig config;
    };
    for (const Sweep& sweep :
         {Sweep{"plm-default", PlmConfig{}}, Sweep{"plm-tuned", tunedConfig}}) {
        std::printf("# %s\n", sweep.label);
        std::printf("%-8s %12s %10s %12s %14s\n", "threads", "time[s]",
                    "speedup", "modularity", "edges/s");
        double baseline = 0.0;
        for (int threads : {1, 2, 4, 8}) {
            Parallel::setThreads(threads);
            Random::setSeed(3);
            Plm plm(sweep.config);
            const RunResult result = measureDetector(plm, g, repetitions);
            if (threads == 1) baseline = result.seconds;
            std::printf("%-8d %12.4f %10.2f %12.4f %14.0f\n", threads,
                        result.seconds, baseline / result.seconds,
                        result.modularity,
                        static_cast<double>(g.numberOfEdges()) /
                            result.seconds);
            std::fflush(stdout);
        }
    }
    Parallel::setThreads(originalThreads);
    return 0;
}
