// Move-phase kernel micro benchmark (PR 6): the tuned frozen PLM kernel
// against the PR-1 CSR reference, with each optimization also measured in
// isolation so the headline number decomposes:
//   * baseline — movePhaseReference, the PR-1 kernel (atomic volumes, one
//     flat guided sweep per iteration, scalar scoring, full sweeps);
//   * sharded  — write-combining volume shards alone (flat, scalar);
//   * simd     — branchless/SIMD Δmod scoring alone (atomic, flat);
//   * bucketed — degree-bucketed scheduling alone (atomic, scalar);
//   * active   — active-set frontier alone (atomic, flat, scalar);
//   * tuned    — the library default plus the active-set frontier:
//     atomic volumes, degree buckets, scalar scoring. Sharded volumes
//     and SIMD scoring stay opt-ins because they only amortize under
//     real cross-core contention resp. wide vector units — on the hosts
//     this bench has run on they cost time, and the per-variant rows
//     above keep that honest PR over PR.
// Every variant runs the move phase TO CONVERGENCE (its own fixpoint,
// capped at kMoveIterations, the PlmConfig default) — the production
// regime. The variants do different amounts of work by design: bucketing
// settles hubs after their neighborhoods (fewer sweeps to the fixpoint)
// and the frontier skips untouched nodes, which is exactly the effect
// being sold. Quality is the fairness check: the full-run section below
// reports final modularity, which must stay flat across kernels.
// A second section times the FULL detector with and without vertex
// following (tuned_vf), since VF is a whole-run reduction, not a
// move-phase switch.
//
// Timing statistic: minimum and median over kRepetitions with all
// variants interleaved round-robin after one untimed warmup round, so a
// slow phase of the machine penalizes every variant equally; speedups are
// computed from minima (least-interference samples — this typically runs
// on shared/virtualized hardware with double-digit run-to-run noise).
//
// Emits BENCH_plm.json so the perf trajectory is recorded PR over PR;
// tools/check_perf_regression.py compares a fresh --quick run against the
// committed file in CI (rmat_s13 is measured in BOTH modes for exactly
// that reason — it is the shared anchor instance).
//
// Environment/flags: --quick or GRAPR_BENCH_QUICK=1 shrinks the instance
// list (CI smoke); GRAPR_BENCH_THREADS overrides the thread count
// (default 4).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "community/plm.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "quality/modularity.hpp"
#include "structures/partition.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;

namespace {

constexpr int kRepetitions = 7;
/// Sweep cap, matching PlmConfig::maxMoveIterations — high enough that
/// every variant reaches its own fixpoint on the bench instances.
constexpr count kMoveIterations = 64;

struct Measurement {
    double minimum = 0.0;
    double median = 0.0;
};

struct Variant {
    std::string name;
    std::function<void()> run;
    Measurement timing;
};

Measurement toMeasurement(std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    return {samples.front(), samples[samples.size() / 2]};
}

/// One untimed warmup round, then kRepetitions rounds with the variants
/// back to back, so machine-load swings hit all of them alike.
void measureInterleaved(std::vector<Variant>& variants) {
    for (auto& v : variants) v.run();
    std::vector<std::vector<double>> samples(variants.size());
    for (int rep = 0; rep < kRepetitions; ++rep) {
        for (std::size_t i = 0; i < variants.size(); ++i) {
            Timer t;
            variants[i].run();
            samples[i].push_back(t.elapsed());
        }
    }
    for (std::size_t i = 0; i < variants.size(); ++i) {
        variants[i].timing = toMeasurement(std::move(samples[i]));
    }
}

PlmKernelConfig kernelVariant(PlmVolumePolicy volumes,
                              PlmSweepSchedule schedule, bool simd,
                              bool active) {
    PlmKernelConfig k;
    k.volumePolicy = volumes;
    k.schedule = schedule;
    k.simdScoring = simd;
    k.activeNodes = active;
    return k;
}

struct InstanceReport {
    std::string name;
    std::string recipe;
    count nodes = 0;
    count edges = 0;
    std::vector<Variant> movePhase;
    std::vector<Variant> fullRun;
    double modularityPlm = 0.0;
    double modularityVf = 0.0;

    double tunedSpeedup() const {
        // movePhase[0] is baseline, movePhase.back() is tuned by
        // construction below.
        const double base = movePhase.front().timing.minimum;
        const double tuned = movePhase.back().timing.minimum;
        return tuned > 0.0 ? base / tuned : 0.0;
    }
    double vfSpeedup() const {
        const double base = fullRun.front().timing.minimum;
        const double vf = fullRun.back().timing.minimum;
        return vf > 0.0 ? base / vf : 0.0;
    }
};

InstanceReport measureInstance(const std::string& name,
                               const std::string& recipe, const Graph& g) {
    InstanceReport report;
    report.name = name;
    report.recipe = recipe;
    report.nodes = g.numberOfNodes();
    report.edges = g.numberOfEdges();

    const CsrGraph csr(g);

    // --- Move phase, first level, from the singleton clustering: the hot
    // loop every optimization targets. Fixed seed per run so the label
    // dynamics (and hence the work) are comparable across variants.
    auto moveWith = [&csr](const PlmKernelConfig& kernel) {
        return [&csr, kernel] {
            Random::setSeed(901);
            Partition zeta(csr.upperNodeIdBound());
            zeta.allToSingletons();
            Plm::movePhase(csr, zeta, 1.0, kMoveIterations, nullptr, kernel);
        };
    };
    auto referenceMove = [&csr] {
        Random::setSeed(901);
        Partition zeta(csr.upperNodeIdBound());
        zeta.allToSingletons();
        Plm::movePhaseReference(csr, zeta, 1.0, kMoveIterations, nullptr);
    };
    using VP = PlmVolumePolicy;
    using SS = PlmSweepSchedule;
    report.movePhase.push_back({"baseline", referenceMove, {}});
    report.movePhase.push_back(
        {"sharded", moveWith(kernelVariant(VP::Sharded, SS::Flat, false,
                                           false)),
         {}});
    report.movePhase.push_back(
        {"simd", moveWith(kernelVariant(VP::Atomic, SS::Flat, true, false)),
         {}});
    report.movePhase.push_back(
        {"bucketed", moveWith(kernelVariant(VP::Atomic, SS::DegreeBucketed,
                                            false, false)),
         {}});
    report.movePhase.push_back(
        {"active", moveWith(kernelVariant(VP::Atomic, SS::Flat, false, true)),
         {}});
    report.movePhase.push_back(
        {"tuned", moveWith(kernelVariant(VP::Atomic, SS::DegreeBucketed,
                                         false, true)),
         {}});
    measureInterleaved(report.movePhase);

    // --- Full detector with and without vertex following (both on the
    // tuned kernel, so the delta isolates the reduction itself).
    PlmConfig plain;
    plain.kernel = kernelVariant(VP::Atomic, SS::DegreeBucketed, false, true);
    PlmConfig vf = plain;
    vf.vertexFollowing = true;
    Partition zetaPlm, zetaVf;
    report.fullRun.push_back({"plm_tuned",
                              [&csr, plain, &zetaPlm] {
                                  Random::setSeed(902);
                                  zetaPlm = Plm(plain).runFrozen(csr);
                              },
                              {}});
    report.fullRun.push_back({"plm_tuned_vf",
                              [&csr, vf, &zetaVf] {
                                  Random::setSeed(902);
                                  zetaVf = Plm(vf).runFrozen(csr);
                              },
                              {}});
    measureInterleaved(report.fullRun);
    report.modularityPlm = Modularity().getQuality(zetaPlm, csr);
    report.modularityVf = Modularity().getQuality(zetaVf, csr);

    return report;
}

void emitVariants(std::ostringstream& json, const std::string& section,
                  const std::vector<Variant>& variants, bool trailingComma) {
    json << "      \"" << section << "\": {\n";
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto& v = variants[i];
        json << "        \"" << v.name
             << "\": {\"min_seconds\": " << v.timing.minimum
             << ", \"median_seconds\": " << v.timing.median << "}"
             << (i + 1 < variants.size() ? "," : "") << "\n";
    }
    json << "      }" << (trailingComma ? "," : "") << "\n";
}

void writeJson(const std::vector<InstanceReport>& reports, int threads,
               bool quick) {
    std::ostringstream json;
    json << "{\n";
    json << "  \"bench\": \"micro_plm_kernels\",\n";
    json << "  \"threads\": " << threads << ",\n";
    json << "  \"repetitions\": " << kRepetitions << ",\n";
    json << "  \"move_iterations\": " << kMoveIterations << ",\n";
    json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    json << "  \"speedup_definition\": "
            "\"baseline.min_seconds / tuned.min_seconds\",\n";
    json << "  \"instances\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto& rep = reports[i];
        json << "    {\n";
        json << "      \"name\": \"" << rep.name << "\",\n";
        json << "      \"recipe\": \"" << rep.recipe << "\",\n";
        json << "      \"nodes\": " << rep.nodes << ",\n";
        json << "      \"edges\": " << rep.edges << ",\n";
        emitVariants(json, "move_phase", rep.movePhase, true);
        emitVariants(json, "full_run", rep.fullRun, true);
        json << "      \"modularity\": {\"plm_tuned\": " << rep.modularityPlm
             << ", \"plm_tuned_vf\": " << rep.modularityVf << "},\n";
        json << "      \"speedup_tuned_vs_baseline\": " << rep.tunedSpeedup()
             << ",\n";
        json << "      \"speedup_vf_full_run\": " << rep.vfSpeedup() << "\n";
        json << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ]\n";
    json << "}\n";

    std::ofstream out("BENCH_plm.json");
    out << json.str();
    std::cout << "\nwrote BENCH_plm.json\n";
}

} // namespace

int main(int argc, char** argv) {
    bool quick = grapr::bench::quickMode();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    }

    int threads = 4;
    if (const char* env = std::getenv("GRAPR_BENCH_THREADS")) {
        threads = std::max(1, std::atoi(env));
    }
    Parallel::setThreads(threads);
    bench::printPlatformBanner("micro_plm_kernels");
    std::cout << "threads fixed to " << threads
              << (quick ? ", quick mode" : "") << "\n";

    // rmat_s13 is measured in BOTH quick and full mode: it is the anchor
    // instance the CI perf-smoke regression check compares across the
    // committed (full) and freshly measured (quick) JSON.
    std::vector<InstanceReport> reports;
    {
        Random::setSeed(6013);
        const Graph g = RmatGenerator(13, 8).generate();
        reports.push_back(measureInstance(
            "rmat_s13", "RMAT scale 13, edge factor 8", g));
    }
    if (!quick) {
        {
            Random::setSeed(6150);
            const Graph g = BarabasiAlbertGenerator(150000, 4).generate();
            reports.push_back(measureInstance(
                "ba_150000", "Barabasi-Albert n=150000, m=4", g));
        }
        {
            Random::setSeed(6018);
            const Graph g = RmatGenerator(18, 8).generate();
            reports.push_back(measureInstance(
                "rmat_s18", "RMAT scale 18, edge factor 8", g));
        }
    }

    std::cout << "\n";
    for (const auto& rep : reports) {
        std::cout << rep.name << "  (n=" << rep.nodes << ", m=" << rep.edges
                  << ")\n  move phase:";
        for (const auto& v : rep.movePhase) {
            std::cout << "  " << v.name << " "
                      << formatDuration(v.timing.minimum);
        }
        std::cout << "\n    tuned speedup " << rep.tunedSpeedup() << "x\n";
        std::cout << "  full run:";
        for (const auto& v : rep.fullRun) {
            std::cout << "  " << v.name << " "
                      << formatDuration(v.timing.minimum);
        }
        std::cout << "  (vf speedup " << rep.vfSpeedup()
                  << "x, modularity " << rep.modularityPlm << " vs "
                  << rep.modularityVf << ")\n";
    }

    writeJson(reports, threads, quick);
    return 0;
}
