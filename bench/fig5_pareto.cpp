// Figure 5 — Pareto evaluation: one point per algorithm, x = time score
// (geometric mean of running-time ratios vs PLM over the test set),
// y = modularity score (arithmetic mean of absolute modularity differences
// vs PLM). The paper's condensed comparison.
//
// Expected placement: PLP far left (fastest) below zero quality; PLM at
// (1, 0) by construction; PLMR slightly right and above; EPP variants in
// the middle; Louvain right of PLM at ~equal quality; RG/CGGC/CGGCi top
// right (best quality, most expensive); CEL dominated.
//
// Scores for RG-family algorithms are computed over the instances they ran
// on (the expensive-algorithm edge cap skips the largest, as the paper
// skips non-viable runs); the instance count per algorithm is printed.

#include <cmath>
#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Figure 5: Pareto evaluation (PLM baseline)");
    const int repetitions = quickMode() ? 1 : 3;
    const count edgeCap = expensiveAlgorithmEdgeCap();

    const auto suite = replicaSuite();
    std::vector<Graph> graphs;
    std::vector<RunResult> plmResults;
    for (const auto& spec : suite) {
        graphs.push_back(loadReplica(spec));
        plmResults.push_back(
            measureDetectorCached("PLM", spec.name, graphs.back(),
                                  repetitions));
    }

    std::printf("%-18s %12s %14s %10s\n", "algorithm", "time score",
                "quality score", "instances");
    const std::vector<std::string> algorithms = {
        "PLP",     "PLM",  "PLMR",  "EPP(4,PLP,PLM)", "EPP(4,PLP,PLMR)",
        "Louvain", "CLU_TBB", "CEL", "RG", "CGGC", "CGGCi"};

    for (const auto& algorithm : algorithms) {
        const bool expensive =
            algorithm == "RG" || algorithm == "CGGC" || algorithm == "CGGCi";
        double logRatioSum = 0.0;
        double qualityDiffSum = 0.0;
        int instances = 0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (expensive && graphs[i].numberOfEdges() > edgeCap) continue;
            const int reps = expensive ? 1 : repetitions;
            const RunResult r = measureDetectorCached(
                algorithm, suite[i].name, graphs[i], reps);
            logRatioSum += std::log(r.seconds / plmResults[i].seconds);
            qualityDiffSum += r.modularity - plmResults[i].modularity;
            ++instances;
        }
        const double timeScore = std::exp(logRatioSum / instances);
        const double qualityScore = qualityDiffSum / instances;
        std::printf("%-18s %12.4f %+14.4f %10d\n", algorithm.c_str(),
                    timeScore, qualityScore, instances);
        std::fflush(stdout);
    }
    std::printf("#\n# time score: geometric mean of t(A)/t(PLM); quality\n"
                "# score: arithmetic mean of q(A)-q(PLM) (paper uses absolute\n"
                "# modularity differences with sign preserved in the chart).\n");
    return 0;
}
