// Figure 2 — PLP strong scaling: the same instance solved with 1, 2, 4, …
// threads (the paper sweeps 1..32 on uk-2007-05; the replica is the largest
// web-graph stand-in that fits this machine).
//
// HARDWARE SUBSTITUTION (see DESIGN.md/EXPERIMENTS.md): this container has
// a single CPU core, so added threads oversubscribe it and the measured
// "speedup" is expected to be ~flat — the harness still exercises the
// parallel code paths (guided scheduling, shared label array races) and on
// a multicore machine reproduces the paper's curve.

#include <cstdio>

#include "bench_common.hpp"
#include "community/plp.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner(
        "Figure 2: PLP strong scaling (uk-2007-05 replica, threads 1..8)");

    const auto suite = replicaSuite();
    const ReplicaSpec* spec = nullptr;
    for (const auto& candidate : suite) {
        if (candidate.name == "uk-2002") spec = &candidate;
    }
    const Graph g = loadReplica(*spec);
    std::printf("# instance: %s  n=%llu  m=%llu\n", spec->name.c_str(),
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    const int repetitions = quickMode() ? 1 : 3;
    std::printf("%-8s %12s %10s %12s %14s\n", "threads", "time[s]", "speedup",
                "modularity", "edges/s");

    double baseline = 0.0;
    const int originalThreads = Parallel::maxThreads();
    for (int threads : {1, 2, 4, 8}) {
        Parallel::setThreads(threads);
        Random::setSeed(2);
        Plp plp;
        const RunResult result = measureDetector(plp, g, repetitions);
        if (threads == 1) baseline = result.seconds;
        std::printf("%-8d %12.4f %10.2f %12.4f %14.0f\n", threads,
                    result.seconds, baseline / result.seconds,
                    result.modularity,
                    static_cast<double>(g.numberOfEdges()) / result.seconds);
        std::fflush(stdout);
    }
    Parallel::setThreads(originalThreads);
    return 0;
}
