// Figure 1 — number of active and updated labels per iteration of PLP on a
// web graph (the paper uses uk-2002; the replica is its R-MAT stand-in).
//
// Expected shape: both curves drop by orders of magnitude within the first
// handful of iterations, then a long tail of iterations updates only a tiny
// fraction of high-degree nodes — the observation that motivates the update
// threshold θ = n·10⁻⁵.

#include <cstdio>

#include "bench_common.hpp"
#include "community/plp.hpp"
#include "support/random.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner(
        "Figure 1: PLP active/updated labels per iteration (uk-2002 replica)");

    const auto suite = replicaSuite();
    const ReplicaSpec* webSpec = nullptr;
    for (const auto& spec : suite) {
        if (spec.name == "uk-2002") webSpec = &spec;
    }
    const Graph g = loadReplica(*webSpec);
    std::printf("# instance: %s  n=%llu  m=%llu\n", webSpec->name.c_str(),
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    // Run PLP to full stability (theta = 0) so the tail is visible.
    Random::setSeed(1);
    PlpConfig config;
    config.thetaFraction = 0.0;
    Plp plp(config);
    IterationTracer tracer;
    plp.setTracer(&tracer);
    (void)plp.run(g);

    const double theta = 1e-5 * static_cast<double>(g.numberOfNodes());
    std::printf("%-10s %14s %14s\n", "iteration", "active", "updated");
    count iterationsSavedByTheta = 0;
    for (const auto& record : tracer.records()) {
        std::printf("%-10llu %14llu %14llu\n",
                    static_cast<unsigned long long>(record.iteration),
                    static_cast<unsigned long long>(record.active),
                    static_cast<unsigned long long>(record.updated));
        if (static_cast<double>(record.updated) <= theta) {
            ++iterationsSavedByTheta;
        }
    }
    std::printf("#\n# theta = n*1e-5 = %.1f would cut the final %llu of %zu "
                "iterations\n",
                theta,
                static_cast<unsigned long long>(iterationsSavedByTheta),
                tracer.records().size());
    return 0;
}
