// Figure 9 — "one more massive network": modularity and running time for
// all five of our parallel algorithms on the largest instance this machine
// can hold (the paper runs uk-2007-05 with 3.3G edges on a 256 GB server;
// the replica is the largest R-MAT web graph that builds here — the
// substitution is documented in DESIGN.md). Also reports the paper's
// headline metric, processed edges per second.
//
// Expected shape: PLP fastest by far at a modest modularity loss (paper:
// ~0.02); EPP slightly faster than PLM at slightly lower quality; PLMR
// slightly slower than PLM at equal-or-better quality.

#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"
#include "generators/lfr.hpp"
#include "io/binary_io.hpp"
#include "support/random.hpp"

#include <filesystem>

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Figure 9: the most massive instance that fits");

    // ~1M nodes / ~8M edges of web-graph-shaped LFR (skewed degrees,
    // strong communities — uk-2007-05's signature): the largest instance
    // that generates and sweeps in reasonable time on this container.
    const count n = quickMode() ? 50000 : 1000000;
    const std::string cachePath =
        dataDirectory() + "/massive_mu15_n" + std::to_string(n) + ".grpr";
    Graph g = [&] {
        if (std::filesystem::exists(cachePath)) {
            return io::readBinary(cachePath);
        }
        Random::setSeed(9);
        LfrParameters params;
        params.n = n;
        params.minDegree = 6;
        params.maxDegree = 1000;
        params.degreeExponent = 2.1;
        params.minCommunitySize = 50;
        params.maxCommunitySize = 5000;
        params.communityExponent = 1.3;
        params.mu = 0.15;
        Graph fresh = LfrGenerator(params).generate();
        io::writeBinary(fresh, cachePath);
        return fresh;
    }();
    std::printf("# instance: web-shaped LFR  n=%llu  m=%llu\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    std::printf("%-18s %12s %12s %14s %12s\n", "algorithm", "modularity",
                "time[s]", "edges/s", "#communities");
    for (const char* name : {"PLP", "PLM", "PLMR", "EPP(4,PLP,PLM)",
                             "EPP(4,PLP,PLMR)"}) {
        Random::setSeed(90);
        auto detector = makeDetector(name);
        const RunResult r = measureDetector(*detector, g, 1);
        std::printf("%-18s %12.4f %12.2f %14.0f %12llu\n", name,
                    r.modularity, r.seconds,
                    static_cast<double>(g.numberOfEdges()) / r.seconds,
                    static_cast<unsigned long long>(r.communities));
        std::fflush(stdout);
    }
    return 0;
}
