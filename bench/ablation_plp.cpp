// Ablation (§III-A implementation notes) — the PLP engineering choices:
//  * update threshold theta: 0 (run to stability) vs the paper's n·10⁻⁵,
//  * explicit per-iteration randomization vs the default single shuffle,
//  * guided vs static OpenMP scheduling.
//
// Expected shape: theta cuts the long iteration tail at negligible quality
// cost; explicit randomization costs time without measurable quality gain
// (the paper's reason to drop it); guided scheduling wins on skewed degree
// distributions (visible with >1 hardware threads).

#include <cstdio>

#include "bench_common.hpp"
#include "community/plp.hpp"
#include "quality/modularity.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;
using namespace grapr::bench;

namespace {

void runVariant(const char* label, const PlpConfig& config, const Graph& g,
                int repetitions) {
    double totalSeconds = 0.0;
    double totalQuality = 0.0;
    count iterations = 0;
    for (int r = 0; r < repetitions; ++r) {
        Random::setSeed(50 + static_cast<std::uint64_t>(r));
        Plp plp(config);
        Timer timer;
        const Partition zeta = plp.run(g);
        totalSeconds += timer.elapsed();
        totalQuality += Modularity().getQuality(zeta, g);
        iterations = plp.iterations();
    }
    std::printf("  %-28s %12.4f %12.4f %12llu\n", label,
                totalSeconds / repetitions, totalQuality / repetitions,
                static_cast<unsigned long long>(iterations));
    std::fflush(stdout);
}

} // namespace

int main() {
    printPlatformBanner("Ablation: PLP engineering choices");
    const int repetitions = quickMode() ? 1 : 3;

    const std::vector<std::string> subset = {"as-Skitter", "soc-LiveJournal",
                                             "uk-2002"};
    for (const auto& spec : replicaSuite()) {
        if (std::find(subset.begin(), subset.end(), spec.name) ==
            subset.end()) {
            continue;
        }
        const Graph g = loadReplica(spec);
        std::printf("%s (n=%llu m=%llu)\n", spec.name.c_str(),
                    static_cast<unsigned long long>(g.numberOfNodes()),
                    static_cast<unsigned long long>(g.numberOfEdges()));
        std::printf("  %-28s %12s %12s %12s\n", "variant", "time[s]",
                    "modularity", "iterations");

        PlpConfig base;
        runVariant("default (theta=n*1e-5)", base, g, repetitions);

        PlpConfig thetaZero = base;
        thetaZero.thetaFraction = 0.0;
        runVariant("theta=0 (full stability)", thetaZero, g, repetitions);

        PlpConfig randomized = base;
        randomized.explicitRandomization = true;
        runVariant("explicit randomization", randomized, g, repetitions);

        PlpConfig staticSchedule = base;
        staticSchedule.guidedSchedule = false;
        runVariant("static scheduling", staticSchedule, g, repetitions);

        PlpConfig noActivity = base;
        noActivity.trackActiveNodes = false;
        runVariant("no active-node tracking", noActivity, g, repetitions);
    }
    return 0;
}
