// Micro benchmarks (google-benchmark) for the graph substrate: the
// operations on PLM/PLP's critical path — neighborhood scans, edge
// iteration, builder assembly, coarsening — so regressions in the data
// structure are visible independently of whole-algorithm timings.

#include <benchmark/benchmark.h>

#include "coarsening/parallel_coarsening.hpp"
#include "generators/rmat.hpp"
#include "graph/graph_builder.hpp"
#include "structures/partition.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

const Graph& testGraph() {
    static const Graph g = [] {
        Random::setSeed(1000);
        return RmatGenerator(15, 8).generate();
    }();
    return g;
}

} // namespace

static void BM_NeighborhoodScan(benchmark::State& state) {
    const Graph& g = testGraph();
    double total = 0.0;
    for (auto _ : state) {
        g.forNodes([&](node u) {
            g.forNeighborsOf(u, [&](node, edgeweight w) { total += w; });
        });
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * g.numberOfEdges()));
}
BENCHMARK(BM_NeighborhoodScan);

static void BM_ParallelEdgeSweep(benchmark::State& state) {
    const Graph& g = testGraph();
    for (auto _ : state) {
        std::atomic<double> total{0.0};
        g.parallelForEdges([&](node, node, edgeweight w) {
            double expected = total.load(std::memory_order_relaxed);
            while (!total.compare_exchange_weak(expected, expected + w)) {
            }
        });
        benchmark::DoNotOptimize(total.load());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(g.numberOfEdges()));
}
BENCHMARK(BM_ParallelEdgeSweep);

static void BM_DegreeLookup(benchmark::State& state) {
    const Graph& g = testGraph();
    count total = 0;
    for (auto _ : state) {
        for (node v = 0; v < g.upperNodeIdBound(); ++v) {
            total += g.degree(v);
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_DegreeLookup);

static void BM_GraphBuilderAssembly(benchmark::State& state) {
    Random::setSeed(1001);
    const count n = 1 << 14;
    std::vector<std::pair<node, node>> edges;
    for (count i = 0; i < 8 * n; ++i) {
        edges.emplace_back(static_cast<node>(Random::integer(n)),
                           static_cast<node>(Random::integer(n)));
    }
    for (auto _ : state) {
        GraphBuilder builder(n, false);
        for (auto [u, v] : edges) builder.addEdge(u, v);
        Graph g = builder.build(/*dedup=*/true);
        benchmark::DoNotOptimize(g.numberOfEdges());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuilderAssembly);

static void BM_CoarseningParallel(benchmark::State& state) {
    const Graph& g = testGraph();
    Random::setSeed(1002);
    Partition p(g.upperNodeIdBound());
    const count k = g.numberOfNodes() / 50;
    for (node v = 0; v < p.numberOfElements(); ++v) {
        p.set(v, static_cast<node>(Random::integer(k)));
    }
    p.setUpperBound(static_cast<node>(k));
    for (auto _ : state) {
        const CoarseningResult result =
            ParallelPartitionCoarsening(state.range(0) != 0).run(g, p);
        benchmark::DoNotOptimize(result.coarseGraph.numberOfEdges());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(g.numberOfEdges()));
}
BENCHMARK(BM_CoarseningParallel)->Arg(1)->Arg(0);
