// Figure 11 — community graphs of the PGPgiantcompo replica for PLP, PLM,
// PLMR and EPP(4,PLP,PLM): the input coarsened by each solution, node size
// proportional to community size, written as Graphviz DOT files under the
// data directory. The printed table shows the resolution contrast the
// paper highlights: PLP detects on the order of a thousand small
// communities, the Louvain-family algorithms about a hundred larger ones.

#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"
#include "coarsening/parallel_coarsening.hpp"
#include "io/dot_writer.hpp"
#include "quality/community_stats.hpp"
#include "quality/modularity.hpp"
#include "support/random.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner(
        "Figure 11: community graphs of the PGPgiantcompo replica");

    const auto suite = replicaSuite();
    const ReplicaSpec* spec = nullptr;
    for (const auto& candidate : suite) {
        if (candidate.name == "PGPgiantcompo") spec = &candidate;
    }
    const Graph g = loadReplica(*spec);
    std::printf("# instance: %s  n=%llu  m=%llu\n", spec->name.c_str(),
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    std::printf("%-18s %14s %12s %12s %12s %14s\n", "algorithm",
                "#communities", "median size", "max size", "modularity",
                "dot file");
    for (const char* name : {"PLP", "PLM", "PLMR", "EPP(4,PLP,PLM)"}) {
        Random::setSeed(11);
        auto detector = makeDetector(name);
        Partition zeta = detector->run(g);
        zeta.compact();

        const CoarseningResult coarse =
            ParallelPartitionCoarsening().run(g, zeta);
        const CommunitySizeStats stats = communitySizeStats(zeta);
        const double q = Modularity().getQuality(zeta, g);

        std::string fileName = std::string(name);
        for (auto& c : fileName) {
            if (c == '(' || c == ')' || c == ',') c = '_';
        }
        const std::string dotPath =
            dataDirectory() + "/fig11_" + fileName + ".dot";
        io::writeCommunityGraphDot(coarse.coarseGraph, zeta.subsetSizes(),
                                   dotPath);

        std::printf("%-18s %14llu %12.0f %12llu %12.4f %14s\n", name,
                    static_cast<unsigned long long>(stats.communities),
                    stats.median,
                    static_cast<unsigned long long>(stats.largest), q,
                    dotPath.c_str());
        std::fflush(stdout);
    }
    return 0;
}
