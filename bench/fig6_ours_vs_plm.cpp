// Figure 6 (a-e) — performance of our algorithms with PLM as the baseline,
// broken down by network: (a) PLM absolute quality and time, then each of
// PLP, PLMR, EPP(4,PLP,PLM), EPP(4,PLP,PLMR) as modularity difference and
// time ratio relative to PLM.
//
// Expected shapes (paper §V-A..D): PLP solves instances in 10-20% of PLM's
// time at a significant modularity loss; PLMR adds a little time and gains
// modularity; the EPP variants sit between PLP and PLM on both axes.

#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Figure 6: our algorithms relative to PLM");
    const int repetitions = quickMode() ? 1 : 3;

    // (a) the baseline itself.
    std::printf("--- (a) PLM baseline ---\n");
    std::printf("%-22s %12s %12s %12s\n", "network", "modularity", "time[s]",
                "#communities");
    std::vector<RunResult> plmResults;
    const auto suite = replicaSuite();
    for (const auto& spec : suite) {
        const Graph g = loadReplica(spec);
        const RunResult r =
            measureDetectorCached("PLM", spec.name, g, repetitions);
        plmResults.push_back(r);
        std::printf("%-22s %12.4f %12.4f %12llu\n", spec.name.c_str(),
                    r.modularity, r.seconds,
                    static_cast<unsigned long long>(r.communities));
        std::fflush(stdout);
    }

    const char* panels[] = {"PLP", "PLMR", "EPP(4,PLP,PLM)",
                            "EPP(4,PLP,PLMR)"};
    const char* labels[] = {"(b)", "(c)", "(d)", "(e)"};
    for (int panel = 0; panel < 4; ++panel) {
        std::printf("--- %s %s relative to PLM ---\n", labels[panel],
                    panels[panel]);
        std::printf("%-22s %12s %12s\n", "network", "delta q", "time ratio");
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const Graph g = loadReplica(suite[i]);
            const RunResult r = measureDetectorCached(
                panels[panel], suite[i].name, g, repetitions);
            std::printf("%-22s %+12.4f %12.3f\n", suite[i].name.c_str(),
                        r.modularity - plmResults[i].modularity,
                        r.seconds / plmResults[i].seconds);
            std::fflush(stdout);
        }
    }
    return 0;
}
