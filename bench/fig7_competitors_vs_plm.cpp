// Figure 7 (a-e) — competitors relative to the PLM baseline, per network:
// sequential Louvain, CLU_TBB-like and CEL-like matching agglomeration,
// RG, CGGC and CGGCi (in-framework stand-ins, see DESIGN.md).
//
// Expected shapes (paper §V-E): Louvain marginally better quality, slower
// on large inputs; CLU_TBB fast with mid quality; CEL dominated; RG family
// best quality but an order of magnitude slower. RG/CGGC/CGGCi are skipped
// above the expensive-algorithm edge cap unless GRAPR_BENCH_FULL=1 —
// mirroring the paper's own missing entries for non-viable runs.

#include <cstdio>

#include "baselines/registry.hpp"
#include "bench_common.hpp"

using namespace grapr;
using namespace grapr::bench;

int main() {
    printPlatformBanner("Figure 7: competitors relative to PLM");
    const int repetitions = quickMode() ? 1 : 3;
    const count edgeCap = expensiveAlgorithmEdgeCap();

    const auto suite = replicaSuite();
    std::vector<RunResult> plmResults;
    for (const auto& spec : suite) {
        const Graph g = loadReplica(spec);
        plmResults.push_back(
            measureDetectorCached("PLM", spec.name, g, repetitions));
    }

    const char* panels[] = {"Louvain", "CLU_TBB", "CEL", "RG", "CGGC",
                            "CGGCi"};
    for (const char* algorithm : panels) {
        const bool expensive = std::string(algorithm) == "RG" ||
                               std::string(algorithm) == "CGGC" ||
                               std::string(algorithm) == "CGGCi";
        std::printf("--- %s relative to PLM ---\n", algorithm);
        std::printf("%-22s %12s %12s %12s\n", "network", "delta q",
                    "time ratio", "time[s]");
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const Graph g = loadReplica(suite[i]);
            if (expensive && g.numberOfEdges() > edgeCap) {
                std::printf("%-22s %12s %12s %12s\n", suite[i].name.c_str(),
                            "skipped", "-", "-");
                continue;
            }
            const int reps = expensive ? 1 : repetitions;
            const RunResult r =
                measureDetectorCached(algorithm, suite[i].name, g, reps);
            std::printf("%-22s %+12.4f %12.3f %12.3f\n",
                        suite[i].name.c_str(),
                        r.modularity - plmResults[i].modularity,
                        r.seconds / plmResults[i].seconds, r.seconds);
            std::fflush(stdout);
        }
    }
    return 0;
}
