// Layout micro benchmark: adjacency-list Graph vs frozen CsrGraph on the
// three kernels that dominate community-detection runtime — the raw
// neighborhood scan, the PLP label-propagation sweep, and the PLM move
// phase.
//
// The mutable adjacency structure is measured in BOTH of its real states:
//   * "fresh"   — straight out of GraphBuilder::build, whose node-ordered
//     allocation pass leaves the per-node vectors nearly contiguous on the
//     heap (the mutable layout's best case);
//   * "dynamic" — the same edge set inserted incrementally in arrival
//     order, the state a graph is in after dynamic construction or
//     updates, where the per-node vectors have reallocated interleaved
//     and are scattered across the heap.
// The frozen CSR view is built from the dynamic graph (freezing is
// precisely the escape hatch from allocation history) and is immune to the
// distinction by construction. The headline speedup compares the dynamic
// adjacency path against the frozen path; the fresh numbers are reported
// alongside for transparency.
//
// Timing statistic: minimum and median over kRepetitions, with the three
// variants interleaved round-robin (fresh, dynamic, csr, repeat) after one
// untimed warmup round, so a slow phase of the machine penalizes all three
// equally. The speedup is computed from minima (the least-interference
// samples — this typically runs on shared/virtualized hardware with
// double-digit run-to-run noise).
//
// Emits BENCH_csr.json so the perf trajectory is recorded PR over PR.
// Environment: GRAPR_BENCH_QUICK=1 shrinks the instances (CI smoke);
// GRAPR_BENCH_THREADS overrides the thread count (default 4).

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "structures/partition.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;

namespace {

constexpr int kRepetitions = 7;

struct Measurement {
    double minimum = 0.0;
    double median = 0.0;
};

struct KernelResult {
    std::string kernel;
    Measurement adjacencyFresh;
    Measurement adjacencyDynamic;
    Measurement csr;

    double speedup() const {
        return csr.minimum > 0.0 ? adjacencyDynamic.minimum / csr.minimum
                                 : 0.0;
    }
};

struct InstanceReport {
    std::string name;
    std::string recipe;
    count nodes = 0;
    count edges = 0;
    double freezeSeconds = 0.0;
    std::vector<KernelResult> kernels;
};

Measurement toMeasurement(std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    return {samples.front(), samples[samples.size() / 2]};
}

/// Time the three layout variants of one kernel interleaved: one untimed
/// warmup round, then kRepetitions rounds of fresh/dynamic/csr back to
/// back, so machine-load swings hit all variants alike.
void measureInterleaved(const std::function<void()>& fresh,
                        const std::function<void()>& dynamic,
                        const std::function<void()>& csr, KernelResult& out) {
    fresh();
    dynamic();
    csr();
    std::vector<double> tFresh, tDynamic, tCsr;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        Timer a;
        fresh();
        tFresh.push_back(a.elapsed());
        Timer b;
        dynamic();
        tDynamic.push_back(b.elapsed());
        Timer c;
        csr();
        tCsr.push_back(c.elapsed());
    }
    out.adjacencyFresh = toMeasurement(std::move(tFresh));
    out.adjacencyDynamic = toMeasurement(std::move(tDynamic));
    out.csr = toMeasurement(std::move(tCsr));
}

/// The same edge set re-inserted one edge at a time in random arrival
/// order: the adjacency structure's state after dynamic construction.
Graph growDynamically(const Graph& fresh) {
    std::vector<std::pair<node, node>> edges;
    edges.reserve(fresh.numberOfEdges());
    fresh.forEdges(
        [&](node u, node v, edgeweight) { edges.emplace_back(u, v); });
    Random::shuffle(edges.begin(), edges.end());
    Graph grown(fresh.upperNodeIdBound(), fresh.isWeighted());
    for (const auto& [u, v] : edges) grown.addEdge(u, v);
    return grown;
}

/// Full sequential neighborhood sweep — the access pattern underneath
/// every kernel, with no algorithmic work to hide layout latency.
template <typename GraphT>
double neighborScan(const GraphT& g) {
    double total = 0.0;
    g.forNodes([&](node u) {
        g.forNeighborsOf(u, [&](node, edgeweight w) { total += w; });
    });
    return total;
}

InstanceReport measureInstance(const std::string& name,
                               const std::string& recipe,
                               const Graph& fresh) {
    InstanceReport report;
    report.name = name;
    report.recipe = recipe;
    report.nodes = fresh.numberOfNodes();
    report.edges = fresh.numberOfEdges();

    const Graph grown = growDynamically(fresh);

    Timer freezeTimer;
    const CsrGraph csr(grown);
    report.freezeSeconds = freezeTimer.elapsed();

    // Kernel 1: raw neighbor scan.
    {
        KernelResult r;
        r.kernel = "neighbor_scan";
        static volatile double sink = 0.0;
        measureInterleaved([&] { sink = neighborScan(fresh); },
                           [&] { sink = neighborScan(grown); },
                           [&] { sink = neighborScan(csr); }, r);
        report.kernels.push_back(r);
    }

    // Kernel 2: PLP sweeps (fixed seed per run; the CSR view preserves the
    // dynamic graph's adjacency order, so label dynamics are identical and
    // the comparison is pure memory behavior).
    {
        KernelResult r;
        r.kernel = "plp";
        PlpConfig thawed;
        thawed.freeze = false;
        measureInterleaved(
            [&] {
                Random::setSeed(42);
                Plp(thawed).run(fresh);
            },
            [&] {
                Random::setSeed(42);
                Plp(thawed).run(grown);
            },
            [&] {
                Random::setSeed(42);
                Plp().runFrozen(csr);
            },
            r);
        report.kernels.push_back(r);
    }

    // Kernel 3: the PLM move phase, first level, from the singleton
    // clustering — the hot loop the frozen fast path targets.
    {
        KernelResult r;
        r.kernel = "plm_move_phase";
        auto runMove = [&](const auto& graph) {
            Partition zeta(graph.upperNodeIdBound());
            zeta.allToSingletons();
            Plm::movePhase(graph, zeta, 1.0, 8, nullptr);
        };
        measureInterleaved([&] { runMove(fresh); }, [&] { runMove(grown); },
                           [&] { runMove(csr); }, r);
        report.kernels.push_back(r);
    }

    return report;
}

void emitMeasurement(std::ostringstream& json, const std::string& key,
                     const Measurement& m, bool trailingComma) {
    json << "          \"" << key << "\": {\"min_seconds\": " << m.minimum
         << ", \"median_seconds\": " << m.median << "}"
         << (trailingComma ? "," : "") << "\n";
}

void writeJson(const std::vector<InstanceReport>& reports, int threads) {
    std::ostringstream json;
    json << "{\n";
    json << "  \"bench\": \"micro_csr_vs_adjacency\",\n";
    json << "  \"threads\": " << threads << ",\n";
    json << "  \"repetitions\": " << kRepetitions << ",\n";
    json << "  \"quick\": " << (bench::quickMode() ? "true" : "false")
         << ",\n";
    json << "  \"speedup_definition\": "
            "\"adjacency_dynamic.min_seconds / csr.min_seconds\",\n";
    json << "  \"instances\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto& rep = reports[i];
        json << "    {\n";
        json << "      \"name\": \"" << rep.name << "\",\n";
        json << "      \"recipe\": \"" << rep.recipe << "\",\n";
        json << "      \"nodes\": " << rep.nodes << ",\n";
        json << "      \"edges\": " << rep.edges << ",\n";
        json << "      \"freeze_seconds\": " << rep.freezeSeconds << ",\n";
        json << "      \"kernels\": {\n";
        for (std::size_t k = 0; k < rep.kernels.size(); ++k) {
            const auto& kr = rep.kernels[k];
            json << "        \"" << kr.kernel << "\": {\n";
            emitMeasurement(json, "adjacency_fresh", kr.adjacencyFresh, true);
            emitMeasurement(json, "adjacency_dynamic", kr.adjacencyDynamic,
                            true);
            emitMeasurement(json, "csr", kr.csr, true);
            json << "          \"speedup\": " << kr.speedup() << "\n";
            json << "        }" << (k + 1 < rep.kernels.size() ? "," : "")
                 << "\n";
        }
        json << "      }\n";
        json << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ]\n";
    json << "}\n";

    std::ofstream out("BENCH_csr.json");
    out << json.str();
    std::cout << "\nwrote BENCH_csr.json\n";
}

} // namespace

int main() {
    int threads = 4;
    if (const char* env = std::getenv("GRAPR_BENCH_THREADS")) {
        threads = std::max(1, std::atoi(env));
    }
    Parallel::setThreads(threads);
    bench::printPlatformBanner("micro_csr_vs_adjacency");
    std::cout << "threads fixed to " << threads << "\n";

    const bool quick = bench::quickMode();
    const int rmatScale = quick ? 13 : 18;
    const count baNodes = quick ? 20000 : 150000;

    std::vector<InstanceReport> reports;
    {
        Random::setSeed(3002);
        const Graph g = BarabasiAlbertGenerator(baNodes, 8).generate();
        reports.push_back(measureInstance(
            "ba_" + std::to_string(baNodes),
            "Barabasi-Albert n=" + std::to_string(baNodes) + ", m=8", g));
    }
    {
        Random::setSeed(3001);
        const Graph g = RmatGenerator(rmatScale, 4).generate();
        reports.push_back(measureInstance(
            "rmat_s" + std::to_string(rmatScale),
            "RMAT scale " + std::to_string(rmatScale) + ", edge factor 4",
            g));
    }

    std::cout << "\n";
    for (const auto& rep : reports) {
        std::cout << rep.name << "  (n=" << rep.nodes << ", m=" << rep.edges
                  << ", freeze " << formatDuration(rep.freezeSeconds)
                  << ")\n";
        for (const auto& kr : rep.kernels) {
            std::cout << "  " << kr.kernel << ": adj-fresh "
                      << formatDuration(kr.adjacencyFresh.minimum)
                      << "  adj-dynamic "
                      << formatDuration(kr.adjacencyDynamic.minimum)
                      << "  csr " << formatDuration(kr.csr.minimum)
                      << "  speedup " << kr.speedup() << "x\n";
        }
    }

    writeJson(reports, threads);
    return 0;
}
