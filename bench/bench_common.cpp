#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include <omp.h>

#include "baselines/registry.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/grid.hpp"
#include "generators/lfr.hpp"
#include "generators/planted_partition.hpp"
#include "generators/rmat.hpp"
#include "io/binary_io.hpp"
#include "quality/modularity.hpp"
#include "support/logging.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace grapr::bench {

namespace {

std::uint64_t nameSeed(const std::string& name) {
    // djb2 over the name: replica generation is deterministic per name.
    std::uint64_t h = 5381;
    for (char c : name) h = h * 33 + static_cast<unsigned char>(c);
    return h;
}

Graph makeLfr(count n, count minDeg, count maxDeg, double tau1, count minCom,
              count maxCom, double tau2, double mu) {
    LfrParameters params;
    params.n = n;
    params.minDegree = minDeg;
    params.maxDegree = maxDeg;
    params.degreeExponent = tau1;
    params.minCommunitySize = minCom;
    params.maxCommunitySize = maxCom;
    params.communityExponent = tau2;
    params.mu = mu;
    return LfrGenerator(params).generate();
}

} // namespace

std::vector<ReplicaSpec> replicaSuite() {
    const double s = quickMode() ? 0.15 : 1.0; // size scale in quick mode
    auto scaled = [s](count n) {
        return std::max<count>(64, static_cast<count>(s * static_cast<double>(n)));
    };

    std::vector<ReplicaSpec> suite;
    // Ascending approximate size, mirroring the paper's chart order.
    suite.push_back({"power", "grid 70x70 + 10% diagonals",
                     [=] { return GridGenerator(scaled(70), 70, 0.10).generate(); }});
    suite.push_back({"PGPgiantcompo", "LFR n=11k deg 2..200 mu=0.15",
                     [=] {
                         return makeLfr(scaled(10680), 2, 200, 2.5, 10, 500,
                                        1.5, 0.15);
                     }});
    suite.push_back({"as-22july06", "BA n=23k attach 2",
                     [=] {
                         return BarabasiAlbertGenerator(scaled(22963), 2)
                             .generate();
                     }});
    suite.push_back({"G_n_pin_pout", "planted n=50k k=500 pin=.0505 pout=5e-5",
                     [=] {
                         return PlantedPartitionGenerator(scaled(50000), 500,
                                                          0.0505, 5e-5)
                             .generate();
                     }});
    suite.push_back({"caidaRouterLevel", "BA n=96k attach 3",
                     [=] {
                         return BarabasiAlbertGenerator(scaled(96000), 3)
                             .generate();
                     }});
    suite.push_back({"coAuthorsCiteseer", "LFR n=80k deg 4..60 mu=0.10",
                     [=] {
                         return makeLfr(scaled(80000), 4, 60, 2.5, 20, 300,
                                        1.5, 0.10);
                     }});
    suite.push_back({"as-Skitter", "LFR n=100k deg 3..800 mu=0.15",
                     [=] {
                         return makeLfr(scaled(100000), 3, 800, 2.1, 20, 2000,
                                        1.3, 0.15);
                     }});
    suite.push_back({"coPapersDBLP", "LFR n=60k deg 10..300 mu=0.10",
                     [=] {
                         return makeLfr(scaled(60000), 10, 300, 2.2, 30, 600,
                                        1.5, 0.10);
                     }});
    suite.push_back({"eu-2005", "LFR n=60k deg 5..500 mu=0.06",
                     [=] {
                         return makeLfr(scaled(60000), 5, 500, 2.1, 20, 2000,
                                        1.3, 0.06);
                     }});
    suite.push_back({"soc-LiveJournal", "LFR n=120k deg 5..100 mu=0.25",
                     [=] {
                         return makeLfr(scaled(120000), 5, 100, 2.2, 20, 1500,
                                        1.4, 0.25);
                     }});
    suite.push_back({"europe-osm", "grid 250x200 (street mesh)",
                     [=] {
                         return GridGenerator(scaled(250), 200, 0.0).generate();
                     }});
    suite.push_back({"kron_g500-logn16", "R-MAT scale 16 ef 16 g500 params",
                     [=] {
                         const count scale = quickMode() ? 13 : 16;
                         return RmatGenerator(scale, 16, 0.57, 0.19, 0.19,
                                              0.05)
                             .generate();
                     }});
    suite.push_back({"uk-2002", "LFR n=120k deg 3..400 mu=0.03",
                     [=] {
                         return makeLfr(scaled(120000), 3, 400, 2.2, 30, 3000,
                                        1.3, 0.03);
                     }});
    return suite;
}

std::string dataDirectory() {
    const char* env = std::getenv("GRAPR_DATA_DIR");
    std::string dir = env ? env : "data";
    std::filesystem::create_directories(dir);
    return dir;
}

Graph loadReplica(const ReplicaSpec& spec) {
    const std::string cachePath =
        dataDirectory() + "/" + spec.name + (quickMode() ? ".quick" : "") +
        ".grpr";
    if (std::filesystem::exists(cachePath)) {
        try {
            return io::readBinary(cachePath);
        } catch (const std::exception& e) {
            // A truncated or stale cache (killed run, format change) must
            // not wedge the whole benchmark suite: regenerate instead.
            logWarn("loadReplica: corrupt cache ", cachePath, " (", e.what(),
                    "), regenerating");
            std::filesystem::remove(cachePath);
        }
    }
    Random::setSeed(nameSeed(spec.name));
    Graph g = spec.make();
    io::writeBinary(g, cachePath);
    return g;
}

RunResult measureDetector(CommunityDetector& detector, const Graph& g,
                          int repetitions) {
    RunResult result;
    const Modularity modularity;
    std::vector<double> times;
    double qualityTotal = 0.0;
    for (int r = 0; r < repetitions; ++r) {
        Timer timer;
        Partition zeta = detector.run(g);
        times.push_back(timer.elapsed());
        qualityTotal += modularity.getQuality(zeta, g);
        if (r + 1 == repetitions) result.communities = zeta.numberOfSubsets();
    }
    std::sort(times.begin(), times.end());
    result.seconds = times[times.size() / 2];
    result.modularity = qualityTotal / repetitions;
    return result;
}

RunResult measureDetectorCached(const std::string& algorithmName,
                                const std::string& instanceName,
                                const Graph& g, int repetitions) {
    const std::string cacheFile = dataDirectory() + "/results.tsv";
    const std::string key = algorithmName + "\t" + instanceName + "\t" +
                            std::to_string(repetitions) + "\t" +
                            (quickMode() ? "quick" : "full");

    // Linear scan of the cache file: entries number in the dozens.
    if (std::FILE* f = std::fopen(cacheFile.c_str(), "r")) {
        char line[512];
        while (std::fgets(line, sizeof line, f)) {
            std::string entry(line);
            if (entry.rfind(key + "\t", 0) != 0) continue;
            RunResult cached;
            unsigned long long communities = 0;
            if (std::sscanf(entry.c_str() + key.size() + 1, "%lf\t%lf\t%llu",
                            &cached.seconds, &cached.modularity,
                            &communities) == 3) {
                cached.communities = communities;
                std::fclose(f);
                return cached;
            }
        }
        std::fclose(f);
    }

    Random::setSeed(nameSeed(algorithmName + "@" + instanceName));
    auto detector = makeDetector(algorithmName);
    const RunResult result = measureDetector(*detector, g, repetitions);

    if (std::FILE* f = std::fopen(cacheFile.c_str(), "a")) {
        std::fprintf(f, "%s\t%.9f\t%.9f\t%llu\n", key.c_str(), result.seconds,
                     result.modularity,
                     static_cast<unsigned long long>(result.communities));
        std::fclose(f);
    }
    return result;
}

void printPlatformBanner(const std::string& benchName) {
    std::printf("# %s\n", benchName.c_str());
    std::printf("# platform: %d OpenMP threads (max), %s build, seed-stable "
                "replica suite\n",
                omp_get_max_threads(),
#ifdef NDEBUG
                "Release"
#else
                "Debug"
#endif
    );
    if (quickMode()) std::printf("# GRAPR_BENCH_QUICK=1: reduced sizes\n");
    std::printf("#\n");
}

count expensiveAlgorithmEdgeCap() {
    const char* env = std::getenv("GRAPR_BENCH_FULL");
    if (env && env[0] == '1') return std::numeric_limits<count>::max();
    return 400000;
}

bool quickMode() {
    const char* env = std::getenv("GRAPR_BENCH_QUICK");
    return env && env[0] == '1';
}

} // namespace grapr::bench
