// Ingestion micro benchmark: the legacy getline + istringstream +
// GraphBuilder edge-list loader (the pre-pipeline readEdgeList, preserved
// verbatim below as the baseline) vs the mmap + from_chars parallel
// pipeline that parses straight into CSR (io::readEdgeListCsr), at 1, 2
// and 4 parser threads.
//
// Two speedup figures are reported per instance:
//   * legacy/pipeline@4 — the headline number the ISSUE targets (>=3x):
//     the end-to-end win of replacing the old loader;
//   * pipeline@1/pipeline@4 — pure thread scaling of the new pipeline.
// On a single-core container the second figure stays near 1x and the
// headline win must come from the algorithmic gains (no stream
// abstraction, no per-line string allocation, no intermediate adjacency
// lists); the JSON records the hardware thread count so readers can tell
// the cases apart. Both loaders end at the same place — a frozen CsrGraph
// — so the comparison is load-to-ready-to-run, not load-to-raw-bytes.
//
// Timing statistic: minimum and median over kRepetitions with the
// variants interleaved round-robin after one untimed warmup round, as in
// micro_csr_vs_adjacency. Emits BENCH_io.json. Environment:
// GRAPR_BENCH_QUICK=1 shrinks the instances, GRAPR_BENCH_THREADS
// overrides the pipeline's widest thread count (default 4).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <omp.h>

#include "bench_common.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_builder.hpp"
#include "io/edgelist_io.hpp"
#include "io/parallel_edgelist.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;

namespace {

constexpr int kRepetitions = 5;

struct Measurement {
    double minimum = 0.0;
    double median = 0.0;
};

Measurement toMeasurement(std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    return {samples.front(), samples[samples.size() / 2]};
}

// --- the legacy loader, kept byte for byte as the baseline ---------------
// This is the pre-pipeline io::readEdgeList: buffered getline, one
// istringstream per line, hash-map id remapping, GraphBuilder, then a
// freeze into CsrGraph (both contenders must end at the CSR layout the
// algorithms actually run on).

bool legacyIsCommentOrBlank(const std::string& line, char comment) {
    for (char c : line) {
        if (c == ' ' || c == '\t' || c == '\r') continue;
        return c == comment || c == '%';
    }
    return true;
}

CsrGraph legacyLoad(const std::string& path) {
    std::ifstream in(path);
    if (!in) fail("legacyLoad: cannot open " + path);

    std::unordered_map<std::uint64_t, node> remap;
    std::vector<std::uint64_t> original;
    struct RawEdge {
        node u, v;
    };
    std::vector<RawEdge> edges;

    auto mapId = [&](std::uint64_t raw) -> node {
        auto [it, inserted] =
            remap.emplace(raw, static_cast<node>(original.size()));
        if (inserted) original.push_back(raw);
        return it->second;
    };

    count declaredN = 0;
    bool haveDeclaredN = false;

    std::string line;
    while (std::getline(in, line)) {
        if (legacyIsCommentOrBlank(line, '#')) {
            const auto marker = line.find("grapr edge list: n=");
            if (marker != std::string::npos) {
                declaredN = std::strtoull(
                    line.c_str() + marker +
                        std::strlen("grapr edge list: n="),
                    nullptr, 10);
                haveDeclaredN = true;
            }
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t ru = 0, rv = 0;
        if (!(fields >> ru >> rv)) fail("legacyLoad: malformed line");
        if (haveDeclaredN) {
            edges.push_back(
                {static_cast<node>(ru), static_cast<node>(rv)});
        } else {
            edges.push_back({mapId(ru), mapId(rv)});
        }
    }

    const count n = haveDeclaredN ? declaredN : original.size();
    GraphBuilder builder(n, false);
    for (const auto& e : edges) builder.addEdge(e.u, e.v, 1.0);
    return CsrGraph(builder.build(false, false));
}

// -------------------------------------------------------------------------

struct InstanceReport {
    std::string name;
    std::string recipe;
    count nodes = 0;
    count edges = 0;
    std::uintmax_t fileBytes = 0;
    Measurement legacy;
    std::vector<std::pair<int, Measurement>> pipeline; // per thread count

    const Measurement& pipelineAt(int threads) const {
        for (const auto& [t, m] : pipeline) {
            if (t == threads) return m;
        }
        fail("pipelineAt: thread count not measured");
    }
};

InstanceReport measureInstance(const std::string& name,
                               const std::string& recipe, const Graph& g,
                               const std::string& file,
                               const std::vector<int>& threadCounts) {
    InstanceReport report;
    report.name = name;
    report.recipe = recipe;
    report.nodes = g.numberOfNodes();
    report.edges = g.numberOfEdges();

    io::writeEdgeList(g, file);
    report.fileBytes = std::filesystem::file_size(file);

    std::vector<std::function<CsrGraph()>> variants;
    variants.push_back([&] { return legacyLoad(file); });
    for (const int t : threadCounts) {
        variants.push_back([&, t] {
            io::ParseOptions options;
            options.threads = t;
            return io::readEdgeListCsr(file, options);
        });
    }

    // Correctness gate before timing: every variant must produce the same
    // edge set (the legacy loader's adjacency order differs, so compare
    // structurally via the thawed graphs).
    {
        const Graph reference = variants.front()().toGraph();
        for (std::size_t i = 1; i < variants.size(); ++i) {
            if (!variants[i]().toGraph().structurallyEquals(reference)) {
                fail("micro_parallel_io: loader disagreement on " + name);
            }
        }
    }

    // Interleaved timing: one warmup round (above), then kRepetitions
    // rounds of all variants back to back.
    std::vector<std::vector<double>> samples(variants.size());
    count sink = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        for (std::size_t i = 0; i < variants.size(); ++i) {
            Timer timer;
            const CsrGraph loaded = variants[i]();
            samples[i].push_back(timer.elapsed());
            sink += loaded.numberOfEdges(); // keep the load observable
        }
    }
    if (sink == 0 && report.edges > 0) fail("micro_parallel_io: empty load");
    report.legacy = toMeasurement(std::move(samples[0]));
    for (std::size_t i = 0; i < threadCounts.size(); ++i) {
        report.pipeline.emplace_back(threadCounts[i],
                                     toMeasurement(std::move(samples[i + 1])));
    }
    std::filesystem::remove(file);
    return report;
}

void writeJson(const std::vector<InstanceReport>& reports,
               const std::vector<int>& threadCounts) {
    std::ostringstream json;
    json << "{\n";
    json << "  \"bench\": \"micro_parallel_io\",\n";
    json << "  \"hardware_threads\": " << omp_get_num_procs() << ",\n";
    json << "  \"repetitions\": " << kRepetitions << ",\n";
    json << "  \"quick\": " << (bench::quickMode() ? "true" : "false")
         << ",\n";
    json << "  \"speedup_definition\": \"legacy.min_seconds / pipeline_t"
         << threadCounts.back() << ".min_seconds\",\n";
    json << "  \"instances\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto& rep = reports[i];
        const int wide = threadCounts.back();
        json << "    {\n";
        json << "      \"name\": \"" << rep.name << "\",\n";
        json << "      \"recipe\": \"" << rep.recipe << "\",\n";
        json << "      \"nodes\": " << rep.nodes << ",\n";
        json << "      \"edges\": " << rep.edges << ",\n";
        json << "      \"file_bytes\": " << rep.fileBytes << ",\n";
        json << "      \"legacy\": {\"min_seconds\": " << rep.legacy.minimum
             << ", \"median_seconds\": " << rep.legacy.median << "},\n";
        for (const auto& [t, m] : rep.pipeline) {
            json << "      \"pipeline_t" << t
                 << "\": {\"min_seconds\": " << m.minimum
                 << ", \"median_seconds\": " << m.median << "},\n";
        }
        json << "      \"speedup_legacy_vs_t" << wide
             << "\": " << rep.legacy.minimum / rep.pipelineAt(wide).minimum
             << ",\n";
        json << "      \"speedup_legacy_vs_t1\": "
             << rep.legacy.minimum / rep.pipelineAt(1).minimum << ",\n";
        json << "      \"scaling_t1_vs_t" << wide
             << "\": " << rep.pipelineAt(1).minimum /
                              rep.pipelineAt(wide).minimum
             << "\n";
        json << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ]\n";
    json << "}\n";

    std::ofstream out("BENCH_io.json");
    out << json.str();
    std::cout << "\nwrote BENCH_io.json\n";
}

} // namespace

int main() {
    int wide = 4;
    if (const char* env = std::getenv("GRAPR_BENCH_THREADS")) {
        wide = std::max(1, std::atoi(env));
    }
    std::vector<int> threadCounts = {1, 2, wide};
    threadCounts.erase(std::unique(threadCounts.begin(), threadCounts.end()),
                       threadCounts.end());
    if (threadCounts.back() < threadCounts[threadCounts.size() - 2]) {
        // GRAPR_BENCH_THREADS=1: measure the pipeline single-threaded only.
        threadCounts = {1};
    }
    bench::printPlatformBanner("micro_parallel_io");
    std::cout << "pipeline thread counts:";
    for (int t : threadCounts) std::cout << " " << t;
    std::cout << " (hardware threads: " << omp_get_num_procs() << ")\n";

    const bool quick = bench::quickMode();
    const int rmatScale = quick ? 13 : 18;
    const count baNodes = quick ? 20000 : 150000;
    const std::string dir = bench::dataDirectory();

    std::vector<InstanceReport> reports;
    {
        Random::setSeed(4001);
        const Graph g = RmatGenerator(rmatScale, 8).generate();
        reports.push_back(measureInstance(
            "rmat_s" + std::to_string(rmatScale),
            "RMAT scale " + std::to_string(rmatScale) + ", edge factor 8", g,
            dir + "/io_bench_rmat.tsv", threadCounts));
    }
    {
        Random::setSeed(4002);
        const Graph g = BarabasiAlbertGenerator(baNodes, 8).generate();
        reports.push_back(measureInstance(
            "ba_" + std::to_string(baNodes),
            "Barabasi-Albert n=" + std::to_string(baNodes) + ", m=8", g,
            dir + "/io_bench_ba.tsv", threadCounts));
    }

    std::cout << "\n";
    for (const auto& rep : reports) {
        std::cout << rep.name << "  (n=" << rep.nodes << ", m=" << rep.edges
                  << ", " << rep.fileBytes / (1024 * 1024) << " MiB)\n";
        std::cout << "  legacy    " << formatDuration(rep.legacy.minimum)
                  << "\n";
        for (const auto& [t, m] : rep.pipeline) {
            std::cout << "  pipeline@" << t << "  "
                      << formatDuration(m.minimum) << "\n";
        }
        const int wideT = threadCounts.back();
        std::cout << "  speedup legacy/pipeline@" << wideT << ": "
                  << rep.legacy.minimum / rep.pipelineAt(wideT).minimum
                  << "x   scaling pipeline@1/@" << wideT << ": "
                  << rep.pipelineAt(1).minimum / rep.pipelineAt(wideT).minimum
                  << "x\n";
    }

    writeJson(reports, threadCounts);
    return 0;
}
