// Durability micro benchmark (PR 8): what the WAL + checkpoint subsystem
// costs on the write path, and what recovery costs on the read path.
//
// Two sections:
//   * durable update throughput — replay the recorded rmat_s13 batch
//     stream through three engines: volatile (no durability), durable
//     with group commit (fsync every 8th record), and durable with
//     fsync-per-record. Each durable run includes enableDurability's
//     initial checkpoint, so the reported ratio is the honest end-to-end
//     price of crash safety, amortization included. The committed
//     contract: group-commit durability sustains >= 0.5x the volatile
//     rate (gated loosely in CI as durable_vs_volatile).
//   * recovery — build a long single-segment log (checkpointInterval
//     past the record count, so nothing rotates), then time
//     StreamingGraph::recover end to end: checkpoint load, Strict replay
//     of every record, fresh checkpoint, prune. The log directory is
//     copied aside per repetition because recovery itself rotates and
//     prunes the log it replays.
//
// Variant timings are interleaved round-robin after a warmup (minima
// reported), the house discipline from micro_plm_kernels. Emits
// BENCH_wal.json; tools/check_perf_regression.py gates
// durable_vs_volatile (within-run ratio, transfers across machines) and
// recovery_records_per_sec (absolute floor against order-of-magnitude
// collapses) on the shared instances.
//
// Flags/environment: --quick or GRAPR_BENCH_QUICK=1 shrinks the replay
// log; GRAPR_BENCH_THREADS overrides the thread count (default 4).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "generators/planted_partition.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/stream_workload.hpp"
#include "support/timer.hpp"

using namespace grapr;
using grapr::testing::StreamWorkload;
using grapr::testing::StreamWorkloadConfig;
namespace fs = std::filesystem;

namespace {

constexpr int kRepetitions = 5;

struct Measurement {
    double minimum = 0.0;
    double median = 0.0;
};

struct Variant {
    std::string name;
    std::function<void()> run;
    Measurement timing;
};

Measurement toMeasurement(std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    return {samples.front(), samples[samples.size() / 2]};
}

void measureInterleaved(std::vector<Variant>& variants) {
    for (auto& v : variants) v.run();
    std::vector<std::vector<double>> samples(variants.size());
    for (int rep = 0; rep < kRepetitions; ++rep) {
        for (std::size_t i = 0; i < variants.size(); ++i) {
            Timer t;
            variants[i].run();
            samples[i].push_back(t.elapsed());
        }
    }
    for (std::size_t i = 0; i < variants.size(); ++i) {
        variants[i].timing = toMeasurement(std::move(samples[i]));
    }
}

fs::path scratchDir(const char* tag) {
    return fs::temp_directory_path() /
           (std::string("grapr_micro_wal_") + tag);
}

/// Record the batch stream once against the evolving engine state (the
/// workload is counter-based: this is THE stream for the configuration).
std::vector<EdgeBatch> recordStream(const CsrGraph& base,
                                    const StreamWorkload& workload,
                                    count batches) {
    StreamingGraph engine(base);
    std::vector<EdgeBatch> stream;
    stream.reserve(batches);
    for (count i = 0; i < batches; ++i) {
        stream.push_back(workload.batch(i, engine.pin()->graph));
        engine.apply(stream.back(), StreamApplyMode::Permissive);
    }
    return stream;
}

struct ThroughputReport {
    std::string name;
    std::string recipe;
    count nodes = 0;
    count edges = 0;
    count batches = 0;
    count opsPerBatch = 0;
    std::vector<Variant> variants; // volatile, group commit, fsync-each

    double updatesPerSec(std::size_t v) const {
        const double t = variants[v].timing.minimum;
        return t > 0.0 ? static_cast<double>(batches * opsPerBatch) / t
                       : 0.0;
    }
};

ThroughputReport measureThroughput() {
    ThroughputReport report;
    report.name = "rmat_s13";
    report.recipe = "RMAT scale 13, edge factor 8";
    report.batches = 32;
    report.opsPerBatch = 512;

    Random::setSeed(6013); // same recipe as micro_stream's anchor
    Graph g = RmatGenerator(13, 8).generate();
    report.nodes = g.numberOfNodes();
    report.edges = g.numberOfEdges();
    g.sortNeighborLists();
    const CsrGraph base(g);

    StreamWorkloadConfig cfg;
    cfg.nodes = base.upperNodeIdBound();
    cfg.opsPerBatch = report.opsPerBatch;
    cfg.insertFraction = 0.5;
    cfg.skew = 0.6;
    cfg.seed = 6200;
    const std::vector<EdgeBatch> stream =
        recordStream(base, StreamWorkload(cfg), report.batches);

    const auto durableRun = [&](count groupCommit) {
        const fs::path dir = scratchDir("throughput");
        fs::remove_all(dir);
        StreamingGraph engine(base);
        DurabilityOptions options;
        options.groupCommit = groupCommit;
        options.checkpointInterval = 1u << 20; // no mid-run rotation
        engine.enableDurability(dir.string(), options);
        for (const EdgeBatch& batch : stream) {
            engine.apply(batch, StreamApplyMode::Permissive);
        }
    };

    report.variants.push_back({"volatile",
                               [&] {
                                   StreamingGraph engine(base);
                                   for (const EdgeBatch& batch : stream) {
                                       engine.apply(
                                           batch,
                                           StreamApplyMode::Permissive);
                                   }
                               },
                               {}});
    report.variants.push_back(
        {"durable_group_commit_8", [&] { durableRun(8); }, {}});
    report.variants.push_back(
        {"durable_fsync_each", [&] { durableRun(1); }, {}});
    measureInterleaved(report.variants);
    fs::remove_all(scratchDir("throughput"));
    return report;
}

struct RecoveryReport {
    std::string name;
    count records = 0;
    count opsPerRecord = 0;
    count walBytes = 0;
    Measurement recovery;

    double recordsPerSec() const {
        return recovery.minimum > 0.0
                   ? static_cast<double>(records) / recovery.minimum
                   : 0.0;
    }
};

RecoveryReport measureRecovery(bool quick) {
    RecoveryReport report;
    report.name = "wal_replay";
    report.records = quick ? 20000 : 100000;
    report.opsPerRecord = 4;

    // Small base graph: recovery cost is per-record CSR assembly, so the
    // record count, not the graph size, is what this section scales.
    Random::setSeed(6400);
    const Graph g =
        PlantedPartitionGenerator(1000, 20, 0.05, 0.001).generate();

    StreamWorkloadConfig cfg;
    cfg.nodes = 1000;
    cfg.opsPerBatch = report.opsPerRecord;
    cfg.insertFraction = 0.5;
    cfg.seed = 6401;
    const StreamWorkload workload(cfg);

    const fs::path logDir = scratchDir("recovery_log");
    fs::remove_all(logDir);
    {
        StreamingGraph engine(g);
        DurabilityOptions options;
        options.groupCommit = 1024;            // building, not measuring
        options.checkpointInterval = 1u << 30; // one giant segment
        engine.enableDurability(logDir.string(), options);
        for (count i = 0; i < report.records; ++i) {
            engine.apply(workload.batch(i, engine.pin()->graph),
                         StreamApplyMode::Permissive);
        }
    } // clean close syncs the tail
    for (const auto& entry : fs::directory_iterator(logDir)) {
        if (entry.path().extension() == ".gwal") {
            report.walBytes += fs::file_size(entry.path());
        }
    }

    // Recovery rewrites the checkpoint and prunes the log it replays, so
    // each repetition recovers a fresh copy of the directory.
    std::vector<double> samples;
    const int reps = quick ? 3 : kRepetitions;
    for (int rep = 0; rep < reps; ++rep) {
        const fs::path dir = scratchDir("recovery_run");
        fs::remove_all(dir);
        fs::copy(logDir, dir);
        Timer t;
        StreamingGraph recovered(dir.string());
        samples.push_back(t.elapsed());
        if (recovered.generation() == 0) std::abort(); // keep it live
        fs::remove_all(dir);
    }
    report.recovery = toMeasurement(std::move(samples));
    fs::remove_all(logDir);
    return report;
}

void writeJson(const ThroughputReport& throughput,
               const RecoveryReport& recovery, int threads, bool quick) {
    std::ostringstream json;
    json << "{\n";
    json << "  \"bench\": \"micro_wal\",\n";
    json << "  \"threads\": " << threads << ",\n";
    json << "  \"repetitions\": " << kRepetitions << ",\n";
    json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    json << "  \"durable_vs_volatile_definition\": "
            "\"volatile.min_seconds / durable_group_commit_8.min_seconds\""
            ",\n";
    json << "  \"instances\": [\n";
    json << "    {\n";
    json << "      \"name\": \"" << throughput.name << "\",\n";
    json << "      \"recipe\": \"" << throughput.recipe << "\",\n";
    json << "      \"nodes\": " << throughput.nodes << ",\n";
    json << "      \"edges\": " << throughput.edges << ",\n";
    json << "      \"batches\": " << throughput.batches << ",\n";
    json << "      \"ops_per_batch\": " << throughput.opsPerBatch << ",\n";
    json << "      \"update_throughput\": {\n";
    for (std::size_t v = 0; v < throughput.variants.size(); ++v) {
        const auto& var = throughput.variants[v];
        json << "        \"" << var.name
             << "\": {\"min_seconds\": " << var.timing.minimum
             << ", \"median_seconds\": " << var.timing.median << "}"
             << (v + 1 < throughput.variants.size() ? "," : "") << "\n";
    }
    json << "      },\n";
    json << "      \"updates_per_sec_volatile\": "
         << throughput.updatesPerSec(0) << ",\n";
    json << "      \"updates_per_sec_durable\": "
         << throughput.updatesPerSec(1) << ",\n";
    json << "      \"updates_per_sec_fsync_each\": "
         << throughput.updatesPerSec(2) << ",\n";
    json << "      \"durable_vs_volatile\": "
         << (throughput.updatesPerSec(0) > 0.0
                 ? throughput.updatesPerSec(1) / throughput.updatesPerSec(0)
                 : 0.0)
         << ",\n";
    json << "      \"fsync_each_vs_volatile\": "
         << (throughput.updatesPerSec(0) > 0.0
                 ? throughput.updatesPerSec(2) / throughput.updatesPerSec(0)
                 : 0.0)
         << "\n";
    json << "    },\n";
    json << "    {\n";
    json << "      \"name\": \"" << recovery.name << "\",\n";
    json << "      \"records\": " << recovery.records << ",\n";
    json << "      \"ops_per_record\": " << recovery.opsPerRecord << ",\n";
    json << "      \"wal_bytes\": " << recovery.walBytes << ",\n";
    json << "      \"recovery_seconds\": " << recovery.recovery.minimum
         << ",\n";
    json << "      \"recovery_median_seconds\": "
         << recovery.recovery.median << ",\n";
    json << "      \"recovery_records_per_sec\": "
         << recovery.recordsPerSec() << "\n";
    json << "    }\n";
    json << "  ]\n";
    json << "}\n";

    std::ofstream out("BENCH_wal.json");
    out << json.str();
    std::cout << "\nwrote BENCH_wal.json\n";
}

} // namespace

int main(int argc, char** argv) {
    bool quick = grapr::bench::quickMode();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    }

    int threads = 4;
    if (const char* env = std::getenv("GRAPR_BENCH_THREADS")) {
        threads = std::max(1, std::atoi(env));
    }
    Parallel::setThreads(threads);
    bench::printPlatformBanner("micro_wal");
    std::cout << "threads fixed to " << threads
              << (quick ? ", quick mode" : "") << "\n";

    const ThroughputReport throughput = measureThroughput();
    const RecoveryReport recovery = measureRecovery(quick);

    std::cout << "\n"
              << throughput.name << "  (n=" << throughput.nodes
              << ", m=" << throughput.edges << ", " << throughput.batches
              << "x" << throughput.opsPerBatch << " ops)\n";
    std::cout << "  volatile      " << throughput.updatesPerSec(0)
              << " updates/sec\n";
    std::cout << "  group commit  " << throughput.updatesPerSec(1)
              << " updates/sec ("
              << (throughput.updatesPerSec(0) > 0.0
                      ? throughput.updatesPerSec(1) /
                            throughput.updatesPerSec(0)
                      : 0.0)
              << "x volatile)\n";
    std::cout << "  fsync each    " << throughput.updatesPerSec(2)
              << " updates/sec\n";
    std::cout << recovery.name << "  (" << recovery.records
              << " records, " << recovery.walBytes << " WAL bytes)\n";
    std::cout << "  recovered in " << recovery.recovery.minimum << " s  ("
              << recovery.recordsPerSec() << " records/sec)\n";

    writeJson(throughput, recovery, threads, quick);
    return 0;
}
