// Tests for the overlapping-communities extension (Cover, OverlappingLpa),
// local seed expansion, and GML I/O.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "community/local_expansion.hpp"
#include "community/overlapping_lpa.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "io/gml_io.hpp"
#include "structures/cover.hpp"
#include "structures/partition.hpp"
#include "support/random.hpp"

using namespace grapr;

// --- Cover ------------------------------------------------------------

TEST(Cover, AddRemoveContains) {
    Cover cover(5);
    cover.addToSubset(0, 3);
    cover.addToSubset(0, 1);
    cover.addToSubset(0, 3); // duplicate: no-op
    EXPECT_TRUE(cover.contains(0, 3));
    EXPECT_TRUE(cover.contains(0, 1));
    EXPECT_EQ(cover.membershipCount(0), 2u);
    EXPECT_EQ(cover.subsetsOf(0), (std::vector<node>{1, 3}));
    cover.removeFromSubset(0, 1);
    EXPECT_FALSE(cover.contains(0, 1));
    cover.removeFromSubset(0, 1); // no-op
    EXPECT_EQ(cover.membershipCount(0), 1u);
}

TEST(Cover, InSameSubset) {
    Cover cover(3);
    cover.addToSubset(0, 7);
    cover.addToSubset(1, 7);
    cover.addToSubset(1, 9);
    cover.addToSubset(2, 9);
    EXPECT_TRUE(cover.inSameSubset(0, 1));
    EXPECT_TRUE(cover.inSameSubset(1, 2));
    EXPECT_FALSE(cover.inSameSubset(0, 2));
}

TEST(Cover, SubsetsAndSizes) {
    Cover cover(4);
    cover.addToSubset(0, 0);
    cover.addToSubset(1, 0);
    cover.addToSubset(1, 1);
    cover.addToSubset(2, 1);
    EXPECT_EQ(cover.numberOfSubsets(), 2u);
    const auto subsets = cover.subsets();
    EXPECT_EQ(subsets.at(0), (std::vector<node>{0, 1}));
    EXPECT_EQ(subsets.at(1), (std::vector<node>{1, 2}));
    const auto sizes = cover.subsetSizes();
    EXPECT_EQ(sizes.at(0), 2u);
    EXPECT_EQ(sizes.at(1), 2u);
    EXPECT_NEAR(cover.overlapFraction(), 0.25, 1e-12);
}

TEST(Cover, CompactRelabels) {
    Cover cover(2);
    cover.addToSubset(0, 100);
    cover.addToSubset(1, 7);
    cover.addToSubset(1, 100);
    EXPECT_EQ(cover.compact(), 2u);
    EXPECT_LT(cover.subsetsOf(1).back(), 2u);
    EXPECT_TRUE(cover.inSameSubset(0, 1));
}

TEST(Cover, PartitionRoundTrip) {
    Partition zeta(4);
    zeta.set(0, 2);
    zeta.set(1, 2);
    zeta.set(3, 0);
    zeta.setUpperBound(3);
    const Cover cover = Cover::fromPartition(zeta);
    EXPECT_EQ(cover.membershipCount(2), 0u); // unassigned stays empty
    const Partition back = cover.toPartition();
    for (node v = 0; v < 4; ++v) EXPECT_EQ(back[v], zeta[v]);
}

TEST(Cover, ToPartitionRejectsOverlap) {
    Cover cover(2);
    cover.addToSubset(0, 0);
    cover.addToSubset(0, 1);
    EXPECT_THROW(cover.toPartition(), std::runtime_error);
}

// --- OverlappingLpa -----------------------------------------------------

TEST(OverlappingLpa, DisjointCliquesStayDisjoint) {
    Random::setSeed(180);
    Graph g(12, false);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 6, v + 6);
        }
    }
    OverlappingLpa lpa;
    const Cover cover = lpa.run(g);
    EXPECT_TRUE(cover.inSameSubset(0, 5));
    EXPECT_TRUE(cover.inSameSubset(6, 11));
    EXPECT_FALSE(cover.inSameSubset(0, 6));
}

TEST(OverlappingLpa, BridgeNodeOverlaps) {
    // Two 6-cliques sharing node 5 (member of both): the shared node
    // should retain both labels with maxMemberships >= 2.
    Random::setSeed(181);
    Graph g(11, false);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) g.addEdge(u, v);
    }
    // Second clique on {5, 6, ..., 10}.
    for (node u = 5; u < 11; ++u) {
        for (node v = u + 1; v < 11; ++v) g.addEdge(u, v);
    }
    OverlappingLpa lpa(OverlappingLpaConfig{.maxMemberships = 2});
    const Cover cover = lpa.run(g);
    // The two clique cores are separate communities...
    EXPECT_FALSE(cover.inSameSubset(0, 10));
    // ...and the shared node belongs to both cores' communities.
    EXPECT_TRUE(cover.inSameSubset(5, 0));
    EXPECT_TRUE(cover.inSameSubset(5, 10));
    EXPECT_EQ(cover.membershipCount(5), 2u);
}

TEST(OverlappingLpa, MaxMembershipsOneIsDisjoint) {
    Random::setSeed(182);
    Graph g = SimpleGraphs::cliqueChain(5, 8);
    OverlappingLpa lpa(OverlappingLpaConfig{.maxMemberships = 1});
    const Cover cover = lpa.run(g);
    g.forNodes([&](node v) { EXPECT_EQ(cover.membershipCount(v), 1u); });
    EXPECT_NO_THROW(cover.toPartition());
}

TEST(OverlappingLpa, PlantedPartitionRecovered) {
    Random::setSeed(183);
    PlantedPartitionGenerator gen(400, 8, 0.3, 0.005);
    Graph g = gen.generate();
    OverlappingLpa lpa;
    const Cover cover = lpa.run(g);
    // Most pairs inside a planted block share a community.
    count agree = 0, total = 0;
    for (node v = 0; v < 400; v += 7) {
        for (node u = v + 1; u < 400; u += 13) {
            if (gen.groundTruth()[u] != gen.groundTruth()[v]) continue;
            ++total;
            if (cover.inSameSubset(u, v)) ++agree;
        }
    }
    EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.8);
    EXPECT_GT(lpa.iterations(), 0u);
}

TEST(OverlappingLpa, IsolatedNodesKeepOwnCommunity) {
    Random::setSeed(184);
    Graph g(3, false);
    g.addEdge(0, 1);
    OverlappingLpa lpa;
    const Cover cover = lpa.run(g);
    EXPECT_EQ(cover.membershipCount(2), 1u);
    EXPECT_FALSE(cover.inSameSubset(2, 0));
}

// --- LocalExpansion -------------------------------------------------------

TEST(LocalExpansion, FindsSeedClique) {
    // Two cliques, one bridge: the minimum-conductance set containing the
    // seed is exactly the seed's clique. (On longer chains the greedy
    // optimum is a *union* of cliques up to the balanced bottleneck —
    // conductance normalizes by the smaller side — so two cliques give
    // the unambiguous case.)
    Random::setSeed(185);
    Graph g = SimpleGraphs::cliqueChain(2, 8);
    const LocalCommunity community = LocalExpansion().expand(g, 3);
    EXPECT_EQ(community.members.size(), 8u);
    for (node v : community.members) EXPECT_LT(v, 8u); // first clique only
    EXPECT_LT(community.conductance, 0.05);
}

TEST(LocalExpansion, SeedInSecondClique) {
    Random::setSeed(186);
    Graph g = SimpleGraphs::cliqueChain(2, 6);
    const LocalCommunity community = LocalExpansion().expand(g, 10);
    for (node v : community.members) EXPECT_GE(v, 6u);
    EXPECT_EQ(community.members.size(), 6u);
}

TEST(LocalExpansion, ChainPrefixIsCliqueUnion) {
    // On a 6-clique chain the greedy optimum is a union of whole cliques
    // containing the seed (the balanced bottleneck); it must never split
    // a clique.
    Random::setSeed(189);
    Graph g = SimpleGraphs::cliqueChain(6, 8);
    const LocalCommunity community = LocalExpansion().expand(g, 3);
    EXPECT_EQ(community.members.size() % 8, 0u);
    EXPECT_LT(community.conductance, 0.02);
    // The seed's own clique is fully contained.
    count fromSeedClique = 0;
    for (node v : community.members) {
        if (v < 8) ++fromSeedClique;
    }
    EXPECT_EQ(fromSeedClique, 8u);
}

TEST(LocalExpansion, IsolatedSeed) {
    Graph g(3, false);
    g.addEdge(0, 1);
    const LocalCommunity community = LocalExpansion().expand(g, 2);
    EXPECT_EQ(community.members, (std::vector<node>{2}));
}

TEST(LocalExpansion, RespectsMaxSize) {
    Random::setSeed(187);
    Graph g = SimpleGraphs::clique(50);
    const LocalCommunity community = LocalExpansion(10).expand(g, 0);
    EXPECT_LE(community.members.size(), 10u);
}

TEST(LocalExpansion, WholeComponentWhenSeparated) {
    Graph g(8, false);
    for (node u = 0; u < 4; ++u) {
        for (node v = u + 1; v < 4; ++v) g.addEdge(u, v);
    }
    g.addEdge(4, 5); // separate component
    const LocalCommunity community = LocalExpansion().expand(g, 0);
    EXPECT_EQ(community.members.size(), 4u);
    EXPECT_DOUBLE_EQ(community.conductance, 0.0);
}

// --- GML I/O ---------------------------------------------------------------

namespace {

std::filesystem::path gmlTempDir() {
    const auto stamp =
        std::chrono::steady_clock::now().time_since_epoch().count();
    auto dir = std::filesystem::temp_directory_path() /
               ("grapr_gml_" + std::to_string(stamp));
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

TEST(GmlIo, RoundTripUnweighted) {
    const auto dir = gmlTempDir();
    Random::setSeed(188);
    Graph g = SimpleGraphs::cliqueChain(3, 4);
    io::writeGml(g, (dir / "g.gml").string());
    Graph loaded = io::readGml((dir / "g.gml").string());
    EXPECT_TRUE(loaded.structurallyEquals(g));
    std::filesystem::remove_all(dir);
}

TEST(GmlIo, RoundTripWeighted) {
    const auto dir = gmlTempDir();
    Graph g(3, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 0.5);
    io::writeGml(g, (dir / "w.gml").string());
    Graph loaded = io::readGml((dir / "w.gml").string());
    EXPECT_TRUE(loaded.isWeighted());
    EXPECT_TRUE(loaded.structurallyEquals(g));
    std::filesystem::remove_all(dir);
}

TEST(GmlIo, CommunityAttributeWritten) {
    const auto dir = gmlTempDir();
    Graph g(2, false);
    g.addEdge(0, 1);
    Partition zeta(2);
    zeta.set(0, 5);
    zeta.set(1, 5);
    zeta.setUpperBound(6);
    io::writeGml(g, (dir / "c.gml").string(), &zeta);
    std::ifstream in(dir / "c.gml");
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("community 5"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(GmlIo, ReadsForeignFile) {
    const auto dir = gmlTempDir();
    {
        std::ofstream out(dir / "foreign.gml");
        out << "graph [\n"
               "  comment \"hand written\"\n"
               "  node [ id 10 label \"a\" ]\n"
               "  node [ id 20 label \"b\" ]\n"
               "  node [ id 30 ]\n"
               "  edge [ source 10 target 20 ]\n"
               "  edge [ source 20 target 30 weight 2.0 ]\n"
               "]\n";
    }
    Graph g = io::readGml((dir / "foreign.gml").string());
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_TRUE(g.isWeighted());
    std::filesystem::remove_all(dir);
}

TEST(GmlIo, RejectsUndeclaredEndpoint) {
    const auto dir = gmlTempDir();
    {
        std::ofstream out(dir / "bad.gml");
        out << "graph [ node [ id 0 ] edge [ source 0 target 99 ] ]\n";
    }
    EXPECT_THROW(io::readGml((dir / "bad.gml").string()),
                 std::runtime_error);
    std::filesystem::remove_all(dir);
}
