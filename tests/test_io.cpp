// I/O round-trip tests: edge list, METIS, binary, partition, DOT.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "generators/erdos_renyi.hpp"
#include "generators/simple_graphs.hpp"
#include "io/binary_io.hpp"
#include "io/dot_writer.hpp"
#include "io/edgelist_io.hpp"
#include "io/io_error.hpp"
#include "io/metis_io.hpp"
#include "io/partition_io.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

class IoTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto stamp =
            std::chrono::steady_clock::now().time_since_epoch().count();
        dir_ = std::filesystem::temp_directory_path() /
               ("grapr_io_test_" + std::to_string(stamp));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

} // namespace

TEST_F(IoTest, EdgeListRoundTrip) {
    Random::setSeed(20);
    Graph g = ErdosRenyiGenerator(100, 0.05).generate();
    io::writeEdgeList(g, path("g.tsv"));
    Graph loaded = io::readEdgeList(path("g.tsv"));
    EXPECT_TRUE(loaded.structurallyEquals(g));
    loaded.checkConsistency();
}

TEST_F(IoTest, EdgeListWeightedRoundTrip) {
    Graph g(3, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 0.25);
    io::writeEdgeList(g, path("w.tsv"), /*withWeights=*/true);
    io::EdgeListOptions options;
    options.weighted = true;
    Graph loaded = io::readEdgeList(path("w.tsv"), options);
    EXPECT_TRUE(loaded.structurallyEquals(g));
}

TEST_F(IoTest, EdgeListRemapsSparseIds) {
    {
        std::ofstream out(path("sparse.tsv"));
        out << "# comment line\n";
        out << "1000 2000\n2000 3000\n";
    }
    std::vector<std::uint64_t> original;
    Graph g = io::readEdgeList(path("sparse.tsv"), {}, &original);
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_EQ(original, (std::vector<std::uint64_t>{1000, 2000, 3000}));
}

TEST_F(IoTest, EdgeListDirectedInputDedups) {
    {
        std::ofstream out(path("dir.tsv"));
        out << "0 1\n1 0\n1 2\n";
    }
    io::EdgeListOptions options;
    options.directedInput = true;
    Graph g = io::readEdgeList(path("dir.tsv"), options);
    EXPECT_EQ(g.numberOfEdges(), 2u);
}

TEST_F(IoTest, EdgeListMalformedThrows) {
    {
        std::ofstream out(path("bad.tsv"));
        out << "0 not_a_number\n";
    }
    EXPECT_THROW(io::readEdgeList(path("bad.tsv")), std::runtime_error);
}

TEST_F(IoTest, EdgeListMissingFileThrows) {
    EXPECT_THROW(io::readEdgeList(path("does_not_exist.tsv")),
                 std::runtime_error);
}

TEST_F(IoTest, MetisRoundTrip) {
    Random::setSeed(21);
    Graph g = ErdosRenyiGenerator(80, 0.08).generate();
    io::writeMetis(g, path("g.metis"));
    Graph loaded = io::readMetis(path("g.metis"));
    EXPECT_TRUE(loaded.structurallyEquals(g));
}

TEST_F(IoTest, MetisWeightedRoundTrip) {
    Graph g(4, true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 3.0);
    g.addEdge(2, 3, 4.0);
    io::writeMetis(g, path("w.metis"));
    Graph loaded = io::readMetis(path("w.metis"));
    EXPECT_TRUE(loaded.isWeighted());
    EXPECT_TRUE(loaded.structurallyEquals(g));
}

TEST_F(IoTest, MetisParsesHandWrittenFile) {
    {
        std::ofstream out(path("hand.metis"));
        out << "% a comment\n";
        out << "3 2\n";
        // A triangle: row i lists the 1-based neighbors of node i. The
        // header understates the edge count; the reader tolerates that
        // with a warning and parses all 3 edges.
        out << "2 3\n1 3\n1 2\n";
    }
    Graph g = io::readMetis(path("hand.metis"));
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 3u);
}

TEST_F(IoTest, MetisIsolatedNodes) {
    Graph g(4, false);
    g.addEdge(1, 2);
    io::writeMetis(g, path("iso.metis"));
    Graph loaded = io::readMetis(path("iso.metis"));
    EXPECT_EQ(loaded.numberOfNodes(), 4u);
    EXPECT_EQ(loaded.numberOfEdges(), 1u);
    EXPECT_EQ(loaded.degree(0), 0u);
}

TEST_F(IoTest, BinaryRoundTripUnweighted) {
    Random::setSeed(22);
    Graph g = ErdosRenyiGenerator(500, 0.02).generate();
    io::writeBinary(g, path("g.grpr"));
    Graph loaded = io::readBinary(path("g.grpr"));
    EXPECT_TRUE(loaded.structurallyEquals(g));
    loaded.checkConsistency();
}

TEST_F(IoTest, BinaryRoundTripWeightedWithLoops) {
    Graph g(5, true);
    g.addEdge(0, 1, 0.5);
    g.addEdge(2, 2, 7.0);
    g.addEdge(3, 4, 1.25);
    io::writeBinary(g, path("w.grpr"));
    Graph loaded = io::readBinary(path("w.grpr"));
    EXPECT_TRUE(loaded.structurallyEquals(g));
    EXPECT_EQ(loaded.numberOfSelfLoops(), 1u);
}

TEST_F(IoTest, BinaryRejectsGarbage) {
    {
        std::ofstream out(path("garbage.grpr"), std::ios::binary);
        out << "not a grapr file at all";
    }
    EXPECT_THROW(io::readBinary(path("garbage.grpr")), std::runtime_error);
}

TEST_F(IoTest, PartitionRoundTrip) {
    Partition p(5);
    p.set(0, 2);
    p.set(1, 0);
    // p[2] stays unassigned
    p.set(3, 2);
    p.set(4, 1);
    p.setUpperBound(3);
    io::writePartition(p, path("p.txt"));
    Partition loaded = io::readPartition(path("p.txt"));
    EXPECT_EQ(loaded.numberOfElements(), 5u);
    for (node v = 0; v < 5; ++v) EXPECT_EQ(loaded[v], p[v]);
}

TEST_F(IoTest, DotWriterProducesParsableOutput) {
    Graph g = SimpleGraphs::cliqueChain(2, 3);
    io::writeDot(g, path("g.dot"));
    std::ifstream in(path("g.dot"));
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("graph G {"), std::string::npos);
    EXPECT_NE(content.find("--"), std::string::npos);
}

TEST_F(IoTest, CommunityGraphDot) {
    Graph cg(2, true);
    cg.addEdge(0, 1, 3.0);
    cg.addEdge(0, 0, 10.0);
    io::writeCommunityGraphDot(cg, {50, 20}, path("cg.dot"));
    std::ifstream in(path("cg.dot"));
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("label=\"50\""), std::string::npos);
    EXPECT_NE(content.find("0 -- 1"), std::string::npos);
    // Intra-community loop must not be drawn.
    EXPECT_EQ(content.find("0 -- 0"), std::string::npos);
}

TEST_F(IoTest, MetisCommentLinesBetweenRows) {
    {
        std::ofstream out(path("cmt.metis"));
        out << "% header comment\n3 2\n% mid comment\n2\n1 3\n2\n";
    }
    Graph g = io::readMetis(path("cmt.metis"));
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 2u);
}

TEST_F(IoTest, EdgeListHeaderPreservesIsolatedNodes) {
    Graph g(5, false);
    g.addEdge(1, 3); // nodes 0, 2, 4 isolated
    io::writeEdgeList(g, path("iso.tsv"));
    Graph loaded = io::readEdgeList(path("iso.tsv"));
    EXPECT_EQ(loaded.numberOfNodes(), 5u);
    EXPECT_EQ(loaded.degree(0), 0u);
    EXPECT_TRUE(loaded.hasEdge(1, 3));
}

TEST_F(IoTest, BinarySurvivesEmptyGraph) {
    Graph g(7, false);
    io::writeBinary(g, path("empty.grpr"));
    Graph loaded = io::readBinary(path("empty.grpr"));
    EXPECT_EQ(loaded.numberOfNodes(), 7u);
    EXPECT_EQ(loaded.numberOfEdges(), 0u);
}

TEST_F(IoTest, MetisStrictRejectsHeaderEdgeCountMismatch) {
    // Regression: readMetis used to accept a header edge count that
    // disagrees with the edges actually present in every mode. Now the
    // one-arg (permissive) overload still tolerates it with a warning,
    // but strict mode reports the header line as malformed.
    {
        std::ofstream out(path("mismatch.metis"));
        out << "3 2\n2 3\n1 3\n1 2\n"; // a triangle: 3 edges, header says 2
    }
    Graph tolerant = io::readMetis(path("mismatch.metis"));
    EXPECT_EQ(tolerant.numberOfEdges(), 3u);

    io::ParseOptions strict; // strict = true by default
    try {
        io::readMetis(path("mismatch.metis"), strict);
        FAIL() << "expected IoError for header/body edge-count mismatch";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.line(), 1u); // the lying header is the malformed line
        EXPECT_NE(std::string(e.what()).find("edges but"),
                  std::string::npos);
    }
}

TEST_F(IoTest, EdgeListWeightedRoundTripPreservesNonIntegerWeights) {
    Graph g(5, true);
    g.addEdge(0, 1, 0.1);
    g.addEdge(1, 2, 2.5e-3);
    g.addEdge(2, 3, 1.0 / 3.0);
    g.addEdge(3, 4, 12345.678901234567);
    g.addEdge(4, 0, 1e-12);
    io::writeEdgeList(g, path("wrt.tsv"), /*withWeights=*/true);

    io::EdgeListOptions options;
    options.weighted = true;
    Graph loaded = io::readEdgeList(path("wrt.tsv"), options);
    ASSERT_EQ(loaded.numberOfEdges(), g.numberOfEdges());
    g.forEdges([&](node u, node v, edgeweight w) {
        EXPECT_NEAR(loaded.weight(u, v), w, 1e-9 * (1.0 + std::abs(w)))
            << u << "-" << v;
        // The writer emits shortest round-trip decimals, so the weights
        // are in fact bit-exact, not merely within tolerance.
        EXPECT_EQ(loaded.weight(u, v), w) << u << "-" << v;
    });
}

TEST_F(IoTest, MetisWeightedRoundTripPreservesNonIntegerWeights) {
    Graph g(4, true);
    g.addEdge(0, 1, 0.1);
    g.addEdge(1, 2, 2.5e-3);
    g.addEdge(2, 3, 0.7071067811865476);
    g.addEdge(0, 3, 9876.54321);
    io::writeMetis(g, path("wrt.metis"));

    Graph loaded = io::readMetis(path("wrt.metis"));
    ASSERT_EQ(loaded.numberOfEdges(), g.numberOfEdges());
    g.forEdges([&](node u, node v, edgeweight w) {
        EXPECT_NEAR(loaded.weight(u, v), w, 1e-9 * (1.0 + std::abs(w)))
            << u << "-" << v;
        EXPECT_EQ(loaded.weight(u, v), w) << u << "-" << v;
    });
}
