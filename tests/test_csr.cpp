// CSR "frozen graph" equivalence: the flat layout must be an exact,
// drop-in replacement for the adjacency-list layout — same structure, same
// quality scores, and bit-identical algorithm results in single-threaded
// runs (the freezing constructor preserves adjacency order, and the move
// phase breaks ties by community id, so layout must not leak into
// results).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "coarsening/parallel_coarsening.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/planted_partition.hpp"
#include "graph/csr_graph.hpp"
#include "quality/coverage.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

Graph makeInstance(const std::string& family, std::uint64_t seed) {
    Random::setSeed(seed);
    if (family == "erdos") return ErdosRenyiGenerator(500, 0.02).generate();
    if (family == "ba") return BarabasiAlbertGenerator(500, 5).generate();
    if (family == "planted") {
        return PlantedPartitionGenerator(500, 10, 0.15, 0.01).generate();
    }
    fail("unknown instance " + family);
}

std::string familyLabel(
    const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
        info) {
    return std::get<0>(info.param) + "_seed" +
           std::to_string(std::get<1>(info.param));
}

/// RAII guard: run a scope single-threaded, restore afterwards.
class SingleThreadScope {
public:
    SingleThreadScope() : restore_(Parallel::maxThreads()) {
        Parallel::setThreads(1);
    }
    ~SingleThreadScope() { Parallel::setThreads(restore_); }

private:
    int restore_;
};

} // namespace

class CsrEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(CsrEquivalence, StructureAndVolumesMatch) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);

    EXPECT_EQ(csr.numberOfNodes(), g.numberOfNodes());
    EXPECT_EQ(csr.numberOfEdges(), g.numberOfEdges());
    EXPECT_EQ(csr.numberOfSelfLoops(), g.numberOfSelfLoops());
    EXPECT_EQ(csr.upperNodeIdBound(), g.upperNodeIdBound());
    EXPECT_EQ(csr.isWeighted(), g.isWeighted());
    EXPECT_EQ(csr.totalEdgeWeight(), g.totalEdgeWeight()); // bit-exact

    for (node v = 0; v < g.upperNodeIdBound(); ++v) {
        ASSERT_EQ(csr.hasNode(v), g.hasNode(v));
        ASSERT_EQ(csr.degree(v), g.degree(v)) << v;
        ASSERT_EQ(csr.volume(v), g.volume(v)) << v;            // bit-exact
        ASSERT_EQ(csr.weightedDegree(v), g.weightedDegree(v)) << v;
        // The freeze preserves adjacency order entry for entry.
        std::vector<std::pair<node, edgeweight>> a, b;
        g.forNeighborsOf(v, [&](node u, edgeweight w) { a.emplace_back(u, w); });
        csr.forNeighborsOf(v,
                           [&](node u, edgeweight w) { b.emplace_back(u, w); });
        ASSERT_EQ(a, b) << v;
    }
}

TEST_P(CsrEquivalence, RoundTripIsStructurallyEqual) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const Graph back = CsrGraph(g).toGraph();
    back.checkConsistency();
    EXPECT_TRUE(g.structurallyEquals(back));
    // Re-freezing the thawed graph is an identity: the positional writes
    // preserve order, so even the arrays match.
    const CsrGraph refrozen(back);
    EXPECT_EQ(refrozen.offsets(), CsrGraph(g).offsets());
    EXPECT_EQ(refrozen.neighborArray(), CsrGraph(g).neighborArray());
}

TEST_P(CsrEquivalence, QualityKernelsMatch) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);

    Random::setSeed(seed + 10);
    const Partition zeta = Plp().run(g);

    {
        SingleThreadScope once;
        EXPECT_EQ(Modularity().getQuality(zeta, g),
                  Modularity().getQuality(zeta, csr)); // bit-exact, 1 thread
        EXPECT_EQ(Coverage().getQuality(zeta, g),
                  Coverage().getQuality(zeta, csr));
    }
    // Multi-threaded: same value up to summation order.
    EXPECT_NEAR(Modularity().getQuality(zeta, g),
                Modularity().getQuality(zeta, csr), 1e-9);
}

TEST_P(CsrEquivalence, CoarseningPathsAgree) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    Random::setSeed(seed + 20);
    const Partition zeta = Plp().run(g);

    const ParallelPartitionCoarsening coarsener(true);
    const CoarseningResult viaGraph = coarsener.run(g, zeta);
    const CsrCoarseningResult viaCsr = coarsener.run(CsrGraph(g), zeta);

    EXPECT_EQ(viaGraph.fineToCoarse, viaCsr.fineToCoarse);
    const Graph coarseBack = viaCsr.coarseGraph.toGraph();
    coarseBack.checkConsistency();
    EXPECT_TRUE(viaGraph.coarseGraph.structurallyEquals(coarseBack));
}

TEST_P(CsrEquivalence, PlpPartitionsBitIdenticalSingleThreaded) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    SingleThreadScope once;

    PlpConfig frozen;
    frozen.freeze = true;
    PlpConfig thawed;
    thawed.freeze = false;

    Random::setSeed(seed + 30);
    const Partition a = Plp(frozen).run(g);
    Random::setSeed(seed + 30);
    const Partition b = Plp(thawed).run(g);
    EXPECT_EQ(a.vector(), b.vector());
}

TEST_P(CsrEquivalence, PlmAndPlmrPartitionsBitIdenticalSingleThreaded) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    SingleThreadScope once;

    for (const bool refine : {false, true}) {
        PlmConfig frozen;
        frozen.refine = refine;
        frozen.freeze = true;
        PlmConfig thawed = frozen;
        thawed.freeze = false;

        Random::setSeed(seed + 40);
        const Partition a = Plm(frozen).run(g);
        Random::setSeed(seed + 40);
        const Partition b = Plm(thawed).run(g);
        EXPECT_EQ(a.vector(), b.vector()) << "refine=" << refine;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, CsrEquivalence,
    ::testing::Combine(::testing::Values("erdos", "ba", "planted"),
                       ::testing::Values(1u, 2u, 3u)),
    familyLabel);

// --- non-parameterized corner cases ----------------------------------------

TEST(CsrGraph, EmptyGraph) {
    const CsrGraph csr((Graph(0, false)));
    EXPECT_TRUE(csr.isEmpty());
    EXPECT_EQ(csr.numberOfEdges(), 0u);
    EXPECT_EQ(csr.upperNodeIdBound(), 0u);
    EXPECT_TRUE(csr.toGraph().isEmpty());
}

TEST(CsrGraph, WeightedGraphWithSelfLoopAndHole) {
    Graph g(5, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 0.5);
    g.addEdge(2, 2, 3.0); // self-loop
    g.addEdge(3, 4, 1.0);
    g.removeNode(3); // leaves a hole in the id space
    const CsrGraph csr(g);

    EXPECT_EQ(csr.numberOfNodes(), 4u);
    EXPECT_EQ(csr.upperNodeIdBound(), 5u);
    EXPECT_FALSE(csr.hasNode(3));
    EXPECT_EQ(csr.numberOfSelfLoops(), 1u);
    EXPECT_DOUBLE_EQ(csr.totalEdgeWeight(), 6.0);
    EXPECT_DOUBLE_EQ(csr.volume(2), 0.5 + 3.0 + 3.0); // loop counts twice
    EXPECT_DOUBLE_EQ(csr.weightedDegree(2), 3.5);
    EXPECT_EQ(csr.degree(3), 0u);

    const Graph back = csr.toGraph();
    back.checkConsistency();
    EXPECT_TRUE(g.structurallyEquals(back));
}

TEST(CsrGraph, FromArraysDerivesTotals) {
    // Path 0-1-2 with weights 2 and 3, plus a self-loop of weight 1 at 2.
    std::vector<grapr::index> offsets{0, 1, 3, 5};
    std::vector<node> neighbors{1, 0, 2, 1, 2};
    std::vector<edgeweight> weights{2.0, 2.0, 3.0, 3.0, 1.0};
    const CsrGraph csr(std::move(offsets), std::move(neighbors),
                       std::move(weights), true);
    EXPECT_EQ(csr.numberOfNodes(), 3u);
    EXPECT_EQ(csr.numberOfEdges(), 3u);
    EXPECT_EQ(csr.numberOfSelfLoops(), 1u);
    EXPECT_DOUBLE_EQ(csr.totalEdgeWeight(), 6.0);
    EXPECT_DOUBLE_EQ(csr.volume(2), 3.0 + 1.0 + 1.0);
    EXPECT_DOUBLE_EQ(csr.volume(1), 5.0);
}

TEST(CsrGraph, RejectsInconsistentArrays) {
    EXPECT_THROW(CsrGraph({0, 2}, {1}, {}, false), std::runtime_error);
    EXPECT_THROW(CsrGraph({0, 1}, {0}, {}, true), std::runtime_error);
    // Asymmetric adjacency: 0 lists 1, but 1 does not list 0.
    EXPECT_THROW(CsrGraph({0, 1, 1}, {1}, {1.0}, true), std::runtime_error);
}
