#pragma once
// Randomized stream-workload generator shared by the streaming tests and
// bench/micro_stream.cpp.
//
// Deterministic the PR-3 way: every op of every batch draws from its own
// counter-based stream (Random::forStream keyed on (seed, batch, op)), so
// the generated op sequence depends only on the configuration and the
// snapshot it was generated against — never on the thread count, the
// OpenMP schedule, or the global thread-local engines. Replaying the same
// batch sequence therefore reproduces the same graph bit for bit.
//
// Removal ops sample a real edge from the provided snapshot (endpoint by
// skew, neighbor uniform from its row) so deletions actually delete; a
// configurable fraction of removals instead targets a likely-missing edge
// to keep the Permissive ignore path exercised. Inserts occasionally emit
// self-loops and duplicate-prone endpoint pairs on purpose — the property
// suite's edge cases should appear in the randomized soak too.

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "support/common.hpp"
#include "support/random.hpp"

namespace grapr::testing {

struct StreamWorkloadConfig {
    /// Node-id universe ops draw endpoints from (may exceed the graph's
    /// current bound — inserting past it grows the graph).
    count nodes = 1000;
    count opsPerBatch = 256;
    /// Fraction of ops that are inserts (the rest are removals).
    double insertFraction = 0.6;
    /// Endpoint skew: 0 = uniform ids; larger values bias both insert
    /// endpoints toward low ids (u = floor(n * r^(1+skew))), giving the
    /// hot-node contention pattern of real streams.
    double skew = 0.0;
    /// Probability that an insert is a self-loop.
    double selfLoopFraction = 0.02;
    /// Fraction of removals aimed at a random (likely missing) node pair
    /// instead of a sampled existing edge.
    double blindRemoveFraction = 0.1;
    /// Weights drawn uniformly from [1, maxWeight] (integers, so weighted
    /// arithmetic stays exact in doubles); 1 = unweighted-compatible.
    count maxWeight = 1;
    std::uint64_t seed = 42;
};

class StreamWorkload {
public:
    explicit StreamWorkload(StreamWorkloadConfig config)
        : config_(config) {}

    const StreamWorkloadConfig& config() const noexcept { return config_; }

    /// Batch number `batchIndex`, generated against `state` (the snapshot
    /// the batch will be applied to — removal sampling reads its rows).
    /// Pure function of (config, batchIndex, state): thread-count and
    /// call-order deterministic. Apply with StreamApplyMode::Permissive —
    /// collisions (duplicate inserts, blind removals) are intentional.
    EdgeBatch batch(std::uint64_t batchIndex, const CsrGraph& state) const {
        EdgeBatch out;
        const count bound = state.upperNodeIdBound();
        for (count i = 0; i < config_.opsPerBatch; ++i) {
            SplitMix64 rng = Random::forStream(
                config_.seed ^ (batchIndex * 0x9e3779b97f4a7c15ULL + i));
            if (Random::real(rng) < config_.insertFraction) {
                const node u = skewedNode(rng);
                const node v = Random::real(rng) < config_.selfLoopFraction
                                   ? u
                                   : skewedNode(rng);
                const auto w = static_cast<edgeweight>(
                    1 + Random::integer(rng, config_.maxWeight));
                out.insert(u, v, w);
            } else if (bound > 0 &&
                       Random::real(rng) >= config_.blindRemoveFraction) {
                // Sample an existing edge: skewed endpoint, then retry a
                // few times for a non-empty row (bounded so generation
                // stays O(1) per op even on sparse states).
                node u = static_cast<node>(
                    Random::integer(rng, static_cast<std::uint64_t>(bound)));
                for (count attempt = 0; attempt < 8 && state.degree(u) == 0;
                     ++attempt) {
                    u = static_cast<node>(Random::integer(
                        rng, static_cast<std::uint64_t>(bound)));
                }
                if (state.degree(u) == 0) {
                    out.remove(u, skewedNode(rng)); // blind after all
                } else {
                    const auto j = static_cast<index>(
                        Random::integer(rng, state.degree(u)));
                    out.remove(u, state.getIthNeighbor(u, j));
                }
            } else {
                out.remove(skewedNode(rng), skewedNode(rng));
            }
        }
        return out;
    }

private:
    node skewedNode(SplitMix64& rng) const {
        const double r = Random::real(rng);
        const double x =
            config_.skew <= 0.0 ? r : std::pow(r, 1.0 + config_.skew);
        auto id = static_cast<count>(x * static_cast<double>(config_.nodes));
        if (id >= config_.nodes) id = config_.nodes - 1;
        return static_cast<node>(id);
    }

    StreamWorkloadConfig config_;
};

} // namespace grapr::testing
