// Property and concurrency tests for the streaming update engine
// (graph/stream_engine, graph/graph_log, structures/delta_csr) and the
// incremental detectors built on it (community/streaming_update).
//
// The load-bearing properties, in the order they appear:
//   - batches are programs: replay semantics, Strict/Permissive modes,
//     net-effect reduction (cancelled ops publish nothing);
//   - apply/undo is a bit-identical round trip on the CSR arrays;
//   - one big batch == many small batches (replay composes);
//   - the engine agrees bit for bit with an independent map-based oracle
//     under randomized churn, at every thread count;
//   - pinned snapshots are immutable under concurrent publishes (the
//     snapshot-isolation contract, checked from racing reader threads);
//   - incremental PLM/PLP re-detection stays inside the quality envelope
//     of from-scratch detection while re-activating only a local region.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <omp.h>

#include "community/plm.hpp"
#include "community/plp.hpp"
#include "community/streaming_update.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/stream_workload.hpp"

using namespace grapr;
using grapr::testing::StreamWorkload;
using grapr::testing::StreamWorkloadConfig;

namespace {

// Bit-identity on the frozen representation: offsets, neighbor targets,
// weights. This is deliberately stricter than graph isomorphism — the
// engine promises deterministic, sorted-row CSR output.
void expectCsrIdentical(const CsrGraph& a, const CsrGraph& b) {
    ASSERT_EQ(a.isWeighted(), b.isWeighted());
    EXPECT_EQ(a.offsets(), b.offsets());
    EXPECT_EQ(a.neighborArray(), b.neighborArray());
    if (a.isWeighted()) {
        EXPECT_EQ(a.weightArray(), b.weightArray());
    }
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t bytes,
                    std::uint64_t h = 1469598103934665603ULL) {
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

// Checksum of the full CSR state; used by the concurrent-reader harness
// where gtest's vector printers would be too slow under contention.
std::uint64_t csrChecksum(const CsrGraph& g) {
    const auto& off = g.offsets();
    const auto& nbr = g.neighborArray();
    const auto& wts = g.weightArray();
    std::uint64_t h = fnv1a(
        reinterpret_cast<const std::uint8_t*>(off.data()),
        off.size() * sizeof(grapr::index));
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(nbr.data()),
              nbr.size() * sizeof(node), h);
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(wts.data()),
              wts.size() * sizeof(edgeweight), h);
    return h;
}

// Independent oracle for the engine's batch semantics: a sorted edge map
// replayed sequentially with the documented Permissive rules. Shares no
// code with the delta-CSR path — agreement is meaningful.
class OracleGraph {
public:
    OracleGraph(const Graph& g, bool weighted)
        : weighted_(weighted), bound_(g.upperNodeIdBound()) {
        g.forEdges([&](node u, node v, edgeweight w) {
            edges_[canonical(u, v)] = weighted_ ? w : 1.0;
        });
    }

    void applyPermissive(const EdgeBatch& batch) {
        const auto before = edges_;
        for (const EdgeOp& op : batch.ops()) {
            const auto key = canonical(op.u, op.v);
            if (op.kind == EdgeOp::Kind::Insert) {
                if (edges_.find(key) == edges_.end()) {
                    edges_[key] = weighted_ ? op.w : 1.0;
                }
            } else {
                edges_.erase(key);
            }
        }
        // The engine grows the bound only for *net*-changed edges (a
        // cancelled insert of a new node publishes nothing); mirror that.
        for (const auto& [key, w] : edges_) {
            const auto it = before.find(key);
            if (it == before.end() || it->second != w) {
                bound_ = std::max(bound_, maxEndpoint(key) + 1);
            }
        }
        for (const auto& [key, w] : before) {
            if (edges_.find(key) == edges_.end()) {
                bound_ = std::max(bound_, maxEndpoint(key) + 1);
            }
        }
    }

    CsrGraph freeze() const {
        Graph g(bound_, weighted_);
        for (const auto& [key, w] : edges_) {
            g.addEdge(static_cast<node>(key >> 32),
                      static_cast<node>(key & 0xffffffffULL), w);
        }
        g.sortNeighborLists();
        return CsrGraph(g);
    }

private:
    static std::uint64_t canonical(node u, node v) {
        const node a = std::min(u, v);
        const node b = std::max(u, v);
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }
    static count maxEndpoint(std::uint64_t key) {
        return static_cast<count>(key & 0xffffffffULL);
    }

    bool weighted_;
    count bound_;
    std::map<std::uint64_t, edgeweight> edges_;
};

Graph seedGraph(count n = 64, bool weighted = false) {
    Random::setSeed(700);
    Graph g(n, weighted);
    SplitMix64 rng = Random::forStream(700);
    for (count e = 0; e < 3 * n; ++e) {
        const auto u = static_cast<node>(Random::integer(rng, n));
        const auto v = static_cast<node>(Random::integer(rng, n));
        const auto w = static_cast<edgeweight>(1 + Random::integer(rng, 4));
        if (!g.hasEdge(u, v)) g.addEdge(u, v, weighted ? w : 1.0);
    }
    return g;
}

} // namespace

// --- freezing and lookups --------------------------------------------------

TEST(StreamEngine, FreezeFromGraphMatchesDirectFreeze) {
    Graph g = seedGraph(64, true);
    StreamingGraph engine(g);
    EXPECT_EQ(engine.generation(), 0u);
    EXPECT_TRUE(engine.isWeighted());

    Graph sorted = g;
    sorted.sortNeighborLists();
    const CsrGraph direct(sorted);
    expectCsrIdentical(engine.pin()->graph, direct);
}

TEST(StreamEngine, CsrEdgeWeightBinarySearch) {
    Graph g(6, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(0, 3, 1.0);
    g.addEdge(2, 2, 4.0); // self-loop
    g.sortNeighborLists();
    const CsrGraph frozen(g);

    EXPECT_EQ(csrEdgeWeight(frozen, 0, 1), std::optional<edgeweight>(2.5));
    EXPECT_EQ(csrEdgeWeight(frozen, 1, 0), std::optional<edgeweight>(2.5));
    EXPECT_EQ(csrEdgeWeight(frozen, 2, 2), std::optional<edgeweight>(4.0));
    EXPECT_FALSE(csrEdgeWeight(frozen, 1, 3).has_value());
    EXPECT_FALSE(csrEdgeWeight(frozen, 0, 99).has_value());
}

// --- batch semantics -------------------------------------------------------

TEST(StreamEngine, EmptyAndCancelledBatchesPublishNothing) {
    StreamingGraph engine(seedGraph());
    const std::uint64_t checksum = csrChecksum(engine.pin()->graph);
    const StreamView view = engine.current();

    const BatchResult empty = engine.apply(EdgeBatch{});
    EXPECT_EQ(empty.generation, 0u);
    EXPECT_TRUE(empty.touched.empty());

    // Insert-then-remove of a brand-new edge cancels out: legal in Strict
    // mode (the batch is a program), net effect zero, nothing published.
    EdgeBatch cancel;
    cancel.insert(60, 61);
    cancel.remove(61, 60);
    const BatchResult result = engine.apply(cancel);
    EXPECT_EQ(result.generation, 0u);
    EXPECT_EQ(result.inserted, 0u);
    EXPECT_EQ(result.removed, 0u);
    EXPECT_TRUE(result.touched.empty());

    EXPECT_EQ(engine.generation(), 0u);
    EXPECT_EQ(csrChecksum(engine.pin()->graph), checksum);
    // No publish happened, so the borrowed view must still be readable
    // (under GRAPR_VIEW_CHECK this would abort had the engine bumped).
    EXPECT_EQ(csrChecksum(view.graph()), checksum);
}

TEST(StreamEngine, StrictViolationsThrowAndLeaveStateUntouched) {
    Graph g(8, false);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    StreamingGraph engine(g);
    const std::uint64_t checksum = csrChecksum(engine.pin()->graph);

    EdgeBatch duplicate;
    duplicate.insert(4, 5);
    duplicate.insert(1, 0); // {0,1} exists — duplicate under any ordering
    EXPECT_THROW(engine.apply(duplicate), std::runtime_error);

    EdgeBatch missing;
    missing.remove(5, 6);
    EXPECT_THROW(engine.apply(missing), std::runtime_error);

    EdgeBatch sentinel;
    sentinel.insert(0, none);
    EXPECT_THROW(engine.apply(sentinel), std::runtime_error);

    // A throwing batch is all-or-nothing: generation and arrays untouched,
    // including the valid {4,5} insert that preceded the bad op.
    EXPECT_EQ(engine.generation(), 0u);
    EXPECT_EQ(csrChecksum(engine.pin()->graph), checksum);
}

TEST(StreamEngine, PermissiveCountsIgnoredOps) {
    Graph g(8, false);
    g.addEdge(0, 1);
    StreamingGraph engine(g);

    EdgeBatch batch;
    batch.insert(0, 1); // duplicate
    batch.remove(4, 5); // missing
    batch.insert(2, 3); // effective
    const BatchResult result =
        engine.apply(batch, StreamApplyMode::Permissive);
    EXPECT_EQ(result.ignored, 2u);
    EXPECT_EQ(result.inserted, 1u);
    EXPECT_EQ(result.generation, 1u);
    EXPECT_EQ(result.touched, (std::vector<node>{2, 3}));
}

TEST(StreamEngine, SelfLoopAccounting) {
    Graph g(4, true);
    g.addEdge(0, 1, 1.0);
    StreamingGraph engine(g);
    const CsrGraph& base = engine.pin()->graph;
    const edgeweight baseVolume = base.volume(2);
    const edgeweight baseTotal = base.totalEdgeWeight();

    EdgeBatch batch;
    batch.insert(2, 2, 3.0);
    engine.apply(batch);
    const SnapshotPtr snap = engine.pin();
    const CsrGraph& next = snap->graph;
    EXPECT_EQ(next.numberOfSelfLoops(), 1u);
    EXPECT_EQ(next.degree(2), 1u); // stored once
    // Paper §III-B convention: a loop contributes 2w to its node's volume
    // and w to the total edge weight.
    EXPECT_DOUBLE_EQ(next.volume(2), baseVolume + 6.0);
    EXPECT_DOUBLE_EQ(next.totalEdgeWeight(), baseTotal + 3.0);
}

TEST(StreamEngine, ReweightViaRemoveInsertInOneBatch) {
    Graph g(4, true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 1.0);
    StreamingGraph engine(g);
    const std::uint64_t checksum = csrChecksum(engine.pin()->graph);
    GraphLog log(engine);

    EdgeBatch batch;
    batch.remove(0, 1);
    batch.insert(0, 1, 7.0); // same edge, new weight: a reweight
    const BatchResult result = log.apply(batch);
    EXPECT_EQ(result.reweighted, 1u);
    EXPECT_EQ(result.inserted, 0u);
    EXPECT_EQ(result.removed, 0u);
    EXPECT_EQ(csrEdgeWeight(engine.pin()->graph, 0, 1),
              std::optional<edgeweight>(7.0));

    // The inverse (remove new, insert old at observed weight) must be
    // Strict-valid and restore the arrays bit for bit.
    log.undo();
    EXPECT_EQ(csrChecksum(engine.pin()->graph), checksum);
    EXPECT_EQ(csrEdgeWeight(engine.pin()->graph, 0, 1),
              std::optional<edgeweight>(2.0));
}

TEST(StreamEngine, InsertPastBoundGrowsGraph) {
    Graph g(4, false);
    g.addEdge(0, 1);
    StreamingGraph engine(g);

    EdgeBatch batch;
    batch.insert(2, 9);
    const BatchResult result = engine.apply(batch);
    EXPECT_EQ(result.touched, (std::vector<node>{2, 9}));

    const SnapshotPtr snap = engine.pin();
    EXPECT_EQ(snap->graph.upperNodeIdBound(), 10u);
    EXPECT_EQ(snap->graph.degree(9), 1u);
    EXPECT_EQ(snap->graph.getIthNeighbor(9, 0), 2u);
    for (node v = 4; v < 9; ++v) {
        EXPECT_EQ(snap->graph.degree(v), 0u); // holes stay empty rows
    }
}

// --- apply/undo and batch composition --------------------------------------

TEST(StreamEngine, CommitUndoRoundTripIsBitIdentical) {
    StreamingGraph engine(seedGraph(200, true));
    GraphLog log(engine);
    const std::uint64_t checksum = csrChecksum(engine.pin()->graph);

    StreamWorkloadConfig cfg;
    cfg.nodes = 200;
    cfg.opsPerBatch = 128;
    cfg.maxWeight = 4;
    cfg.seed = 701;
    const StreamWorkload workload(cfg);

    constexpr std::uint64_t kBatches = 12;
    for (std::uint64_t i = 0; i < kBatches; ++i) {
        const SnapshotPtr snap = engine.pin();
        log.apply(workload.batch(i, snap->graph),
                  StreamApplyMode::Permissive);
    }
    EXPECT_EQ(log.committedBatches(), kBatches);
    EXPECT_GT(engine.generation(), 0u);

    while (log.committedBatches() > 0) log.undo();
    // Unwinding the whole stream restores the generation-0 arrays exactly.
    expectCsrIdentical(engine.pin()->graph,
                       StreamingGraph(seedGraph(200, true)).pin()->graph);
    EXPECT_EQ(csrChecksum(engine.pin()->graph), checksum);
}

TEST(StreamEngine, OneBigBatchEqualsManySmallBatches) {
    const Graph base = seedGraph(150, false);
    StreamingGraph incremental(base);

    StreamWorkloadConfig cfg;
    cfg.nodes = 150; // stay inside the bound: growth is generation-shaped
    cfg.opsPerBatch = 96;
    cfg.seed = 702;
    const StreamWorkload workload(cfg);

    // Run batch by batch, recording the exact ops each batch contained
    // (removal sampling depends on the evolving state, so record, don't
    // regenerate).
    EdgeBatch concatenated;
    for (std::uint64_t i = 0; i < 10; ++i) {
        const EdgeBatch batch =
            workload.batch(i, incremental.pin()->graph);
        for (const EdgeOp& op : batch.ops()) {
            if (op.kind == EdgeOp::Kind::Insert) {
                concatenated.insert(op.u, op.v, op.w);
            } else {
                concatenated.remove(op.u, op.v);
            }
        }
        incremental.apply(batch, StreamApplyMode::Permissive);
    }

    // Replay the same ops as ONE batch: replay composes, so the final
    // arrays must be bit-identical even though the intermediate
    // generations never existed.
    StreamingGraph oneShot(base);
    oneShot.apply(concatenated, StreamApplyMode::Permissive);
    expectCsrIdentical(oneShot.pin()->graph, incremental.pin()->graph);
}

TEST(StreamEngine, MatchesOracleUnderRandomizedChurn) {
    const Graph base = seedGraph(300, true);
    StreamingGraph engine(base);
    OracleGraph oracle(base, true);

    StreamWorkloadConfig cfg;
    cfg.nodes = 330; // a few ids past the bound: exercises growth
    cfg.opsPerBatch = 200;
    cfg.insertFraction = 0.55;
    cfg.skew = 0.7;
    cfg.maxWeight = 3;
    cfg.seed = 703;
    const StreamWorkload workload(cfg);

    for (std::uint64_t i = 0; i < 15; ++i) {
        const EdgeBatch batch = workload.batch(i, engine.pin()->graph);
        engine.apply(batch, StreamApplyMode::Permissive);
        oracle.applyPermissive(batch);
        // Every generation agrees with the oracle bit for bit — not just
        // the final state.
        expectCsrIdentical(engine.pin()->graph, oracle.freeze());
    }
}

TEST(StreamEngine, ThreadCountInvariance) {
    const Graph base = seedGraph(256, true);
    const int saved = Parallel::maxThreads();

    StreamWorkloadConfig cfg;
    cfg.nodes = 256;
    cfg.opsPerBatch = 160;
    cfg.maxWeight = 4;
    cfg.seed = 704;
    const StreamWorkload workload(cfg);

    auto runAt = [&](int threads) {
        Parallel::setThreads(threads);
        StreamingGraph engine(base);
        std::vector<EdgeBatch> batches;
        for (std::uint64_t i = 0; i < 8; ++i) {
            batches.push_back(workload.batch(i, engine.pin()->graph));
            engine.apply(batches.back(), StreamApplyMode::Permissive);
        }
        return std::pair<SnapshotPtr, std::vector<EdgeBatch>>(
            engine.pin(), std::move(batches));
    };

    const auto [single, singleBatches] = runAt(1);
    const auto [parallel, parallelBatches] = runAt(std::max(4, saved));
    Parallel::setThreads(saved);

    // The workload generator is counter-based: identical op streams at
    // any thread count...
    ASSERT_EQ(singleBatches.size(), parallelBatches.size());
    for (std::size_t i = 0; i < singleBatches.size(); ++i) {
        const auto& a = singleBatches[i].ops();
        const auto& b = parallelBatches[i].ops();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t j = 0; j < a.size(); ++j) {
            EXPECT_EQ(a[j].kind, b[j].kind);
            EXPECT_EQ(a[j].u, b[j].u);
            EXPECT_EQ(a[j].v, b[j].v);
            EXPECT_EQ(a[j].w, b[j].w);
        }
    }
    // ...and the delta-CSR assembly is deterministic, so the final arrays
    // are bit-identical between 1 thread and many.
    expectCsrIdentical(single->graph, parallel->graph);
}

// --- snapshot isolation ----------------------------------------------------

TEST(StreamEngine, PinnedSnapshotImmutableAcrossPublishes) {
    StreamingGraph engine(seedGraph(128, false));
    const SnapshotPtr pinned = engine.pin();
    const std::uint64_t checksum = csrChecksum(pinned->graph);
    const count baseEdges = pinned->graph.numberOfEdges();

    StreamWorkloadConfig cfg;
    cfg.nodes = 128;
    cfg.seed = 705;
    const StreamWorkload workload(cfg);
    for (std::uint64_t i = 0; i < 6; ++i) {
        engine.apply(workload.batch(i, engine.pin()->graph),
                     StreamApplyMode::Permissive);
    }

    EXPECT_GT(engine.generation(), 0u);
    EXPECT_EQ(pinned->generation, 0u);
    EXPECT_EQ(pinned->graph.numberOfEdges(), baseEdges);
    EXPECT_EQ(csrChecksum(pinned->graph), checksum);
}

TEST(StreamEngine, ConcurrentReadersSeeConsistentSnapshots) {
    // The randomized snapshot-isolation harness: one writer thread churns
    // through batches while reader threads pin generations and verify that
    // (a) a pinned snapshot is bit-stable (double checksum around a real
    // recompute), (b) observed generations are monotone per reader, and
    // (c) the final state equals a sequential oracle replay of the exact
    // batches the writer applied. gtest assertions are thread-safe on
    // Linux (GTEST_IS_THREADSAFE).
    const Graph base = seedGraph(256, true);
    StreamingGraph engine(base);

    StreamWorkloadConfig cfg;
    cfg.nodes = 280;
    cfg.opsPerBatch = 192;
    cfg.maxWeight = 4;
    cfg.skew = 0.5;
    cfg.seed = 706;
    const StreamWorkload workload(cfg);

    constexpr std::uint64_t kBatches = 40;
    std::atomic<bool> done{false};
    std::vector<EdgeBatch> applied(kBatches);

    std::thread writer([&] {
        for (std::uint64_t i = 0; i < kBatches; ++i) {
            const SnapshotPtr snap = engine.pin();
            applied[i] = workload.batch(i, snap->graph);
            engine.apply(applied[i], StreamApplyMode::Permissive);
        }
        done.store(true, std::memory_order_release);
    });

    std::vector<std::thread> readers;
    std::atomic<count> pinsChecked{0};
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            std::uint64_t lastGeneration = 0;
            while (!done.load(std::memory_order_acquire)) {
                const SnapshotPtr snap = engine.pin();
                EXPECT_GE(snap->generation, lastGeneration)
                    << "generation went backwards";
                lastGeneration = snap->generation;
                const std::uint64_t first = csrChecksum(snap->graph);
                // Real work between the checksums so a mutating writer
                // would have time to corrupt a non-isolated reader.
                edgeweight sink = 0.0;
                const count bound = snap->graph.upperNodeIdBound();
                for (node v = 0; v < bound; ++v) {
                    sink += snap->graph.volume(v);
                }
                EXPECT_GE(sink, 0.0);
                EXPECT_EQ(csrChecksum(snap->graph), first)
                    << "pinned snapshot changed under a concurrent writer";
                pinsChecked.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    writer.join();
    for (std::thread& t : readers) t.join();
    EXPECT_GT(pinsChecked.load(), 0u);

    // Replay the recorded batches sequentially through the oracle.
    OracleGraph oracle(base, true);
    for (const EdgeBatch& batch : applied) oracle.applyPermissive(batch);
    expectCsrIdentical(engine.pin()->graph, oracle.freeze());
}

// --- incremental detection -------------------------------------------------

TEST(StreamingDetect, PlmSingleEdgeBatchStaysLocal) {
    Random::setSeed(710);
    PlantedPartitionGenerator gen(5000, 50, 0.3, 0.001);
    Graph g = gen.generate();
    StreamingGraph engine(g);

    StreamingPlm incremental;
    incremental.initialize(engine.pin()->graph);
    const double qBefore = Modularity().getQuality(
        incremental.communities(), engine.pin()->graph);

    // Insert one missing intra-block edge (blocks are contiguous in the
    // planted layout, so scan node 0's block for an absent partner).
    node partner = none;
    for (node v = 1; v < 100; ++v) {
        if (!csrEdgeWeight(engine.pin()->graph, 0, v).has_value()) {
            partner = v;
            break;
        }
    }
    ASSERT_NE(partner, none);
    EdgeBatch batch;
    batch.insert(0, partner);
    const BatchResult result = engine.apply(batch);

    const SnapshotPtr snap = engine.pin();
    incremental.applyBatch(snap->graph, result.touched);
    EXPECT_GT(incremental.lastReactivated(), 0u);
    // The acceptance metric: a perturbation this small must re-activate a
    // vanishing fraction of the graph, not trigger global re-detection.
    EXPECT_LT(incremental.lastReactivated(),
              snap->graph.upperNodeIdBound() / 10);
    EXPECT_TRUE(incremental.communities().isComplete());
    const double qAfter =
        Modularity().getQuality(incremental.communities(), snap->graph);
    EXPECT_GT(qAfter, qBefore - 0.02);
}

TEST(StreamingDetect, PlmTracksFromScratchQualityUnderChurn) {
    Random::setSeed(711);
    PlantedPartitionGenerator gen(2000, 20, 0.25, 0.003);
    Graph g = gen.generate();
    StreamingGraph engine(g);

    StreamingPlm incremental;
    incremental.initialize(engine.pin()->graph);

    StreamWorkloadConfig cfg;
    cfg.nodes = 2000;
    cfg.opsPerBatch = 200;
    cfg.seed = 712;
    const StreamWorkload workload(cfg);
    for (std::uint64_t i = 0; i < 5; ++i) {
        const EdgeBatch batch = workload.batch(i, engine.pin()->graph);
        const BatchResult result =
            engine.apply(batch, StreamApplyMode::Permissive);
        if (result.touched.empty()) continue;
        incremental.applyBatch(engine.pin()->graph, result.touched);
    }

    const SnapshotPtr final_ = engine.pin();
    Random::setSeed(713);
    const Partition fromScratch = Plm().runFrozen(final_->graph);
    const double qIncremental =
        Modularity().getQuality(incremental.communities(), final_->graph);
    const double qScratch =
        Modularity().getQuality(fromScratch, final_->graph);
    EXPECT_TRUE(incremental.communities().isComplete());
    EXPECT_GT(qIncremental, qScratch - 0.05);
}

TEST(StreamingDetect, PlmSingleThreadedRunsAreIdentical) {
    // With one thread the whole incremental pipeline is deterministic:
    // same seed, same batches, same partition — element for element.
    const int saved = Parallel::maxThreads();
    Parallel::setThreads(1);

    auto run = [] {
        Random::setSeed(714);
        PlantedPartitionGenerator gen(800, 8, 0.25, 0.004);
        Graph g = gen.generate();
        StreamingGraph engine(g);
        StreamingPlm incremental;
        Random::setSeed(715);
        incremental.initialize(engine.pin()->graph);

        StreamWorkloadConfig cfg;
        cfg.nodes = 800;
        cfg.opsPerBatch = 120;
        cfg.seed = 716;
        const StreamWorkload workload(cfg);
        for (std::uint64_t i = 0; i < 4; ++i) {
            const BatchResult result =
                engine.apply(workload.batch(i, engine.pin()->graph),
                             StreamApplyMode::Permissive);
            if (result.touched.empty()) continue;
            incremental.applyBatch(engine.pin()->graph, result.touched);
        }
        return incremental.communities().vector();
    };

    const std::vector<node> first = run();
    const std::vector<node> second = run();
    Parallel::setThreads(saved);
    EXPECT_EQ(first, second);
}

TEST(StreamingDetect, PlpUntouchedRegionsAreFixpoints) {
    Random::setSeed(720);
    Graph g = SimpleGraphs::cliqueChain(8, 8); // 8 cliques of 8 nodes
    StreamingGraph engine(g);

    StreamingPlp incremental;
    incremental.initialize(engine.pin()->graph);

    // Strengthen the bridge between cliques 0 and 1; cliques 4..7 are far
    // outside the propagation frontier and their grouping must not churn —
    // the sticky-label rule makes converged regions fixpoints. Community
    // IDS are renamed by the per-batch compaction, so assert structure,
    // not raw labels.
    EdgeBatch batch;
    batch.insert(0, 9);
    batch.insert(1, 10);
    const BatchResult result =
        engine.apply(batch, StreamApplyMode::Permissive);
    incremental.applyBatch(engine.pin()->graph, result.touched);

    EXPECT_GT(incremental.lastReactivated(), 0u);
    EXPECT_LT(incremental.lastReactivated(), 64u); // stayed local
    const std::vector<node>& after = incremental.labels().vector();
    for (node c = 4; c < 8; ++c) {
        const node anchor = c * 8;
        for (node v = anchor + 1; v < anchor + 8; ++v) {
            EXPECT_EQ(after[v], after[anchor])
                << "far clique " << c << " split at node " << v;
        }
        if (c > 4) {
            EXPECT_NE(after[anchor], after[32])
                << "far cliques " << c << " and 4 merged";
        }
    }
}

TEST(StreamingDetect, PlpTracksFromScratchQualityUnderChurn) {
    Random::setSeed(721);
    PlantedPartitionGenerator gen(1500, 15, 0.25, 0.004);
    Graph g = gen.generate();
    StreamingGraph engine(g);

    StreamingPlp incremental;
    incremental.initialize(engine.pin()->graph);

    StreamWorkloadConfig cfg;
    cfg.nodes = 1500;
    cfg.opsPerBatch = 150;
    cfg.seed = 722;
    const StreamWorkload workload(cfg);
    for (std::uint64_t i = 0; i < 5; ++i) {
        const BatchResult result =
            engine.apply(workload.batch(i, engine.pin()->graph),
                         StreamApplyMode::Permissive);
        if (result.touched.empty()) continue;
        incremental.applyBatch(engine.pin()->graph, result.touched);
    }

    const SnapshotPtr final_ = engine.pin();
    Random::setSeed(723);
    const Partition fromScratch = Plp().runFrozen(final_->graph);
    const double qIncremental =
        Modularity().getQuality(incremental.labels(), final_->graph);
    const double qScratch =
        Modularity().getQuality(fromScratch, final_->graph);
    EXPECT_TRUE(incremental.labels().isComplete());
    EXPECT_GT(qIncremental, qScratch - 0.05);
}
