// Generator tests: structural invariants and statistical properties of
// every generator in src/generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "generators/barabasi_albert.hpp"
#include "generators/configuration_model.hpp"
#include "generators/degree_sequence.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/grid.hpp"
#include "generators/lfr.hpp"
#include "generators/planted_partition.hpp"
#include "generators/rmat.hpp"
#include "generators/simple_graphs.hpp"
#include "generators/watts_strogatz.hpp"
#include "graph/graph_tools.hpp"
#include "quality/connected_components.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

TEST(ErdosRenyi, EdgeCountNearExpectation) {
    Random::setSeed(30);
    const count n = 2000;
    const double p = 0.01;
    Graph g = ErdosRenyiGenerator(n, p).generate();
    const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(g.numberOfEdges()), expected,
                4.0 * std::sqrt(expected));
    EXPECT_EQ(g.numberOfSelfLoops(), 0u);
    g.checkConsistency();
}

TEST(ErdosRenyi, ZeroProbabilityGivesEmpty) {
    Graph g = ErdosRenyiGenerator(100, 0.0).generate();
    EXPECT_EQ(g.numberOfEdges(), 0u);
}

TEST(ErdosRenyi, FullProbabilityGivesClique) {
    Graph g = ErdosRenyiGenerator(30, 1.0).generate();
    EXPECT_EQ(g.numberOfEdges(), 30u * 29u / 2u);
}

TEST(ErdosRenyi, SelfLoopsOption) {
    Random::setSeed(31);
    Graph g = ErdosRenyiGenerator(500, 1.0, /*selfLoops=*/true).generate();
    EXPECT_EQ(g.numberOfSelfLoops(), 500u);
}

TEST(ErdosRenyi, RejectsInvalidProbability) {
    EXPECT_THROW(ErdosRenyiGenerator(10, 1.5), std::runtime_error);
}

TEST(PlantedPartition, GroundTruthMatchesBlocks) {
    Random::setSeed(32);
    PlantedPartitionGenerator gen(1000, 10, 0.1, 0.001);
    Graph g = gen.generate();
    const Partition& truth = gen.groundTruth();
    EXPECT_EQ(truth.numberOfSubsets(), 10u);
    const auto sizes = truth.subsetSizes();
    for (count s : sizes) EXPECT_EQ(s, 100u);
    g.checkConsistency();
}

TEST(PlantedPartition, IntraDominatesInter) {
    Random::setSeed(33);
    PlantedPartitionGenerator gen(1000, 10, 0.2, 0.001);
    Graph g = gen.generate();
    const Partition& truth = gen.groundTruth();
    count intra = 0, inter = 0;
    g.forEdges([&](node u, node v, edgeweight) {
        if (truth[u] == truth[v]) {
            ++intra;
        } else {
            ++inter;
        }
    });
    // Expected intra ~ 10 * C(100,2) * 0.2 = 9900; inter ~ C(1000,2)*0.9*0.001 ~ 450.
    EXPECT_GT(intra, inter * 10);
}

TEST(PlantedPartition, EdgeCountNearExpectation) {
    Random::setSeed(34);
    const count n = 2000, k = 20;
    const double pin = 0.05, pout = 0.002;
    PlantedPartitionGenerator gen(n, k, pin, pout);
    Graph g = gen.generate();
    const double groupPairs = static_cast<double>(k) * (100.0 * 99.0 / 2.0);
    const double crossPairs =
        static_cast<double>(n) * (n - 1) / 2.0 - groupPairs;
    const double expected = groupPairs * pin + crossPairs * pout;
    EXPECT_NEAR(static_cast<double>(g.numberOfEdges()), expected,
                5.0 * std::sqrt(expected));
}

TEST(Rmat, SizeAndSimplicity) {
    Random::setSeed(35);
    RmatGenerator gen(12, 8);
    Graph g = gen.generate();
    EXPECT_EQ(g.upperNodeIdBound(), 1u << 12);
    EXPECT_EQ(g.numberOfSelfLoops(), 0u);
    // Dedup keeps it below the sample count.
    EXPECT_LE(g.numberOfEdges(), (1u << 12) * 8u);
    EXPECT_GT(g.numberOfEdges(), (1u << 12) * 2u);
    g.checkConsistency();
}

TEST(Rmat, SkewedDegreesWithGraph500Params) {
    Random::setSeed(36);
    Graph g = RmatGenerator(13, 16, 0.57, 0.19, 0.19, 0.05).generate();
    const auto stats = GraphTools::degreeStatistics(g);
    // Hubs should be far above the average — the defining R-MAT property
    // the paper's load balancing discussion revolves around.
    EXPECT_GT(static_cast<double>(stats.maximum), 20.0 * stats.average);
}

TEST(Rmat, RejectsBadProbabilities) {
    EXPECT_THROW(RmatGenerator(10, 8, 0.5, 0.5, 0.5, 0.5),
                 std::runtime_error);
}

TEST(BarabasiAlbert, DegreesAndConnectivity) {
    Random::setSeed(37);
    const count n = 3000, attachment = 4;
    Graph g = BarabasiAlbertGenerator(n, attachment).generate();
    EXPECT_EQ(g.numberOfNodes(), n);
    // m = seed clique + (n - seed) * attachment.
    const count seed = attachment + 1;
    EXPECT_EQ(g.numberOfEdges(),
              seed * (seed - 1) / 2 + (n - seed) * attachment);
    ConnectedComponents cc(g);
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 1u);
    // Preferential attachment: max degree far above attachment.
    EXPECT_GT(GraphTools::degreeStatistics(g).maximum, 10 * attachment);
}

TEST(BarabasiAlbert, MinimumDegreeIsAttachment) {
    Random::setSeed(38);
    Graph g = BarabasiAlbertGenerator(500, 3).generate();
    EXPECT_GE(GraphTools::degreeStatistics(g).minimum, 3u);
}

TEST(WattsStrogatz, LatticeWithoutRewiring) {
    Graph g = WattsStrogatzGenerator(100, 6, 0.0).generate();
    EXPECT_EQ(g.numberOfEdges(), 300u);
    const auto stats = GraphTools::degreeStatistics(g);
    EXPECT_EQ(stats.minimum, 6u);
    EXPECT_EQ(stats.maximum, 6u);
    g.checkConsistency();
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
    Random::setSeed(39);
    Graph g = WattsStrogatzGenerator(500, 8, 0.3).generate();
    EXPECT_EQ(g.numberOfEdges(), 2000u);
    EXPECT_EQ(g.numberOfSelfLoops(), 0u);
    g.checkConsistency();
}

TEST(WattsStrogatz, RejectsOddK) {
    EXPECT_THROW(WattsStrogatzGenerator(10, 3, 0.1), std::runtime_error);
}

TEST(Grid, PlainLattice) {
    Graph g = GridGenerator(10, 20).generate();
    EXPECT_EQ(g.numberOfNodes(), 200u);
    // 10*19 horizontal + 9*20 vertical.
    EXPECT_EQ(g.numberOfEdges(), 10u * 19u + 9u * 20u);
    const auto stats = GraphTools::degreeStatistics(g);
    EXPECT_EQ(stats.minimum, 2u); // corners
    EXPECT_EQ(stats.maximum, 4u);
    ConnectedComponents cc(g);
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 1u);
}

TEST(Grid, ChordsIncreaseMaxDegree) {
    Random::setSeed(40);
    Graph plain = GridGenerator(50, 50).generate();
    Graph chords = GridGenerator(50, 50, 0.0, 0.5).generate();
    EXPECT_GT(chords.numberOfEdges(), plain.numberOfEdges());
    chords.checkConsistency();
}

TEST(DegreeSequence, PowerLawBoundsAndParity) {
    Random::setSeed(41);
    const auto degrees = powerLawDegreeSequence(1001, 2, 50, 2.5);
    EXPECT_EQ(degrees.size(), 1001u);
    count total = 0;
    for (count d : degrees) {
        EXPECT_GE(d, 2u);
        EXPECT_LE(d, 51u); // +1 allowed by the parity bump
        total += d;
    }
    EXPECT_EQ(total % 2, 0u);
}

TEST(DegreeSequence, ErdosGallaiAcceptsRealizable) {
    EXPECT_TRUE(isGraphicalSequence({3, 3, 3, 3})); // K4
    EXPECT_TRUE(isGraphicalSequence({2, 2, 2}));    // triangle
    EXPECT_TRUE(isGraphicalSequence({1, 1}));
    EXPECT_TRUE(isGraphicalSequence({0, 0, 0}));
}

TEST(DegreeSequence, ErdosGallaiRejectsImpossible) {
    EXPECT_FALSE(isGraphicalSequence({3, 1}));       // odd sum
    EXPECT_FALSE(isGraphicalSequence({4, 1, 1}));    // degree > n-1 usage
    EXPECT_FALSE(isGraphicalSequence({3, 3, 1, 1})); // classic non-graphical
}

TEST(DegreeSequence, GeneratedSequencesAreGraphical) {
    Random::setSeed(42);
    for (int trial = 0; trial < 5; ++trial) {
        const auto degrees = powerLawDegreeSequence(500, 2, 40, 2.2);
        EXPECT_TRUE(isGraphicalSequence(degrees));
    }
}

TEST(CommunitySizes, CoverExactlyN) {
    Random::setSeed(43);
    for (int trial = 0; trial < 10; ++trial) {
        const auto sizes = powerLawCommunitySizes(5000, 20, 200, 1.5);
        const count total =
            std::accumulate(sizes.begin(), sizes.end(), count{0});
        EXPECT_EQ(total, 5000u);
        for (count s : sizes) EXPECT_GE(s, 1u);
    }
}

TEST(ConfigurationModel, DegreesApproximatelyPreserved) {
    Random::setSeed(44);
    std::vector<count> degrees(400, 6);
    Graph g = ConfigurationModelGenerator(degrees).generate();
    // Erased model loses a few stubs to loops/duplicates; most survive.
    EXPECT_GT(g.numberOfEdges(), 400u * 6u / 2u * 9 / 10);
    const auto stats = GraphTools::degreeStatistics(g);
    EXPECT_LE(stats.maximum, 6u);
    g.checkConsistency();
}

TEST(ConfigurationModel, RejectsOddSum) {
    EXPECT_THROW(ConfigurationModelGenerator({3, 2, 2}), std::runtime_error);
}

TEST(Lfr, BasicInvariants) {
    Random::setSeed(45);
    LfrParameters params;
    params.n = 3000;
    params.mu = 0.25;
    LfrGenerator gen(params);
    Graph g = gen.generate();
    EXPECT_EQ(g.numberOfNodes(), params.n);
    EXPECT_TRUE(gen.groundTruth().isComplete());
    g.checkConsistency();
    // Community sizes within the requested bounds (up to fold-in slack).
    const auto sizes = gen.groundTruth().subsetSizes();
    count covered = 0;
    for (count s : sizes) covered += s;
    EXPECT_EQ(covered, params.n);
}

TEST(Lfr, RealizedMuTracksRequested) {
    Random::setSeed(46);
    for (double mu : {0.1, 0.3, 0.5}) {
        LfrParameters params;
        params.n = 4000;
        params.mu = mu;
        LfrGenerator gen(params);
        (void)gen.generate();
        EXPECT_NEAR(gen.realizedMu(), mu, 0.08)
            << "requested mu=" << mu;
    }
}

TEST(Lfr, HigherMuMeansMoreCrossEdges) {
    Random::setSeed(47);
    auto crossFraction = [](double mu) {
        LfrParameters params;
        params.n = 2000;
        params.mu = mu;
        LfrGenerator gen(params);
        (void)gen.generate();
        return gen.realizedMu();
    };
    EXPECT_LT(crossFraction(0.1), crossFraction(0.6));
}

TEST(Lfr, DegreesWithinBounds) {
    Random::setSeed(48);
    LfrParameters params;
    params.n = 2000;
    params.minDegree = 5;
    params.maxDegree = 30;
    LfrGenerator gen(params);
    Graph g = gen.generate();
    const auto stats = GraphTools::degreeStatistics(g);
    // Erased configuration model can only lose edges.
    EXPECT_LE(stats.maximum, 31u);
}

TEST(SimpleGraphs, Clique) {
    Graph g = SimpleGraphs::clique(6);
    EXPECT_EQ(g.numberOfEdges(), 15u);
    EXPECT_EQ(GraphTools::degreeStatistics(g).minimum, 5u);
}

TEST(SimpleGraphs, StarPathCycle) {
    EXPECT_EQ(SimpleGraphs::star(10).numberOfEdges(), 9u);
    EXPECT_EQ(SimpleGraphs::star(10).degree(0), 9u);
    EXPECT_EQ(SimpleGraphs::path(10).numberOfEdges(), 9u);
    EXPECT_EQ(SimpleGraphs::cycle(10).numberOfEdges(), 10u);
}

TEST(SimpleGraphs, CliqueChainShape) {
    Graph g = SimpleGraphs::cliqueChain(4, 5);
    EXPECT_EQ(g.numberOfNodes(), 20u);
    EXPECT_EQ(g.numberOfEdges(), 4u * 10u + 3u); // 4 cliques + 3 bridges
    ConnectedComponents cc(g);
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 1u);
    const Partition truth = SimpleGraphs::cliqueChainTruth(4, 5);
    EXPECT_EQ(truth.numberOfSubsets(), 4u);
}

TEST(SimpleGraphs, KarateClub) {
    Graph g = SimpleGraphs::karateClub();
    EXPECT_EQ(g.numberOfNodes(), 34u);
    EXPECT_EQ(g.numberOfEdges(), 78u);
    EXPECT_EQ(g.degree(33), 17u); // the instructor
    EXPECT_EQ(g.degree(0), 16u);  // the administrator
    const Partition factions = SimpleGraphs::karateFactions();
    EXPECT_EQ(factions.numberOfSubsets(), 2u);
    g.checkConsistency();
}

TEST(Generators, DeterministicUnderSeed) {
    Random::setSeed(49);
    Graph a = ErdosRenyiGenerator(300, 0.05).generate();
    Random::setSeed(49);
    Graph b = ErdosRenyiGenerator(300, 0.05).generate();
    EXPECT_TRUE(a.structurallyEquals(b));

    Random::setSeed(50);
    Graph c = RmatGenerator(10, 8).generate();
    Random::setSeed(50);
    Graph d = RmatGenerator(10, 8).generate();
    EXPECT_TRUE(c.structurallyEquals(d));
}

namespace {

// Canonical (sorted) edge list: GraphBuilder's scatter order depends on
// thread scheduling, so adjacency order is arbitrary — but the edge *set*
// must not be.
std::vector<std::tuple<node, node, edgeweight>> canonicalEdges(
    const Graph& g) {
    std::vector<std::tuple<node, node, edgeweight>> edges;
    edges.reserve(g.numberOfEdges());
    g.forEdges([&](node u, node v, edgeweight w) {
        edges.emplace_back(u, v, w);
    });
    std::sort(edges.begin(), edges.end());
    return edges;
}

} // namespace

// Satellite regression: generators draw from per-row/per-sample counter
// streams (Random::forStream), so the same seed must yield the same graph
// no matter how many threads generate it or how iterations are scheduled.
TEST(GeneratorDeterminism, OutputIndependentOfThreadCount) {
    const int savedThreads = Parallel::maxThreads();
    const auto generateAll = [](int threads) {
        Parallel::setThreads(threads);
        Random::setSeed(20260806);
        std::vector<std::vector<std::tuple<node, node, edgeweight>>> out;
        out.push_back(canonicalEdges(ErdosRenyiGenerator(800, 0.02).generate()));
        out.push_back(canonicalEdges(
            PlantedPartitionGenerator(600, 6, 0.2, 0.01).generate()));
        out.push_back(canonicalEdges(RmatGenerator(10, 8).generate()));
        out.push_back(canonicalEdges(GridGenerator(40, 25, 0.3).generate()));
        return out;
    };
    const auto reference = generateAll(1);
    for (int threads : {2, 4}) {
        const auto got = generateAll(threads);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(got[i], reference[i])
                << "generator #" << i << " diverged at " << threads
                << " threads";
        }
    }
    Parallel::setThreads(savedThreads);
}
