// Integration tests: full pipelines across modules — generate → detect →
// score → coarsen → visualize → persist, exactly the workflows the
// examples and benches run.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "baselines/registry.hpp"
#include "coarsening/parallel_coarsening.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "generators/lfr.hpp"
#include "generators/rmat.hpp"
#include "io/binary_io.hpp"
#include "io/dot_writer.hpp"
#include "io/metis_io.hpp"
#include "io/partition_io.hpp"
#include "quality/coverage.hpp"
#include "quality/graph_stats.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

std::filesystem::path tempDir() {
    const auto stamp =
        std::chrono::steady_clock::now().time_since_epoch().count();
    auto dir = std::filesystem::temp_directory_path() /
               ("grapr_integration_" + std::to_string(stamp));
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

TEST(Integration, LfrDetectScoreRoundTrip) {
    Random::setSeed(130);
    LfrParameters params;
    params.n = 3000;
    params.mu = 0.3;
    LfrGenerator gen(params);
    Graph g = gen.generate();

    Plm plm;
    const Partition zeta = plm.run(g);
    const double q = Modularity().getQuality(zeta, g);
    const double cov = Coverage().getQuality(zeta, g);
    EXPECT_GT(q, 0.3);
    EXPECT_GT(cov, q); // coverage upper-bounds modularity's first term
    EXPECT_GT(jaccardIndex(zeta, gen.groundTruth()), 0.6);
}

TEST(Integration, PersistGraphAndPartitionThenRevalidate) {
    Random::setSeed(131);
    const auto dir = tempDir();
    Graph g = RmatGenerator(11, 8).generate();
    const Partition zeta = Plm().run(g);
    const double q = Modularity().getQuality(zeta, g);

    io::writeBinary(g, (dir / "g.grpr").string());
    io::writePartition(zeta, (dir / "z.part").string());

    Graph g2 = io::readBinary((dir / "g.grpr").string());
    Partition z2 = io::readPartition((dir / "z.part").string());
    EXPECT_TRUE(g2.structurallyEquals(g));
    EXPECT_NEAR(Modularity().getQuality(z2, g2), q, 1e-12);
    std::filesystem::remove_all(dir);
}

TEST(Integration, CommunityGraphVisualizationPipeline) {
    // The Figure-11 pipeline: detect, coarsen by communities, emit DOT.
    Random::setSeed(132);
    const auto dir = tempDir();
    LfrParameters params;
    params.n = 1000;
    LfrGenerator gen(params);
    Graph g = gen.generate();
    Partition zeta = Plm().run(g);
    zeta.compact();

    const CoarseningResult result =
        ParallelPartitionCoarsening().run(g, zeta);
    const auto sizes = zeta.subsetSizes();
    io::writeCommunityGraphDot(result.coarseGraph, sizes,
                               (dir / "communities.dot").string());
    std::ifstream in(dir / "communities.dot");
    EXPECT_TRUE(in.good());
    std::string firstLine;
    std::getline(in, firstLine);
    EXPECT_EQ(firstLine, "graph communities {");
    std::filesystem::remove_all(dir);
}

TEST(Integration, MetisExportImportAcrossAlgorithms) {
    Random::setSeed(133);
    const auto dir = tempDir();
    LfrParameters params;
    params.n = 800;
    LfrGenerator gen(params);
    Graph g = gen.generate();
    io::writeMetis(g, (dir / "g.metis").string());
    Graph loaded = io::readMetis((dir / "g.metis").string());

    // Same graph -> the deterministic profile must agree.
    const GraphProfile a = profileGraph(g);
    const GraphProfile b = profileGraph(loaded);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.m, b.m);
    EXPECT_EQ(a.maxDegree, b.maxDegree);
    EXPECT_EQ(a.components, b.components);
    EXPECT_NEAR(a.averageLcc, b.averageLcc, 1e-12);
    std::filesystem::remove_all(dir);
}

TEST(Integration, ThreadCountSweepGivesValidSolutions) {
    // The strong-scaling harness shape: same instance, threads 1..4, every
    // run must produce a complete partition with sane modularity. (On this
    // container >1 threads oversubscribes a single core; correctness — not
    // speedup — is what this test pins.)
    Random::setSeed(134);
    LfrParameters params;
    params.n = 2000;
    params.mu = 0.4;
    LfrGenerator gen(params);
    Graph g = gen.generate();

    const int original = Parallel::maxThreads();
    for (int threads : {1, 2, 4}) {
        Parallel::setThreads(threads);
        Random::setSeed(134);
        const Partition viaPlp = Plp().run(g);
        const Partition viaPlm = Plm().run(g);
        EXPECT_TRUE(viaPlp.isComplete());
        EXPECT_TRUE(viaPlm.isComplete());
        const double qPlm = Modularity().getQuality(viaPlm, g);
        EXPECT_GT(qPlm, 0.25) << "threads=" << threads;
    }
    Parallel::setThreads(original);
}

TEST(Integration, FullComparisonSweepOnOneInstance) {
    // Miniature of the Fig. 5 Pareto harness: every registered algorithm on
    // one planted instance; all must return complete partitions and the
    // quality ordering PLM >= PLP - eps must hold.
    Random::setSeed(135);
    LfrParameters params;
    params.n = 1000;
    params.mu = 0.35;
    LfrGenerator gen(params);
    Graph g = gen.generate();

    double plpQ = 0.0, plmQ = 0.0;
    for (const auto& name : detectorNames()) {
        auto detector = makeDetector(name);
        const Partition zeta = detector->run(g);
        ASSERT_TRUE(zeta.isComplete()) << name;
        const double q = Modularity().getQuality(zeta, g);
        EXPECT_GT(q, -0.5) << name;
        EXPECT_LT(q, 1.0) << name;
        if (name == "PLP") plpQ = q;
        if (name == "PLM") plmQ = q;
    }
    EXPECT_GE(plmQ, plpQ - 0.05);
}
