// Unit tests for the support module: RNG determinism and distributions,
// parallel primitives, the timestamped sparse accumulator, timers, logging.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "support/common.hpp"
#include "support/logging.hpp"
#include "support/parallel.hpp"
#include "support/progress.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

using namespace grapr;

TEST(SplitMix64, DeterministicSequence) {
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
    SplitMix64 a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() != b()) ++differing;
    }
    EXPECT_GT(differing, 60);
}

TEST(Random, SetSeedReproduces) {
    Random::setSeed(99);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 32; ++i) first.push_back(Random::integer(1000));
    Random::setSeed(99);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(Random::integer(1000), first[i]);
}

TEST(Random, IntegerRespectsBound) {
    Random::setSeed(1);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(Random::integer(17), 17u);
    }
}

TEST(Random, IntegerBoundOneIsZero) {
    Random::setSeed(1);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(Random::integer(1), 0u);
}

TEST(Random, IntegerInclusiveRange) {
    Random::setSeed(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = Random::integer(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all three values hit
}

TEST(Random, RealInUnitInterval) {
    Random::setSeed(2);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double r = Random::real();
        ASSERT_GE(r, 0.0);
        ASSERT_LT(r, 1.0);
        sum += r;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Random, ChanceExtremes) {
    Random::setSeed(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(Random::chance(0.0));
        EXPECT_TRUE(Random::chance(1.0));
    }
}

TEST(Random, GeometricSkipMatchesExpectation) {
    Random::setSeed(4);
    const double p = 0.1;
    double total = 0.0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        total += static_cast<double>(Random::geometricSkip(p));
    }
    // E[failures before success] = (1-p)/p = 9.
    EXPECT_NEAR(total / samples, 9.0, 0.3);
}

TEST(Random, GeometricSkipDegenerate) {
    Random::setSeed(4);
    EXPECT_EQ(Random::geometricSkip(1.0), 0u);
    EXPECT_EQ(Random::geometricSkip(0.0), std::numeric_limits<count>::max());
}

TEST(Random, ShufflePermutes) {
    Random::setSeed(6);
    std::vector<int> values(100);
    std::iota(values.begin(), values.end(), 0);
    auto shuffled = values;
    Random::shuffle(shuffled.begin(), shuffled.end());
    EXPECT_NE(shuffled, values); // astronomically unlikely to be identity
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(PowerLawSampler, RespectsBounds) {
    Random::setSeed(7);
    PowerLawSampler sampler(3, 50, 2.5);
    for (int i = 0; i < 5000; ++i) {
        const count v = sampler.sample();
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 50u);
    }
}

TEST(PowerLawSampler, HeavyHead) {
    Random::setSeed(8);
    PowerLawSampler sampler(1, 1000, 2.5);
    count atMinimum = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
        if (sampler.sample() == 1) ++atMinimum;
    }
    // For gamma=2.5 the mass at k=1 is about 1/zeta(2.5) ~ 0.745.
    EXPECT_NEAR(static_cast<double>(atMinimum) / samples, 0.745, 0.03);
}

TEST(PowerLawSampler, MeanMatchesEmpirical) {
    Random::setSeed(9);
    PowerLawSampler sampler(2, 100, 2.0);
    double total = 0.0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        total += static_cast<double>(sampler.sample());
    }
    EXPECT_NEAR(total / samples, sampler.mean(), 0.15);
}

TEST(PowerLawSampler, RejectsInvalidBounds) {
    EXPECT_THROW(PowerLawSampler(0, 5, 2.0), std::runtime_error);
    EXPECT_THROW(PowerLawSampler(6, 5, 2.0), std::runtime_error);
}

TEST(ParallelPrefixSum, SmallSequential) {
    std::vector<count> values = {3, 1, 4, 1, 5};
    const count total = Parallel::prefixSum(values);
    EXPECT_EQ(total, 14u);
    EXPECT_EQ(values, (std::vector<count>{0, 3, 4, 8, 9}));
}

TEST(ParallelPrefixSum, Empty) {
    std::vector<count> values;
    EXPECT_EQ(Parallel::prefixSum(values), 0u);
}

TEST(ParallelPrefixSum, LargeMatchesSequentialOracle) {
    Random::setSeed(10);
    std::vector<count> values(1 << 17);
    for (auto& v : values) v = Random::integer(10);
    std::vector<count> oracle = values;
    count running = 0;
    for (auto& v : oracle) {
        const count x = v;
        v = running;
        running += x;
    }
    EXPECT_EQ(Parallel::prefixSum(values), running);
    EXPECT_EQ(values, oracle);
}

TEST(ParallelSum, MatchesStdAccumulate) {
    std::vector<double> values(12345);
    for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = static_cast<double>(i % 7) * 0.5;
    }
    const double expected =
        std::accumulate(values.begin(), values.end(), 0.0);
    EXPECT_NEAR(Parallel::sum(values), expected, 1e-9);
}

TEST(ParallelMax, FindsMaximum) {
    std::vector<count> values = {5, 2, 9, 3, 9, 1};
    EXPECT_EQ(Parallel::max(values), 9u);
    values.clear();
    EXPECT_EQ(Parallel::max(values), 0u);
}

TEST(SparseAccumulator, AccumulatesAndClears) {
    SparseAccumulator acc(10);
    acc.add(3, 1.5);
    acc.add(3, 2.5);
    acc.add(7, 1.0);
    EXPECT_DOUBLE_EQ(acc[3], 4.0);
    EXPECT_DOUBLE_EQ(acc[7], 1.0);
    EXPECT_DOUBLE_EQ(acc[0], 0.0);
    EXPECT_EQ(acc.touched().size(), 2u);
    acc.clear();
    EXPECT_DOUBLE_EQ(acc[3], 0.0);
    EXPECT_TRUE(acc.touched().empty());
    acc.add(3, 1.0);
    EXPECT_DOUBLE_EQ(acc[3], 1.0); // stale value from before clear is gone
}

TEST(SparseAccumulator, TouchedOrderIsFirstTouch) {
    SparseAccumulator acc(5);
    acc.add(4, 1);
    acc.add(1, 1);
    acc.add(4, 1);
    acc.add(2, 1);
    EXPECT_EQ(acc.touched(), (std::vector<grapr::index>{4, 1, 2}));
}

TEST(SparseAccumulator, SurvivesManyGenerations) {
    SparseAccumulator acc(4);
    for (int g = 0; g < 10000; ++g) {
        acc.add(g % 4, 1.0);
        EXPECT_DOUBLE_EQ(acc[g % 4], 1.0);
        acc.clear();
    }
}

TEST(Timer, MeasuresElapsedTime) {
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(t.elapsed(), 0.015);
    EXPECT_LT(t.elapsed(), 5.0);
}

TEST(Timer, RestartResets) {
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    t.restart();
    EXPECT_LT(t.elapsed(), 0.010);
}

TEST(TimeRepeated, CollectsStats) {
    const TimingStats stats = timeRepeated([] {}, 5);
    EXPECT_GE(stats.median, stats.minimum);
    EXPECT_GE(stats.mean, 0.0);
}

TEST(FormatDuration, PicksUnits) {
    EXPECT_NE(formatDuration(0.0000005).find("us"), std::string::npos);
    EXPECT_NE(formatDuration(0.005).find("ms"), std::string::npos);
    EXPECT_NE(formatDuration(2.5).find(" s"), std::string::npos);
    EXPECT_NE(formatDuration(300.0).find("min"), std::string::npos);
}

TEST(Logging, LevelRoundTrip) {
    EXPECT_EQ(Log::parseLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(Log::parseLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(Log::parseLevel("nonsense"), LogLevel::Off);
    const LogLevel before = Log::level();
    Log::setLevel(LogLevel::Error);
    EXPECT_EQ(Log::level(), LogLevel::Error);
    Log::setLevel(before);
}

TEST(IterationTracer, RecordsAndClears) {
    IterationTracer tracer;
    tracer.record(1, 100, 40);
    tracer.record(2, 60, 10);
    ASSERT_EQ(tracer.records().size(), 2u);
    EXPECT_EQ(tracer.records()[1].updated, 10u);
    tracer.clear();
    EXPECT_TRUE(tracer.records().empty());
}

TEST(Require, ThrowsOnViolation) {
    EXPECT_THROW(require(false, "boom"), std::runtime_error);
    EXPECT_NO_THROW(require(true, "fine"));
}

// Satellite regression: prefixSum distributes scan blocks via worksharing
// loops instead of assuming team member t exists for every requested block
// t (num_threads is only a request). The result must be exact for any
// thread count, including when it changes between calls.
TEST(ParallelPrefixSum, ExactAcrossThreadCounts) {
    const int savedThreads = Parallel::maxThreads();
    std::vector<count> base(1u << 17);
    for (std::size_t i = 0; i < base.size(); ++i) {
        base[i] = static_cast<count>((i * 2654435761u) % 97);
    }
    std::vector<count> expected = base;
    count running = 0;
    for (auto& v : expected) {
        const count x = v;
        v = running;
        running += x;
    }
    for (int threads : {1, 2, 3, 5, 8}) {
        Parallel::setThreads(threads);
        std::vector<count> values = base;
        EXPECT_EQ(Parallel::prefixSum(values), running)
            << "total wrong at " << threads << " threads";
        EXPECT_EQ(values, expected) << "scan wrong at " << threads
                                    << " threads";
    }
    Parallel::setThreads(savedThreads);
}
