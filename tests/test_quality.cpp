// Quality measures: modularity against hand-computed values, coverage,
// partition similarity, connected components, clustering coefficients,
// graph profiles, community statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "generators/erdos_renyi.hpp"
#include "generators/simple_graphs.hpp"
#include "quality/clustering_coefficient.hpp"
#include "quality/community_stats.hpp"
#include "quality/connected_components.hpp"
#include "quality/coverage.hpp"
#include "quality/graph_stats.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

/// Two triangles joined by one edge: 0-1-2 and 3-4-5, bridge 2-3.
Graph twoTriangles() {
    Graph g(6, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(3, 5);
    g.addEdge(2, 3);
    return g;
}

Partition twoTrianglesTruth() {
    Partition p(6);
    for (node v = 0; v < 6; ++v) p.set(v, v < 3 ? 0 : 1);
    p.setUpperBound(2);
    return p;
}

} // namespace

TEST(Modularity, HandComputedTwoTriangles) {
    // m = 7, each community: intra weight 3, volume 7.
    // mod = 2*(3/7 - 49/196) = 6/7 - 1/2 = 5/14.
    const Graph g = twoTriangles();
    const double q = Modularity().getQuality(twoTrianglesTruth(), g);
    EXPECT_NEAR(q, 5.0 / 14.0, 1e-12);
}

TEST(Modularity, AllInOneCommunityIsZero) {
    const Graph g = twoTriangles();
    Partition p(6);
    p.allToOne();
    EXPECT_NEAR(Modularity().getQuality(p, g), 0.0, 1e-12);
}

TEST(Modularity, SingletonsAreNegative) {
    const Graph g = twoTriangles();
    Partition p(6);
    p.allToSingletons();
    // Σ vol² = 6 communities: nodes have volumes (2,2,3,3,2,2) -> wait:
    // degrees 2,2,3,3,2,2 = volumes. Σ vol²/4m² with m=7.
    const double expected =
        0.0 - (4 + 4 + 9 + 9 + 4 + 4) / (4.0 * 49.0);
    EXPECT_NEAR(Modularity().getQuality(p, g), expected, 1e-12);
}

TEST(Modularity, SelfLoopHandComputed) {
    // Single node with a self-loop of weight 2: mod = 2/2 - 16/(4*4) = 0.
    Graph g(1, true);
    g.addEdge(0, 0, 2.0);
    Partition p(1);
    p.allToOne();
    EXPECT_NEAR(Modularity().getQuality(p, g), 0.0, 1e-12);
}

TEST(Modularity, WeightedGraph) {
    // Two nodes, one edge w=3 in one community: 3/3 - 36/36 = 0; split:
    // 0 - (9+9)/36 = -0.5.
    Graph g(2, true);
    g.addEdge(0, 1, 3.0);
    Partition together(2);
    together.allToOne();
    EXPECT_NEAR(Modularity().getQuality(together, g), 0.0, 1e-12);
    Partition apart(2);
    apart.allToSingletons();
    EXPECT_NEAR(Modularity().getQuality(apart, g), -0.5, 1e-12);
}

TEST(Modularity, GammaResolutionLimits) {
    const Graph g = twoTriangles();
    const Partition truth = twoTrianglesTruth();
    Partition one(6);
    one.allToOne();
    Partition singletons(6);
    singletons.allToSingletons();
    // gamma -> 0: the null-model penalty vanishes; all-in-one achieves
    // maximal coverage and is optimal.
    EXPECT_GT(Modularity(0.0).getQuality(one, g),
              Modularity(0.0).getQuality(singletons, g));
    // Large gamma: penalty dominates; singletons beat all-in-one.
    EXPECT_GT(Modularity(14.0).getQuality(singletons, g),
              Modularity(14.0).getQuality(one, g));
}

TEST(Modularity, DeltaFormulaMatchesRecomputation) {
    // Moving node 2 from community {0,1,2} to {3,4,5} in twoTriangles:
    // delta formula must equal the difference of full evaluations.
    const Graph g = twoTriangles();
    Partition before = twoTrianglesTruth();
    Partition after = before;
    after.set(2, 1);
    const double qBefore = Modularity().getQuality(before, g);
    const double qAfter = Modularity().getQuality(after, g);

    // Quantities for the closed form: u=2, C={0,1,2}, D={3,4,5}.
    const double omegaE = 7.0;
    const double weightToC = 2.0; // edges 2-0, 2-1
    const double weightToD = 1.0; // bridge 2-3
    const double volC = 4.0;      // vol({0,1}) = 2+2
    const double volD = 7.0;      // vol({3,4,5}) = 3+2+2
    const double volU = 3.0;
    const double delta =
        deltaModularity(omegaE, weightToC, weightToD, volC, volD, volU);
    EXPECT_NEAR(delta, qAfter - qBefore, 1e-12);
}

TEST(Modularity, IncompletePartitionThrows) {
    const Graph g = twoTriangles();
    Partition p(6); // all unassigned
    p.setUpperBound(1);
    EXPECT_THROW(Modularity().getQuality(p, g), std::runtime_error);
}

TEST(Coverage, HandComputed) {
    const Graph g = twoTriangles();
    EXPECT_NEAR(Coverage().getQuality(twoTrianglesTruth(), g), 6.0 / 7.0,
                1e-12);
    Partition one(6);
    one.allToOne();
    EXPECT_NEAR(Coverage().getQuality(one, g), 1.0, 1e-12);
    Partition singletons(6);
    singletons.allToSingletons();
    EXPECT_NEAR(Coverage().getQuality(singletons, g), 0.0, 1e-12);
}

TEST(Coverage, SelfLoopIsIntra) {
    Graph g(2, true);
    g.addEdge(0, 0, 1.0);
    g.addEdge(0, 1, 1.0);
    Partition singletons(2);
    singletons.allToSingletons();
    EXPECT_NEAR(Coverage().getQuality(singletons, g), 0.5, 1e-12);
}

TEST(PairCounts, HandComputed) {
    // A: {0,1}{2,3}; B: {0,1,2}{3}. n=4, pairs=6.
    Partition a(4), b(4);
    a.set(0, 0); a.set(1, 0); a.set(2, 1); a.set(3, 1);
    b.set(0, 0); b.set(1, 0); b.set(2, 0); b.set(3, 1);
    const PairCounts c = countPairs(a, b);
    EXPECT_EQ(c.bothSame, 1u);      // {0,1}
    EXPECT_EQ(c.firstOnly, 1u);     // {2,3}
    EXPECT_EQ(c.secondOnly, 2u);    // {0,2},{1,2}
    EXPECT_EQ(c.bothDifferent, 2u); // {0,3},{1,3}
}

TEST(Jaccard, IdenticalPartitionsGiveOne) {
    Partition a(10);
    for (node v = 0; v < 10; ++v) a.set(v, v % 3);
    EXPECT_DOUBLE_EQ(jaccardIndex(a, a), 1.0);
    EXPECT_DOUBLE_EQ(randIndex(a, a), 1.0);
}

TEST(Jaccard, LabelPermutationInvariant) {
    Partition a(6), b(6);
    for (node v = 0; v < 6; ++v) {
        a.set(v, v / 2);       // {0,1}{2,3}{4,5}
        b.set(v, 9 - v / 2);   // same grouping, different ids
    }
    EXPECT_DOUBLE_EQ(jaccardIndex(a, b), 1.0);
}

TEST(Jaccard, DisjointGroupings) {
    // A groups by parity of v/3, B by v%3: no pair agrees in both... use a
    // case with known value: A={0,1}{2,3}, B={0,2}{1,3}: n11=0.
    Partition a(4), b(4);
    a.set(0, 0); a.set(1, 0); a.set(2, 1); a.set(3, 1);
    b.set(0, 0); b.set(1, 1); b.set(2, 0); b.set(3, 1);
    EXPECT_DOUBLE_EQ(jaccardIndex(a, b), 0.0);
    // Rand: n00 = 2 ({0,3},{1,2}), total 6 -> 1/3.
    EXPECT_NEAR(randIndex(a, b), 1.0 / 3.0, 1e-12);
}

TEST(Jaccard, AllSingletonsBothIsOne) {
    Partition a(5), b(5);
    a.allToSingletons();
    b.allToSingletons();
    EXPECT_DOUBLE_EQ(jaccardIndex(a, b), 1.0);
}

TEST(Nmi, IdenticalIsOne) {
    Partition a(12);
    for (node v = 0; v < 12; ++v) a.set(v, v % 4);
    EXPECT_NEAR(normalizedMutualInformation(a, a), 1.0, 1e-12);
}

TEST(Nmi, IndependentIsNearZero) {
    // A: halves; B: parity. Perfectly independent on 8 nodes.
    Partition a(8), b(8);
    for (node v = 0; v < 8; ++v) {
        a.set(v, v / 4);
        b.set(v, v % 2);
    }
    EXPECT_NEAR(normalizedMutualInformation(a, b), 0.0, 1e-12);
}

TEST(Nmi, TrivialPartitionsHandled) {
    Partition a(5), b(5);
    a.allToOne();
    b.allToOne();
    EXPECT_DOUBLE_EQ(normalizedMutualInformation(a, b), 1.0);
}

TEST(ConnectedComponents, CountsAndSizes) {
    Graph g(7, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    // 5, 6 isolated.
    ConnectedComponents cc(g);
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 4u);
    EXPECT_EQ(cc.largestComponentSize(), 3u);
}

TEST(ConnectedComponents, LongPath) {
    Graph g = SimpleGraphs::path(5000);
    ConnectedComponents cc(g);
    cc.run();
    EXPECT_EQ(cc.numberOfComponents(), 1u);
}

TEST(ConnectedComponents, RequiresRun) {
    Graph g(3, false);
    ConnectedComponents cc(g);
    EXPECT_THROW(cc.numberOfComponents(), std::runtime_error);
}

TEST(ClusteringCoefficient, CliqueIsOne) {
    Graph g = SimpleGraphs::clique(8);
    EXPECT_NEAR(ClusteringCoefficient::averageLocal(g), 1.0, 1e-12);
}

TEST(ClusteringCoefficient, StarIsZero) {
    Graph g = SimpleGraphs::star(10);
    EXPECT_NEAR(ClusteringCoefficient::averageLocal(g), 0.0, 1e-12);
}

TEST(ClusteringCoefficient, HandComputedKite) {
    // Triangle 0-1-2 plus edge 2-3. LCC: 0:1, 1:1, 2:1/3, 3:skip (deg 1).
    Graph g(4, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(2, 3);
    EXPECT_NEAR(ClusteringCoefficient::averageLocal(g), (1.0 + 1.0 + 1.0 / 3.0) / 3.0,
                1e-12);
}

TEST(ClusteringCoefficient, ApproxMatchesExactOnClique) {
    Random::setSeed(60);
    Graph g = SimpleGraphs::clique(20);
    EXPECT_NEAR(ClusteringCoefficient::approxAverageLocal(g, 20000), 1.0,
                1e-9);
}

TEST(ClusteringCoefficient, ApproxCloseToExactOnRandomGraph) {
    Random::setSeed(61);
    Graph g = ErdosRenyiGenerator(300, 0.1).generate();
    const double exact = ClusteringCoefficient::averageLocal(g);
    const double approx =
        ClusteringCoefficient::approxAverageLocal(g, 200000);
    EXPECT_NEAR(approx, exact, 0.02);
}

TEST(GraphProfile, MatchesKnownGraph) {
    const Graph g = twoTriangles();
    const GraphProfile p = profileGraph(g);
    EXPECT_EQ(p.n, 6u);
    EXPECT_EQ(p.m, 7u);
    EXPECT_EQ(p.maxDegree, 3u);
    EXPECT_EQ(p.components, 1u);
    EXPECT_GT(p.averageLcc, 0.5);
    const std::string row = formatProfileRow("twoTriangles", p);
    EXPECT_NE(row.find("twoTriangles"), std::string::npos);
    EXPECT_NE(row.find("7"), std::string::npos);
}

TEST(CommunityStats, SizesAndCut) {
    const Graph g = twoTriangles();
    const Partition truth = twoTrianglesTruth();
    const CommunitySizeStats sizes = communitySizeStats(truth);
    EXPECT_EQ(sizes.communities, 2u);
    EXPECT_EQ(sizes.smallest, 3u);
    EXPECT_EQ(sizes.largest, 3u);
    EXPECT_DOUBLE_EQ(sizes.average, 3.0);
    EXPECT_DOUBLE_EQ(sizes.median, 3.0);
    const EdgeCut cut = communityEdgeCut(truth, g);
    EXPECT_DOUBLE_EQ(cut.intraWeight, 6.0);
    EXPECT_DOUBLE_EQ(cut.interWeight, 1.0);
}

TEST(CommunityStats, EmptyPartition) {
    Partition p(3); // unassigned
    const CommunitySizeStats stats = communitySizeStats(p);
    EXPECT_EQ(stats.communities, 0u);
}
