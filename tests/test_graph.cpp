// Unit tests for the Graph data structure, GraphBuilder and GraphTools.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_tools.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

Graph triangleWithTail() {
    // 0-1-2 triangle, 2-3 tail.
    Graph g(4, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(2, 3);
    return g;
}

} // namespace

TEST(Graph, EmptyConstruction) {
    Graph g(0, false);
    EXPECT_TRUE(g.isEmpty());
    EXPECT_EQ(g.numberOfNodes(), 0u);
    EXPECT_EQ(g.numberOfEdges(), 0u);
    g.checkConsistency();
}

TEST(Graph, AddEdgeBasics) {
    Graph g = triangleWithTail();
    EXPECT_EQ(g.numberOfNodes(), 4u);
    EXPECT_EQ(g.numberOfEdges(), 4u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 3));
    EXPECT_EQ(g.degree(2), 3u);
    EXPECT_EQ(g.degree(3), 1u);
    g.checkConsistency();
}

TEST(Graph, UnweightedWeightIsOne) {
    Graph g = triangleWithTail();
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(g.weight(0, 3), 0.0);
    EXPECT_DOUBLE_EQ(g.totalEdgeWeight(), 4.0);
}

TEST(Graph, WeightedEdges) {
    Graph g(3, true);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 0.5);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 2.5);
    EXPECT_DOUBLE_EQ(g.weight(1, 0), 2.5);
    EXPECT_DOUBLE_EQ(g.totalEdgeWeight(), 3.0);
    EXPECT_DOUBLE_EQ(g.weightedDegree(1), 3.0);
    g.checkConsistency();
}

TEST(Graph, SelfLoopSemantics) {
    // Paper definition: vol(u) counts the self-loop twice.
    Graph g(2, true);
    g.addEdge(0, 0, 3.0);
    g.addEdge(0, 1, 1.0);
    EXPECT_EQ(g.numberOfSelfLoops(), 1u);
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_EQ(g.degree(0), 2u); // loop stored once
    EXPECT_DOUBLE_EQ(g.weightedDegree(0), 4.0);
    EXPECT_DOUBLE_EQ(g.volume(0), 7.0); // 4 + 3 again
    EXPECT_DOUBLE_EQ(g.totalEdgeWeight(), 4.0);
    g.checkConsistency();
}

TEST(Graph, VolumeIdentity) {
    // Sum of volumes == 2 * total edge weight, loops included.
    Graph g(3, true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 3.0);
    g.addEdge(2, 2, 1.5);
    EXPECT_DOUBLE_EQ(GraphTools::totalVolume(g), 2.0 * g.totalEdgeWeight());
}

TEST(Graph, RemoveEdge) {
    Graph g = triangleWithTail();
    g.removeEdge(0, 1);
    EXPECT_FALSE(g.hasEdge(0, 1));
    EXPECT_EQ(g.numberOfEdges(), 3u);
    EXPECT_EQ(g.degree(0), 1u);
    g.checkConsistency();
    EXPECT_THROW(g.removeEdge(0, 1), std::runtime_error);
}

TEST(Graph, RemoveSelfLoop) {
    Graph g(2, false);
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    g.removeEdge(0, 0);
    EXPECT_EQ(g.numberOfSelfLoops(), 0u);
    EXPECT_EQ(g.numberOfEdges(), 1u);
    g.checkConsistency();
}

TEST(Graph, RemoveNode) {
    Graph g = triangleWithTail();
    g.removeNode(2);
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_FALSE(g.hasNode(2));
    EXPECT_EQ(g.numberOfEdges(), 1u); // only 0-1 remains
    EXPECT_EQ(g.degree(3), 0u);
    g.checkConsistency();
}

TEST(Graph, AddNodeAfterRemoval) {
    Graph g = triangleWithTail();
    g.removeNode(3);
    const node v = g.addNode();
    EXPECT_EQ(v, 4u);
    EXPECT_TRUE(g.hasNode(4));
    g.addEdge(4, 0);
    EXPECT_TRUE(g.hasEdge(0, 4));
    g.checkConsistency();
}

TEST(Graph, AddEdgeChecked) {
    Graph g(3, false);
    EXPECT_TRUE(g.addEdgeChecked(0, 1));
    EXPECT_FALSE(g.addEdgeChecked(0, 1));
    EXPECT_FALSE(g.addEdgeChecked(1, 0));
    EXPECT_EQ(g.numberOfEdges(), 1u);
}

TEST(Graph, IncreaseWeightExistingAndNew) {
    Graph g(3, true);
    g.addEdge(0, 1, 1.0);
    g.increaseWeight(0, 1, 2.0);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 3.0);
    g.increaseWeight(1, 2, 5.0); // creates the edge
    EXPECT_DOUBLE_EQ(g.weight(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(g.totalEdgeWeight(), 8.0);
    g.checkConsistency();
}

TEST(Graph, IncreaseWeightOnSelfLoop) {
    Graph g(2, true);
    g.addEdge(1, 1, 1.0);
    g.increaseWeight(1, 1, 2.0);
    EXPECT_DOUBLE_EQ(g.weight(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(g.volume(1), 6.0);
    g.checkConsistency();
}

TEST(Graph, ForEdgesVisitsEachOnce) {
    Graph g = triangleWithTail();
    g.addEdge(3, 3); // loop
    std::set<std::pair<node, node>> seen;
    g.forEdges([&](node u, node v, edgeweight w) {
        EXPECT_DOUBLE_EQ(w, 1.0);
        EXPECT_TRUE(seen.emplace(u, v).second) << "edge visited twice";
    });
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Graph, ParallelForEdgesMatchesSequential) {
    Random::setSeed(11);
    Graph g(200, false);
    for (int i = 0; i < 500; ++i) {
        const node u = static_cast<node>(Random::integer(200));
        const node v = static_cast<node>(Random::integer(200));
        if (!g.hasEdge(u, v)) g.addEdge(u, v);
    }
    count sequential = 0;
    g.forEdges([&](node, node, edgeweight) { ++sequential; });
    std::atomic<count> parallel{0};
    g.parallelForEdges([&](node, node, edgeweight) { ++parallel; });
    EXPECT_EQ(sequential, g.numberOfEdges());
    EXPECT_EQ(parallel.load(), g.numberOfEdges());
}

TEST(Graph, ForNeighborsDeliversWeights) {
    Graph g(3, true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(0, 2, 3.0);
    double total = 0.0;
    g.forNeighborsOf(0, [&](node, edgeweight w) { total += w; });
    EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Graph, NodeIdsSkipsRemoved) {
    Graph g = triangleWithTail();
    g.removeNode(1);
    EXPECT_EQ(g.nodeIds(), (std::vector<node>{0, 2, 3}));
}

TEST(Graph, ToWeightedPreservesStructure) {
    Graph g = triangleWithTail();
    Graph w = g.toWeighted();
    EXPECT_TRUE(w.isWeighted());
    EXPECT_TRUE(w.structurallyEquals(g));
    w.checkConsistency();
}

TEST(Graph, StructurallyEqualsDetectsDifference) {
    Graph a = triangleWithTail();
    Graph b = triangleWithTail();
    EXPECT_TRUE(a.structurallyEquals(b));
    b.removeEdge(2, 3);
    b.addEdge(1, 3);
    EXPECT_FALSE(a.structurallyEquals(b));
}

TEST(Graph, SortNeighborListsKeepsWeights) {
    Graph g(4, true);
    g.addEdge(0, 3, 3.0);
    g.addEdge(0, 1, 1.0);
    g.addEdge(0, 2, 2.0);
    g.sortNeighborLists();
    EXPECT_EQ(g.getIthNeighbor(0, 0), 1u);
    EXPECT_DOUBLE_EQ(g.getIthNeighborWeight(0, 0), 1.0);
    EXPECT_EQ(g.getIthNeighbor(0, 2), 3u);
    EXPECT_DOUBLE_EQ(g.getIthNeighborWeight(0, 2), 3.0);
    g.checkConsistency();
}

TEST(Graph, AddEdgeToMissingNodeThrows) {
    Graph g(2, false);
    EXPECT_THROW(g.addEdge(0, 5), std::runtime_error);
    g.removeNode(1);
    EXPECT_THROW(g.addEdge(0, 1), std::runtime_error);
}

TEST(GraphBuilder, BuildsFromTriples) {
    GraphBuilder builder(4, false);
    builder.addEdge(0, 1);
    builder.addEdge(2, 1);
    builder.addEdge(3, 3);
    Graph g = builder.build();
    EXPECT_EQ(g.numberOfEdges(), 3u);
    EXPECT_EQ(g.numberOfSelfLoops(), 1u);
    EXPECT_TRUE(g.hasEdge(1, 2));
    g.checkConsistency();
}

TEST(GraphBuilder, DedupRemovesDuplicatesBothOrientations) {
    GraphBuilder builder(3, false);
    builder.addEdge(0, 1);
    builder.addEdge(1, 0);
    builder.addEdge(0, 1);
    builder.addEdge(1, 2);
    Graph g = builder.build(/*dedup=*/true);
    EXPECT_EQ(g.numberOfEdges(), 2u);
    EXPECT_EQ(g.degree(0), 1u);
    g.checkConsistency();
}

TEST(GraphBuilder, DedupSumsWeights) {
    GraphBuilder builder(2, true);
    builder.addEdge(0, 1, 1.5);
    builder.addEdge(1, 0, 2.5);
    Graph g = builder.build(/*dedup=*/true, /*sumWeights=*/true);
    EXPECT_EQ(g.numberOfEdges(), 1u);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 4.0);
    g.checkConsistency();
}

TEST(GraphBuilder, ParallelInsertion) {
    const count n = 1000;
    GraphBuilder builder(n, false);
#pragma omp parallel for
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n) - 1; ++v) {
        builder.addEdge(static_cast<node>(v), static_cast<node>(v + 1));
    }
    Graph g = builder.build();
    EXPECT_EQ(g.numberOfEdges(), n - 1);
    g.checkConsistency();
}

TEST(GraphBuilder, RejectsOutOfRangeIds) {
    GraphBuilder builder(2, false);
    builder.addEdge(0, 5);
    EXPECT_THROW(builder.build(), std::runtime_error);
}

TEST(GraphTools, DegreeStatistics) {
    Graph g = triangleWithTail();
    const auto stats = GraphTools::degreeStatistics(g);
    EXPECT_EQ(stats.minimum, 1u);
    EXPECT_EQ(stats.maximum, 3u);
    EXPECT_DOUBLE_EQ(stats.average, 2.0);
    EXPECT_EQ(GraphTools::maxDegreeNode(g), 2u);
}

TEST(GraphTools, CompactAfterRemoval) {
    Graph g = triangleWithTail();
    g.removeNode(1);
    auto [compacted, map] = GraphTools::compact(g);
    EXPECT_EQ(compacted.numberOfNodes(), 3u);
    EXPECT_EQ(compacted.upperNodeIdBound(), 3u);
    EXPECT_EQ(map[1], none);
    // edges 0-2 and 2-3 survive under new ids.
    EXPECT_TRUE(compacted.hasEdge(map[0], map[2]));
    EXPECT_TRUE(compacted.hasEdge(map[2], map[3]));
    compacted.checkConsistency();
}

TEST(GraphTools, InducedSubgraph) {
    Graph g = triangleWithTail();
    auto [sub, map] = GraphTools::inducedSubgraph(g, {0, 1, 2});
    EXPECT_EQ(sub.numberOfNodes(), 3u);
    EXPECT_EQ(sub.numberOfEdges(), 3u); // the triangle
    sub.checkConsistency();
}

TEST(GraphTools, InducedSubgraphRejectsDuplicates) {
    Graph g = triangleWithTail();
    EXPECT_THROW(GraphTools::inducedSubgraph(g, {0, 0}), std::runtime_error);
}

TEST(GraphTools, RandomNodeOrderIsPermutation) {
    Random::setSeed(12);
    Graph g(50, false);
    auto order = GraphTools::randomNodeOrder(g);
    std::sort(order.begin(), order.end());
    EXPECT_EQ(order, g.nodeIds());
}

TEST(GraphTools, RandomNodeSkipsRemoved) {
    Random::setSeed(13);
    Graph g(10, false);
    for (node v = 0; v < 9; ++v) g.removeNode(v);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(GraphTools::randomNode(g), 9u);
}

TEST(Graph, RandomOperationSequenceStaysConsistent) {
    // Fuzz-style: a random interleaving of insertions, deletions, weight
    // updates and node removals must never break the structural
    // invariants checked by checkConsistency().
    Random::setSeed(200);
    Graph g(50, true);
    for (int step = 0; step < 2000; ++step) {
        const auto op = Random::integer(100);
        const node u = static_cast<node>(Random::integer(g.upperNodeIdBound()));
        const node v = static_cast<node>(Random::integer(g.upperNodeIdBound()));
        if (!g.hasNode(u) || !g.hasNode(v)) continue;
        if (op < 55) {
            if (!g.hasEdge(u, v)) {
                g.addEdge(u, v, 0.5 + Random::real());
            }
        } else if (op < 80) {
            if (g.hasEdge(u, v)) g.removeEdge(u, v);
        } else if (op < 95) {
            if (g.hasEdge(u, v)) g.increaseWeight(u, v, 0.25);
        } else if (g.numberOfNodes() > 10) {
            g.removeNode(u);
        }
        if (step % 250 == 0) g.checkConsistency();
    }
    g.checkConsistency();
    // The survivors still support detection end-to-end.
    EXPECT_GE(g.numberOfNodes(), 10u);
}

TEST(Graph, CopySemantics) {
    Graph g(4, true);
    g.addEdge(0, 1, 2.0);
    Graph copy = g;       // deep copy
    copy.addEdge(2, 3, 1.0);
    EXPECT_EQ(g.numberOfEdges(), 1u);
    EXPECT_EQ(copy.numberOfEdges(), 2u);
    Graph moved = std::move(copy);
    EXPECT_EQ(moved.numberOfEdges(), 2u);
    moved.checkConsistency();
}

// --- sorted adjacency lists: binary-search membership lookups --------------

TEST(Graph, SortedFlagLifecycle) {
    Graph g(4, false);
    EXPECT_TRUE(g.hasSortedNeighborLists()); // empty lists are sorted
    g.addEdge(0, 2);
    EXPECT_FALSE(g.hasSortedNeighborLists()); // append may break order
    g.sortNeighborLists();
    EXPECT_TRUE(g.hasSortedNeighborLists());
    g.addEdge(0, 1);
    EXPECT_FALSE(g.hasSortedNeighborLists());
    g.sortNeighborLists();
    EXPECT_TRUE(g.hasSortedNeighborLists());
    g.removeEdge(0, 1);
    EXPECT_FALSE(g.hasSortedNeighborLists()); // swap-with-back removal
}

TEST(Graph, SortedLookupsMatchLinearScan) {
    Random::setSeed(4242);
    const count n = 60;
    Graph g(n, true);
    for (count i = 0; i < 300; ++i) {
        const auto u = static_cast<node>(Random::integer(n));
        const auto v = static_cast<node>(Random::integer(n));
        g.addEdgeChecked(u, v, 1.0 + static_cast<double>(i % 7));
    }
    // Record ground truth while the lists are unsorted (linear scans).
    std::vector<std::vector<edgeweight>> truth(n, std::vector<edgeweight>(n));
    for (node u = 0; u < n; ++u) {
        for (node v = 0; v < n; ++v) truth[u][v] = g.weight(u, v);
    }
    g.sortNeighborLists();
    ASSERT_TRUE(g.hasSortedNeighborLists());
    for (node u = 0; u < n; ++u) {
        for (node v = 0; v < n; ++v) {
            EXPECT_EQ(g.weight(u, v), truth[u][v]) << u << "," << v;
            EXPECT_EQ(g.hasEdge(u, v), truth[u][v] != 0.0) << u << "," << v;
        }
    }
    g.checkConsistency();
}

TEST(Graph, SortedRemoveAndIncreaseWeightStayCorrect) {
    Graph g(5, true);
    g.addEdge(0, 3, 1.0);
    g.addEdge(0, 1, 2.0);
    g.addEdge(0, 4, 3.0);
    g.addEdge(0, 0, 5.0);
    g.sortNeighborLists();
    g.removeEdge(0, 3); // binary-search lookup, then unsorted from here on
    EXPECT_FALSE(g.hasEdge(0, 3));
    EXPECT_TRUE(g.hasEdge(0, 1));
    g.increaseWeight(0, 4, 1.5);
    EXPECT_DOUBLE_EQ(g.weight(0, 4), 4.5);
    EXPECT_DOUBLE_EQ(g.weight(0, 0), 5.0);
    g.checkConsistency();
}

TEST(GraphBuilder, BuiltGraphReportsUnsortedLists) {
    GraphBuilder builder(4, false);
    builder.addEdge(0, 1);
    builder.addEdge(2, 3);
    const Graph g = builder.build();
    EXPECT_FALSE(g.hasSortedNeighborLists()); // scatter order is arbitrary
    const Graph empty = GraphBuilder(3, false).build();
    EXPECT_TRUE(empty.hasSortedNeighborLists());
}

// Satellite regression for the GraphBuilder overflow path: the per-thread
// buffer pool is sized at construction, but OpenMP's thread count can be
// raised before addEdge runs. Threads beyond the pool used to alias buffer
// 0 (a data race and lost edges); they must fall back to the locked
// overflow buffer and lose nothing.
TEST(GraphBuilder, ThreadCountRaisedAfterConstructionLosesNoEdges) {
    const int savedThreads = Parallel::maxThreads();
    Parallel::setThreads(1);
    GraphBuilder builder(512, false); // pool sized for a single thread
    Parallel::setThreads(std::min(8, savedThreads > 1 ? savedThreads : 8));

    const count edges = 511;
    const auto sedges = static_cast<std::int64_t>(edges);
#pragma omp parallel for default(none) shared(builder, sedges)               \
    schedule(static)
    for (std::int64_t i = 0; i < sedges; ++i) {
        builder.addEdge(static_cast<node>(i), static_cast<node>(i + 1));
    }
    EXPECT_EQ(builder.bufferedEdges(), edges);

    const Graph g = builder.build();
    EXPECT_EQ(g.numberOfEdges(), edges);
    for (node v = 0; v < 511; ++v) {
        EXPECT_TRUE(g.hasEdge(v, v + 1)) << "lost edge {" << v << ", "
                                         << v + 1 << "}";
    }
    Parallel::setThreads(savedThreads);
}
