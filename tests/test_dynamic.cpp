// Tests for DynamicPlp: incremental community maintenance under edge
// insertions/deletions, agreement with from-scratch recomputation, and
// the locality of updates.

#include <gtest/gtest.h>

#include "community/dynamic_plp.hpp"
#include "community/plp.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "support/random.hpp"

using namespace grapr;

TEST(DynamicPlp, InitialRunMatchesPlpQuality) {
    Random::setSeed(160);
    Graph g = SimpleGraphs::cliqueChain(8, 8);
    DynamicPlp dynamic;
    dynamic.run(g);
    EXPECT_EQ(dynamic.communities().numberOfSubsets(), 8u);
}

TEST(DynamicPlp, RequiresRunBeforeUpdates) {
    Graph g(4, false);
    g.addEdge(0, 1);
    DynamicPlp dynamic;
    EXPECT_THROW(dynamic.onEdgeInsert(g, 0, 1), std::runtime_error);
}

TEST(DynamicPlp, InsertionMergesSeparatedCliques) {
    // Two cliques, no bridge: separate communities. Then densely connect
    // them: they must merge under dynamic updates.
    Random::setSeed(161);
    Graph g(12, false);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 6, v + 6);
        }
    }
    DynamicPlp dynamic;
    dynamic.run(g);
    EXPECT_NE(dynamic.communities()[0], dynamic.communities()[6]);

    dynamic.autoUpdate(false);
    for (node u = 0; u < 6; ++u) {
        for (node v = 6; v < 12; ++v) {
            g.addEdge(u, v);
            dynamic.onEdgeInsert(g, u, v);
        }
    }
    dynamic.update(g);
    // Now a 12-clique-ish graph: one community.
    EXPECT_EQ(dynamic.communities()[0], dynamic.communities()[6]);
}

TEST(DynamicPlp, DeletionSplitsBridgedCliques) {
    Random::setSeed(162);
    Graph g = SimpleGraphs::cliqueChain(2, 8); // bridge 7-8
    DynamicPlp dynamic;
    dynamic.run(g);

    g.removeEdge(7, 8);
    dynamic.onEdgeRemove(g, 7, 8);
    EXPECT_NE(dynamic.communities()[0], dynamic.communities()[8]);
    // Cliques internally intact.
    for (node v = 1; v < 8; ++v) {
        EXPECT_EQ(dynamic.communities()[v], dynamic.communities()[0]);
    }
}

TEST(DynamicPlp, TracksFromScratchQualityUnderChurn) {
    Random::setSeed(163);
    PlantedPartitionGenerator gen(600, 6, 0.25, 0.005);
    Graph g = gen.generate();
    DynamicPlp dynamic;
    dynamic.run(g);

    // Random churn: insert and remove edges, notifying the detector.
    dynamic.autoUpdate(false);
    for (int step = 0; step < 200; ++step) {
        const node u = static_cast<node>(Random::integer(600));
        const node v = static_cast<node>(Random::integer(600));
        if (u == v) continue;
        if (g.hasEdge(u, v)) {
            g.removeEdge(u, v);
            dynamic.onEdgeRemove(g, u, v);
        } else {
            g.addEdge(u, v);
            dynamic.onEdgeInsert(g, u, v);
        }
    }
    dynamic.update(g);

    Random::setSeed(164);
    const Partition fromScratch = Plp().run(g);
    const double qDynamic =
        Modularity().getQuality(dynamic.communities(), g);
    const double qScratch = Modularity().getQuality(fromScratch, g);
    // Incremental maintenance must stay within a few percent of scratch.
    EXPECT_GT(qDynamic, qScratch - 0.05);
}

TEST(DynamicPlp, LocalizedUpdateTouchesFewNodes) {
    Random::setSeed(165);
    PlantedPartitionGenerator gen(5000, 50, 0.3, 0.001);
    Graph g = gen.generate();
    DynamicPlp dynamic;
    dynamic.run(g);

    // One intra-community edge insertion: the affected region should be a
    // vanishing fraction of the graph.
    node u = 0, v = 1; // same block in the planted layout
    if (g.hasEdge(u, v)) {
        g.removeEdge(u, v);
        dynamic.onEdgeRemove(g, u, v);
    } else {
        g.addEdge(u, v);
        dynamic.onEdgeInsert(g, u, v);
    }
    EXPECT_LT(dynamic.lastUpdateWork(), g.numberOfNodes() / 10);
}

TEST(DynamicPlp, NodeAdditionThenAttachment) {
    Random::setSeed(166);
    Graph g = SimpleGraphs::clique(6);
    DynamicPlp dynamic;
    dynamic.run(g);

    const node fresh = g.addNode();
    dynamic.onNodeAdd(fresh);
    EXPECT_EQ(dynamic.communities()[fresh], fresh); // own community

    g.addEdge(fresh, 0);
    g.addEdge(fresh, 1);
    dynamic.onEdgeInsert(g, fresh, 0);
    dynamic.onEdgeInsert(g, fresh, 1);
    // Two links into the clique: it must adopt the clique's label.
    EXPECT_EQ(dynamic.communities()[fresh], dynamic.communities()[0]);
}

TEST(DynamicPlp, BatchedUpdatesEquivalentToEager) {
    Random::setSeed(167);
    Graph g1 = SimpleGraphs::cliqueChain(4, 6);
    Graph g2 = g1;

    Random::setSeed(168);
    DynamicPlp eager;
    eager.run(g1);
    Random::setSeed(168);
    DynamicPlp batched;
    batched.run(g2);
    batched.autoUpdate(false);

    // Same structural change on both.
    auto mutate = [](Graph& g, DynamicPlp& d) {
        g.addEdge(0, 12);
        d.onEdgeInsert(g, 0, 12);
        g.addEdge(1, 13);
        d.onEdgeInsert(g, 1, 13);
    };
    mutate(g1, eager);
    mutate(g2, batched);
    batched.update(g2);

    // Both must produce complete, equally sized solutions (the exact
    // labels may differ through RNG divergence).
    EXPECT_TRUE(eager.communities().isComplete());
    EXPECT_TRUE(batched.communities().isComplete());
    EXPECT_EQ(eager.communities().numberOfSubsets(),
              batched.communities().numberOfSubsets());
}

// --- DynamicPlm -----------------------------------------------------------

#include "community/dynamic_plm.hpp"
#include "community/plm.hpp"
#include "quality/coverage.hpp"

TEST(DynamicPlm, InitialRunMatchesPlm) {
    Random::setSeed(210);
    Graph g = SimpleGraphs::cliqueChain(8, 8);
    DynamicPlm dynamic;
    dynamic.run(g);
    EXPECT_EQ(dynamic.communities().numberOfSubsets(), 8u);
}

TEST(DynamicPlm, RequiresRun) {
    Graph g(3, false);
    g.addEdge(0, 1);
    DynamicPlm dynamic;
    EXPECT_THROW(dynamic.onEdgeInsert(g, 0, 1), std::runtime_error);
}

TEST(DynamicPlm, InsertionMergesCommunities) {
    Random::setSeed(211);
    Graph g(12, false);
    for (node u = 0; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) {
            g.addEdge(u, v);
            g.addEdge(u + 6, v + 6);
        }
    }
    DynamicPlm dynamic;
    dynamic.run(g);
    EXPECT_NE(dynamic.communities()[0], dynamic.communities()[6]);

    dynamic.autoUpdate(false);
    for (node u = 0; u < 6; ++u) {
        for (node v = 6; v < 12; ++v) {
            g.addEdge(u, v);
            dynamic.onEdgeInsert(g, u, v);
        }
    }
    dynamic.update(g);
    EXPECT_EQ(dynamic.communities()[0], dynamic.communities()[6]);
}

TEST(DynamicPlm, DeletionSplitsViaSingletonMoves) {
    // Remove the bridge, then hollow out one clique: its members must be
    // able to leave (the split-off move) rather than stay glued to a
    // community id forever.
    Random::setSeed(212);
    Graph g = SimpleGraphs::cliqueChain(2, 6); // bridge 5-6
    DynamicPlm dynamic;
    dynamic.run(g);

    g.removeEdge(5, 6);
    dynamic.onEdgeRemove(g, 5, 6);
    EXPECT_NE(dynamic.communities()[0], dynamic.communities()[6]);

    // Hollow out clique 2 completely: every node should end up alone.
    dynamic.autoUpdate(false);
    for (node u = 6; u < 12; ++u) {
        for (node v = u + 1; v < 12; ++v) {
            if (g.hasEdge(u, v)) {
                g.removeEdge(u, v);
                dynamic.onEdgeRemove(g, u, v);
            }
        }
    }
    dynamic.update(g);
    // Isolated nodes: no two of them share a community with an edge
    // reason; the partition must still be valid.
    EXPECT_TRUE(dynamic.communities().isComplete());
    const double q = Modularity().getQuality(dynamic.communities(), g);
    EXPECT_GE(q, -0.5);
}

TEST(DynamicPlm, TracksStaticQualityUnderChurn) {
    Random::setSeed(213);
    PlantedPartitionGenerator gen(600, 6, 0.25, 0.005);
    Graph g = gen.generate();
    DynamicPlm dynamic;
    dynamic.run(g);
    dynamic.autoUpdate(false);

    for (int step = 0; step < 300; ++step) {
        const node u = static_cast<node>(Random::integer(600));
        const node v = static_cast<node>(Random::integer(600));
        if (u == v) continue;
        if (g.hasEdge(u, v)) {
            g.removeEdge(u, v);
            dynamic.onEdgeRemove(g, u, v);
        } else {
            g.addEdge(u, v);
            dynamic.onEdgeInsert(g, u, v);
        }
        if (step % 50 == 49) dynamic.update(g);
    }
    dynamic.update(g);

    Random::setSeed(214);
    const Partition fromScratch = Plm().run(g);
    const double qDynamic =
        Modularity().getQuality(dynamic.communities(), g);
    const double qScratch = Modularity().getQuality(fromScratch, g);
    EXPECT_GT(qDynamic, qScratch - 0.05);
}

TEST(DynamicPlm, LocalizedWork) {
    Random::setSeed(215);
    PlantedPartitionGenerator gen(5000, 50, 0.3, 0.001);
    Graph g = gen.generate();
    DynamicPlm dynamic;
    dynamic.run(g);
    g.addEdge(0, 1); // may duplicate an edge; Louvain tolerates multi-edges
    dynamic.onEdgeInsert(g, 0, 1);
    EXPECT_LT(dynamic.lastUpdateWork(), g.numberOfNodes() / 10);
}

TEST(DynamicPlp, WarmRerunSeedsFromPriorPartition) {
    // A second run() must NOT reset to singletons: it re-detects warm,
    // seeded from the prior labels, and absorbs mutations that were never
    // notified through onEdgeInsert/onEdgeRemove.
    Random::setSeed(170);
    PlantedPartitionGenerator gen(600, 6, 0.25, 0.005);
    Graph g = gen.generate();
    DynamicPlp dynamic;
    dynamic.run(g);

    // Mutate behind the detector's back, then warm re-run.
    for (int step = 0; step < 150; ++step) {
        const node u = static_cast<node>(Random::integer(600));
        const node v = static_cast<node>(Random::integer(600));
        if (u == v) continue;
        if (g.hasEdge(u, v)) {
            g.removeEdge(u, v);
        } else {
            g.addEdge(u, v);
        }
    }
    dynamic.run(g);

    EXPECT_TRUE(dynamic.communities().isComplete());
    Random::setSeed(171);
    const Partition fromScratch = Plp().run(g);
    const double qWarm = Modularity().getQuality(dynamic.communities(), g);
    const double qScratch = Modularity().getQuality(fromScratch, g);
    EXPECT_GT(qWarm, qScratch - 0.05);
}

TEST(DynamicPlp, WarmRerunAbsorbsUnnotifiedGrowth) {
    Random::setSeed(172);
    Graph g = SimpleGraphs::clique(6);
    DynamicPlp dynamic;
    dynamic.run(g);

    // Grow the graph without any onNodeAdd/onEdgeInsert notification; the
    // warm run must grow its state instead of indexing out of bounds.
    const node a = g.addNode();
    const node b = g.addNode();
    g.addEdge(a, b);
    g.addEdge(a, 0);
    dynamic.run(g);
    EXPECT_TRUE(dynamic.communities().isComplete());
    EXPECT_EQ(dynamic.communities().numberOfElements(),
              g.upperNodeIdBound());
}

TEST(DynamicPlp, ResetForcesColdStart) {
    Random::setSeed(173);
    Graph g = SimpleGraphs::clique(5);
    DynamicPlp dynamic;
    dynamic.run(g);
    dynamic.reset();
    // After reset the detector is back in the never-ran state.
    EXPECT_THROW(dynamic.onEdgeInsert(g, 0, 1), std::runtime_error);
    dynamic.run(g); // cold run from scratch works again
    EXPECT_TRUE(dynamic.communities().isComplete());
}

TEST(DynamicPlm, WeightedUpdates) {
    Graph g(4, true);
    g.addEdge(0, 1, 4.0);
    g.addEdge(2, 3, 4.0);
    g.addEdge(1, 2, 0.5);
    Random::setSeed(216);
    DynamicPlm dynamic;
    dynamic.run(g);
    EXPECT_NE(dynamic.communities()[0], dynamic.communities()[2]);
    // Strengthen the middle edge until the groups merge.
    g.increaseWeight(1, 2, 20.0);
    dynamic.onEdgeInsert(g, 1, 2, 20.0);
    EXPECT_EQ(dynamic.communities()[1], dynamic.communities()[2]);
}

TEST(DynamicPlm, WarmRerunSeedsFromPriorPartition) {
    Random::setSeed(217);
    PlantedPartitionGenerator gen(600, 6, 0.25, 0.005);
    Graph g = gen.generate();
    DynamicPlm dynamic;
    dynamic.run(g);

    // Unnotified churn, then a warm re-run: volumes and ω(E) are rebuilt
    // for the mutated graph, the prior community ids survive as the seed.
    for (int step = 0; step < 150; ++step) {
        const node u = static_cast<node>(Random::integer(600));
        const node v = static_cast<node>(Random::integer(600));
        if (u == v) continue;
        if (g.hasEdge(u, v)) {
            g.removeEdge(u, v);
        } else {
            g.addEdge(u, v);
        }
    }
    dynamic.run(g);

    EXPECT_TRUE(dynamic.communities().isComplete());
    Random::setSeed(218);
    const Partition fromScratch = Plm().run(g);
    const double qWarm = Modularity().getQuality(dynamic.communities(), g);
    const double qScratch = Modularity().getQuality(fromScratch, g);
    EXPECT_GT(qWarm, qScratch - 0.05);
}

TEST(DynamicPlm, NodeAddThenAttachment) {
    Random::setSeed(219);
    Graph g = SimpleGraphs::clique(6);
    DynamicPlm dynamic;
    dynamic.run(g);

    const node fresh = g.addNode();
    dynamic.onNodeAdd(fresh);
    // The isolated node sits in its own (empty-volume) community.
    EXPECT_TRUE(dynamic.communities().isComplete());

    g.addEdge(fresh, 0, 1.0);
    g.addEdge(fresh, 1, 1.0);
    dynamic.onEdgeInsert(g, fresh, 0);
    dynamic.onEdgeInsert(g, fresh, 1);
    // Two links into the clique: it must join the clique's community.
    EXPECT_EQ(dynamic.communities()[fresh], dynamic.communities()[0]);
}

TEST(DynamicPlm, UnnotifiedGrowthDoesNotCorruptVolumes) {
    // The historical failure mode: an edge to a node the detector never
    // saw indexed communityVolume_ out of bounds. growToBound() now runs
    // at the top of every notification.
    Random::setSeed(220);
    Graph g = SimpleGraphs::clique(6);
    DynamicPlm dynamic;
    dynamic.run(g);

    const node fresh = g.addNode(); // NOT notified via onNodeAdd
    g.addEdge(fresh, 0, 1.0);
    EXPECT_NO_THROW(dynamic.onEdgeInsert(g, fresh, 0));
    EXPECT_TRUE(dynamic.communities().isComplete());
}

TEST(DynamicPlm, ResetForcesColdStart) {
    Random::setSeed(221);
    Graph g = SimpleGraphs::clique(5);
    DynamicPlm dynamic;
    dynamic.run(g);
    dynamic.reset();
    EXPECT_THROW(dynamic.onEdgeInsert(g, 0, 1), std::runtime_error);
    EXPECT_THROW(dynamic.onNodeAdd(7), std::runtime_error);
    dynamic.run(g);
    EXPECT_TRUE(dynamic.communities().isComplete());
}
