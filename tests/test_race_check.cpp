// Tests for the GRAPR_RACE_CHECK shadow race checker (support/race_check).
//
// The deliberately racy fixture must abort the process, so it cannot run
// inside the gtest process: this binary has a custom main() that re-execs
// itself (via /proc/self/exe) with GRAPR_RACE_FIXTURE set, runs the named
// fixture instead of the test suite, and lets the parent assert on the
// child's exit status. gtest death tests are not used because they fork
// without exec, which is unreliable once libgomp has spawned its pool.
//
// Every test is a GTEST_SKIP no-op when the build does not define
// GRAPR_RACE_CHECK — the binary still builds and runs in plain builds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <omp.h>

#include "community/plm.hpp"
#include "community/plp.hpp"
#include "community/streaming_update.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "graph/stream_engine.hpp"
#include "structures/partition.hpp"
#include "support/race_check.hpp"
#include "support/random.hpp"
#include "support/stream_workload.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#define GRAPR_CAN_REEXEC 1
#else
#define GRAPR_CAN_REEXEC 0
#endif

namespace {

// Child exit codes for fixture runs (distinct from gtest's 0/1).
constexpr int kFixtureSurvived = 0;  // fixture ran to completion
constexpr int kFixtureSkipped = 77;  // preconditions absent (1 thread, ...)
constexpr int kFixtureUnknown = 98;  // unrecognised fixture name

// Two (or more) threads hammer the same Partition cell inside one parallel
// phase through the unannotated write path. The shadow checker must abort
// (GRAPR_RACE_CHECK builds); ThreadSanitizer must report the write-write
// race (GRAPR_SANITIZE=thread builds, run without the suppression file).
// Surviving to the return statement means detection failed.
int runRacyFixture() {
    if (omp_get_max_threads() < 2) return kFixtureSkipped;
    grapr::Partition p(8);
    p.setUpperBound(8);
    GRAPR_RACE_PHASE("fixture.racy");
#pragma omp parallel default(none) shared(p)
    {
        // Not a worksharing loop: every team member runs all iterations,
        // so cell 0 sees same-epoch writes from every thread id.
        // grapr:analyze-allow(shared-write-safety): deliberately racy —
        // this fixture exists to prove the shadow checker aborts on it.
        for (int i = 0; i < 100000; ++i) p.moveToSubset(0, 0);
    }
    return kFixtureSurvived;
}

// The annotated production paths: PLP's asynchronous label publishing and
// PLM's move phase both perform benign cross-thread-visible writes that
// carry GRAPR_RACE_WRITE_BENIGN / grapr:benign-race annotations. They must
// run to completion under the checker.
int runBenignFixture() {
    grapr::Random::setSeed(4242);
    grapr::Graph g =
        grapr::PlantedPartitionGenerator(400, 8, 0.25, 0.02).generate();
    (void)grapr::Plp().run(g);
    (void)grapr::Plm().run(g);
    return kFixtureSurvived;
}

int runFixture(const char* name) {
    if (std::strcmp(name, "racy") == 0) return runRacyFixture();
    if (std::strcmp(name, "benign") == 0) return runBenignFixture();
    return kFixtureUnknown;
}

#if GRAPR_CAN_REEXEC && (defined(GRAPR_RACE_CHECK) || defined(__SANITIZE_THREAD__))

struct ChildResult {
    bool spawned = false;
    bool signalled = false;
    int signal = 0;
    int exitCode = -1;
};

// Re-exec this binary with GRAPR_RACE_FIXTURE=<fixture>. The child's
// stderr goes to /dev/null: an *expected* abort report in passing-test
// output reads like a failure. `tsanOptions`, if given, replaces
// TSAN_OPTIONS in the child — ThreadSanitizer reads it at process start,
// so the exec'd child picks it up (used to drop the suppression file when
// the race is *supposed* to be reported).
ChildResult runSelfFixture(const char* fixture,
                           const char* tsanOptions = nullptr) {
    ChildResult result;
    char exe[4096];
    const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0) return result;
    exe[len] = '\0';

    const pid_t pid = ::fork();
    if (pid < 0) return result;
    if (pid == 0) {
        ::setenv("GRAPR_RACE_FIXTURE", fixture, 1);
        ::setenv("OMP_NUM_THREADS", "4", 1);
        if (tsanOptions != nullptr) ::setenv("TSAN_OPTIONS", tsanOptions, 1);
        if (!std::freopen("/dev/null", "w", stderr)) {
            // Keep going; noisy output is better than no test.
        }
        ::execl(exe, exe, static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return result;
    result.spawned = true;
    if (WIFSIGNALED(status)) {
        result.signalled = true;
        result.signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
    }
    return result;
}

#endif // GRAPR_CAN_REEXEC && GRAPR_RACE_CHECK

} // namespace

#ifndef GRAPR_RACE_CHECK

TEST(RaceCheck, RequiresInstrumentedBuild) {
    GTEST_SKIP() << "built without GRAPR_RACE_CHECK; configure with "
                    "-DGRAPR_RACE_CHECK=ON to run the race-checker tests";
}

#else // GRAPR_RACE_CHECK

TEST(RaceCheck, RacyFixtureAborts) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("racy");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    if (!child.signalled && child.exitCode == kFixtureSkipped) {
        GTEST_SKIP() << "single-threaded OpenMP runtime; the racy fixture "
                        "needs at least two threads";
    }
    EXPECT_TRUE(child.signalled)
        << "racy fixture ran to completion (exit " << child.exitCode
        << ") — the shadow checker failed to detect the cross-thread write";
    EXPECT_EQ(child.signal, SIGABRT);
#endif
}

TEST(RaceCheck, AnnotatedBenignPathsSurvive) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("benign");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_FALSE(child.signalled)
        << "PLP/PLM benign paths tripped the checker (signal "
        << child.signal << ")";
    EXPECT_EQ(child.exitCode, kFixtureSurvived);
#endif
}

TEST(RaceCheck, EpochAdvancesAtPhaseBoundaries) {
    const std::uint32_t before = grapr::race::currentEpoch();
    GRAPR_RACE_PHASE("test.epoch");
    EXPECT_EQ(grapr::race::currentEpoch(), before + 1);
}

TEST(RaceCheck, DisjointParallelWritesPass) {
    // The contract the checker enforces: each cell written by at most one
    // thread per phase. A worksharing loop satisfies it by construction;
    // reaching the assertions below means no abort fired.
    constexpr grapr::count n = 1 << 14;
    grapr::Partition p(n);
    p.setUpperBound(n);
    GRAPR_RACE_PHASE("test.disjoint");
    const auto sn = static_cast<std::int64_t>(n);
#pragma omp parallel for default(none) shared(p, sn) schedule(static)
    for (std::int64_t v = 0; v < sn; ++v) {
        p.set(static_cast<grapr::node>(v), 0);
    }
    EXPECT_EQ(p.numberOfSubsets(), 1u);
}

TEST(RaceCheck, PhaseBoundarySeparatesRewrites) {
    // The same cells rewritten by (potentially) different threads are fine
    // across a phase boundary — only same-epoch collisions count.
    constexpr grapr::count n = 1 << 14;
    grapr::Partition p(n);
    p.setUpperBound(n);
    const auto sn = static_cast<std::int64_t>(n);
    for (int round = 0; round < 3; ++round) {
        GRAPR_RACE_PHASE("test.round");
#pragma omp parallel for default(none) shared(p, sn, round) schedule(dynamic, 64)
        for (std::int64_t v = 0; v < sn; ++v) {
            p.set(static_cast<grapr::node>(v),
                  static_cast<grapr::node>(round % 2));
        }
    }
    EXPECT_EQ(p.numberOfSubsets(), 1u);
}

#ifdef GRAPR_BENIGN_RACE_MANIFEST

// Names of every runtime= token in tests/benign_races.txt. Row format:
//   <dir/file>:<var> tsan=<list|-> runtime=<list|->
// Comment and `infra` lines carry no runtime names.
std::set<std::string> manifestRuntimeNames(const char* path) {
    std::set<std::string> names;
    std::ifstream in(path);
    if (!in.is_open()) return names;
    std::string line;
    while (std::getline(in, line)) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#') continue;
        const auto pos = line.find(" runtime=");
        if (pos == std::string::npos) continue;
        std::string list = line.substr(pos + 9);
        const auto end = list.find_last_not_of(" \t\r");
        list = end == std::string::npos ? std::string() : list.substr(0, end + 1);
        if (list.empty() || list == "-") continue;
        std::size_t start = 0;
        while (start <= list.size()) {
            const auto comma = list.find(',', start);
            const std::string tok = list.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            if (!tok.empty()) names.insert(tok);
            if (comma == std::string::npos) break;
            start = comma + 1;
        }
    }
    return names;
}

// The manifest round-trip: drive every algorithm whose benign writes are
// named by a runtime= list, then diff the executed-site trace against the
// manifest BOTH ways. grapr_analyze's benign-race-manifest check already
// ties runtime= names to GRAPR_RACE_BENIGN_SITE call sites statically;
// this test holds the manifest to what the code actually does.
TEST(RaceCheck, BenignRaceManifestMatchesTrace) {
    const std::set<std::string> manifest =
        manifestRuntimeNames(GRAPR_BENIGN_RACE_MANIFEST);
    ASSERT_FALSE(manifest.empty())
        << "no runtime= names parsed from " << GRAPR_BENIGN_RACE_MANIFEST;

    grapr::Random::setSeed(4243);
    grapr::Graph g =
        grapr::PlantedPartitionGenerator(600, 10, 0.3, 0.01).generate();
    // Default PLP: trackActiveNodes on, frontier off — exercises the label
    // publish and both active-flag sites.
    (void)grapr::Plp().run(g);
    // Default PLM freezes, so its rounds run the tuned kernel; the
    // unfrozen config routes through the baseline movePhaseImpl.
    (void)grapr::Plm().run(g);
    grapr::PlmConfig unfrozen;
    unfrozen.freeze = false;
    (void)grapr::Plm(unfrozen).run(g);

    // Streaming: the PLP-seeded sweep must MOVE a label, not just sweep.
    // Two bridged 4-cliques converge to one label per clique; wiring node
    // 4 to the rest of clique 0 gives it cross weight 4 vs 3 intra, so its
    // dominant label provably flips when the batch reactivates it.
    {
        grapr::Random::setSeed(4244);
        grapr::Graph sg = grapr::SimpleGraphs::cliqueChain(2, 4);
        grapr::StreamingGraph engine(sg);
        grapr::StreamingPlp incremental;
        incremental.initialize(engine.pin()->graph);
        grapr::EdgeBatch batch;
        batch.insert(4, 0);
        batch.insert(4, 1);
        batch.insert(4, 2);
        const grapr::BatchResult result =
            engine.apply(batch, grapr::StreamApplyMode::Permissive);
        ASSERT_FALSE(result.touched.empty());
        incremental.applyBatch(engine.pin()->graph, result.touched);
        ASSERT_GT(incremental.lastReactivated(), 0u);
        ASSERT_EQ(incremental.labels().vector()[4],
                  incremental.labels().vector()[0])
            << "node 4 kept its clique-1 label — the seeded sweep moved "
            << "nothing and never reached the benign publish site";
    }

    const std::vector<std::string> trace = grapr::race::benignSitesExecuted();
    const std::set<std::string> executed(trace.begin(), trace.end());
    for (const std::string& name : executed) {
        EXPECT_TRUE(manifest.count(name) > 0)
            << "benign write site '" << name << "' executed but no "
            << "runtime= list in tests/benign_races.txt names it";
    }
    for (const std::string& name : manifest) {
        EXPECT_TRUE(executed.count(name) > 0)
            << "manifest runtime site '" << name << "' never executed — "
            << "the harness no longer drives it, or the "
            << "GRAPR_RACE_BENIGN_SITE instrumentation moved";
    }
}

#endif // GRAPR_BENIGN_RACE_MANIFEST

#endif // GRAPR_RACE_CHECK

#if defined(__SANITIZE_THREAD__)

// Acceptance leg for the sanitizer layer: the same racy fixture must be
// reported by ThreadSanitizer when the suppression file is out of the way
// (the suite itself runs WITH suppressions, since Partition::set is also
// the annotated-benign production path).
TEST(RaceCheckTsan, RacyFixtureFailsUnderTsan) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child =
        runSelfFixture("racy", "halt_on_error=1 exitcode=66");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    if (!child.signalled && child.exitCode == kFixtureSkipped) {
        GTEST_SKIP() << "single-threaded OpenMP runtime; the racy fixture "
                        "needs at least two threads";
    }
    EXPECT_TRUE(child.signalled || child.exitCode == 66)
        << "racy fixture ran to completion (exit " << child.exitCode
        << ") — TSan failed to report the cross-thread write";
#endif
}

#endif // __SANITIZE_THREAD__

int main(int argc, char** argv) {
    if (const char* fixture = std::getenv("GRAPR_RACE_FIXTURE")) {
        return runFixture(fixture);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
