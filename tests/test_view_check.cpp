// Tests for the GRAPR_VIEW_CHECK view-lifecycle stamp (support/view_check).
//
// The use-after-mutate fixture must abort the process, so it cannot run
// inside the gtest process: like test_race_check.cpp, this binary has a
// custom main() that re-execs itself (via /proc/self/exe) with
// GRAPR_VIEW_FIXTURE set, runs the named fixture instead of the test
// suite, and lets the parent assert on the child's exit status. Unlike the
// race-check harness, the child's stderr is captured to a file: the tests
// assert the abort report names BOTH the freeze site and the mutation site
// (this file, by name).
//
// Every test is a GTEST_SKIP no-op when the build does not define
// GRAPR_VIEW_CHECK — the binary still builds and runs in plain builds.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "community/epp.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "generators/planted_partition.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#define GRAPR_CAN_REEXEC 1
#else
#define GRAPR_CAN_REEXEC 0
#endif

namespace {

// Child exit codes for fixture runs (distinct from gtest's 0/1).
constexpr int kFixtureSurvived = 0;  // fixture ran to completion
constexpr int kFixtureUnknown = 98;  // unrecognised fixture name

grapr::Graph smallGraph() {
    grapr::Random::setSeed(1337);
    return grapr::PlantedPartitionGenerator(300, 6, 0.3, 0.02).generate();
}

// Freeze a view, mutate the source, then read through the view. In a
// GRAPR_VIEW_CHECK build the first read must abort with the freeze site
// and the mutation site; surviving to the return statement means the
// stamp failed to fire.
int runStaleReadFixture() {
    grapr::Graph g = smallGraph();
    const grapr::CsrGraph frozen(g);              // freeze site
    g.addEdge(0, 5);                              // mutation site
    double sink = 0.0;
    // grapr:analyze-allow(csr-staleness): deliberately stale — this
    // fixture exists to prove the runtime stamp aborts on exactly this
    // read (the static check and the checker enforce the same contract).
    frozen.forNeighborsOf(0, [&](grapr::node, grapr::edgeweight w) {
        sink += w;                                // stale read — must abort
    });
    return sink >= 0.0 ? kFixtureSurvived : kFixtureUnknown;
}

// The legal lifecycle: freeze after the last mutation, read, let the view
// die before mutating again. Also covers views of a *copy* (mutating the
// original must not invalidate them) and array-assembled views (no source
// graph; the stamp is disengaged). Must run to completion.
int runLegalLifecycleFixture() {
    grapr::Graph g = smallGraph();
    {
        const grapr::CsrGraph frozen(g);
        double sink = 0.0;
        frozen.forEdges([&](grapr::node, grapr::node, grapr::edgeweight w) {
            sink += w;
        });
        if (sink <= 0.0) return kFixtureUnknown;
    }
    g.addEdge(0, 7); // no live view: mutating between freezes is fine

    grapr::Graph copy = g;       // fresh generation cell
    const grapr::CsrGraph viewOfG(g);
    copy.addEdge(1, 9);          // mutates the copy, not g
    if (viewOfG.numberOfEdges() != g.numberOfEdges()) return kFixtureUnknown;

    // Round-trip through raw arrays: the assembled view has no source.
    grapr::CsrGraph assembled(
        std::vector<grapr::index>(viewOfG.offsets()),
        std::vector<grapr::node>(viewOfG.neighborArray()),
        std::vector<grapr::edgeweight>(viewOfG.weightArray()),
        viewOfG.isWeighted());
    g.addEdge(2, 11);
    // grapr:analyze-allow(csr-staleness): false positive — 'assembled' is
    // built from copied arrays (no source graph; the stamp is
    // disengaged), but the textual check ties it to 'g' through the
    // viewOfG arguments in its constructor call.
    return assembled.numberOfEdges() == viewOfG.numberOfEdges()
               ? kFixtureSurvived
               : kFixtureUnknown;
}

// The full production pipelines must survive with the stamp armed: PLM
// (freeze-per-level recursion), PLMR (refinement reuses the level's view),
// PLP and EPP. A false positive here means a pipeline reads a view across
// a mutation of its source.
int runPipelinesFixture() {
    grapr::Graph g = smallGraph();
    (void)grapr::Plp().run(g);
    (void)grapr::Plm().run(g);
    grapr::PlmConfig refine;
    refine.refine = true;
    (void)grapr::Plm(refine).run(g);
    grapr::Epp epp(
        2, [] { return std::make_unique<grapr::Plp>(); },
        [] { return std::make_unique<grapr::Plm>(); });
    (void)epp.run(g);
    return kFixtureSurvived;
}

int runFixture(const char* name) {
    if (std::strcmp(name, "stale") == 0) return runStaleReadFixture();
    if (std::strcmp(name, "legal") == 0) return runLegalLifecycleFixture();
    if (std::strcmp(name, "pipelines") == 0) return runPipelinesFixture();
    return kFixtureUnknown;
}

#if GRAPR_CAN_REEXEC && defined(GRAPR_VIEW_CHECK)

struct ChildResult {
    bool spawned = false;
    bool signalled = false;
    int signal = 0;
    int exitCode = -1;
    std::string output; // child stderr
};

// Re-exec this binary with GRAPR_VIEW_FIXTURE=<fixture>, capturing the
// child's stderr to a temp file so the parent can assert on the stale-view
// report's contents (freeze site + mutation site).
ChildResult runSelfFixture(const char* fixture) {
    ChildResult result;
    char exe[4096];
    const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0) return result;
    exe[len] = '\0';

    char logPath[] = "/tmp/grapr_view_check_XXXXXX";
    const int logFd = ::mkstemp(logPath);
    if (logFd < 0) return result;

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(logFd);
        ::unlink(logPath);
        return result;
    }
    if (pid == 0) {
        ::setenv("GRAPR_VIEW_FIXTURE", fixture, 1);
        ::setenv("OMP_NUM_THREADS", "4", 1);
        ::dup2(logFd, 2);
        ::close(logFd);
        ::execl(exe, exe, static_cast<char*>(nullptr));
        ::_exit(127);
    }
    ::close(logFd);
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
        ::unlink(logPath);
        return result;
    }
    result.spawned = true;
    if (WIFSIGNALED(status)) {
        result.signalled = true;
        result.signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
    }
    std::ifstream log(logPath);
    std::ostringstream text;
    text << log.rdbuf();
    result.output = text.str();
    ::unlink(logPath);
    return result;
}

#endif // GRAPR_CAN_REEXEC && GRAPR_VIEW_CHECK

} // namespace

#ifndef GRAPR_VIEW_CHECK

TEST(ViewCheck, RequiresInstrumentedBuild) {
    GTEST_SKIP() << "built without GRAPR_VIEW_CHECK; configure with "
                    "-DGRAPR_VIEW_CHECK=ON to run the view-lifecycle tests";
}

#else // GRAPR_VIEW_CHECK

TEST(ViewCheck, StaleReadAbortsWithBothSites) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("stale");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_TRUE(child.signalled)
        << "stale-read fixture ran to completion (exit " << child.exitCode
        << ") — the view stamp failed to detect use-after-mutate";
    EXPECT_EQ(child.signal, SIGABRT);
    // The report must carry both ends of the violation: where the view was
    // frozen and where the source mutated — both in this file.
    EXPECT_NE(child.output.find("VIEW-LIFECYCLE VIOLATION"),
              std::string::npos)
        << "abort report missing; child stderr was:\n"
        << child.output;
    EXPECT_NE(child.output.find("view frozen at"), std::string::npos);
    EXPECT_NE(child.output.find("source mutated at"), std::string::npos);
    const std::string site = "test_view_check.cpp";
    const std::size_t first = child.output.find(site);
    ASSERT_NE(first, std::string::npos)
        << "freeze site not attributed to this file; stderr was:\n"
        << child.output;
    EXPECT_NE(child.output.find(site, first + site.size()),
              std::string::npos)
        << "mutation site not attributed to this file; stderr was:\n"
        << child.output;
#endif
}

TEST(ViewCheck, LegalLifecycleSurvives) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("legal");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_FALSE(child.signalled)
        << "legal freeze/read/invalidate lifecycle tripped the stamp "
           "(signal " << child.signal << "); stderr was:\n"
        << child.output;
    EXPECT_EQ(child.exitCode, kFixtureSurvived);
#endif
}

TEST(ViewCheck, PipelinesSurviveWithCheckOn) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("pipelines");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_FALSE(child.signalled)
        << "PLP/PLM/PLMR/EPP tripped the view stamp (signal "
        << child.signal << "); stderr was:\n"
        << child.output;
    EXPECT_EQ(child.exitCode, kFixtureSurvived);
#endif
}

TEST(ViewCheck, CopySemantics) {
    // In-process checks of the generation-cell ownership rules: a copied
    // graph gets a fresh cell, a moved graph keeps its cell (views follow
    // the data), and views of the copy are independent of the original.
    grapr::Graph g(16);
    g.addEdge(0, 1);
    grapr::Graph copy = g;
    const grapr::CsrGraph viewOfCopy(copy);
    g.addEdge(2, 3); // must not invalidate viewOfCopy
    EXPECT_EQ(viewOfCopy.numberOfEdges(), 1u);

    grapr::Graph moved = std::move(copy);
    // The view tracks the moved-to graph's cell: reading is still legal
    // while `moved` is unmutated...
    EXPECT_EQ(viewOfCopy.degree(0), 1u);
}

#endif // GRAPR_VIEW_CHECK

int main(int argc, char** argv) {
    if (const char* fixture = std::getenv("GRAPR_VIEW_FIXTURE")) {
        return runFixture(fixture);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
