// Seeded benign-race-validity violation: the annotated write below is
// provably disjoint (induction-derived index, no foreign read of the
// container anywhere in the region), so the grapr:benign-race annotation
// excuses a race that does not exist. The analyzer must flag it as stale
// (WILL_FAIL). The second region is the legal twin: the same annotation
// shape on a genuinely racy neighbor-indexed write stays live.
//
// This file is analyzed, never compiled.

using node = unsigned long long;

void staleAnnotation(node* labels, long long n) {
#pragma omp parallel for default(none) shared(labels, n)
    for (long long i = 0; i < n; ++i) {
        const node u = static_cast<node>(i);
        // grapr:benign-race(labels): stale reads tolerated by the
        // asynchronous update contract.  <-- VIOLATION: the write below
        // is disjoint, nothing here races.
        labels[u] = u;
    }
}

void liveAnnotation(node* labels, const node* neighbors,
                    const unsigned long long* offsets, long long n) {
#pragma omp parallel for default(none) \
    shared(labels, neighbors, offsets, n)
    for (long long i = 0; i < n; ++i) {
        const node u = static_cast<node>(i);
        node best = 0;
        for (unsigned long long e = offsets[u]; e < offsets[u + 1]; ++e) {
            const node v = neighbors[e];
            // Foreign read: concurrent writers publish into this scan.
            best += labels[v];
        }
        // grapr:benign-race(labels): asynchronous label publish; neighbor
        // scans in this round may read the old or the new value.
        labels[u] = best;
    }
}
