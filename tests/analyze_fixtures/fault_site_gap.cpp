// Seeded fault-site-coverage violation: writeUncovered does raw
// fwrite/fsync/rename I/O with no GRAPR_FAULT_POINT anywhere in the
// function, so the crash harness can never kill or fail inside it. Both
// frontends must flag it (WILL_FAIL); writeCovered is the legal twin.
// grapr:durability-scope
#define GRAPR_FAULT_POINT(site) ((void)0)

void syncDirectoryOf(const char* path);
extern "C" int fsync(int fd);
extern "C" int rename(const char* from, const char* to);
extern "C" unsigned long fwrite(const void* data, unsigned long size,
                                unsigned long count, void* file);

void writeUncovered(void* file) {
    int payload = 7;
    fwrite(&payload, sizeof payload, 1, file);
    fsync(0);
    rename("c.tmp", "c");
    syncDirectoryOf("c");
}

void writeCovered(void* file) {
    GRAPR_FAULT_POINT("fixture.covered.write");
    int payload = 7;
    fwrite(&payload, sizeof payload, 1, file);
    fsync(0);
    rename("d.tmp", "d");
    syncDirectoryOf("d");
}
