// Seeded benign-race-manifest violations, driven with an explicit
// --benign-manifest pointing at manifest_gap.txt next to this file:
//
//   direction 1: the validated benign race on `labels` below has NO row
//                in the manifest (the trace harness would never hold the
//                runtime writes to it), and
//   direction 2: the manifest lists `analyze_fixtures/
//                manifest_gap.cpp:ghost`, which matches no annotation.
//
// Both must be reported (WILL_FAIL). The ctest entry passes
// --tsan-supp '' so only the manifest directions are under test.
//
// This file is analyzed, never compiled.

using node = unsigned long long;

void manifestGap(node* labels, const node* neighbors,
                 const unsigned long long* offsets, long long n) {
#pragma omp parallel for default(none) \
    shared(labels, neighbors, offsets, n)
    for (long long i = 0; i < n; ++i) {
        const node u = static_cast<node>(i);
        node best = 0;
        for (unsigned long long e = offsets[u]; e < offsets[u + 1]; ++e) {
            const node v = neighbors[e];
            best += labels[v];
        }
        // grapr:benign-race(labels): asynchronous label publish; racy by
        // design and validated by parallel-effects — but missing from
        // manifest_gap.txt.
        labels[u] = best;
    }
}
