// Seeded lock-discipline violations: inconsistent acquisition order,
// blocking I/O under the reader-head mutex, and a re-acquisition through
// a helper. Both grapr_analyze frontends must flag them (WILL_FAIL).
//
// Never compiled — parsed only, hence the tiny std stand-ins.
namespace std {
struct mutex {};
template <class T> struct lock_guard {
    explicit lock_guard(T& m);
};
} // namespace std

std::mutex alphaMutex_;
std::mutex betaMutex_;
std::mutex headMutex_;

extern "C" int fsync(int fd);

// (1)+(2) the two functions acquire alpha/beta in opposite orders: two
// threads running them concurrently can deadlock.
void lockAlphaThenBeta() {
    std::lock_guard<std::mutex> a(alphaMutex_);
    std::lock_guard<std::mutex> b(betaMutex_);
}

void lockBetaThenAlpha() {
    std::lock_guard<std::mutex> b(betaMutex_);
    std::lock_guard<std::mutex> a(alphaMutex_);
}

// (3) blocking I/O while directly holding the reader-head mutex: every
// pinned reader stalls behind disk latency.
void syncUnderHeadLock() {
    std::lock_guard<std::mutex> head(headMutex_);
    fsync(0);
}

// (4) re-acquiring a held (non-reentrant) mutex through a helper call.
void helperLocksAlpha() {
    std::lock_guard<std::mutex> a(alphaMutex_);
}

void reacquireThroughHelper() {
    std::lock_guard<std::mutex> a(alphaMutex_);
    helperLocksAlpha();
}
