// Seeded poison-path violation: the ordering is right (append, fsync,
// publish) but the failure edge between the durable append and the
// publish reaches neither rollback (truncate) nor poison marking — a
// crash there leaves the log ahead of memory with the engine still
// accepting commits. Both frontends must flag it (WILL_FAIL).
// grapr:durability-scope
#define GRAPR_FAULT_POINT(site) ((void)0)

struct Snapshot {};

struct WalLike {
    void append(const Snapshot& snap, unsigned long generation);
};

void publish(Snapshot snap);
extern "C" int fsync(int fd);

void commitWithoutHandler(WalLike& wal, Snapshot snap) {
    GRAPR_FAULT_POINT("fixture.commit.unguarded");
    wal.append(snap, 1);
    fsync(0);
    publish(snap);
}
