// Seeded region-alloc violations: heap allocation / container growth on
// the hot path of a parallel region. The file opts into the rule with the
// scope marker below (fixtures do not live under src/community etc.).
// The analyzer must flag sites (1)-(3) (WILL_FAIL); the per-thread pool
// and region-local twins are legal.
// grapr:region-alloc-scope
//
// This file is analyzed, never compiled.

#include <memory>
#include <vector>

using node = unsigned long long;

struct Scratch {
    std::vector<node> buf;
};

void allocInRegion(std::vector<node>& out, long long n) {
    std::vector<std::vector<node>> rows(static_cast<unsigned long long>(n));
#pragma omp parallel for default(none) shared(out, rows, n)
    for (long long i = 0; i < n; ++i) {
        // Legal: region-local container, grows per-thread memory only.
        std::vector<node> mine;
        mine.push_back(static_cast<node>(i));
        // (1) VIOLATION: growth of a shared container in the region.
        out.push_back(static_cast<node>(i));
        // (2) VIOLATION: raw new on the hot path.
        node* leak = new node(static_cast<node>(i));
        delete leak;
        // (3) VIOLATION: make_unique allocation per iteration.
        auto boxed = std::make_unique<Scratch>();
        rows[static_cast<unsigned long long>(i)].swap(boxed->buf);
    }
}
