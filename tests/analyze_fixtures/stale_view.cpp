// Seeded csr-staleness violations for grapr_analyze. Each numbered site
// must be reported; the ctest entry runs the analyzer on this file with
// WILL_FAIL, so an analyzer that stops seeing these has lost the check.
//
// This file is analyzed, never compiled.

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace grapr {

// (1) The textbook violation: freeze, mutate, read.
double staleDirectRead(Graph& g) {
    const CsrGraph frozen(g);          // freeze site
    g.addEdge(0, 5);                   // mutation site
    return frozen.weightedDegree(0);   // VIOLATION: stale read
}

// (2) Mutation through a callee with a Graph& summary: sortAdjacencies
// mutates its parameter, so the view is stale afterwards.
void sortAdjacencies(Graph& g) {
    g.sortNeighborLists();
}

count staleAfterCallee(Graph& g) {
    const CsrGraph frozen(g);
    sortAdjacencies(g);                // mutates g via the callee
    return frozen.degree(3);           // VIOLATION: positional reads diverge
}

// (3) Aliased view: the reference reads the same stale snapshot.
count staleThroughAlias(Graph& g) {
    const CsrGraph frozen(g);
    const CsrGraph& view = frozen;
    g.removeEdge(1, 2);
    return view.numberOfEdges();       // VIOLATION: alias of a stale view
}

// Legal lifecycle — must NOT be reported: all reads happen before the
// mutation, and the re-freeze afterwards is fresh.
count legalRefreeze(Graph& g) {
    const CsrGraph before(g);
    const count e = before.numberOfEdges();
    g.addEdge(7, 8);
    const CsrGraph after(g);
    return e + after.numberOfEdges();
}

} // namespace grapr
