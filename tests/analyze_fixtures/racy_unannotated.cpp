// Seeded shared-write-safety violations for grapr_analyze's
// parallel-effects pass. Every numbered site is a racy write with NO
// grapr:benign-race annotation; the ctest entry runs the analyzer on this
// file with WILL_FAIL, so an analyzer that stops seeing these has lost
// the check. The legal twins below each site pin the lattice's safe
// classes so a regression toward "flag everything" also fails the
// dual-frontend agreement test.
//
// This file is analyzed, never compiled.

using node = unsigned long long;
using count = unsigned long long;

void racyWrites(double* weights, node* labels, node* neighbors,
                const unsigned long long* offsets, long long n) {
    double total = 0.0;
#pragma omp parallel for default(none) \
    shared(weights, labels, neighbors, offsets, n) reduction(+ : total)
    for (long long i = 0; i < n; ++i) {
        const node u = static_cast<node>(i);
        // Legal: reduction clause.
        total += weights[u];
        // Legal: disjoint write at the induction-derived index.
        weights[u] = total;
        for (unsigned long long e = offsets[u]; e < offsets[u + 1]; ++e) {
            const node v = neighbors[e];
            // (1) VIOLATION: neighbor-indexed write, no annotation —
            // several threads share v values.
            labels[v] = u;
        }
        // (2) VIOLATION: read-modify-write of a shared scalar-indexed
        // slot at a foreign (constant) index.
        weights[0] += 1.0;
    }
}
