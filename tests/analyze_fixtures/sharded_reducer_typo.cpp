// Seeded annotation-liveness violation on the sharded-volume write path
// (ctest runs this fixture with WILL_FAIL). The replicate+reduce volume
// scheme (community/community_volumes.hpp) is race-free by construction,
// so the one place a benign-race annotation legitimately appears is the
// ATOMIC policy's snapshot read — and a typo'd variable name there anchors
// nothing: the analyzer must flag it, not trust it.
//
// This file is analyzed, never compiled.

#include <vector>

#include "structures/partition.hpp"

namespace grapr {

void foldShards(std::vector<double>& communityVolume,
                const std::vector<double>& shardDelta, node c) {
    // (1) Typo'd benign-race on the reducer: the annotation names
    // `comunityVolume` (sic) but every write below touches
    // `communityVolume`, so the annotation anchors no racy site.
    // grapr:benign-race(comunityVolume): stale fold tolerated by design
    communityVolume[c] += shardDelta[c];
}

double snapshotVolume(const std::vector<double>& communityVolume, node c) {
    // (2) Annotation naming a variable with no anchoring pattern at all
    // within range: `delta` is never published, subscripted, or read
    // atomically below.
    // grapr:benign-race(delta): replicated shard delta visible late
    double v = 0.0;
    v += static_cast<double>(c);
    (void)communityVolume;
    return v;
}

// Live annotation — must NOT be reported: the atomic snapshot it excuses
// follows directly (subscript on the named variable + omp atomic read).
double legalSnapshot(const std::vector<double>& communityVolume, node c) {
    // grapr:benign-race(communityVolume): stale snapshot tolerated by
    // design (asynchronous move contract)
    double v;
#pragma omp atomic read
    v = communityVolume[c];
    return v;
}

} // namespace grapr
