// Seeded index-width violations for grapr_analyze. Every numbered site
// must be reported (ctest runs this fixture with WILL_FAIL). The legal
// block at the bottom pins the sanctioned idioms that must stay silent.
//
// This file is analyzed, never compiled.

#include "graph/csr_graph.hpp"
#include "support/common.hpp"

namespace grapr {

count sumDegrees(const CsrGraph& g, count n, node hub, edgeweight w) {
    // (1) 64-bit count silently truncated into int.
    int total = g.numberOfNodes();

    // (2) 32-bit induction variable compared against a count bound:
    // wraps forever once n exceeds 2^32.
    for (unsigned i = 0; i < n; ++i) {
        // (3) int accumulator over degrees overflows at scale.
        total += g.degree(hub);
    }

    // (4) C-style cast hides the same truncation an implicit conversion
    // would: must be static_cast if intended.
    const int edges = (int)g.numberOfEdges();

    // (5) node ids do not fit signed 32-bit: the `none` sentinel is
    // 2^32-1.
    int neighbor = g.getIthNeighbor(hub, 0);

    // (6) edgeweight (double) into an integer: drops fractional weights.
    count rounded = g.weightedDegree(hub);

    // (7) edgeweight into float: loses precision on big accumulations.
    float wf = w;

    return static_cast<count>(total + edges + neighbor) + rounded
           + static_cast<count>(wf);
}

// Sanctioned idioms — must NOT be reported.
count legalIdioms(const CsrGraph& g, count n) {
    // 64-bit locals for 64-bit values.
    count total = g.numberOfNodes();
    std::int64_t signedTotal = 0;
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
        // Explicit, greppable narrowing after a bound guarantees safety.
        const node u = static_cast<node>(v);
        signedTotal += static_cast<std::int64_t>(g.degree(u));
    }
    // Narrow types fed from narrow values are fine.
    int attempts = 0;
    ++attempts;
    return total + static_cast<count>(signedTotal) +
           static_cast<count>(attempts);
}

} // namespace grapr
