// Seeded annotation-liveness violations for grapr_analyze (ctest runs
// this fixture with WILL_FAIL). An annotation that anchors nothing is a
// contract exception nobody is using — worse than none, because readers
// trust it.
//
// This file is analyzed, never compiled.

#include "structures/partition.hpp"

namespace grapr {

void updateLabels(Partition& zeta, node u, node target) {
    // (1) Stale benign-race annotation: `labels` is not touched anywhere
    // in the following lines (the code it excused was refactored away).
    // grapr:benign-race(labels): asynchronous label publish
    zeta.set(u, target);
}

// (2) Unused lint-allow: nothing below violates container-mutation, so
// the suppression gates nothing. grapr_lint reports this as a warning;
// the analyzer escalates it to an error.
void compactOnly(Partition& zeta) {
    // grapr:lint-allow(container-mutation): rows are thread-private
    zeta.compact();
}

// (3) analyze-allow naming a check that does not exist (typo'd id).
void typoAllow(Partition& zeta, node u) {
    // grapr:analyze-allow(index-witdh): bounded by construction
    zeta.set(u, 0);
}

// Live annotation — must NOT be reported: the publish call is right
// below it.
void legalAnnotation(Partition& zeta, node u, node target) {
    // grapr:benign-race(zeta): label published non-atomically by design
    zeta.set(u, target);
}

} // namespace grapr
