// Seeded durability-order violations: each numbered function below breaks
// the WAL/checkpoint ordering contract and must be flagged by BOTH
// grapr_analyze frontends (ctest pins this fixture as WILL_FAIL).
// grapr:durability-scope
//
// Never compiled — parsed only. The macro stub keeps the fixture
// self-contained; the analyzer reads site names from the raw lines.
#define GRAPR_FAULT_POINT(site) ((void)0)

struct Snapshot {};

struct WalLike {
    void append(const Snapshot& snap, unsigned long generation);
};

void publish(Snapshot snap);
void poison(const char* reason);
void syncDirectoryOf(const char* path);
extern "C" int fsync(int fd);
extern "C" int rename(const char* from, const char* to);
extern "C" unsigned long fwrite(const void* data, unsigned long size,
                                unsigned long count, void* file);

// (1) durability-order: the publish is reachable before the WAL append —
// a crash after publish loses the acknowledged batch.
void publishBeforeAppend(WalLike& wal, Snapshot snap) {
    GRAPR_FAULT_POINT("fixture.publish.early");
    publish(snap);
    wal.append(snap, 1);
    fsync(0);
}

// (2) durability-order: the record is written but never fsync'd before
// the generation becomes visible.
void publishWithoutSync(WalLike& wal, Snapshot snap, void* file) {
    GRAPR_FAULT_POINT("fixture.publish.unsynced");
    fwrite(&snap, 1, 8, file);
    publish(snap);
}

// (3) durability-order: checkpoint rename with no fsync of the written
// temp file and no directory sync making the rename itself durable.
void renameUnordered(void* file) {
    GRAPR_FAULT_POINT("fixture.rename.bare");
    Snapshot snap;
    fwrite(&snap, 1, 8, file);
    rename("a.tmp", "a");
}

// The legal shape — append, fsync, guarded publish, then the full
// write/fsync/rename/dirsync checkpoint sequence: no findings here.
void commitCorrectly(WalLike& wal, Snapshot snap, void* file) {
    GRAPR_FAULT_POINT("fixture.commit.ok");
    wal.append(snap, 2);
    fsync(0);
    try {
        publish(snap);
    } catch (...) {
        poison("publish failed after the WAL became durable");
        throw;
    }
    fwrite(&snap, 1, 8, file);
    fsync(0);
    rename("b.tmp", "b");
    syncDirectoryOf("b");
}
