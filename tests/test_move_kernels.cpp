// Move-phase kernel engineering (PR 6): every tuned variant of the frozen
// PLM kernel — volume policy × sweep schedule × SIMD scoring — must make
// bit-identical decisions to the generic reference kernel in
// single-threaded runs; the semantic opt-ins (active-set frontier, vertex
// following, PLP frontier sweeps) are pinned by their own property and
// regression tests. Plus unit coverage for the building blocks:
// ShardedVolumes, ThreadLocalPool, VertexFollowing::reduce.

#include <gtest/gtest.h>

#include <omp.h>

#include <string>
#include <tuple>
#include <vector>

#include "community/community_volumes.hpp"
#include "community/plm.hpp"
#include "community/plp.hpp"
#include "community/vertex_following.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

Graph makeInstance(const std::string& family, std::uint64_t seed) {
    Random::setSeed(seed);
    if (family == "erdos") return ErdosRenyiGenerator(400, 0.02).generate();
    // m = 1 grows a tree: the densest possible pendant/chain structure,
    // exactly what vertex following exists for.
    if (family == "ba") return BarabasiAlbertGenerator(400, 1).generate();
    if (family == "rmat") return RmatGenerator(9, 8).generate();
    fail("unknown instance " + family);
}

std::string familyLabel(
    const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
        info) {
    return std::get<0>(info.param) + "_seed" +
           std::to_string(std::get<1>(info.param));
}

/// RAII guard: run a scope single-threaded, restore afterwards.
class SingleThreadScope {
public:
    SingleThreadScope() : restore_(Parallel::maxThreads()) {
        Parallel::setThreads(1);
    }
    ~SingleThreadScope() { Parallel::setThreads(restore_); }

private:
    int restore_;
};

/// The kernel-config grid every bit-identity test sweeps: policy × schedule
/// × SIMD, including off-default bucket thresholds (which must not matter
/// single-threaded, where bucketing degenerates to the flat sweep).
std::vector<std::pair<std::string, PlmKernelConfig>> kernelGrid() {
    std::vector<std::pair<std::string, PlmKernelConfig>> grid;
    PlmKernelConfig c;

    c = {};
    c.volumePolicy = PlmVolumePolicy::Atomic;
    c.schedule = PlmSweepSchedule::Flat;
    c.simdScoring = false;
    grid.emplace_back("atomic_flat_scalar", c);

    c = {};
    c.volumePolicy = PlmVolumePolicy::Atomic;
    c.schedule = PlmSweepSchedule::Flat;
    grid.emplace_back("atomic_flat_simd", c);

    c = {};
    c.volumePolicy = PlmVolumePolicy::Sharded;
    c.schedule = PlmSweepSchedule::Flat;
    c.simdScoring = false;
    grid.emplace_back("sharded_flat_scalar", c);

    c = {};
    c.volumePolicy = PlmVolumePolicy::Sharded;
    c.schedule = PlmSweepSchedule::DegreeBucketed;
    grid.emplace_back("sharded_bucketed_simd", c);

    c = {};
    c.lowDegreeMax = 1;
    c.hubDegreeMin = 2;
    grid.emplace_back("default_extreme_buckets", c);

    return grid;
}

} // namespace

class MoveKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(MoveKernelEquivalence, AllVariantsBitIdenticalSingleThreaded) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);
    SingleThreadScope once;

    Partition reference(csr.upperNodeIdBound());
    reference.allToSingletons();
    const count referenceMoves =
        Plm::movePhaseReference(csr, reference, 1.0, 64, nullptr);

    for (const auto& [label, kernel] : kernelGrid()) {
        Partition zeta(csr.upperNodeIdBound());
        zeta.allToSingletons();
        const count moves = Plm::movePhase(csr, zeta, 1.0, 64, nullptr, kernel);
        EXPECT_EQ(moves, referenceMoves) << label;
        EXPECT_EQ(zeta.vector(), reference.vector()) << label;
    }
}

TEST_P(MoveKernelEquivalence, FullPlmBitIdenticalAcrossKernelsSingleThreaded) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    SingleThreadScope once;

    Random::setSeed(seed + 50);
    const Partition reference = Plm().run(g);
    for (const auto& [label, kernel] : kernelGrid()) {
        PlmConfig config;
        config.kernel = kernel;
        Random::setSeed(seed + 50);
        const Partition zeta = Plm(config).run(g);
        EXPECT_EQ(zeta.vector(), reference.vector()) << label;
    }
}

TEST_P(MoveKernelEquivalence, VariantsProduceValidPartitionsMultiThreaded) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);

    // Multi-threaded results are nondeterministic by design (asynchronous
    // contract); what must hold for every variant is a complete partition
    // and a sane quality.
    for (const auto& [label, kernel] : kernelGrid()) {
        Partition zeta(csr.upperNodeIdBound());
        zeta.allToSingletons();
        Plm::movePhase(csr, zeta, 1.0, 64, nullptr, kernel);
        for (node u = 0; u < csr.upperNodeIdBound(); ++u) {
            ASSERT_LT(zeta[u], zeta.upperBound()) << label;
        }
        EXPECT_GT(Modularity().getQuality(zeta, csr), 0.0) << label;
    }
}

TEST_P(MoveKernelEquivalence, ActiveSetDeterministicAndComparable) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);
    SingleThreadScope once;

    PlmKernelConfig active;
    active.activeNodes = true;

    Partition a(csr.upperNodeIdBound());
    a.allToSingletons();
    Plm::movePhase(csr, a, 1.0, 64, nullptr, active);
    Partition b(csr.upperNodeIdBound());
    b.allToSingletons();
    Plm::movePhase(csr, b, 1.0, 64, nullptr, active);
    // Deterministic: the frontier rebuild sorts, so a fixed seed and one
    // thread reproduce exactly.
    EXPECT_EQ(a.vector(), b.vector());

    // Comparable quality: deferred activation may change individual labels
    // vs the full sweep, but not the quality class of the result.
    Partition full(csr.upperNodeIdBound());
    full.allToSingletons();
    Plm::movePhase(csr, full, 1.0, 64, nullptr, PlmKernelConfig{});
    const double qActive = Modularity().getQuality(a, csr);
    const double qFull = Modularity().getQuality(full, csr);
    EXPECT_GT(qActive, 0.0);
    EXPECT_GE(qActive, qFull - 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MoveKernelEquivalence,
    ::testing::Combine(::testing::Values("erdos", "ba", "rmat"),
                       ::testing::Values(1u, 2u, 3u)),
    familyLabel);

// --- vertex following -------------------------------------------------------

class VertexFollowingProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(VertexFollowingProperty, ReductionPreservesVolumeAndAnchorsPendants) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);

    const VertexFollowingReduction reduction = VertexFollowing::reduce(csr);
    ASSERT_EQ(reduction.anchor.size(), csr.upperNodeIdBound());

    // Anchors are live (never collapsed themselves) and chains resolve
    // fully: an anchor's anchor is itself.
    for (node u = 0; u < csr.upperNodeIdBound(); ++u) {
        const node a = reduction.anchor[u];
        EXPECT_EQ(reduction.anchor[a], a) << u;
    }

    if (reduction.collapsed == 0) return;
    // Contraction preserves the modularity arithmetic: total weight
    // exactly, volumes blockwise (collapsed edges became self-loops).
    EXPECT_DOUBLE_EQ(reduction.reduced.totalEdgeWeight(),
                     csr.totalEdgeWeight());
    std::vector<double> blockVolume(reduction.reduced.upperNodeIdBound(), 0.0);
    for (node u = 0; u < csr.upperNodeIdBound(); ++u) {
        if (!csr.hasNode(u)) continue;
        blockVolume[reduction.fineToCoarse[u]] += csr.volume(u);
    }
    for (node c = 0; c < reduction.reduced.upperNodeIdBound(); ++c) {
        EXPECT_NEAR(reduction.reduced.volume(c), blockVolume[c], 1e-9) << c;
    }
}

TEST_P(VertexFollowingProperty, PendantsLandInAnchorsCommunity) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    const CsrGraph csr(g);
    const VertexFollowingReduction reduction = VertexFollowing::reduce(csr);

    PlmConfig config;
    config.vertexFollowing = true;
    Random::setSeed(seed + 60);
    Plm plm(config);
    const Partition zeta = plm.runFrozen(csr);

    // Every collapsed node (pendants AND inner chain nodes) shares its
    // resolved anchor's community — the defining guarantee of the
    // projection. Degree-1 nodes are a subset of the collapsed set.
    for (node u = 0; u < csr.upperNodeIdBound(); ++u) {
        const node a = reduction.anchor[u];
        if (a == u) continue;
        EXPECT_EQ(zeta[u], zeta[a]) << u;
    }
    for (node u = 0; u < csr.upperNodeIdBound(); ++u) {
        if (!csr.hasNode(u) || csr.degree(u) != 1) continue;
        if (reduction.anchor[u] == u) continue; // e.g. multi-edge pendant
        EXPECT_EQ(zeta[u], zeta[reduction.anchor[u]]) << u;
    }
}

TEST_P(VertexFollowingProperty, CollapsedModularityNotWorse) {
    const auto& [family, seed] = GetParam();
    const Graph g = makeInstance(family, seed);
    SingleThreadScope once;

    PlmConfig plain;
    PlmConfig vf;
    vf.vertexFollowing = true;

    Random::setSeed(seed + 70);
    const Partition base = Plm(plain).run(g);
    Random::setSeed(seed + 70);
    const Partition followed = Plm(vf).run(g);

    const double qBase = Modularity().getQuality(base, g);
    const double qVf = Modularity().getQuality(followed, g);
    // Pendant-with-anchor is modularity-optimal for the PENDANTS (pinned
    // exactly by PendantsLandInAnchorsCommunity); end-to-end the two runs
    // are different greedy trajectories ending in different local optima,
    // so the comparison carries a small noise band. The post-prolongation
    // refinement sweep keeps the VF path inside half a percent even on the
    // pendant-dense BA tree, the hardest family here.
    EXPECT_GE(qVf + 5e-3, qBase);
}

INSTANTIATE_TEST_SUITE_P(
    Families, VertexFollowingProperty,
    ::testing::Combine(::testing::Values("erdos", "ba", "rmat"),
                       ::testing::Values(1u, 2u, 3u)),
    familyLabel);

TEST(VertexFollowing, PathTipsFoldOneStepOnly) {
    // Path 0-1-2-3-4: only the ORIGINAL pendants (the two tips) collapse —
    // the reduction is a single pass, not an iterated peel, so the chain
    // interior survives (see vertex_following.hpp for why iterating would
    // crater quality on tree-like inputs).
    Graph g(5, false);
    for (node u = 0; u + 1 < 5; ++u) g.addEdge(u, u + 1);
    const CsrGraph csr(g);
    const VertexFollowingReduction reduction = VertexFollowing::reduce(csr);

    EXPECT_EQ(reduction.collapsed, 2u);
    EXPECT_EQ(reduction.anchor[0], 1u);
    EXPECT_EQ(reduction.anchor[4], 3u);
    for (node u = 1; u < 4; ++u) EXPECT_EQ(reduction.anchor[u], u) << u;
    // Blocks {0,1} {2} {3,4}: the two tip edges fold into self-loops, the
    // two interior edges survive — weight conserved either way.
    EXPECT_EQ(reduction.reduced.numberOfNodes(), 3u);
    EXPECT_DOUBLE_EQ(reduction.reduced.totalEdgeWeight(), 4.0);
}

TEST(VertexFollowing, StarPendantsFollowTheHub) {
    Graph g(6, false);
    for (node u = 1; u < 6; ++u) g.addEdge(0, u);
    const CsrGraph csr(g);
    const VertexFollowingReduction reduction = VertexFollowing::reduce(csr);
    EXPECT_EQ(reduction.collapsed, 5u);
    for (node u = 1; u < 6; ++u) EXPECT_EQ(reduction.anchor[u], 0u) << u;
}

TEST(VertexFollowing, NoPendantsIsANoOp) {
    // A triangle has no degree-1 nodes; reduce must report collapsed == 0
    // so callers skip the contraction.
    Graph g(3, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    const VertexFollowingReduction reduction =
        VertexFollowing::reduce(CsrGraph(g));
    EXPECT_EQ(reduction.collapsed, 0u);
    for (node u = 0; u < 3; ++u) EXPECT_EQ(reduction.anchor[u], u);
}

// --- PLP frontier sweeps ----------------------------------------------------

TEST(PlpFrontier, IterationCountPinnedOnFixedSeed) {
    // Regression pin: single-threaded with a fixed seed the frontier sweep
    // is fully deterministic. If this count drifts, the frontier semantics
    // changed — update deliberately, not accidentally.
    SingleThreadScope once;
    Random::setSeed(7);
    const Graph g = ErdosRenyiGenerator(600, 0.015).generate();

    PlpConfig flag;
    PlpConfig frontier;
    frontier.frontierSweep = true;

    Random::setSeed(77);
    Plp flagPlp(flag);
    const Partition a = flagPlp.run(g);
    Random::setSeed(77);
    Plp frontierPlp(frontier);
    const Partition b = frontierPlp.run(g);

    EXPECT_EQ(flagPlp.iterations(), 6u);
    EXPECT_EQ(frontierPlp.iterations(), 10u);

    // Both modes converge to comparable quality on the same input.
    const double qa = Modularity().getQuality(a, g);
    const double qb = Modularity().getQuality(b, g);
    EXPECT_GE(qb, qa - 0.05);
}

TEST(PlpFrontier, FrontierMatchesFlagModeQualityMultiThreaded) {
    Random::setSeed(11);
    const Graph g = BarabasiAlbertGenerator(1000, 3).generate();
    PlpConfig frontier;
    frontier.frontierSweep = true;
    const Partition zeta = Plp(frontier).run(g);
    for (node u = 0; u < g.upperNodeIdBound(); ++u) {
        ASSERT_LT(zeta[u], zeta.upperBound());
    }
}

// --- ShardedVolumes ---------------------------------------------------------

TEST(ShardedVolumes, SingleThreadFlushesPerNodeExactly) {
    SingleThreadScope once;
    // Constructed under one thread: the flush interval is 1, so every
    // completeNode() drains the buffer — one add per touched community in
    // application order, replaying the atomic path bit for bit.
    ShardedVolumes volumes({10.0, 20.0, 30.0});
    auto view = volumes.view();

    // Reads before any apply come from the base array.
    EXPECT_EQ(view.read(0), 10.0);

    // One node's move: volume leaves community 0, enters community 1.
    view.apply(0, -2.5);
    view.apply(1, 2.5);
    // Own buffered deltas are visible to the own reads immediately...
    EXPECT_EQ(view.read(0), 10.0 - 2.5);
    EXPECT_EQ(view.read(1), 22.5);
    // ...but the shared array only changes at the per-node flush.
    EXPECT_EQ(volumes.values()[0], 10.0);
    view.completeNode();
    EXPECT_EQ(volumes.values()[0], 10.0 - 2.5);
    EXPECT_EQ(volumes.values()[1], 22.5);

    // A second node's move lands on the already-flushed values.
    view.apply(0, -1.5);
    EXPECT_EQ(view.read(0), 10.0 - 2.5 - 1.5);
    view.completeNode();
    EXPECT_EQ(volumes.values()[0], (10.0 - 2.5) - 1.5);

    // Everything was flushed per node: the iteration drain is a no-op.
    volumes.endIteration();
    EXPECT_EQ(volumes.values()[0], (10.0 - 2.5) - 1.5);
    EXPECT_EQ(volumes.values()[1], 22.5);
    EXPECT_EQ(volumes.values()[2], 30.0);
}

TEST(ShardedVolumes, BufferedDeltasInvisibleToOthersUntilFlush) {
    // Force a 2-thread team even on a 1-core box (OpenMP oversubscribes
    // fine); the volumes must be constructed AFTER raising the count so
    // the pool has a slot per thread and the multi-thread flush interval
    // (> 1) is in effect.
    const int restore = Parallel::maxThreads();
    Parallel::setThreads(2);
    ShardedVolumes volumes({5.0, 5.0});

#pragma omp parallel num_threads(2) default(none) shared(volumes)
    {
        const int t = omp_get_thread_num();
        auto view = volumes.view();
        // Each thread moves volume into "its" community; one apply is far
        // below the flush interval, so the delta stays buffered...
        view.apply(static_cast<node>(t), 1.0);
#pragma omp barrier
        // ...and the other thread deterministically does not see it
        // (reads consult the shared base plus only the OWN buffer).
        EXPECT_EQ(view.read(static_cast<node>(t)), 6.0);
        EXPECT_EQ(view.read(static_cast<node>(1 - t)), 5.0);
    }

    volumes.endIteration();
    EXPECT_EQ(volumes.values()[0], 6.0);
    EXPECT_EQ(volumes.values()[1], 6.0);
    Parallel::setThreads(restore);
}

TEST(ShardedVolumes, FlushIntervalBoundsStalenessInMultiThreadRuns) {
    // After kFlushIntervalNodes completed nodes, buffered deltas reach the
    // shared base even though the iteration has not ended — the bounded
    // staleness that prevents same-iteration pile-on.
    const int restore = Parallel::maxThreads();
    Parallel::setThreads(2);
    ShardedVolumes volumes({1.0, 1.0});
    auto view = volumes.view(); // serial code: thread 0's shard
    view.apply(0, 3.0);
    for (int i = 0; i < ShardedVolumes::kFlushIntervalNodes; ++i) {
        view.completeNode();
    }
    EXPECT_EQ(volumes.values()[0], 4.0);
    // The flush invalidated the buffer: reads now come from base alone.
    EXPECT_EQ(view.read(0), 4.0);
    Parallel::setThreads(restore);
}

TEST(AtomicVolumes, ReadAppliesImmediately) {
    AtomicVolumes volumes({1.0, 2.0});
    auto view = volumes.view();
    view.apply(0, 3.0);
    EXPECT_EQ(view.read(0), 4.0);
    volumes.endIteration(); // no-op
    EXPECT_EQ(volumes.values()[0], 4.0);
}

// --- ThreadLocalPool --------------------------------------------------------

TEST(ThreadLocalPool, OneSlotPerPotentialThread) {
    ThreadLocalPool<std::vector<int>> pool;
    EXPECT_EQ(pool.size(),
              static_cast<std::size_t>(omp_get_max_threads()));

#pragma omp parallel default(none) shared(pool)
    { pool.local().push_back(omp_get_thread_num()); }

    // Every thread that ran wrote only its own slot.
    for (std::size_t t = 0; t < pool.size(); ++t) {
        for (const int v : pool.slot(t)) {
            EXPECT_EQ(v, static_cast<int>(t));
        }
    }
}

TEST(ThreadLocalPool, SafeWhenTeamIsSmallerThanRequested) {
    // OpenMP may deliver fewer threads than omp_get_max_threads(); slots of
    // threads that never ran simply stay in their constructed state.
    ThreadLocalPool<SparseAccumulator> pool(count{8});
#pragma omp parallel num_threads(1) default(none) shared(pool)
    {
        // grapr:analyze-allow(shared-write-safety): local() resolves to
        // the calling thread's own slot — disjoint by construction, which
        // the textual effect pass cannot see through the member call.
        pool.local().add(3, 1.0);
    }
    EXPECT_EQ(pool.slot(0).touched().size(), 1u);
    for (std::size_t t = 1; t < pool.size(); ++t) {
        EXPECT_TRUE(pool.slot(t).touched().empty());
    }
}

TEST(ThreadLocalPool, ForwardsConstructorArguments) {
    ThreadLocalPool<SparseAccumulator> pool(count{16});
    for (std::size_t t = 0; t < pool.size(); ++t) {
        EXPECT_EQ(pool.slot(t).capacity(), 16u);
    }
}
