// Snapshot-isolation enforcement tests for the streaming engine
// (graph/stream_engine) under GRAPR_VIEW_CHECK.
//
// The reader-pinning contract: a borrowed StreamView is valid only until
// the next publish; a pinned snapshot (SnapshotPtr) is valid for as long
// as it is held. The stale-view fixture must abort the process, so — like
// test_race_check.cpp and test_view_check.cpp — this binary has a custom
// main() that re-execs itself (via /proc/self/exe) with
// GRAPR_STREAM_FIXTURE set, runs the named fixture instead of the test
// suite, and lets the parent assert on the child's exit status and stderr:
// the abort report must name BOTH the view-acquisition site and the
// publish site (both in this file).
//
// Every re-exec test is a GTEST_SKIP no-op when the build does not define
// GRAPR_VIEW_CHECK — the binary still builds and runs in plain builds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "generators/planted_partition.hpp"
#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "support/random.hpp"
#include "support/stream_workload.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#define GRAPR_CAN_REEXEC 1
#else
#define GRAPR_CAN_REEXEC 0
#endif

namespace {

using namespace grapr;
using grapr::testing::StreamWorkload;
using grapr::testing::StreamWorkloadConfig;

// Child exit codes for fixture runs (distinct from gtest's 0/1).
constexpr int kFixtureSurvived = 0;  // fixture ran to completion
constexpr int kFixtureUnknown = 98;  // unrecognised fixture name or state

StreamingGraph makeEngine() {
    Random::setSeed(7100);
    Graph g = PlantedPartitionGenerator(400, 8, 0.25, 0.01).generate();
    return StreamingGraph(g);
}

EdgeBatch effectiveBatch(const CsrGraph& state) {
    // One definitely-net-effective op: toggle edge {0, 1}.
    EdgeBatch batch;
    if (csrEdgeWeight(state, 0, 1).has_value()) {
        batch.remove(0, 1);
    } else {
        batch.insert(0, 1);
    }
    return batch;
}

// Take a borrowed view, publish a new generation, read through the view.
// In a GRAPR_VIEW_CHECK build the read must abort, reporting where the
// view was taken and where the publish happened; surviving to the return
// statement means the engine's generation stamp failed to fire.
int runStaleViewFixture() {
    StreamingGraph engine = makeEngine();
    const StreamView view = engine.current();            // acquisition site
    engine.apply(effectiveBatch(view.graph()));          // publish site
    return view.graph().numberOfEdges() > 0 ? kFixtureSurvived
                                            : kFixtureUnknown; // stale read
}

// The legal side of the contract: pinned snapshots survive any number of
// publishes bit-identically, a borrowed view is fine until (and only
// until) the next publish, and a fresh view taken after a publish reads
// the new generation. Must run to completion, also with the stamp armed.
int runPinnedReaderFixture() {
    StreamingGraph engine = makeEngine();
    const SnapshotPtr pinned = engine.pin();
    const count pinnedEdges = pinned->graph.numberOfEdges();

    {
        // Borrowed view consumed entirely before the publish: legal.
        const StreamView view = engine.current();
        if (view.graph().numberOfEdges() != pinnedEdges) {
            return kFixtureUnknown;
        }
    }

    StreamWorkloadConfig cfg;
    cfg.nodes = 400;
    cfg.opsPerBatch = 64;
    cfg.seed = 7101;
    const StreamWorkload workload(cfg);
    for (std::uint64_t i = 0; i < 5; ++i) {
        engine.apply(workload.batch(i, engine.pin()->graph),
                     StreamApplyMode::Permissive);
    }

    // The pinned generation is immortal while held: same object, same
    // counts, readable without tripping any stamp.
    if (pinned->generation != 0) return kFixtureUnknown;
    if (pinned->graph.numberOfEdges() != pinnedEdges) return kFixtureUnknown;

    // A view taken after the publishes reads the *current* generation.
    const StreamView fresh = engine.current();
    return fresh.generation() == engine.generation() ? kFixtureSurvived
                                                     : kFixtureUnknown;
}

// Pinned readers racing a publishing writer with the stamp armed: no
// false positives — pin() must never abort, no matter how the publishes
// interleave with the reads.
int runConcurrentPinsFixture() {
    StreamingGraph engine = makeEngine();
    StreamWorkloadConfig cfg;
    cfg.nodes = 400;
    cfg.opsPerBatch = 96;
    cfg.seed = 7102;
    const StreamWorkload workload(cfg);

    std::atomic<bool> done{false};
    std::atomic<bool> ok{true};
    std::thread writer([&] {
        for (std::uint64_t i = 0; i < 30; ++i) {
            engine.apply(workload.batch(i, engine.pin()->graph),
                         StreamApplyMode::Permissive);
        }
        done.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                const SnapshotPtr snap = engine.pin();
                const count edges = snap->graph.numberOfEdges();
                // Re-read through the same pin: must be stable.
                if (snap->graph.numberOfEdges() != edges) {
                    ok.store(false, std::memory_order_relaxed);
                }
            }
        });
    }
    writer.join();
    for (std::thread& t : readers) t.join();
    return ok.load() ? kFixtureSurvived : kFixtureUnknown;
}

int runFixture(const char* name) {
    if (std::strcmp(name, "stale") == 0) return runStaleViewFixture();
    if (std::strcmp(name, "pinned") == 0) return runPinnedReaderFixture();
    if (std::strcmp(name, "concurrent") == 0) {
        return runConcurrentPinsFixture();
    }
    return kFixtureUnknown;
}

#if GRAPR_CAN_REEXEC && defined(GRAPR_VIEW_CHECK)

struct ChildResult {
    bool spawned = false;
    bool signalled = false;
    int signal = 0;
    int exitCode = -1;
    std::string output; // child stderr
};

// Re-exec this binary with GRAPR_STREAM_FIXTURE=<fixture>, capturing the
// child's stderr so the parent can assert on the stale-view report.
ChildResult runSelfFixture(const char* fixture) {
    ChildResult result;
    char exe[4096];
    const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0) return result;
    exe[len] = '\0';

    char logPath[] = "/tmp/grapr_stream_isolation_XXXXXX";
    const int logFd = ::mkstemp(logPath);
    if (logFd < 0) return result;

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(logFd);
        ::unlink(logPath);
        return result;
    }
    if (pid == 0) {
        ::setenv("GRAPR_STREAM_FIXTURE", fixture, 1);
        ::setenv("OMP_NUM_THREADS", "4", 1);
        ::dup2(logFd, 2);
        ::close(logFd);
        ::execl(exe, exe, static_cast<char*>(nullptr));
        ::_exit(127);
    }
    ::close(logFd);
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
        ::unlink(logPath);
        return result;
    }
    result.spawned = true;
    if (WIFSIGNALED(status)) {
        result.signalled = true;
        result.signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
    }
    std::ifstream log(logPath);
    std::ostringstream text;
    text << log.rdbuf();
    result.output = text.str();
    ::unlink(logPath);
    return result;
}

#endif // GRAPR_CAN_REEXEC && GRAPR_VIEW_CHECK

} // namespace

#ifndef GRAPR_VIEW_CHECK

TEST(StreamIsolation, RequiresInstrumentedBuild) {
    GTEST_SKIP() << "built without GRAPR_VIEW_CHECK; configure with "
                    "-DGRAPR_VIEW_CHECK=ON to run the snapshot-isolation "
                    "enforcement tests";
}

#else // GRAPR_VIEW_CHECK

TEST(StreamIsolation, StaleViewAbortsAcrossPublishBoundary) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("stale");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_TRUE(child.signalled)
        << "stale-view fixture ran to completion (exit " << child.exitCode
        << ") — the engine's generation stamp failed to detect a borrowed "
           "view crossing the publish boundary";
    EXPECT_EQ(child.signal, SIGABRT);
    // The report must carry both ends: where the view was taken and where
    // the publish happened — both in this file.
    EXPECT_NE(child.output.find("VIEW-LIFECYCLE VIOLATION"),
              std::string::npos)
        << "abort report missing; child stderr was:\n"
        << child.output;
    EXPECT_NE(child.output.find("view frozen at"), std::string::npos);
    EXPECT_NE(child.output.find("source mutated at"), std::string::npos);
    const std::string site = "test_stream_isolation.cpp";
    const std::size_t first = child.output.find(site);
    ASSERT_NE(first, std::string::npos)
        << "acquisition site not attributed to this file; stderr was:\n"
        << child.output;
    EXPECT_NE(child.output.find(site, first + site.size()),
              std::string::npos)
        << "publish site not attributed to this file; stderr was:\n"
        << child.output;
#endif
}

TEST(StreamIsolation, PinnedReadersSurvivePublishes) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("pinned");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_FALSE(child.signalled)
        << "pinned-reader lifecycle tripped the stamp (signal "
        << child.signal << "); stderr was:\n"
        << child.output;
    EXPECT_EQ(child.exitCode, kFixtureSurvived);
#endif
}

TEST(StreamIsolation, ConcurrentPinsAreNotFalsePositives) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs /proc/self/exe";
#else
    const ChildResult child = runSelfFixture("concurrent");
    ASSERT_TRUE(child.spawned) << "could not re-exec the test binary";
    EXPECT_FALSE(child.signalled)
        << "racing pinned readers tripped the stamp (signal "
        << child.signal << "); stderr was:\n"
        << child.output;
    EXPECT_EQ(child.exitCode, kFixtureSurvived);
#endif
}

TEST(StreamIsolation, FreshViewAfterPublishIsValid) {
    // In-process check: the bump invalidates only views taken BEFORE the
    // publish; acquiring after is the documented recovery.
    StreamingGraph engine = makeEngine();
    engine.apply(effectiveBatch(engine.pin()->graph));
    const StreamView view = engine.current();
    EXPECT_EQ(view.generation(), engine.generation());
    EXPECT_GT(view.graph().numberOfNodes(), 0u);
}

#endif // GRAPR_VIEW_CHECK

int main(int argc, char** argv) {
    if (const char* fixture = std::getenv("GRAPR_STREAM_FIXTURE")) {
        return runFixture(fixture);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
