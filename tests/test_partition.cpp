// Unit tests for Partition and UnionFind.

#include <gtest/gtest.h>

#include "structures/partition.hpp"
#include "structures/union_find.hpp"

using namespace grapr;

TEST(Partition, SingletonsAndAllToOne) {
    Partition p(5);
    p.allToSingletons();
    EXPECT_EQ(p.upperBound(), 5u);
    EXPECT_EQ(p.numberOfSubsets(), 5u);
    for (node v = 0; v < 5; ++v) EXPECT_EQ(p[v], v);
    p.allToOne();
    EXPECT_EQ(p.numberOfSubsets(), 1u);
    EXPECT_EQ(p.upperBound(), 1u);
}

TEST(Partition, UnassignedByDefault) {
    Partition p(3);
    EXPECT_EQ(p[0], none);
    EXPECT_FALSE(p.isComplete());
    p.set(0, 1);
    p.set(1, 1);
    p.set(2, 0);
    EXPECT_TRUE(p.isComplete());
}

TEST(Partition, MergeSubsets) {
    Partition p(4);
    p.allToSingletons();
    const node survivor = p.mergeSubsets(1, 3);
    EXPECT_EQ(survivor, 1u);
    EXPECT_TRUE(p.inSameSubset(1, 3));
    EXPECT_FALSE(p.inSameSubset(0, 1));
    EXPECT_EQ(p.numberOfSubsets(), 3u);
    EXPECT_EQ(p.mergeSubsets(2, 2), 2u); // self-merge is a no-op
}

TEST(Partition, CompactAscendingOrder) {
    Partition p(4);
    p.set(0, 100);
    p.set(1, 7);
    p.set(2, 100);
    p.set(3, 42);
    p.setUpperBound(101);
    EXPECT_EQ(p.compact(), 3u);
    EXPECT_EQ(p.upperBound(), 3u);
    EXPECT_EQ(p[1], 0u);  // old 7 -> 0
    EXPECT_EQ(p[3], 1u);  // old 42 -> 1
    EXPECT_EQ(p[0], 2u);  // old 100 -> 2
    EXPECT_EQ(p[2], 2u);
}

TEST(Partition, CompactByFirstAppearance) {
    Partition p(3);
    p.set(0, 100);
    p.set(1, 7);
    p.set(2, 100);
    p.setUpperBound(101);
    EXPECT_EQ(p.compact(/*byFirstAppearance=*/true), 2u);
    EXPECT_EQ(p[0], 0u);
    EXPECT_EQ(p[1], 1u);
    EXPECT_EQ(p[2], 0u);
}

TEST(Partition, CompactPreservesNone) {
    Partition p(3);
    p.set(0, 9);
    p.set(2, 9);
    p.setUpperBound(10);
    p.compact();
    EXPECT_EQ(p[1], none);
    EXPECT_EQ(p.upperBound(), 1u);
}

TEST(Partition, SubsetSizesAndSubsets) {
    Partition p(5);
    p.set(0, 1);
    p.set(1, 0);
    p.set(2, 1);
    p.set(3, 1);
    p.set(4, 0);
    p.setUpperBound(2);
    const auto sizes = p.subsetSizes();
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_EQ(sizes[0], 2u);
    EXPECT_EQ(sizes[1], 3u);
    const auto subsets = p.subsets();
    EXPECT_EQ(subsets.at(1), (std::vector<node>{0, 2, 3}));
}

TEST(Partition, SubsetSizesRejectsIdOverflow) {
    Partition p(2);
    p.set(0, 5);
    p.setUpperBound(2);
    EXPECT_THROW(p.subsetSizes(), std::runtime_error);
}

TEST(Partition, EqualityOperator) {
    Partition a(3), b(3);
    a.allToSingletons();
    b.allToSingletons();
    EXPECT_EQ(a, b);
    b.set(2, 0);
    EXPECT_NE(a, b);
}

TEST(UnionFind, BasicUnions) {
    UnionFind uf(6);
    EXPECT_EQ(uf.numberOfSets(), 6u);
    uf.unite(0, 1);
    uf.unite(2, 3);
    EXPECT_EQ(uf.numberOfSets(), 4u);
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_FALSE(uf.connected(1, 2));
    uf.unite(1, 3);
    EXPECT_TRUE(uf.connected(0, 2));
    EXPECT_EQ(uf.numberOfSets(), 3u);
}

TEST(UnionFind, UniteIdempotent) {
    UnionFind uf(3);
    uf.unite(0, 1);
    const count sets = uf.numberOfSets();
    uf.unite(1, 0);
    EXPECT_EQ(uf.numberOfSets(), sets);
}

TEST(UnionFind, ToVectorGivesRepresentatives) {
    UnionFind uf(5);
    uf.unite(0, 4);
    uf.unite(1, 2);
    const auto reps = uf.toVector();
    EXPECT_EQ(reps[0], reps[4]);
    EXPECT_EQ(reps[1], reps[2]);
    EXPECT_NE(reps[0], reps[1]);
    EXPECT_EQ(reps[3], 3u);
}

TEST(UnionFind, LongChainPathCompression) {
    const count n = 10000;
    UnionFind uf(n);
    for (node v = 0; v + 1 < n; ++v) uf.unite(v, v + 1);
    EXPECT_EQ(uf.numberOfSets(), 1u);
    EXPECT_TRUE(uf.connected(0, n - 1));
}
