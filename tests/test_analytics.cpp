// Tests for the analytics extensions: BFS/diameter, degree assortativity,
// core decomposition, conductance/density/performance measures, and the
// Holme–Kim clustered scale-free generator.

#include <gtest/gtest.h>

#include "generators/barabasi_albert.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/holme_kim.hpp"
#include "generators/simple_graphs.hpp"
#include "graph/distances.hpp"
#include "graph/graph_tools.hpp"
#include "quality/clustering_coefficient.hpp"
#include "quality/conductance.hpp"
#include "quality/core_decomposition.hpp"
#include "support/random.hpp"

using namespace grapr;

// --- BFS ---------------------------------------------------------------

TEST(Bfs, DistancesOnPath) {
    Graph g = SimpleGraphs::path(6);
    Bfs bfs(g);
    bfs.run(0);
    for (node v = 0; v < 6; ++v) EXPECT_EQ(bfs.distances()[v], v);
    EXPECT_EQ(bfs.eccentricity(), 5u);
    EXPECT_EQ(bfs.farthestNode(), 5u);
    EXPECT_EQ(bfs.reached(), 6u);
}

TEST(Bfs, UnreachableNodes) {
    Graph g(4, false);
    g.addEdge(0, 1);
    // 2, 3 disconnected.
    Bfs bfs(g);
    bfs.run(0);
    EXPECT_EQ(bfs.distances()[1], 1u);
    EXPECT_EQ(bfs.distances()[2], Bfs::unreachable);
    EXPECT_EQ(bfs.reached(), 2u);
}

TEST(Bfs, MidPathSource) {
    Graph g = SimpleGraphs::path(7);
    Bfs bfs(g);
    bfs.run(3);
    EXPECT_EQ(bfs.eccentricity(), 3u);
    EXPECT_EQ(bfs.distances()[0], 3u);
    EXPECT_EQ(bfs.distances()[6], 3u);
}

TEST(Bfs, InvalidSourceThrows) {
    Graph g(2, false);
    g.removeNode(1);
    Bfs bfs(g);
    EXPECT_THROW(bfs.run(1), std::runtime_error);
}

// --- diameter ----------------------------------------------------------

TEST(Diameter, ExactOnPath) {
    Graph g = SimpleGraphs::path(100);
    EXPECT_EQ(approximateDiameter(g), 99u);
}

TEST(Diameter, CliqueIsOne) {
    Graph g = SimpleGraphs::clique(10);
    EXPECT_EQ(approximateDiameter(g), 1u);
}

TEST(Diameter, CycleLowerBound) {
    Graph g = SimpleGraphs::cycle(100);
    // True diameter 50; double sweep finds it exactly on cycles.
    EXPECT_EQ(approximateDiameter(g), 50u);
}

TEST(Diameter, SmallWorldIsSmall) {
    Random::setSeed(150);
    Graph g = BarabasiAlbertGenerator(10000, 4).generate();
    const count d = approximateDiameter(g);
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 12u); // log-ish diameter, the "small world" property
}

TEST(Diameter, EmptyGraph) {
    Graph g(0, false);
    EXPECT_EQ(approximateDiameter(g), 0u);
}

// --- assortativity ------------------------------------------------------

TEST(Assortativity, RegularGraphIsDegenerate) {
    Graph g = SimpleGraphs::cycle(50); // all degrees equal: no variance
    EXPECT_DOUBLE_EQ(degreeAssortativity(g), 0.0);
}

TEST(Assortativity, StarIsMaximallyDisassortative) {
    Graph g = SimpleGraphs::star(20);
    EXPECT_LT(degreeAssortativity(g), -0.99);
}

TEST(Assortativity, PreferentialAttachmentIsDisassortative) {
    Random::setSeed(151);
    Graph g = BarabasiAlbertGenerator(5000, 3).generate();
    EXPECT_LT(degreeAssortativity(g), 0.0);
}

TEST(Assortativity, InRange) {
    Random::setSeed(152);
    Graph g = ErdosRenyiGenerator(500, 0.02).generate();
    const double r = degreeAssortativity(g);
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
}

// --- core decomposition ---------------------------------------------------

TEST(CoreDecomposition, Clique) {
    Graph g = SimpleGraphs::clique(6);
    CoreDecomposition cores(g);
    cores.run();
    EXPECT_EQ(cores.degeneracy(), 5u);
    for (node v = 0; v < 6; ++v) EXPECT_EQ(cores.coreNumbers()[v], 5u);
    EXPECT_EQ(cores.coreSize(5), 6u);
    EXPECT_EQ(cores.coreSize(6), 0u);
}

TEST(CoreDecomposition, StarIsOneCore) {
    Graph g = SimpleGraphs::star(10);
    CoreDecomposition cores(g);
    cores.run();
    EXPECT_EQ(cores.degeneracy(), 1u);
    EXPECT_EQ(cores.coreNumbers()[0], 1u); // hub too: removing leaves peels it
}

TEST(CoreDecomposition, CliqueWithTail) {
    // K4 with a path hanging off: clique nodes have core 3, path nodes 1.
    Graph g(7, false);
    for (node u = 0; u < 4; ++u) {
        for (node v = u + 1; v < 4; ++v) g.addEdge(u, v);
    }
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 6);
    CoreDecomposition cores(g);
    cores.run();
    EXPECT_EQ(cores.degeneracy(), 3u);
    for (node v = 0; v < 4; ++v) EXPECT_EQ(cores.coreNumbers()[v], 3u);
    for (node v = 4; v < 7; ++v) EXPECT_EQ(cores.coreNumbers()[v], 1u);
}

TEST(CoreDecomposition, IsolatedNodesAreZeroCore) {
    Graph g(3, false);
    g.addEdge(0, 1);
    CoreDecomposition cores(g);
    cores.run();
    EXPECT_EQ(cores.coreNumbers()[2], 0u);
}

TEST(CoreDecomposition, SelfLoopsIgnored) {
    Graph g(2, false);
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    CoreDecomposition cores(g);
    cores.run();
    EXPECT_EQ(cores.degeneracy(), 1u);
}

TEST(CoreDecomposition, BaMinimumCoreIsAttachment) {
    Random::setSeed(153);
    Graph g = BarabasiAlbertGenerator(2000, 3).generate();
    CoreDecomposition cores(g);
    cores.run();
    // Every BA node enters with `attachment` edges, so the whole graph is
    // a 3-core.
    g.forNodes([&](node v) { EXPECT_GE(cores.coreNumbers()[v], 3u); });
    EXPECT_GE(cores.degeneracy(), 3u);
}

TEST(CoreDecomposition, RequiresRun) {
    Graph g(3, false);
    CoreDecomposition cores(g);
    EXPECT_THROW(cores.degeneracy(), std::runtime_error);
}

// --- conductance & friends ----------------------------------------------

namespace {

Graph twoTriangles() {
    Graph g(6, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(3, 5);
    g.addEdge(2, 3);
    return g;
}

Partition twoTrianglesTruth() {
    Partition p(6);
    for (node v = 0; v < 6; ++v) p.set(v, v < 3 ? 0 : 1);
    p.setUpperBound(2);
    return p;
}

} // namespace

TEST(Conductance, HandComputedTwoTriangles) {
    // Each triangle: cut 1, vol 7, rest vol 7 -> conductance 1/7.
    const Graph g = twoTriangles();
    const auto phi = communityConductances(twoTrianglesTruth(), g);
    ASSERT_EQ(phi.size(), 2u);
    EXPECT_NEAR(phi[0], 1.0 / 7.0, 1e-12);
    EXPECT_NEAR(phi[1], 1.0 / 7.0, 1e-12);
}

TEST(Conductance, PerfectSeparationIsZero) {
    Graph g(4, false);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    Partition p(4);
    p.set(0, 0); p.set(1, 0); p.set(2, 1); p.set(3, 1);
    p.setUpperBound(2);
    const auto phi = communityConductances(p, g);
    EXPECT_DOUBLE_EQ(phi[0], 0.0);
    EXPECT_DOUBLE_EQ(phi[1], 0.0);
}

TEST(Conductance, SummaryAggregates) {
    const Graph g = twoTriangles();
    const ConductanceSummary summary =
        conductanceSummary(twoTrianglesTruth(), g);
    EXPECT_NEAR(summary.minimum, 1.0 / 7.0, 1e-12);
    EXPECT_NEAR(summary.maximum, 1.0 / 7.0, 1e-12);
    EXPECT_NEAR(summary.average, 1.0 / 7.0, 1e-12);
    EXPECT_NEAR(summary.weightedAverage, 1.0 / 7.0, 1e-12);
}

TEST(Conductance, SingletonsInClique) {
    Graph g = SimpleGraphs::clique(4);
    Partition p(4);
    p.allToSingletons();
    // Each singleton: cut 3, vol 3 -> conductance 1 (all edges leave).
    const auto phi = communityConductances(p, g);
    for (double value : phi) EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(IntraDensity, CliquesAreDense) {
    const Graph g = twoTriangles();
    EXPECT_DOUBLE_EQ(averageIntraDensity(twoTrianglesTruth(), g), 1.0);
}

TEST(IntraDensity, SingletonsSkipped) {
    Graph g(3, false);
    g.addEdge(0, 1);
    Partition p(3);
    p.set(0, 0); p.set(1, 0); p.set(2, 1); // community 1 has size 1
    p.setUpperBound(2);
    EXPECT_DOUBLE_EQ(averageIntraDensity(p, g), 1.0);
}

TEST(Performance, HandComputed) {
    // Two triangles + bridge, truth split: intra pairs with edge = 6,
    // inter pairs = 9, inter edges = 1 -> correct = 6 + 8 = 14 of 15.
    const Graph g = twoTriangles();
    EXPECT_NEAR(performanceMeasure(twoTrianglesTruth(), g), 14.0 / 15.0,
                1e-12);
}

TEST(Performance, PerfectOnDisjointCliques) {
    Graph g(6, false);
    for (node u = 0; u < 3; ++u) {
        for (node v = u + 1; v < 3; ++v) g.addEdge(u, v);
    }
    for (node u = 3; u < 6; ++u) {
        for (node v = u + 1; v < 6; ++v) g.addEdge(u, v);
    }
    Partition p(6);
    for (node v = 0; v < 6; ++v) p.set(v, v < 3 ? 0 : 1);
    p.setUpperBound(2);
    EXPECT_DOUBLE_EQ(performanceMeasure(p, g), 1.0);
}

// --- Holme-Kim generator --------------------------------------------------

TEST(HolmeKim, SizeAndConnectivity) {
    Random::setSeed(154);
    Graph g = HolmeKimGenerator(3000, 4, 0.5).generate();
    EXPECT_EQ(g.numberOfNodes(), 3000u);
    EXPECT_GE(GraphTools::degreeStatistics(g).minimum, 1u);
    g.checkConsistency();
}

TEST(HolmeKim, TriadsRaiseClustering) {
    Random::setSeed(155);
    Graph plain = HolmeKimGenerator(4000, 4, 0.0).generate();
    Random::setSeed(155);
    Graph clustered = HolmeKimGenerator(4000, 4, 0.9).generate();
    const double lccPlain = ClusteringCoefficient::averageLocal(plain);
    const double lccClustered =
        ClusteringCoefficient::averageLocal(clustered);
    EXPECT_GT(lccClustered, 2.0 * lccPlain);
}

TEST(HolmeKim, ZeroTriadMatchesBaShape) {
    Random::setSeed(156);
    Graph g = HolmeKimGenerator(2000, 3, 0.0).generate();
    // Scale-free signature: hubs far above the attachment count.
    EXPECT_GT(GraphTools::degreeStatistics(g).maximum, 30u);
}

TEST(HolmeKim, RejectsBadParameters) {
    EXPECT_THROW(HolmeKimGenerator(10, 0, 0.5), std::runtime_error);
    EXPECT_THROW(HolmeKimGenerator(3, 4, 0.5), std::runtime_error);
    EXPECT_THROW(HolmeKimGenerator(10, 2, 1.5), std::runtime_error);
}
