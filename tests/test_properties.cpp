// Property-based tests: parameterized sweeps over generators, sizes, seeds
// and algorithms, pinning the invariants the framework is built on.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.hpp"
#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "community/combiner.hpp"
#include "community/plm.hpp"
#include "generators/barabasi_albert.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/grid.hpp"
#include "generators/lfr.hpp"
#include "generators/planted_partition.hpp"
#include "generators/rmat.hpp"
#include "generators/watts_strogatz.hpp"
#include "quality/coverage.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

struct Instance {
    std::string name;
    std::uint64_t seed;
};

Graph makeInstance(const std::string& name) {
    if (name == "erdos") return ErdosRenyiGenerator(600, 0.02).generate();
    if (name == "planted") {
        return PlantedPartitionGenerator(600, 10, 0.15, 0.005).generate();
    }
    if (name == "rmat") return RmatGenerator(9, 8).generate();
    if (name == "ba") return BarabasiAlbertGenerator(600, 4).generate();
    if (name == "ws") return WattsStrogatzGenerator(600, 6, 0.05).generate();
    if (name == "grid") return GridGenerator(25, 24).generate();
    if (name == "lfr") {
        LfrParameters params;
        params.n = 600;
        params.minCommunitySize = 15;
        params.maxCommunitySize = 60;
        params.mu = 0.3;
        return LfrGenerator(params).generate();
    }
    fail("unknown instance " + name);
}

std::string instanceLabel(
    const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
        info) {
    return std::get<0>(info.param) + "_seed" +
           std::to_string(std::get<1>(info.param));
}

} // namespace

// ---------------------------------------------------------------------------
// Sweep 1: algorithm-independent invariants of every solution produced by
// every registered detector on every instance family.
// ---------------------------------------------------------------------------

class SolutionInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(SolutionInvariants, AllDetectorsRespectBounds) {
    const auto& [family, seed] = GetParam();
    Random::setSeed(seed);
    Graph g = makeInstance(family);

    for (const auto& name : {"PLP", "PLM", "PLMR", "CLU_TBB", "CEL"}) {
        Random::setSeed(seed + 1);
        auto detector = makeDetector(name);
        const Partition zeta = detector->run(g);

        // Completeness and id sanity.
        ASSERT_TRUE(zeta.isComplete()) << name << " on " << family;
        ASSERT_EQ(zeta.numberOfElements(), g.upperNodeIdBound());

        // Modularity in its mathematical range.
        const double q = Modularity().getQuality(zeta, g);
        EXPECT_GE(q, -0.5) << name << " on " << family;
        EXPECT_LE(q, 1.0) << name << " on " << family;

        // Coverage in [0,1] and >= modularity's intra term implies
        // coverage >= modularity.
        const double cov = Coverage().getQuality(zeta, g);
        EXPECT_GE(cov, 0.0);
        EXPECT_LE(cov, 1.0 + 1e-12);
        EXPECT_GE(cov, q - 1e-9) << name << " on " << family;
    }
}

TEST_P(SolutionInvariants, CommunitiesAreNonTrivialOnClusteredInstances) {
    const auto& [family, seed] = GetParam();
    if (family != "planted" && family != "lfr") GTEST_SKIP();
    Random::setSeed(seed);
    Graph g = makeInstance(family);
    Random::setSeed(seed + 2);
    const Partition zeta = Plm().run(g);
    // On clustered inputs PLM must find something between "all singletons"
    // and "everything in one".
    EXPECT_GT(zeta.numberOfSubsets(), 1u);
    EXPECT_LT(zeta.numberOfSubsets(), g.numberOfNodes());
    EXPECT_GT(Modularity().getQuality(zeta, g), 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SolutionInvariants,
    ::testing::Combine(::testing::Values("erdos", "planted", "rmat", "ba",
                                         "ws", "grid", "lfr"),
                       ::testing::Values(1u, 2u)),
    instanceLabel);

// ---------------------------------------------------------------------------
// Sweep 2: coarsening/projection algebra on random partitions.
// ---------------------------------------------------------------------------

class CoarseningAlgebra
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(CoarseningAlgebra, WeightAndVolumeConservation) {
    const auto& [family, seed] = GetParam();
    Random::setSeed(seed);
    Graph g = makeInstance(family);

    Partition p(g.upperNodeIdBound());
    const count k = 1 + Random::integer(32);
    for (node v = 0; v < p.numberOfElements(); ++v) {
        p.set(v, static_cast<node>(Random::integer(k)));
    }
    p.setUpperBound(static_cast<node>(k));

    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    EXPECT_NEAR(result.coarseGraph.totalEdgeWeight(), g.totalEdgeWeight(),
                1e-6);

    // Modularity invariance under prolongation of any coarse solution.
    Partition coarseSolution(result.coarseGraph.upperNodeIdBound());
    for (node c = 0; c < coarseSolution.numberOfElements(); ++c) {
        coarseSolution.set(c, static_cast<node>(Random::integer(5)));
    }
    coarseSolution.setUpperBound(5);
    const Partition fine = ClusteringProjector::projectBack(
        coarseSolution, result.fineToCoarse);
    EXPECT_NEAR(
        Modularity().getQuality(coarseSolution, result.coarseGraph),
        Modularity().getQuality(fine, g), 1e-9);
}

TEST_P(CoarseningAlgebra, SequentialEqualsParallel) {
    const auto& [family, seed] = GetParam();
    Random::setSeed(seed);
    Graph g = makeInstance(family);
    Partition p(g.upperNodeIdBound());
    for (node v = 0; v < p.numberOfElements(); ++v) {
        p.set(v, static_cast<node>(Random::integer(16)));
    }
    p.setUpperBound(16);
    const CoarseningResult a = ParallelPartitionCoarsening(true).run(g, p);
    const CoarseningResult b = ParallelPartitionCoarsening(false).run(g, p);
    EXPECT_EQ(a.fineToCoarse, b.fineToCoarse);
    EXPECT_TRUE(a.coarseGraph.structurallyEquals(b.coarseGraph));
}

INSTANTIATE_TEST_SUITE_P(
    Families, CoarseningAlgebra,
    ::testing::Combine(::testing::Values("erdos", "planted", "rmat", "grid"),
                       ::testing::Values(3u, 4u, 5u)),
    instanceLabel);

// ---------------------------------------------------------------------------
// Sweep 3: the hash combiner against the exact sorting oracle across
// ensemble sizes.
// ---------------------------------------------------------------------------

class CombinerProperty : public ::testing::TestWithParam<int> {};

TEST_P(CombinerProperty, HashMatchesOracle) {
    const int b = GetParam();
    Random::setSeed(200 + static_cast<std::uint64_t>(b));
    const count n = 400;
    std::vector<Partition> bases;
    for (int i = 0; i < b; ++i) {
        Partition p(n);
        for (node v = 0; v < n; ++v) {
            p.set(v, static_cast<node>(Random::integer(8)));
        }
        p.setUpperBound(8);
        bases.push_back(std::move(p));
    }
    const Partition viaHash = HashingCombiner::combine(bases);
    const Partition viaSort = SortingCombiner::combine(bases);
    EXPECT_DOUBLE_EQ(jaccardIndex(viaHash, viaSort), 1.0);
}

TEST_P(CombinerProperty, CoresRefineEveryBase) {
    // The core communities must be a refinement of each base solution:
    // same core => same community in every base.
    const int b = GetParam();
    Random::setSeed(300 + static_cast<std::uint64_t>(b));
    const count n = 300;
    std::vector<Partition> bases;
    for (int i = 0; i < b; ++i) {
        Partition p(n);
        for (node v = 0; v < n; ++v) {
            p.set(v, static_cast<node>(Random::integer(5)));
        }
        p.setUpperBound(5);
        bases.push_back(std::move(p));
    }
    const Partition cores = HashingCombiner::combine(bases);
    for (node u = 0; u < n; ++u) {
        for (node v = u + 1; v < n; ++v) {
            if (cores[u] != cores[v]) continue;
            for (const auto& base : bases) {
                ASSERT_EQ(base[u], base[v]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(EnsembleSizes, CombinerProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// ---------------------------------------------------------------------------
// Sweep 4: LFR accuracy ordering — detection gets monotonically harder with
// mu (the Figure-8 property), and PLM stays usable through mu = 0.6.
// ---------------------------------------------------------------------------

class LfrAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(LfrAccuracy, PlmTracksGroundTruth) {
    const double mu = GetParam();
    Random::setSeed(static_cast<std::uint64_t>(mu * 1000));
    LfrParameters params;
    params.n = 1200;
    params.minCommunitySize = 20;
    params.maxCommunitySize = 80;
    params.mu = mu;
    LfrGenerator gen(params);
    Graph g = gen.generate();
    const Partition zeta = Plm().run(g);
    const double agreement = jaccardIndex(zeta, gen.groundTruth());
    if (mu <= 0.4) {
        EXPECT_GT(agreement, 0.7) << "mu=" << mu;
    } else if (mu <= 0.6) {
        // Small-instance resolution-limit effects make the optimum-vs-truth
        // agreement noisy at this mixing level; 0.2 separates "found
        // structure" from "random grouping" (which scores ~0.02 here).
        EXPECT_GT(agreement, 0.2) << "mu=" << mu;
    }
    // mu=0.8: no assertion beyond sanity — even the paper's PLM only
    // partially recovers at that noise level on small instances.
    EXPECT_TRUE(zeta.isComplete());
}

INSTANTIATE_TEST_SUITE_P(MixingSweep, LfrAccuracy,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

// ---------------------------------------------------------------------------
// Sweep 5: determinism — fixed seed + single thread reproduces identical
// results for the randomized sequential baselines and generators.
// ---------------------------------------------------------------------------

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, GeneratorsReproduce) {
    const std::uint64_t seed = GetParam();
    Random::setSeed(seed);
    Graph a = RmatGenerator(9, 8).generate();
    Random::setSeed(seed);
    Graph b = RmatGenerator(9, 8).generate();
    EXPECT_TRUE(a.structurallyEquals(b));
}

TEST_P(Determinism, PlmSingleThreadReproduces) {
    const std::uint64_t seed = GetParam();
    const int originalThreads = Parallel::maxThreads();
    Parallel::setThreads(1);
    Random::setSeed(seed);
    Graph g = PlantedPartitionGenerator(300, 6, 0.2, 0.01).generate();
    Random::setSeed(seed + 7);
    const Partition first = Plm().run(g);
    Random::setSeed(seed + 7);
    const Partition second = Plm().run(g);
    EXPECT_EQ(first.vector(), second.vector());
    Parallel::setThreads(originalThreads);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Sweep 6: analytics invariants across instance families — conductance,
// performance, coreness and diameter bounds for arbitrary solutions.
// ---------------------------------------------------------------------------

#include "graph/distances.hpp"
#include "quality/conductance.hpp"
#include "quality/core_decomposition.hpp"

class AnalyticsInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(AnalyticsInvariants, ConductanceAndPerformanceBounds) {
    const auto& [family, seed] = GetParam();
    Random::setSeed(seed);
    Graph g = makeInstance(family);
    Random::setSeed(seed + 9);
    const Partition zeta = Plm().run(g);

    for (double phi : communityConductances(zeta, g)) {
        EXPECT_GE(phi, 0.0);
        EXPECT_LE(phi, 1.0 + 1e-9);
    }
    const ConductanceSummary summary = conductanceSummary(zeta, g);
    EXPECT_LE(summary.minimum, summary.average + 1e-12);
    EXPECT_LE(summary.average, summary.maximum + 1e-12);

    const double perf = performanceMeasure(zeta, g);
    EXPECT_GE(perf, 0.0);
    EXPECT_LE(perf, 1.0 + 1e-12);

    const double density = averageIntraDensity(zeta, g);
    EXPECT_GE(density, 0.0);
    EXPECT_LE(density, 1.0 + 1e-12);
}

TEST_P(AnalyticsInvariants, CorenessBoundedByDegree) {
    const auto& [family, seed] = GetParam();
    Random::setSeed(seed);
    Graph g = makeInstance(family);
    CoreDecomposition cores(g);
    cores.run();
    g.forNodes([&](node v) {
        EXPECT_LE(cores.coreNumbers()[v], g.degree(v));
    });
    // Degeneracy is attained by some node.
    bool attained = false;
    g.forNodes([&](node v) {
        if (cores.coreNumbers()[v] == cores.degeneracy()) attained = true;
    });
    EXPECT_TRUE(attained);
}

TEST_P(AnalyticsInvariants, DiameterBounds) {
    const auto& [family, seed] = GetParam();
    Random::setSeed(seed);
    Graph g = makeInstance(family);
    const count d = approximateDiameter(g);
    // Lower-bounded by 1 for any graph with an edge, upper-bounded by n.
    if (g.numberOfEdges() > 0) {
        EXPECT_GE(d, 1u);
    }
    EXPECT_LE(d, g.numberOfNodes());
}

INSTANTIATE_TEST_SUITE_P(
    Families, AnalyticsInvariants,
    ::testing::Combine(::testing::Values("erdos", "planted", "rmat", "ba",
                                         "grid", "lfr"),
                       ::testing::Values(6u, 7u)),
    instanceLabel);

// ---------------------------------------------------------------------------
// Sweep 7: dynamic maintenance equivalence — after arbitrary churn, the
// dynamically maintained solution stays complete and within quality range.
// ---------------------------------------------------------------------------

#include "community/dynamic_plp.hpp"

class DynamicChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicChurn, SolutionStaysValidUnderChurn) {
    const std::uint64_t seed = GetParam();
    Random::setSeed(seed);
    Graph g = PlantedPartitionGenerator(400, 8, 0.25, 0.005).generate();
    DynamicPlp dynamic;
    dynamic.run(g);
    dynamic.autoUpdate(false);

    for (int step = 0; step < 100; ++step) {
        const node u = static_cast<node>(Random::integer(400));
        const node v = static_cast<node>(Random::integer(400));
        if (u == v) continue;
        if (g.hasEdge(u, v)) {
            g.removeEdge(u, v);
            dynamic.onEdgeRemove(g, u, v);
        } else {
            g.addEdge(u, v);
            dynamic.onEdgeInsert(g, u, v);
        }
        if (step % 25 == 24) dynamic.update(g);
    }
    dynamic.update(g);

    const Partition& zeta = dynamic.communities();
    EXPECT_TRUE(zeta.isComplete());
    const double q = Modularity().getQuality(zeta, g);
    EXPECT_GE(q, -0.5);
    EXPECT_LE(q, 1.0);
    EXPECT_GT(q, 0.3); // structure survives mild churn
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicChurn,
                         ::testing::Values(71u, 72u, 73u));
