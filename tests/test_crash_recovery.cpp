// Crash-consistency harness for the durability subsystem (graph/wal,
// io/binary_csr, StreamingGraph::recover) driven by the deterministic
// fault-injection framework (support/fault).
//
// The core test enumerates every fault point the durable commit path
// actually executes — by running the canonical workload once with
// fault::captureSites() — and then, for each site and several hit
// counts, re-execs this binary (like test_stream_isolation.cpp) with
// GRAPR_FAULT="<site>:<n>:kill" so the child dies mid-commit with no
// destructors, flushes, or atexit handlers. The parent recovers from the
// durable directory and asserts the recovered CSR arrays are
// bit-identical to a never-crashed oracle *at the recovered generation*.
//
// Why "at the recovered generation" and not "at a predicted generation":
// ::_exit() does not drop the OS page cache, so a record that was
// written but not yet fsync'd at kill time is usually still readable —
// recovery may land one generation past the last acknowledged sync.
// That is allowed (durability promises no *acknowledged* loss and no
// inconsistency, not amnesia of unacknowledged tails); what is never
// allowed is a recovered state that differs from some prefix of the
// oracle history.
//
// Everything here is a GTEST_SKIP no-op when the build compiles the
// framework out (-DGRAPR_FAULT_INJECTION=OFF), except the WAL/checkpoint
// round-trip tests, which need no injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "generators/planted_partition.hpp"
#include "graph/graph_log.hpp"
#include "graph/stream_engine.hpp"
#include "graph/wal.hpp"
#include "io/binary_csr.hpp"
#include "io/edgelist_io.hpp"
#include "io/io_error.hpp"
#include "io/metis_io.hpp"
#include "support/fault.hpp"
#include "support/random.hpp"
#include "support/stream_workload.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#define GRAPR_CAN_REEXEC 1
#else
#define GRAPR_CAN_REEXEC 0
#endif

namespace {

using namespace grapr;
using grapr::testing::StreamWorkload;
using grapr::testing::StreamWorkloadConfig;
namespace fs = std::filesystem;

// Child exit codes for fixture runs (distinct from gtest's 0/1 and from
// fault::kKilledExitCode = 87).
constexpr int kFixtureSurvived = 0;
constexpr int kFixtureUnknown = 98;

// ---- the canonical crash workload ------------------------------------
// Parent oracle and killed children run EXACTLY this sequence; the
// workload draws per-op counter-based streams, so the histories agree
// bit for bit regardless of thread count or which process runs them.

constexpr count kNodes = 400;
constexpr std::uint64_t kBatches = 24;

Graph seedGraph() {
    Random::setSeed(8200);
    return PlantedPartitionGenerator(kNodes, 8, 0.2, 0.01).generate();
}

StreamWorkload crashWorkload() {
    StreamWorkloadConfig cfg;
    cfg.nodes = kNodes;
    cfg.opsPerBatch = 48;
    cfg.insertFraction = 0.55;
    cfg.seed = 8201;
    return StreamWorkload(cfg);
}

DurabilityOptions crashOptions() {
    DurabilityOptions options;
    options.groupCommit = 1;
    options.checkpointInterval = 7; // several rotations within 24 batches
    return options;
}

/// Frozen copy of one generation's arrays: the oracle representation.
struct CsrState {
    std::vector<grapr::index> offsets;
    std::vector<node> neighbors;
    std::vector<edgeweight> weights;
};

CsrState freezeState(const CsrGraph& g) {
    return {g.offsets(), g.neighborArray(), g.weightArray()};
}

void expectMatchesState(const CsrGraph& g, const CsrState& s) {
    EXPECT_EQ(g.offsets(), s.offsets);
    EXPECT_EQ(g.neighborArray(), s.neighbors);
    EXPECT_EQ(g.weightArray(), s.weights);
}

/// Apply the canonical batches; when `states` is given, record the CSR
/// arrays of every published generation (keyed by generation, so runs
/// where some batches cancel to a no-op stay aligned).
void churn(StreamingGraph& engine,
           std::map<std::uint64_t, CsrState>* states) {
    const StreamWorkload workload = crashWorkload();
    if (states) {
        (*states)[engine.generation()] =
            freezeState(engine.pin()->graph);
    }
    for (std::uint64_t i = 0; i < kBatches; ++i) {
        engine.apply(workload.batch(i, engine.pin()->graph),
                     StreamApplyMode::Permissive);
        if (states) {
            (*states)[engine.generation()] =
                freezeState(engine.pin()->graph);
        }
    }
}

/// Child mode: run the canonical workload durably in GRAPR_CRASH_DIR.
/// GRAPR_FAULT (set by the parent) kills us somewhere in the middle.
int runCrashFixture(const std::string& dir) {
    Graph g = seedGraph();
    StreamingGraph engine(g);
    engine.enableDurability(dir, crashOptions());
    churn(engine, nullptr);
    return kFixtureSurvived;
}

fs::path makeTempDir(const char* tag) {
    std::string pattern =
        (fs::temp_directory_path() / tag).string() + "_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
#if GRAPR_CAN_REEXEC
    const char* made = ::mkdtemp(buffer.data());
    if (made == nullptr) fail("mkdtemp failed for " + pattern);
    return fs::path(made);
#else
    fs::path dir = fs::temp_directory_path() / tag;
    fs::create_directories(dir);
    return dir;
#endif
}

[[maybe_unused]] bool hasCheckpointFile(const fs::path& dir) {
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("checkpoint-", 0) == 0 &&
            name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".gcsr") == 0) {
            return true;
        }
    }
    return false;
}

#if GRAPR_CAN_REEXEC

struct ChildResult {
    bool spawned = false;
    bool signalled = false;
    int signal = 0;
    int exitCode = -1;
};

/// Re-exec this binary in crash-fixture mode with the given fault spec.
[[maybe_unused]] ChildResult runCrashChild(const std::string& dir,
                          const std::string& faultSpec) {
    ChildResult result;
    char exe[4096];
    const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0) return result;
    exe[len] = '\0';

    const pid_t pid = ::fork();
    if (pid < 0) return result;
    if (pid == 0) {
        ::setenv("GRAPR_CRASH_DIR", dir.c_str(), 1);
        if (faultSpec.empty()) {
            ::unsetenv("GRAPR_FAULT");
        } else {
            ::setenv("GRAPR_FAULT", faultSpec.c_str(), 1);
        }
        ::execl(exe, exe, static_cast<char*>(nullptr));
        ::_exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return result;
    result.spawned = true;
    if (WIFSIGNALED(status)) {
        result.signalled = true;
        result.signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
    }
    return result;
}

#endif // GRAPR_CAN_REEXEC

// ---- WAL + checkpoint round trips (no fault injection needed) ---------

TEST(CrashRecovery, WalRoundTripPreservesRecords) {
    const fs::path dir = makeTempDir("grapr_wal_rt");
    const std::string path = (dir / "wal-rt.gwal").string();

    EdgeBatch first;
    first.insert(1, 2, 2.5);
    first.insert(7, 7, 1.0); // self-loop survives the encoding
    first.remove(3, 4);
    EdgeBatch second;
    second.remove(2, 1); // endpoint order is preserved verbatim

    {
        wal::WalWriter writer(path, 41, /*groupCommit=*/1);
        writer.append(first, 42);
        writer.append(second, 43);
        writer.close();
    }

    const wal::ReplayResult replayed = wal::replay(path, false);
    EXPECT_FALSE(replayed.torn);
    EXPECT_EQ(replayed.baseGeneration, 41u);
    ASSERT_EQ(replayed.records.size(), 2u);
    EXPECT_EQ(replayed.records[0].generation, 42u);
    EXPECT_EQ(replayed.records[1].generation, 43u);
    const auto& ops = replayed.records[0].batch.ops();
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, EdgeOp::Kind::Insert);
    EXPECT_EQ(ops[0].u, 1u);
    EXPECT_EQ(ops[0].v, 2u);
    EXPECT_EQ(ops[0].w, 2.5);
    EXPECT_EQ(ops[1].u, 7u);
    EXPECT_EQ(ops[1].v, 7u);
    EXPECT_EQ(ops[2].kind, EdgeOp::Kind::Remove);
    ASSERT_EQ(replayed.records[1].batch.ops().size(), 1u);
    EXPECT_EQ(replayed.records[1].batch.ops()[0].u, 2u);

    fs::remove_all(dir);
}

TEST(CrashRecovery, WalTornTailIsTruncatedNotMisparsed) {
    const fs::path dir = makeTempDir("grapr_wal_torn");
    const std::string path = (dir / "wal-torn.gwal").string();

    EdgeBatch batch;
    batch.insert(5, 6, 1.0);
    {
        wal::WalWriter writer(path, 0, 1);
        writer.append(batch, 1);
        writer.append(batch, 2);
        writer.close();
    }
    const auto intact = wal::replay(path, false);
    ASSERT_EQ(intact.records.size(), 2u);
    const auto fullBytes = fs::file_size(path);

    // Garbage after the last complete record: a crash mid-append.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write("\x7f\x00\x12", 3);
    }
    const auto torn = wal::replay(path, false);
    EXPECT_TRUE(torn.torn);
    EXPECT_EQ(torn.validBytes, fullBytes);
    ASSERT_EQ(torn.records.size(), 2u); // intact prefix fully decoded

    // truncateTorn repairs the file in place; a second replay is clean.
    const auto repaired = wal::replay(path, true);
    EXPECT_TRUE(repaired.torn);
    EXPECT_EQ(fs::file_size(path), fullBytes);
    const auto clean = wal::replay(path, false);
    EXPECT_FALSE(clean.torn);
    EXPECT_EQ(clean.records.size(), 2u);

    // A flipped byte inside the last record: CRC must reject the record
    // and keep the intact prefix, never hand back a corrupted batch.
    {
        std::fstream out(path, std::ios::binary | std::ios::in |
                                   std::ios::out);
        out.seekp(-1, std::ios::end);
        out.put('\xee');
    }
    const auto corrupt = wal::replay(path, false);
    EXPECT_TRUE(corrupt.torn);
    ASSERT_EQ(corrupt.records.size(), 1u);
    EXPECT_EQ(corrupt.records[0].generation, 1u);

    fs::remove_all(dir);
}

TEST(CrashRecovery, CheckpointRoundTripIsBitIdentical) {
    const fs::path dir = makeTempDir("grapr_cp_rt");
    const std::string path = (dir / "checkpoint-rt.gcsr").string();

    Graph g = seedGraph();
    StreamingGraph engine(g);
    const SnapshotPtr snap = engine.pin();
    io::writeBinaryCsr(snap->graph, 17, path);

    const io::BinaryCsrSnapshot loaded = io::readBinaryCsr(path);
    EXPECT_EQ(loaded.generation, 17u);
    expectMatchesState(loaded.graph, freezeState(snap->graph));
    EXPECT_EQ(loaded.graph.isWeighted(), snap->graph.isWeighted());

    // Any flipped byte must fail validation, not load silently.
    {
        std::fstream out(path, std::ios::binary | std::ios::in |
                                   std::ios::out);
        out.seekp(48, std::ios::beg); // inside the offsets array
        out.put('\x5a');
    }
    EXPECT_THROW(io::readBinaryCsr(path), io::IoError);

    // A truncated file must fail cleanly too.
    fs::resize_file(path, fs::file_size(path) / 2);
    EXPECT_THROW(io::readBinaryCsr(path), io::IoError);

    fs::remove_all(dir);
}

TEST(CrashRecovery, RecoverIsIdempotentAndPrunes) {
    const fs::path dir = makeTempDir("grapr_rec_idem");
    std::map<std::uint64_t, CsrState> oracle;
    std::uint64_t finalGeneration = 0;
    {
        Graph g = seedGraph();
        StreamingGraph engine(g);
        engine.enableDurability(dir.string(), crashOptions());
        churn(engine, &oracle);
        finalGeneration = engine.generation();
    } // clean shutdown: WAL tail fsync'd record by record

    for (int round = 0; round < 2; ++round) {
        StreamingGraph recovered(dir.string(), crashOptions());
        EXPECT_EQ(recovered.generation(), finalGeneration);
        expectMatchesState(recovered.pin()->graph,
                           oracle.at(finalGeneration));
        EXPECT_TRUE(recovered.durable());
        EXPECT_FALSE(recovered.failed());
    }

    // Recovery re-checkpoints and prunes: exactly one checkpoint and one
    // segment remain, both at the recovered generation.
    count checkpoints = 0, segments = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("checkpoint-", 0) == 0) ++checkpoints;
        if (name.rfind("wal-", 0) == 0) ++segments;
    }
    EXPECT_EQ(checkpoints, 1u);
    EXPECT_EQ(segments, 1u);

    fs::remove_all(dir);
}

// Satellite: GraphLog commit -> undo round trip, with Permissive batches
// whose ignored entries must NOT leak into the WAL or the inverse. The
// whole history (including the undos) then survives recovery.
TEST(CrashRecovery, GraphLogUndoRoundTripsThroughWalReplay) {
    const fs::path dir = makeTempDir("grapr_log_undo");
    Graph g = seedGraph();
    StreamingGraph engine(g);
    engine.enableDurability(dir.string(), crashOptions());
    GraphLog log(engine);

    const CsrState before = freezeState(engine.pin()->graph);
    const bool hadEdge01 =
        csrEdgeWeight(engine.pin()->graph, 0, 1).has_value();

    // A batch with deliberate no-ops: removing a definitely-missing edge
    // and double-inserting the same new edge.
    log.insert(kNodes + 3, kNodes + 4, 1.0);
    log.insert(kNodes + 3, kNodes + 4, 1.0); // duplicate -> ignored
    log.remove(kNodes + 8, kNodes + 9);      // missing  -> ignored
    if (hadEdge01) log.remove(0, 1); else log.insert(0, 1);
    const BatchResult result = log.commit(StreamApplyMode::Permissive);
    EXPECT_EQ(result.ignored, 2u);
    const std::uint64_t committedGeneration = engine.generation();

    const BatchResult undone = log.undo();
    EXPECT_EQ(undone.generation, committedGeneration + 1);
    // Logical round trip: the adjacency is restored exactly (the bound
    // may have grown — CSR never shrinks node-id space).
    const CsrGraph& after = engine.pin()->graph;
    EXPECT_EQ(csrEdgeWeight(after, 0, 1).has_value(), hadEdge01);
    EXPECT_FALSE(
        csrEdgeWeight(after, kNodes + 3, kNodes + 4).has_value());
    for (node u = 0; u + 1 < before.offsets.size(); ++u) {
        ASSERT_EQ(after.offsets()[u + 1] - after.offsets()[u],
                  before.offsets[u + 1] - before.offsets[u])
            << "degree of node " << u << " not restored by undo";
    }

    // Both the batch and its inverse are WAL records; recovery replays
    // them in order and lands on the undone state bit for bit.
    const CsrState final = freezeState(after);
    const std::uint64_t finalGeneration = engine.generation();
    StreamingGraph recovered(dir.string(), crashOptions());
    EXPECT_EQ(recovered.generation(), finalGeneration);
    expectMatchesState(recovered.pin()->graph, final);

    fs::remove_all(dir);
}

// ---- fault-injection tests --------------------------------------------

#ifndef GRAPR_FAULT_INJECTION

TEST(CrashRecovery, RequiresFaultInjectionBuild) {
    GTEST_SKIP() << "built without GRAPR_FAULT_INJECTION; configure with "
                    "-DGRAPR_FAULT_INJECTION=ON to run the kill/recover "
                    "and rollback tests";
}

#else // GRAPR_FAULT_INJECTION

/// RAII: no fault configuration leaks out of a test.
struct FaultGuard {
    ~FaultGuard() {
        fault::captureSites(false);
        fault::clearConfiguration();
    }
};

// A failed append that rolls back cleanly is a retryable error, not a
// poisoned engine: the WAL file is restored to its pre-append length and
// the generation never publishes.
TEST(CrashRecovery, FailedAppendRollsBackAndIsRetryable) {
    FaultGuard guard;
    const fs::path dir = makeTempDir("grapr_rollback");
    Graph g = seedGraph();
    StreamingGraph engine(g);
    engine.enableDurability(dir.string(), crashOptions());
    const std::uint64_t generationBefore = engine.generation();
    const CsrState before = freezeState(engine.pin()->graph);

    EdgeBatch batch;
    batch.insert(2, 3, 1.0);
    batch.remove(2, 3);
    // Past the node bound, so the net effect is a guaranteed insert.
    batch.insert(kNodes + 11, kNodes + 13, 1.0);

    fault::configure("wal.append.write:1:throw");
    EXPECT_THROW(engine.apply(batch, StreamApplyMode::Permissive),
                 fault::InjectedFault);
    EXPECT_FALSE(engine.failed())
        << "a cleanly rolled-back append must not poison the engine";
    EXPECT_EQ(engine.generation(), generationBefore);
    expectMatchesState(engine.pin()->graph, before);

    // Same batch again, no fault: must commit, and recovery must see it.
    fault::clearConfiguration();
    engine.apply(batch, StreamApplyMode::Permissive);
    EXPECT_EQ(engine.generation(), generationBefore + 1);
    const CsrState after = freezeState(engine.pin()->graph);

    StreamingGraph recovered(dir.string(), crashOptions());
    EXPECT_EQ(recovered.generation(), generationBefore + 1);
    expectMatchesState(recovered.pin()->graph, after);

    fs::remove_all(dir);
}

// When the rollback of a failed append ALSO fails, the on-disk tail is
// unknown: the engine must poison itself and reject everything after.
TEST(CrashRecovery, FailedRollbackPoisonsTheEngine) {
    FaultGuard guard;
    const fs::path dir = makeTempDir("grapr_poison");
    Graph g = seedGraph();
    StreamingGraph engine(g);
    engine.enableDurability(dir.string(), crashOptions());

    EdgeBatch batch;
    batch.insert(kNodes + 21, kNodes + 22, 1.0); // guaranteed net effect
    fault::configure("wal.append.write:1:throw,wal.rollback.truncate:1");
    EXPECT_THROW(engine.apply(batch, StreamApplyMode::Permissive),
                 fault::InjectedFault);
    EXPECT_TRUE(engine.failed());
    EXPECT_NE(engine.failureReason().find("rollback"), std::string::npos)
        << "reason was: " << engine.failureReason();

    fault::clearConfiguration();
    EXPECT_THROW(engine.apply(batch, StreamApplyMode::Permissive),
                 std::runtime_error);
    EXPECT_THROW(engine.checkpoint(), std::runtime_error);

    // recover() from the directory is the documented way out.
    StreamingGraph recovered(dir.string(), crashOptions());
    EXPECT_FALSE(recovered.failed());
    recovered.apply(batch, StreamApplyMode::Permissive);

    fs::remove_all(dir);
}

// Group commit: an fsync failure with older acknowledged-but-unsynced
// records in the group cannot be rolled back record by record — the
// engine must poison, not truncate acknowledged history.
TEST(CrashRecovery, GroupCommitFsyncFailurePoisons) {
    FaultGuard guard;
    const fs::path dir = makeTempDir("grapr_group");
    Graph g = seedGraph();
    StreamingGraph engine(g);
    DurabilityOptions options = crashOptions();
    options.groupCommit = 3;
    engine.enableDurability(dir.string(), options);

    const StreamWorkload workload = crashWorkload();
    engine.apply(workload.batch(0, engine.pin()->graph),
                 StreamApplyMode::Permissive);
    engine.apply(workload.batch(1, engine.pin()->graph),
                 StreamApplyMode::Permissive);

    // The third append completes the group and calls fsync.
    fault::configure("wal.append.fsync:1:throw");
    EXPECT_THROW(engine.apply(workload.batch(2, engine.pin()->graph),
                              StreamApplyMode::Permissive),
                 fault::InjectedFault);
    EXPECT_TRUE(engine.failed());

    fs::remove_all(dir);
}

// A fault between the WAL fsync and the publish leaves the log ahead of
// memory: poisoned, and recovery replays the logged-but-unpublished
// batch — the WAL is the source of truth once it is durable.
TEST(CrashRecovery, PublishFaultRecoversTheLoggedBatch) {
    FaultGuard guard;
    const fs::path dir = makeTempDir("grapr_publish");
    Graph g = seedGraph();
    StreamingGraph engine(g);
    engine.enableDurability(dir.string(), crashOptions());
    const std::uint64_t generationBefore = engine.generation();

    // Volatile twin predicts the post-batch state.
    Graph g2 = seedGraph();
    StreamingGraph twin(g2);
    EdgeBatch batch;
    batch.insert(kNodes + 31, kNodes + 33, 1.0); // guaranteed net effect
    twin.apply(batch, StreamApplyMode::Permissive);
    const CsrState predicted = freezeState(twin.pin()->graph);

    fault::configure("engine.publish:1:throw");
    EXPECT_THROW(engine.apply(batch, StreamApplyMode::Permissive),
                 fault::InjectedFault);
    EXPECT_TRUE(engine.failed());
    EXPECT_NE(engine.failureReason().find("publish"), std::string::npos);
    EXPECT_EQ(engine.generation(), generationBefore); // memory unchanged

    fault::clearConfiguration();
    StreamingGraph recovered(dir.string(), crashOptions());
    EXPECT_EQ(recovered.generation(), generationBefore + 1);
    expectMatchesState(recovered.pin()->graph, predicted);

    fs::remove_all(dir);
}

// Satellite: the text writers surface short writes as structured
// IoErrors carrying the path and a recent byte offset.
TEST(CrashRecovery, WriterShortWritesAreStructuredIoErrors) {
    FaultGuard guard;
    const fs::path dir = makeTempDir("grapr_writers");
    Graph g = seedGraph();

    // Fail mid-body: past the header, before the end (edge rows are
    // checked every 1024, so trigger late enough for a useful offset).
    fault::configure("io.write.edgelist:1500");
    const std::string edgePath = (dir / "out.tsv").string();
    try {
        io::writeEdgeList(g, edgePath, false);
        FAIL() << "writeEdgeList swallowed the simulated short write";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.path(), edgePath);
        EXPECT_GT(e.byteOffset(), 0u);
        EXPECT_LT(e.byteOffset(), fs::file_size(edgePath) + 1);
        EXPECT_NE(std::string(e.what()).find("writeEdgeList"),
                  std::string::npos);
    }

    fault::configure("io.write.metis:200");
    const std::string metisPath = (dir / "out.metis").string();
    try {
        io::writeMetis(g, metisPath);
        FAIL() << "writeMetis swallowed the simulated short write";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.path(), metisPath);
        EXPECT_GT(e.byteOffset(), 0u);
        EXPECT_NE(std::string(e.what()).find("writeMetis"),
                  std::string::npos);
    }

    // Without a fault both writers succeed on the same graph and paths.
    fault::clearConfiguration();
    io::writeEdgeList(g, edgePath, false);
    io::writeMetis(g, metisPath);

    fs::remove_all(dir);
}

// Satellite: malformed GRAPR_FAULT specs must fail loudly, not silently
// disarm — a harness that misspells a spec would otherwise run with no
// fault armed and report green.
TEST(CrashRecovery, MalformedFaultSpecsFailLoudly) {
    FaultGuard guard;
    for (const char* bad :
         {"wal.append.write:abc:throw", "wal.append.write:3x",
          "wal.append.write:0:throw", "wal.append.write::throw",
          "wal.append.write:1:explode", ":1:throw"}) {
        EXPECT_THROW(fault::configure(bad), std::runtime_error)
            << "malformed spec '" << bad << "' was accepted";
    }
    // Valid shapes still parse: bare site (nth defaults to 1), explicit
    // count, explicit action, and comma-separated combinations.
    fault::configure("wal.append.write");
    fault::configure("wal.append.write:2");
    fault::configure("wal.append.write:2:throw,engine.publish:1:kill");
    fault::clearConfiguration();
}

// Satellite + tentpole cross-check: grapr_analyze's fault-site-coverage
// check pins the static GRAPR_FAULT_POINT list to tests/fault_sites.txt;
// this is the dynamic half. One run that exercises every registered site
// must produce a captureSites() trace whose name set equals the manifest
// — drift in EITHER direction fails (a site added without a manifest
// entry fails the analyzer; a manifest entry the harness can no longer
// reach fails here).
TEST(CrashRecovery, FaultSiteManifestMatchesTrace) {
#ifndef GRAPR_FAULT_SITE_MANIFEST
    GTEST_SKIP() << "GRAPR_FAULT_SITE_MANIFEST not defined by the build";
#else
    FaultGuard guard;
    std::set<std::string> manifest;
    {
        std::ifstream in(GRAPR_FAULT_SITE_MANIFEST);
        ASSERT_TRUE(in.is_open())
            << "cannot read " << GRAPR_FAULT_SITE_MANIFEST;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#') continue;
            manifest.insert(line);
        }
    }
    ASSERT_FALSE(manifest.empty());

    const fs::path dir = makeTempDir("grapr_manifest");
    // Arm a throwing fault BEFORE enabling capture: configure() resets
    // the hit counts, captureSites() preserves them. The throw drives
    // the rollback path (wal.rollback.truncate is INJECT-only and never
    // evaluated on a clean run).
    fault::configure("wal.append.write:3:throw");
    fault::captureSites(true);
    {
        Graph g = seedGraph();
        StreamingGraph engine(g);
        engine.enableDurability(dir.string(), crashOptions());
        const StreamWorkload workload = crashWorkload();
        int thrown = 0;
        for (std::uint64_t i = 0; i < kBatches; ++i) {
            try {
                engine.apply(workload.batch(i, engine.pin()->graph),
                             StreamApplyMode::Permissive);
            } catch (const fault::InjectedFault&) {
                ++thrown; // clean rollback: the engine stays usable
            }
        }
        EXPECT_EQ(thrown, 1);
        EXPECT_FALSE(engine.failed());
    }

    // The text writers register their own sites.
    Graph g2 = seedGraph();
    io::writeEdgeList(g2, (dir / "trace.tsv").string(), false);
    io::writeMetis(g2, (dir / "trace.metis").string());

    // Tear the newest WAL segment's tail so recovery's replay hits the
    // torn-tail truncation site (and the checkpoint/create sites again).
    fs::path segment;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".gwal") == 0) {
            if (segment.empty() ||
                segment.filename().string() < name) {
                segment = entry.path();
            }
        }
    }
    ASSERT_FALSE(segment.empty()) << "no WAL segment in " << dir;
    {
        std::ofstream out(segment,
                          std::ios::binary | std::ios::app);
        const char garbage[] = "torn-tail-garbage";
        out.write(garbage, sizeof garbage);
    }
    {
        StreamingGraph recovered(dir.string(), crashOptions());
        EXPECT_FALSE(recovered.failed());
    }

    fault::captureSites(false);
    const auto trace = fault::sites();

    // Stable, duplicate-free enumeration.
    EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end()));
    std::set<std::string> traced;
    for (const auto& [site, hits] : trace) {
        EXPECT_TRUE(traced.insert(site).second)
            << "duplicate site in trace: " << site;
        EXPECT_GT(hits, 0u);
    }
    EXPECT_EQ(trace, fault::sites()) << "trace changed between calls";

    // Both directions of drift fail.
    for (const std::string& site : manifest) {
        EXPECT_TRUE(traced.count(site) > 0)
            << "manifest site never reached by the trace run: " << site;
    }
    for (const std::string& site : traced) {
        EXPECT_TRUE(manifest.count(site) > 0)
            << "site hit at runtime but missing from fault_sites.txt: "
            << site;
    }
    fs::remove_all(dir);
#endif
}

// ---- the tentpole: kill at EVERY fault point, recover, compare --------

TEST(CrashRecovery, KillAtEveryFaultPointRecoversBitIdentical) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs fork + /proc/self/exe";
#else
    FaultGuard guard;

    // 1. Enumerate the fault points the durable commit path actually
    //    executes, and how often, by tracing one clean run.
    const fs::path traceDir = makeTempDir("grapr_crash_trace");
    fault::clearConfiguration();
    fault::captureSites(true);
    {
        Graph g = seedGraph();
        StreamingGraph engine(g);
        engine.enableDurability(traceDir.string(), crashOptions());
        churn(engine, nullptr);
    }
    fault::captureSites(false);
    const auto trace = fault::sites();
    fault::clearConfiguration();
    fs::remove_all(traceDir);

    ASSERT_FALSE(trace.empty());
    std::set<std::string> traced;
    for (const auto& [site, hits] : trace) traced.insert(site);
    // The commit path must exercise at least these (a silently removed
    // fault point would shrink the harness without failing it).
    for (const char* site :
         {"checkpoint.open", "checkpoint.write", "checkpoint.fsync",
          "checkpoint.rename", "checkpoint.dirsync", "wal.create.open",
          "wal.create.write", "wal.write", "wal.append.write",
          "wal.append.fsync", "engine.publish"}) {
        EXPECT_TRUE(traced.count(site) > 0)
            << "fault point " << site
            << " was not hit by the canonical durable run";
    }

    // 2. The never-crashed oracle: CSR arrays of every generation.
    std::map<std::uint64_t, CsrState> oracle;
    {
        Graph g = seedGraph();
        StreamingGraph engine(g);
        churn(engine, &oracle);
    }

    // 3. Kill a child at {first, middle, last} hit of every site, then
    //    recover and compare against the oracle at the recovered
    //    generation.
    for (const auto& [site, hits] : trace) {
        std::set<std::uint64_t> killAt = {1, (hits + 1) / 2, hits};
        for (const std::uint64_t n : killAt) {
            SCOPED_TRACE(site + ":" + std::to_string(n) + " of " +
                         std::to_string(hits));
            const fs::path dir = makeTempDir("grapr_crash");
            const ChildResult child = runCrashChild(
                dir.string(), site + ":" + std::to_string(n) + ":kill");
            ASSERT_TRUE(child.spawned);
            ASSERT_FALSE(child.signalled)
                << "child died of signal " << child.signal;
            ASSERT_EQ(child.exitCode, fault::kKilledExitCode)
                << "the armed fault did not fire in the child";

            try {
                StreamingGraph recovered(dir.string(), crashOptions());
                const SnapshotPtr snap = recovered.pin();
                const auto it = oracle.find(snap->generation);
                ASSERT_NE(it, oracle.end())
                    << "recovered generation " << snap->generation
                    << " is not a state the oracle ever published";
                expectMatchesState(snap->graph, it->second);
                // The recovered engine is live: it accepts new commits.
                EXPECT_FALSE(recovered.failed());
                recovered.apply(
                    crashWorkload().batch(1000, snap->graph),
                    StreamApplyMode::Permissive);
            } catch (const io::IoError& e) {
                // Only legitimate when the kill predates the very first
                // durable state (no checkpoint ever renamed into place).
                EXPECT_FALSE(hasCheckpointFile(dir))
                    << "recovery failed with a checkpoint present: "
                    << e.what();
            }
            fs::remove_all(dir);
        }
    }
#endif
}

// Crash during recovery itself (re-checkpointing is part of recovery):
// a second recovery still lands on the same oracle state.
TEST(CrashRecovery, KillDuringRecoveryIsRecoverable) {
#if !GRAPR_CAN_REEXEC
    GTEST_SKIP() << "re-exec harness needs fork + /proc/self/exe";
#else
    FaultGuard guard;
    std::map<std::uint64_t, CsrState> oracle;
    {
        Graph g = seedGraph();
        StreamingGraph engine(g);
        churn(engine, &oracle);
    }

    const fs::path dir = makeTempDir("grapr_rec_crash");
    // First child: killed mid-run (leaves a checkpoint + WAL tail).
    const ChildResult first =
        runCrashChild(dir.string(), "wal.append.fsync:15:kill");
    ASSERT_TRUE(first.spawned);
    ASSERT_EQ(first.exitCode, fault::kKilledExitCode);

    // Second process: killed while its *recovery* rewrites the
    // checkpoint (recovery re-checkpoints as step 3). A plain fork is
    // enough — the kill trigger is configured programmatically.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        fault::configure("checkpoint.fsync:1:kill");
        try {
            StreamingGraph recovered(dir.string(), crashOptions());
        } catch (...) {
        }
        ::_exit(kFixtureUnknown); // the kill must have fired before this
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), fault::kKilledExitCode)
        << "recovery did not reach its re-checkpoint fsync";

    // The directory survived a crash *during recovery*: recover again.
    StreamingGraph recovered(dir.string(), crashOptions());
    const SnapshotPtr snap = recovered.pin();
    const auto it = oracle.find(snap->generation);
    ASSERT_NE(it, oracle.end());
    expectMatchesState(snap->graph, it->second);

    fs::remove_all(dir);
#endif
}

#endif // GRAPR_FAULT_INJECTION

} // namespace

int main(int argc, char** argv) {
    if (const char* dir = std::getenv("GRAPR_CRASH_DIR")) {
        return runCrashFixture(dir);
    }
    (void)kFixtureUnknown;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
