// Deterministic mutation fuzzing of the parallel parsers. Valid edge-list
// and METIS byte buffers are mutated ~200 ways each (truncations,
// bit-flips, token/line deletions, duplications, random insertions, byte
// swaps) with a fixed seed, and every mutant is fed to parseEdgeListCsr /
// parseMetisCsr under strict and permissive options and several thread
// counts. The contract under test: the parser either succeeds and returns
// a structurally sane CsrGraph, or throws io::IoError with a sane location
// — it never crashes, hangs, throws anything else, or returns garbage.
//
// Set GRAPR_FUZZ_CORPUS_DIR to dump every mutant to disk (one file per
// case) for replay under a sanitizer build or external fuzzers.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "generators/erdos_renyi.hpp"
#include "graph/csr_graph.hpp"
#include "io/edgelist_io.hpp"
#include "io/io_error.hpp"
#include "io/metis_io.hpp"
#include "io/parallel_edgelist.hpp"
#include "io/parallel_metis.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

constexpr int kMutantsPerFormat = 200;
constexpr unsigned kFuzzSeed = 0xC0FFEE;

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/// One random structural mutation of `bytes` (never a no-op on non-empty
/// input, except when the chosen edit happens to rewrite a byte to itself
/// — harmless: the parser must handle the original bytes too).
std::string mutate(const std::string& bytes, std::mt19937& rng) {
    std::string out = bytes;
    const auto pick = [&](std::size_t bound) {
        return static_cast<std::size_t>(rng() % bound);
    };
    switch (rng() % 8) {
    case 0: // truncate at a random point
        out.resize(out.empty() ? 0 : pick(out.size()));
        break;
    case 1: // flip one bit
        if (!out.empty()) {
            const std::size_t i = pick(out.size());
            out[i] = static_cast<char>(out[i] ^ (1 << (rng() % 8)));
        }
        break;
    case 2: { // delete one whitespace-delimited token
        if (out.empty()) break;
        std::size_t start = pick(out.size());
        while (start > 0 && !std::isspace(static_cast<unsigned char>(
                                out[start - 1]))) {
            --start;
        }
        std::size_t end = start;
        while (end < out.size() &&
               !std::isspace(static_cast<unsigned char>(out[end]))) {
            ++end;
        }
        out.erase(start, end - start);
        break;
    }
    case 3: { // delete one line
        if (out.empty()) break;
        std::size_t start = pick(out.size());
        while (start > 0 && out[start - 1] != '\n') --start;
        std::size_t end = out.find('\n', start);
        end = end == std::string::npos ? out.size() : end + 1;
        out.erase(start, end - start);
        break;
    }
    case 4: { // duplicate one line
        if (out.empty()) break;
        std::size_t start = pick(out.size());
        while (start > 0 && out[start - 1] != '\n') --start;
        std::size_t end = out.find('\n', start);
        end = end == std::string::npos ? out.size() : end + 1;
        out.insert(start, out.substr(start, end - start));
        break;
    }
    case 5: { // insert 1-8 random bytes
        const std::size_t count = 1 + pick(8);
        std::string junk;
        for (std::size_t i = 0; i < count; ++i) {
            junk += static_cast<char>(rng() % 256);
        }
        out.insert(out.empty() ? 0 : pick(out.size() + 1), junk);
        break;
    }
    case 6: // overwrite one byte with a hostile value
        if (!out.empty()) {
            constexpr char hostile[] = {'-', '+', '.', 'e', '\0', '\n',
                                        ' ',  '9', char(0xFF)};
            out[pick(out.size())] = hostile[rng() % sizeof(hostile)];
        }
        break;
    case 7: // swap two adjacent bytes
        if (out.size() >= 2) {
            const std::size_t i = pick(out.size() - 1);
            std::swap(out[i], out[i + 1]);
        }
        break;
    }
    return out;
}

std::size_t lineCount(const std::string& bytes) {
    std::size_t lines = 0;
    for (const char c : bytes) lines += c == '\n';
    return lines + 1; // a final unterminated line still counts
}

/// The invariants a successful parse must satisfy regardless of input.
void expectSaneGraph(const CsrGraph& g, const std::string& label) {
    const auto& offsets = g.offsets();
    ASSERT_EQ(offsets.size(), g.upperNodeIdBound() + 1) << label;
    ASSERT_EQ(offsets.front(), 0u) << label;
    for (std::size_t i = 1; i < offsets.size(); ++i) {
        ASSERT_LE(offsets[i - 1], offsets[i]) << label;
    }
    ASSERT_EQ(g.neighborArray().size(), offsets.back()) << label;
    for (const node v : g.neighborArray()) {
        ASSERT_LT(v, g.upperNodeIdBound()) << label;
    }
    if (g.isWeighted()) {
        ASSERT_EQ(g.weightArray().size(), g.neighborArray().size()) << label;
    } else {
        ASSERT_TRUE(g.weightArray().empty()) << label;
    }
}

/// The invariants a failed parse must satisfy: an IoError whose location
/// actually points into (or just past) the input.
void expectSaneError(const io::IoError& e, const std::string& bytes,
                     const std::string& label) {
    EXPECT_LE(e.byteOffset(), bytes.size()) << label;
    EXPECT_LE(e.line(), lineCount(bytes) + 1) << label;
    EXPECT_FALSE(std::string(e.what()).empty()) << label;
}

void maybeDumpMutant(const std::string& bytes, const std::string& name) {
    const char* dir = std::getenv("GRAPR_FUZZ_CORPUS_DIR");
    if (!dir) return;
    std::filesystem::create_directories(dir);
    std::ofstream out(std::filesystem::path(dir) / name, std::ios::binary);
    out << bytes;
}

template <typename ParseFn>
void fuzzFormat(const std::string& base, const std::string& formatName,
                ParseFn&& parse) {
    std::mt19937 rng(kFuzzSeed);
    for (int i = 0; i < kMutantsPerFormat; ++i) {
        std::string mutant = mutate(base, rng);
        // Occasionally stack a second mutation for compound corruption.
        if (rng() % 4 == 0) mutant = mutate(mutant, rng);
        const std::string name =
            formatName + "_" + std::to_string(i) + ".bin";
        maybeDumpMutant(mutant, name);

        for (const bool strict : {true, false}) {
            for (const int threads : {1, 3}) {
                io::ParseOptions options;
                options.strict = strict;
                options.threads = threads;
                const std::string label = name +
                                          " strict=" + std::to_string(strict) +
                                          " threads=" + std::to_string(threads);
                try {
                    expectSaneGraph(parse(mutant, name, options), label);
                } catch (const io::IoError& e) {
                    expectSaneError(e, mutant, label);
                } catch (const std::exception& e) {
                    FAIL() << label << ": non-IoError exception escaped: "
                           << e.what();
                }
            }
        }
    }
}

std::string edgeListBase() {
    Random::setSeed(1337);
    const Graph g = ErdosRenyiGenerator(60, 0.08).generate();
    const auto path = std::filesystem::temp_directory_path() /
                      "grapr_fuzz_base_edgelist.tsv";
    io::writeEdgeList(g, path.string(), /*withWeights=*/true);
    std::string bytes = slurp(path.string());
    std::filesystem::remove(path);
    return bytes;
}

std::string metisBase() {
    Random::setSeed(1338);
    const Graph g = ErdosRenyiGenerator(60, 0.08).generate();
    const auto path = std::filesystem::temp_directory_path() /
                      "grapr_fuzz_base.metis";
    io::writeMetis(g, path.string());
    std::string bytes = slurp(path.string());
    std::filesystem::remove(path);
    return bytes;
}

} // namespace

TEST(IoFuzzTest, EdgeListMutantsNeverCrash) {
    const std::string base = edgeListBase();
    ASSERT_FALSE(base.empty());
    fuzzFormat(base, "edgelist",
               [](const std::string& bytes, const std::string& name,
                  const io::ParseOptions& options) {
                   io::ParseOptions o = options;
                   o.weighted = true;
                   return io::parseEdgeListCsr(bytes.data(), bytes.size(),
                                               name, o);
               });
}

TEST(IoFuzzTest, EdgeListMutantsUnweightedView) {
    // The same mutants parsed as unweighted exercise the "extra trailing
    // token" path instead of the weight parser.
    const std::string base = edgeListBase();
    fuzzFormat(base, "edgelist_unweighted",
               [](const std::string& bytes, const std::string& name,
                  const io::ParseOptions& options) {
                   return io::parseEdgeListCsr(bytes.data(), bytes.size(),
                                               name, options);
               });
}

TEST(IoFuzzTest, MetisMutantsNeverCrash) {
    const std::string base = metisBase();
    ASSERT_FALSE(base.empty());
    fuzzFormat(base, "metis",
               [](const std::string& bytes, const std::string& name,
                  const io::ParseOptions& options) {
                   return io::parseMetisCsr(bytes.data(), bytes.size(), name,
                                            options);
               });
}

TEST(IoFuzzTest, DegenerateInputsAreHandled) {
    // Hand-picked pathological inputs that mutation might miss.
    const std::vector<std::string> cases = {
        "",
        "\n",
        "\n\n\n\n",
        "#",
        "%",
        std::string(1, '\0'),
        std::string(4096, ' '),
        std::string(4096, '\n'),
        "0",
        "0 ",
        "0 1 ",
        "18446744073709551615 18446744073709551615\n", // u64 max ids
        "18446744073709551616 0\n",                    // u64 overflow
        "0 1\r",
        "# grapr edge list: n=0 m=0\n",
        "# grapr edge list: n=99999999999999999999\n0 1\n",
        "1e9 2\n",
        "0x10 3\n",
        "-1 2\n",
        "0 1 nan\n",
        "0 1 inf\n",
        "0 1 1e400\n", // weight overflows double
    };
    for (const std::string& bytes : cases) {
        for (const bool strict : {true, false}) {
            io::ParseOptions options;
            options.strict = strict;
            const std::string label =
                "degenerate strict=" + std::to_string(strict);
            try {
                expectSaneGraph(io::parseEdgeListCsr(bytes.data(),
                                                     bytes.size(), "degen",
                                                     options),
                                label);
            } catch (const io::IoError& e) {
                expectSaneError(e, bytes, label);
            } catch (const std::exception& e) {
                FAIL() << label << ": non-IoError exception escaped: "
                       << e.what();
            }
            try {
                expectSaneGraph(io::parseMetisCsr(bytes.data(), bytes.size(),
                                                  "degen", options),
                                label + " metis");
            } catch (const io::IoError& e) {
                expectSaneError(e, bytes, label + " metis");
            } catch (const std::exception& e) {
                FAIL() << label << " metis: non-IoError exception escaped: "
                       << e.what();
            }
        }
    }
}
