// Lint fixture: every parallel region below violates at least one
// grapr-lint rule. The `grapr_lint_fixture` ctest invokes the linter on
// this file and expects a NONZERO exit (WILL_FAIL) — if the lint ever
// "passes" this file, a rule regressed. This file is never compiled.
//
// Seeded violations, in order:
//   1. omp-default-none        region without default(none)
//   2. no-default-shared       region with default(shared)
//   3. no-rand                 rand() instead of support/random.hpp
//   4. no-stream-log           std::cout inside a parallel region
//   5. container-mutation      push_back on a shared vector
//   6. compound-shared-write   total += x on a shared scalar, no atomic
//   7. benign-race             unannotated label publication + stale read
//   8. annotation-format       annotation without a reason

#include <cstdlib>
#include <iostream>
#include <vector>

void fixtureDefaultNone(std::vector<int>& data) {
    // (1) implicit data sharing — must be default(none) with shared(...)
#pragma omp parallel for
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}

void fixtureDefaultShared(std::vector<int>& data) {
    // (2) default(shared) is explicitly banned, not just "not none"
#pragma omp parallel for default(shared)
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}

void fixtureRand(std::vector<int>& data) {
#pragma omp parallel for default(none) shared(data)
    for (int i = 0; i < 100; ++i) {
        // (3) rand() shares hidden global state across threads
        data[i] = rand();
    }
}

void fixtureStreamLog() {
#pragma omp parallel default(none)
    {
        // (4) interleaved/unsynchronised logging
        std::cout << "worker alive\n";
    }
}

void fixtureContainerMutation(std::vector<int>& sink) {
#pragma omp parallel for default(none) shared(sink)
    for (int i = 0; i < 100; ++i) {
        // (5) concurrent push_back on a non-thread-local container
        sink.push_back(i);
    }
}

void fixtureCompoundWrite(std::vector<int>& data, long total) {
#pragma omp parallel for default(none) shared(data, total)
    for (int i = 0; i < 100; ++i) {
        // (6) read-modify-write without '#pragma omp atomic' (lost update)
        total += data[i];
    }
}

void fixtureUnannotatedPublish(std::vector<int>& label) {
#pragma omp parallel for default(none) shared(label)
    for (int v = 0; v < 100; ++v) {
        const int neighbor = label[(v + 1) % 100];
        // (7) write through shared label[] that is also read above:
        // stale-publication by design, but the annotation is missing
        label[v] = neighbor;
    }
}

void fixtureBadAnnotation(std::vector<int>& label) {
#pragma omp parallel for default(none) shared(label)
    for (int v = 0; v < 100; ++v) {
        // grapr:benign-race(label)
        // (8) annotation above has no ': <reason>' part
        label[v] = label[(v + 1) % 100];
    }
}
