// Lint fixture for the sharded community-volume write path (PR 6). The
// `grapr_lint_sharded` ctest invokes the linter on this file and expects a
// NONZERO exit (WILL_FAIL) — if the lint ever "passes" this file, a rule
// that guards the replicate+reduce kernel regressed. Never compiled.
//
// Seeded violations, in order:
//   1. compound-shared-write   folding the shards INSIDE the parallel
//                              region: `base[c] += delta` on the shared
//                              base array, no atomic, no annotation — the
//                              exact lost-update the fold-after-join design
//                              of ShardedVolumes exists to rule out
//   2. benign-race             an atomic-read volume snapshot without the
//                              required stale-read annotation
//   3. container-mutation      pushing into a shards vector that is NOT
//                              accessed through a per-thread slot (neither
//                              `.local()` nor `[omp_get_thread_num()]`)

#include <cstdint>
#include <vector>

void fixtureFoldInsideRegion(std::vector<double>& base,
                             const std::vector<double>& delta) {
    const std::int64_t n = static_cast<std::int64_t>(base.size());
#pragma omp parallel for default(none) shared(base, delta, n)
    for (std::int64_t c = 0; c < n; ++c) {
        // (1) the reducer belongs after the join; inside the region this
        // is a classic lost update on the shared base array
        base[c] += delta[static_cast<std::size_t>(c)];
    }
}

void fixtureUnannotatedSnapshot(std::vector<double>& volumes, double& out) {
#pragma omp parallel for default(none) shared(volumes, out)
    for (std::int64_t c = 0; c < 8; ++c) {
        // (2) stale snapshot of a concurrently-updated volume, but the
        // grapr:benign-race(<var>) annotation is missing
        double v;
#pragma omp atomic read
        v = volumes[static_cast<std::size_t>(c)];
        if (v > 0.0) {
#pragma omp atomic
            out += v;
        }
    }
}

void fixtureSharedShardPush(std::vector<std::vector<int>>& shards) {
#pragma omp parallel for default(none) shared(shards)
    for (std::int64_t c = 0; c < 64; ++c) {
        // (3) all threads append into shard 0 — the receiver is not a
        // per-thread slot, so this is a concurrent container mutation
        shards[0].push_back(static_cast<int>(c));
    }
}
