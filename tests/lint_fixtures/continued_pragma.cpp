// Lint fixture: backslash-continued and comment-spanned pragmas. The
// `grapr_lint_continued` ctest invokes the linter on this file and
// expects a NONZERO exit (WILL_FAIL). This file is never compiled.
//
// Seeded violations, in order:
//   1. omp-default-none   the pragma is split as `#pragma \` + `omp ...`;
//                         classifying on the first physical line alone
//                         sees no `omp` token and the region escapes
//                         every rule (the historical false negative).
//   2. no-default-shared  `default(shared)` hidden on a continuation
//                         line two splices deep.
//
// The remaining regions are LEGAL and must stay silent: clauses that
// live on continuation lines — including one reached through a block
// comment that spans the newline — count as part of the pragma.

#include <vector>

void fixtureSplitDirective(std::vector<int>& data) {
    // (1) joined text is `#pragma omp parallel for` with no default(none)
#pragma \
    omp parallel for
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}

void fixtureDeepContinuation(std::vector<int>& data) {
    // (2) the banned clause only appears after joining both splices
#pragma omp parallel for \
    schedule(static)     \
    default(shared)
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}

void legalContinuedClauses(std::vector<int>& data) {
    // default(none) sits on the continuation line: joining must find it.
#pragma omp parallel for \
    default(none) shared(data)
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}

void legalCommentSpanned(std::vector<int>& data) {
    // A /* comment */ spanning the newline does not end the directive
    // (comments become one space before the preprocessor sees the
    // terminating newline), so default(none) below is still a clause of
    // this pragma — flagging it was the historical false positive.
#pragma omp parallel for /* static: the trip count is uniform
                            across iterations */ \
    default(none) shared(data)
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}

void legalSpacedDirective(std::vector<int>& data) {
    // `#  pragma` is a valid spelling; normalization must not miss it.
#  pragma omp parallel for default(none) shared(data)
    for (int i = 0; i < 100; ++i) {
        data[i] = i;
    }
}
