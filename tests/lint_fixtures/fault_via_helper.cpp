// Seeded violation for the one-level-helper extension of
// fault-point-in-parallel: the site is NOT lexically inside the region's
// extent — it hides one call level down, in a helper defined in this
// file. grapr_lint must still flag the call (ctest pins WILL_FAIL).
//
// Never compiled; parsed only.
#define GRAPR_FAULT_POINT(site) ((void)0)
#define GRAPR_FAULT_INJECT(site) false

// The helper the region calls: its body registers a fault site.
void logDurable(int value) {
    GRAPR_FAULT_POINT("fixture.helper.write");
    (void)value;
}

// A helper without a site: calling it in the region is fine.
void accumulate(int value) {
    (void)value;
}

void churnInParallel(int* data, int n) {
    // (1) the loop body reaches fixture.helper.write through logDurable.
#pragma omp parallel for default(none) shared(data) firstprivate(n)
    for (int i = 0; i < n; ++i) {
        accumulate(data[i]);
        logDurable(data[i]);
    }
}
