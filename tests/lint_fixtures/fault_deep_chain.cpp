// A fault-injection site reached from a parallel region through TWO
// same-file call levels: region -> outerHelper -> innerHelper -> site.
// grapr_lint's one-level rule cannot prove this an error, so it must emit
// the advisory WARNING pointing at grapr_analyze instead of staying
// silent (the ctest entry asserts the warning text; exit stays 0 because
// the analyzer owns the authoritative verdict).
#define GRAPR_FAULT_POINT(site) ((void)0)

void innerHelper() {
    GRAPR_FAULT_POINT("fixture.deep.site");
}

void outerHelper() {
    innerHelper();
}

void deepChain(long long n) {
#pragma omp parallel for default(none) shared(n)
    for (long long i = 0; i < n; ++i) {
        outerHelper();
    }
}
