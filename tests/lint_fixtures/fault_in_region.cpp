// Lint fixture: an otherwise-clean parallel region containing a
// fault-injection site. The `grapr_lint_fault` ctest invokes the linter
// on this file and expects a NONZERO exit (WILL_FAIL) — if the lint ever
// "passes" this file, the fault-point-in-parallel rule regressed. This
// file is never compiled.
//
// Seeded violations, in order:
//   1. fault-point-in-parallel   GRAPR_FAULT_POINT inside a team
//   2. fault-point-in-parallel   GRAPR_FAULT_INJECT inside a team
//
// Why this is banned: a triggered fault point either throws (an exception
// cannot cross the OpenMP region boundary — the runtime aborts) or kills
// the process mid-team (tearing the other threads through arbitrary
// state). Fault sites belong on the single-threaded commit path only.

#include <vector>

#define GRAPR_FAULT_POINT(site) ((void)0)
#define GRAPR_FAULT_INJECT(site) false

void fixtureFaultPointInRegion(std::vector<int>& data) {
#pragma omp parallel for default(none) shared(data)
    for (int i = 0; i < 100; ++i) {
        // (1) a triggered hit here throws across the region boundary
        GRAPR_FAULT_POINT("fixture.region.hit");
        data[i] = i;
    }
}

void fixtureFaultInjectInRegion(std::vector<int>& data) {
#pragma omp parallel for default(none) shared(data)
    for (int i = 0; i < 100; ++i) {
        // (2) even the in-band variant is banned: the counter bump is a
        // cross-thread ordering hazard and the simulated failure would
        // fire on an arbitrary worker thread
        if (GRAPR_FAULT_INJECT("fixture.region.inject")) continue;
        data[i] = i;
    }
}
