// Core algorithms: PLP, PLM, PLMR, EPP, combiners.

#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "coarsening/parallel_coarsening.hpp"
#include "community/combiner.hpp"
#include "community/epp.hpp"
#include "community/plm.hpp"
#include "community/plmr.hpp"
#include "community/plp.hpp"
#include "generators/lfr.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "structures/union_find.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

DetectorMaker plpMaker() {
    return [] { return std::unique_ptr<CommunityDetector>(new Plp()); };
}

DetectorMaker plmMaker() {
    return [] { return std::unique_ptr<CommunityDetector>(new Plm()); };
}

} // namespace

TEST(Plp, RecoversCliqueChain) {
    Random::setSeed(80);
    Graph g = SimpleGraphs::cliqueChain(8, 10);
    Plp plp;
    const Partition zeta = plp.run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 8u);
    EXPECT_DOUBLE_EQ(jaccardIndex(zeta, SimpleGraphs::cliqueChainTruth(8, 10)),
                     1.0);
}

TEST(Plp, CompleteSolution) {
    Random::setSeed(81);
    Graph g = PlantedPartitionGenerator(500, 10, 0.2, 0.01).generate();
    const Partition zeta = Plp().run(g);
    EXPECT_TRUE(zeta.isComplete());
    EXPECT_EQ(zeta.numberOfElements(), g.upperNodeIdBound());
}

TEST(Plp, IsolatedNodesKeepOwnLabel) {
    Graph g(5, false);
    g.addEdge(0, 1);
    // 2, 3, 4 isolated.
    Random::setSeed(82);
    const Partition zeta = Plp().run(g);
    EXPECT_EQ(zeta[2], 2u);
    EXPECT_EQ(zeta[3], 3u);
    EXPECT_NE(zeta[2], zeta[3]);
}

TEST(Plp, RespectsWeights) {
    // Path 0-1-2 where edge 0-1 is heavy: 1 must group with 0, not 2.
    Graph g(3, true);
    g.addEdge(0, 1, 10.0);
    g.addEdge(1, 2, 0.1);
    Random::setSeed(83);
    const Partition zeta = Plp().run(g);
    EXPECT_EQ(zeta[0], zeta[1]);
}

TEST(Plp, TracerRecordsDecreasingActivity) {
    Random::setSeed(84);
    Graph g = PlantedPartitionGenerator(2000, 20, 0.1, 0.005).generate();
    Plp plp;
    IterationTracer tracer;
    plp.setTracer(&tracer);
    (void)plp.run(g);
    ASSERT_GE(tracer.records().size(), 2u);
    // First iteration touches everything.
    EXPECT_EQ(tracer.records().front().active, g.numberOfNodes());
    // Updates shrink over time (compare first and last).
    EXPECT_LT(tracer.records().back().updated,
              tracer.records().front().updated);
    EXPECT_EQ(plp.iterations(), tracer.records().size());
}

TEST(Plp, ThetaZeroRunsToStability) {
    Random::setSeed(85);
    PlpConfig config;
    config.thetaFraction = 0.0;
    Graph g = SimpleGraphs::cliqueChain(5, 6);
    Plp plp(config);
    const Partition zeta = plp.run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 5u);
}

TEST(Plp, ExplicitRandomizationStillCorrect) {
    Random::setSeed(86);
    PlpConfig config;
    config.explicitRandomization = true;
    Graph g = SimpleGraphs::cliqueChain(6, 8);
    const Partition zeta = Plp(config).run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 6u);
}

TEST(Plp, StaticScheduleStillCorrect) {
    Random::setSeed(87);
    PlpConfig config;
    config.guidedSchedule = false;
    Graph g = SimpleGraphs::cliqueChain(6, 8);
    const Partition zeta = Plp(config).run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 6u);
}

TEST(Plp, EmptyGraph) {
    Graph g(0, false);
    const Partition zeta = Plp().run(g);
    EXPECT_EQ(zeta.numberOfElements(), 0u);
}

TEST(Plm, RecoversCliqueChain) {
    Random::setSeed(88);
    Graph g = SimpleGraphs::cliqueChain(10, 8);
    const Partition zeta = Plm().run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 10u);
    EXPECT_DOUBLE_EQ(
        jaccardIndex(zeta, SimpleGraphs::cliqueChainTruth(10, 8)), 1.0);
}

TEST(Plm, KarateClubQuality) {
    Random::setSeed(89);
    Graph g = SimpleGraphs::karateClub();
    const Partition zeta = Plm().run(g);
    const double q = Modularity().getQuality(zeta, g);
    // Known optimum is ~0.4198; a healthy Louvain lands >= 0.40.
    EXPECT_GE(q, 0.40);
    EXPECT_LE(q, 0.42);
}

TEST(Plm, SingleThreadModularityNeverNegativeOnMove) {
    // With one thread there is no stale data, so each level's move phase
    // increases modularity monotonically; final quality must be >= 0 on a
    // graph with communities.
    Parallel::setThreads(1);
    Random::setSeed(90);
    Graph g = PlantedPartitionGenerator(400, 8, 0.3, 0.01).generate();
    const Partition zeta = Plm().run(g);
    EXPECT_GT(Modularity().getQuality(zeta, g), 0.5);
}

TEST(Plm, GammaControlsResolution) {
    Random::setSeed(91);
    Graph g = SimpleGraphs::cliqueChain(12, 6);
    const Partition fine = Plm(PlmConfig{.gamma = 5.0}).run(g);
    const Partition standard = Plm(PlmConfig{.gamma = 1.0}).run(g);
    const Partition coarse = Plm(PlmConfig{.gamma = 0.05}).run(g);
    EXPECT_GE(fine.numberOfSubsets(), standard.numberOfSubsets());
    EXPECT_LE(coarse.numberOfSubsets(), standard.numberOfSubsets());
}

TEST(Plm, LevelsRecorded) {
    Random::setSeed(92);
    Graph g = PlantedPartitionGenerator(1000, 10, 0.1, 0.005).generate();
    Plm plm;
    (void)plm.run(g);
    ASSERT_GE(plm.levels().size(), 2u);
    EXPECT_EQ(plm.levels().front().nodes, g.numberOfNodes());
    // Strictly shrinking hierarchy.
    for (std::size_t i = 1; i < plm.levels().size(); ++i) {
        EXPECT_LT(plm.levels()[i].nodes, plm.levels()[i - 1].nodes);
    }
}

TEST(Plm, WeightedGraphSupport) {
    Graph g(6, true);
    // Two heavy triangles, light bridge.
    g.addEdge(0, 1, 5.0);
    g.addEdge(1, 2, 5.0);
    g.addEdge(0, 2, 5.0);
    g.addEdge(3, 4, 5.0);
    g.addEdge(4, 5, 5.0);
    g.addEdge(3, 5, 5.0);
    g.addEdge(2, 3, 0.2);
    Random::setSeed(93);
    const Partition zeta = Plm().run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 2u);
    EXPECT_EQ(zeta[0], zeta[2]);
    EXPECT_EQ(zeta[3], zeta[5]);
}

TEST(Plm, EdgelessGraph) {
    Graph g(5, false);
    Random::setSeed(94);
    const Partition zeta = Plm().run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 5u); // all singletons
}

TEST(Plm, MovePhaseImprovesModularity) {
    Random::setSeed(95);
    Graph g = PlantedPartitionGenerator(300, 6, 0.3, 0.01).generate();
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();
    const double before = Modularity().getQuality(zeta, g);
    Plm::movePhase(g, zeta, 1.0, 64, nullptr);
    const double after = Modularity().getQuality(zeta, g);
    EXPECT_GT(after, before);
}

TEST(Plmr, AtLeastPlmQualityOnAverage) {
    Random::setSeed(96);
    double plmTotal = 0.0, plmrTotal = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        LfrParameters params;
        params.n = 1500;
        params.mu = 0.4;
        LfrGenerator gen(params);
        Graph g = gen.generate();
        plmTotal += Modularity().getQuality(Plm().run(g), g);
        plmrTotal += Modularity().getQuality(Plmr().run(g), g);
    }
    // Refinement may tie but should not lose measurably (paper Fig. 6c).
    EXPECT_GE(plmrTotal, plmTotal - 0.01);
}

TEST(Plmr, ToStringDistinguishes) {
    EXPECT_EQ(Plmr().toString(), "PLMR");
    EXPECT_EQ(Plm().toString(), "PLM");
    EXPECT_EQ(Plp().toString(), "PLP");
}

TEST(HashingCombiner, MatchesEquationIII2) {
    // Core communities: same core iff same community in EVERY base solution.
    Random::setSeed(97);
    const count n = 200;
    std::vector<Partition> bases;
    for (int b = 0; b < 3; ++b) {
        Partition p(n);
        for (node v = 0; v < n; ++v) {
            p.set(v, static_cast<node>(Random::integer(6)));
        }
        p.setUpperBound(6);
        bases.push_back(std::move(p));
    }
    const Partition cores = HashingCombiner::combine(bases);
    for (node u = 0; u < n; ++u) {
        for (node v = u + 1; v < n; ++v) {
            bool togetherEverywhere = true;
            for (const auto& base : bases) {
                if (base[u] != base[v]) {
                    togetherEverywhere = false;
                    break;
                }
            }
            ASSERT_EQ(cores[u] == cores[v], togetherEverywhere)
                << "pair (" << u << "," << v << ")";
        }
    }
}

TEST(HashingCombiner, MatchesSortingCombiner) {
    Random::setSeed(98);
    const count n = 500;
    std::vector<Partition> bases;
    for (int b = 0; b < 4; ++b) {
        Partition p(n);
        for (node v = 0; v < n; ++v) {
            p.set(v, static_cast<node>(Random::integer(10)));
        }
        p.setUpperBound(10);
        bases.push_back(std::move(p));
    }
    const Partition viaHash = HashingCombiner::combine(bases);
    const Partition viaSort = SortingCombiner::combine(bases);
    EXPECT_DOUBLE_EQ(jaccardIndex(viaHash, viaSort), 1.0);
    EXPECT_EQ(viaHash.numberOfSubsets(), viaSort.numberOfSubsets());
}

TEST(HashingCombiner, SingleBaseIsIdentityGrouping) {
    Partition p(6);
    for (node v = 0; v < 6; ++v) p.set(v, v / 2);
    p.setUpperBound(3);
    const Partition cores = HashingCombiner::combine({p});
    EXPECT_DOUBLE_EQ(jaccardIndex(cores, p), 1.0);
}

TEST(Combiner, RejectsMismatchedSizes) {
    Partition a(3), b(4);
    a.allToSingletons();
    b.allToSingletons();
    EXPECT_THROW(HashingCombiner::combine({a, b}), std::runtime_error);
    EXPECT_THROW(HashingCombiner::combine({}), std::runtime_error);
}

TEST(Epp, RecoversPlantedPartition) {
    Random::setSeed(99);
    PlantedPartitionGenerator gen(800, 8, 0.2, 0.005);
    Graph g = gen.generate();
    Epp epp(4, plpMaker(), plmMaker(), "EPP(4,PLP,PLM)");
    const Partition zeta = epp.run(g);
    EXPECT_GT(jaccardIndex(zeta, gen.groundTruth()), 0.9);
}

TEST(Epp, QualityBetweenPlpAndPlm) {
    // The paper's headline EPP result (Fig. 4 / Fig. 6d): better than a
    // single PLP, at most about PLM. Averaged over trials to damp noise.
    Random::setSeed(100);
    double plpQ = 0.0, eppQ = 0.0, plmQ = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        LfrParameters params;
        params.n = 2000;
        params.mu = 0.5;
        LfrGenerator gen(params);
        Graph g = gen.generate();
        plpQ += Modularity().getQuality(Plp().run(g), g);
        Epp epp(4, plpMaker(), plmMaker(), "EPP");
        eppQ += Modularity().getQuality(epp.run(g), g);
        plmQ += Modularity().getQuality(Plm().run(g), g);
    }
    EXPECT_GE(eppQ, plpQ - 0.02);
    EXPECT_LE(eppQ, plmQ + 0.05);
}

TEST(Epp, EnsembleSizeOneWorks) {
    Random::setSeed(101);
    Graph g = SimpleGraphs::cliqueChain(6, 6);
    Epp epp(1, plpMaker(), plmMaker(), "EPP(1)");
    const Partition zeta = epp.run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 6u);
}

TEST(Epp, RejectsZeroEnsemble) {
    EXPECT_THROW(Epp(0, plpMaker(), plmMaker()), std::runtime_error);
}

TEST(EppIterated, TerminatesAndFindsStructure) {
    Random::setSeed(102);
    PlantedPartitionGenerator gen(600, 6, 0.2, 0.01);
    Graph g = gen.generate();
    EppIterated scheme(4, plpMaker(), plmMaker());
    const Partition zeta = scheme.run(g);
    EXPECT_GT(jaccardIndex(zeta, gen.groundTruth()), 0.8);
}

TEST(Detectors, RunIsRepeatable) {
    // Each call to run() is an independent, complete run.
    Random::setSeed(103);
    Graph g = SimpleGraphs::cliqueChain(5, 6);
    Plm plm;
    const Partition first = plm.run(g);
    const Partition second = plm.run(g);
    EXPECT_EQ(first.numberOfSubsets(), second.numberOfSubsets());
}

TEST(Plm, CachedMapStrategyMatchesQuality) {
    // The paper's abandoned first implementation (per-node maps + locks)
    // must agree with the shipped recompute strategy on quality — the
    // difference the paper reports is running time, not solutions.
    Random::setSeed(170);
    Graph g = PlantedPartitionGenerator(500, 10, 0.2, 0.01).generate();
    Random::setSeed(171);
    const Partition viaRecompute = Plm().run(g);
    Random::setSeed(171);
    const Partition viaMaps =
        Plm(PlmConfig{.strategy = PlmWeightStrategy::CachedMaps}).run(g);
    const double qRecompute = Modularity().getQuality(viaRecompute, g);
    const double qMaps = Modularity().getQuality(viaMaps, g);
    EXPECT_NEAR(qRecompute, qMaps, 0.02);
    EXPECT_TRUE(viaMaps.isComplete());
}

TEST(Plm, CachedMapMovePhaseImprovesModularity) {
    Random::setSeed(172);
    Graph g = PlantedPartitionGenerator(300, 6, 0.3, 0.01).generate();
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();
    const double before = Modularity().getQuality(zeta, g);
    Plm::movePhaseCachedMaps(g, zeta, 1.0, 64);
    EXPECT_GT(Modularity().getQuality(zeta, g), before);
}

TEST(Registry, GenericEppSpelling) {
    Random::setSeed(173);
    Graph g = SimpleGraphs::cliqueChain(5, 6);
    auto detector = makeDetector("EPP(2,PLP,PLMR)");
    EXPECT_EQ(detector->toString(), "EPP(2,PLP,PLMR)");
    const Partition zeta = detector->run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 5u);
    EXPECT_THROW(makeDetector("EPP(2,PLP)"), std::runtime_error);
    EXPECT_THROW(makeDetector("EPP(2,PLP,NoSuch)"), std::runtime_error);
}

TEST(Plp, NoActivityTrackingStillCorrect) {
    Random::setSeed(174);
    PlpConfig config;
    config.trackActiveNodes = false;
    Graph g = SimpleGraphs::cliqueChain(6, 8);
    Plp plp(config);
    const Partition zeta = plp.run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 6u);
    EXPECT_EQ(plp.toString(), "PLP+noactivity");
}

TEST(Plp, ModularityInvariantUnderWeightScaling) {
    // Modularity is scale-free in the edge weights; PLP's dominant-label
    // rule and PLM's delta-mod are too, so solutions on a uniformly
    // rescaled graph must score identically.
    Random::setSeed(175);
    Graph g = PlantedPartitionGenerator(300, 6, 0.25, 0.01).generate();
    Graph scaled(g.upperNodeIdBound(), true);
    g.forEdges([&](node u, node v, edgeweight w) {
        scaled.addEdge(u, v, 7.5 * w);
    });
    Random::setSeed(176);
    const Partition zeta = Plm().run(g);
    const double qOriginal = Modularity().getQuality(zeta, g);
    const double qScaled = Modularity().getQuality(zeta, scaled);
    EXPECT_NEAR(qOriginal, qScaled, 1e-9);
}

TEST(Plm, SelfLoopsInInputHandled) {
    // Coarse levels always carry self-loops; the input may too. The volume
    // definition (loops count twice) must hold through the hierarchy.
    Graph g(6, true);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 2.0);
    g.addEdge(0, 2, 2.0);
    g.addEdge(3, 4, 2.0);
    g.addEdge(4, 5, 2.0);
    g.addEdge(3, 5, 2.0);
    g.addEdge(2, 3, 0.1);
    g.addEdge(0, 0, 5.0); // heavy self-loop must not distort grouping
    Random::setSeed(177);
    const Partition zeta = Plm().run(g);
    EXPECT_EQ(zeta[0], zeta[1]);
    EXPECT_EQ(zeta[0], zeta[2]);
    EXPECT_EQ(zeta[3], zeta[5]);
    EXPECT_NE(zeta[0], zeta[3]);
}

TEST(Plm, RunOnCoarseGraphDirectly) {
    // Users can feed PLM an already-coarsened weighted graph (the EPP
    // final phase does exactly this); loops and weights must round-trip.
    Random::setSeed(178);
    Graph g = SimpleGraphs::cliqueChain(6, 6);
    Partition first = Plp().run(g);
    first.compact();
    const CoarseningResult coarse =
        ParallelPartitionCoarsening().run(g, first);
    const Partition refined = Plm().run(coarse.coarseGraph);
    EXPECT_TRUE(refined.isComplete());
    const double q =
        Modularity().getQuality(refined, coarse.coarseGraph);
    EXPECT_GE(q, -0.5);
    EXPECT_LE(q, 1.0);
}

TEST(Plp, SingleNodeGraph) {
    Graph g(1, false);
    Random::setSeed(179);
    const Partition zeta = Plp().run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 1u);
}

TEST(Plp, SelfLoopOnlyGraph) {
    Graph g(2, true);
    g.addEdge(0, 0, 3.0);
    Random::setSeed(190);
    const Partition zeta = Plp().run(g);
    // A self-loop gives node 0 its own dominant label: stays singleton.
    EXPECT_NE(zeta[0], zeta[1]);
}

// --- move-phase tie-breaking and single-threaded determinism ---------------

TEST(Plm, MovePhaseTieBreaksToLowestCommunityId) {
    // Star: center 0 with leaves 1 and 2. From the singleton clustering,
    // moving 0 into {1} or {2} yields the exact same positive Δmod; the
    // tie must resolve to the lower community id regardless of neighbor
    // order — also when the order is reversed.
    const int restoreThreads = Parallel::maxThreads();
    Parallel::setThreads(1);
    for (const bool reversed : {false, true}) {
        Graph g(3, false);
        if (reversed) {
            g.addEdge(0, 2);
            g.addEdge(0, 1);
        } else {
            g.addEdge(0, 1);
            g.addEdge(0, 2);
        }
        Partition zeta(g.upperNodeIdBound());
        zeta.allToSingletons();
        Plm::movePhase(g, zeta, 1.0, 1, nullptr);
        EXPECT_EQ(zeta[0], 1u) << "reversed=" << reversed;
    }
    Parallel::setThreads(restoreThreads);
}

TEST(Plm, SingleThreadedRunsAreDeterministic) {
    const int restoreThreads = Parallel::maxThreads();
    Parallel::setThreads(1);
    Random::setSeed(777);
    const Graph g = PlantedPartitionGenerator(400, 8, 0.2, 0.01).generate();
    for (const bool refine : {false, true}) {
        PlmConfig config;
        config.refine = refine;
        Random::setSeed(778);
        const Partition first = Plm(config).run(g);
        Random::setSeed(778);
        const Partition second = Plm(config).run(g);
        EXPECT_EQ(first.vector(), second.vector()) << "refine=" << refine;
    }
    Parallel::setThreads(restoreThreads);
}
