// Property tests for the parallel mmap ingestion pipeline
// (parallel_edgelist / parallel_metis): the parallel parser must produce a
// CsrGraph that is bit-identical — offsets, neighbor order, weights — to
// the sequential (threads=1) parse, across graph families (ER/BA/RMAT),
// every ParseOptions combination, and thread counts 1/2/4; plus the chunk
// boundary cases (file not ending in a newline, CRLF line endings, empty
// lines, comment-only files, tokens adjacent to chunk split points), the
// mmap read() fallback, and the IoError location contract.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "generators/barabasi_albert.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "io/edgelist_io.hpp"
#include "io/io_error.hpp"
#include "io/mapped_file.hpp"
#include "io/metis_io.hpp"
#include "io/parallel_edgelist.hpp"
#include "io/parallel_metis.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

class ParallelIoTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto stamp =
            std::chrono::steady_clock::now().time_since_epoch().count();
        dir_ = std::filesystem::temp_directory_path() /
               ("grapr_pio_test_" + std::to_string(stamp));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }

    std::string write(const std::string& name, const std::string& content) {
        const std::string p = path(name);
        std::ofstream out(p, std::ios::binary);
        out << content;
        return p;
    }

    std::filesystem::path dir_;
};

/// Bit-identical CSR comparison: the property the parallel build claims.
void expectSameCsr(const CsrGraph& a, const CsrGraph& b,
                   const std::string& what) {
    ASSERT_EQ(a.offsets(), b.offsets()) << what;
    ASSERT_EQ(a.neighborArray(), b.neighborArray()) << what;
    ASSERT_EQ(a.weightArray(), b.weightArray()) << what;
    EXPECT_EQ(a.numberOfNodes(), b.numberOfNodes()) << what;
    EXPECT_EQ(a.numberOfEdges(), b.numberOfEdges()) << what;
    EXPECT_EQ(a.numberOfSelfLoops(), b.numberOfSelfLoops()) << what;
    EXPECT_EQ(a.isWeighted(), b.isWeighted()) << what;
    EXPECT_NEAR(a.totalEdgeWeight(), b.totalEdgeWeight(),
                1e-9 * (1.0 + std::abs(a.totalEdgeWeight())))
        << what;
}

/// Weighted clone of g with deterministic, binary-exact weights.
Graph withWeights(const Graph& g) {
    Graph weighted(g.upperNodeIdBound(), true);
    g.forEdges([&](node u, node v, edgeweight) {
        weighted.addEdge(u, v, 0.25 + static_cast<double>((u * 31 + v) % 17) *
                                          0.125);
    });
    return weighted;
}

struct Family {
    std::string name;
    Graph graph;
};

std::vector<Family> families() {
    std::vector<Family> out;
    Random::setSeed(501);
    out.push_back({"er", ErdosRenyiGenerator(220, 0.04).generate()});
    Random::setSeed(502);
    out.push_back({"ba", BarabasiAlbertGenerator(400, 3).generate()});
    Random::setSeed(503);
    out.push_back({"rmat", RmatGenerator(9, 4).generate()});
    return out;
}

constexpr int kThreadCounts[] = {1, 2, 4};

} // namespace

// --- edge list: parallel == sequential across families and options -------

TEST_F(ParallelIoTest, EdgeListParallelMatchesSequentialAcrossFamilies) {
    for (const Family& family : families()) {
        for (const bool weighted : {false, true}) {
            const Graph g =
                weighted ? withWeights(family.graph) : family.graph;
            const std::string file = path(family.name + ".tsv");
            io::writeEdgeList(g, file, weighted);

            io::ParseOptions options;
            options.weighted = weighted;
            options.threads = 1;
            const CsrGraph reference = io::readEdgeListCsr(file, options);

            // The round trip preserves the graph (the file has a header,
            // so ids and isolated nodes are pinned). Adjacency *order*
            // legitimately differs from the generator's insertion order,
            // so this check is structural.
            EXPECT_TRUE(reference.toGraph().structurallyEquals(g))
                << family.name;

            for (const int threads : kThreadCounts) {
                options.threads = threads;
                std::vector<std::uint64_t> ids;
                const CsrGraph parsed =
                    io::readEdgeListCsr(file, options, &ids);
                expectSameCsr(parsed, reference,
                              family.name + " threads=" +
                                  std::to_string(threads));
                EXPECT_EQ(ids.size(), parsed.numberOfNodes());
            }
        }
    }
}

TEST_F(ParallelIoTest, EdgeListRemapFirstAppearanceIndependentOfThreads) {
    // Headerless file with sparse, shuffled raw ids: the remap must be
    // first-appearance in file order no matter how the file is chunked.
    Random::setSeed(77);
    std::string content;
    for (int i = 0; i < 400; ++i) {
        const std::uint64_t u = 1000 + static_cast<std::uint64_t>(
                                           Random::integer(0, 120)) *
                                           977;
        const std::uint64_t v = 1000 + static_cast<std::uint64_t>(
                                           Random::integer(0, 120)) *
                                           977;
        content += std::to_string(u) + " " + std::to_string(v) + "\n";
    }
    const std::string file = write("sparse.tsv", content);

    io::ParseOptions options;
    options.threads = 1;
    std::vector<std::uint64_t> referenceIds;
    const CsrGraph reference =
        io::readEdgeListCsr(file, options, &referenceIds);
    for (const int threads : {2, 4, 8}) {
        options.threads = threads;
        std::vector<std::uint64_t> ids;
        const CsrGraph parsed = io::readEdgeListCsr(file, options, &ids);
        expectSameCsr(parsed, reference,
                      "remap threads=" + std::to_string(threads));
        EXPECT_EQ(ids, referenceIds);
    }
}

TEST_F(ParallelIoTest, EdgeListDirectedDedupAcrossThreads) {
    // Directed dump: every edge twice plus genuine duplicates.
    std::string content;
    for (node u = 0; u < 60; ++u) {
        const node v = (u * 7 + 3) % 60;
        content += std::to_string(u) + " " + std::to_string(v) + "\n";
        content += std::to_string(v) + " " + std::to_string(u) + "\n";
        content += std::to_string(u) + " " + std::to_string(v) + "\n";
    }
    const std::string file = write("directed.tsv", content);

    io::ParseOptions options;
    options.directedInput = true;
    options.threads = 1;
    const CsrGraph reference = io::readEdgeListCsr(file, options);
    for (const int threads : {2, 4}) {
        options.threads = threads;
        expectSameCsr(io::readEdgeListCsr(file, options), reference,
                      "dedup threads=" + std::to_string(threads));
    }
    // Dedup agrees with the legacy adjacency-list route.
    io::EdgeListOptions legacy;
    legacy.directedInput = true;
    EXPECT_TRUE(
        io::readEdgeList(file, legacy).structurallyEquals(reference.toGraph()));
}

TEST_F(ParallelIoTest, EdgeListIndexBaseShiftsIds) {
    const std::string file = write("onebased.tsv", "1 2\n2 3\n3 1\n");
    io::ParseOptions options;
    options.indexBase = 1;
    options.remapIds = false;
    const CsrGraph g = io::readEdgeListCsr(file, options);
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 3u);
    Graph thawed = g.toGraph();
    EXPECT_TRUE(thawed.hasEdge(0, 1));
    EXPECT_TRUE(thawed.hasEdge(1, 2));
    EXPECT_TRUE(thawed.hasEdge(2, 0));

    // An id below the base is a parse error with a location.
    const std::string bad = write("zero.tsv", "1 2\n0 2\n");
    try {
        io::readEdgeListCsr(bad, options);
        FAIL() << "expected IoError";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

// --- chunk-boundary and byte-level cases ---------------------------------

TEST_F(ParallelIoTest, EdgeListNoTrailingNewline) {
    const std::string file = write("notrail.tsv", "0 1\n1 2\n2 3");
    io::ParseOptions options;
    for (const int threads : kThreadCounts) {
        options.threads = threads;
        const CsrGraph g = io::readEdgeListCsr(file, options);
        EXPECT_EQ(g.numberOfNodes(), 4u);
        EXPECT_EQ(g.numberOfEdges(), 3u);
    }
}

TEST_F(ParallelIoTest, EdgeListCrlfAndEmptyLines) {
    const std::string file = write(
        "crlf.tsv", "# header\r\n0 1\r\n\r\n   \r\n1 2\r\n\n2 0\r\n");
    io::ParseOptions options;
    options.threads = 1;
    const CsrGraph reference = io::readEdgeListCsr(file, options);
    EXPECT_EQ(reference.numberOfNodes(), 3u);
    EXPECT_EQ(reference.numberOfEdges(), 3u);
    for (const int threads : {2, 4}) {
        options.threads = threads;
        expectSameCsr(io::readEdgeListCsr(file, options), reference, "crlf");
    }
}

TEST_F(ParallelIoTest, EdgeListCommentOnlyAndEmptyFiles) {
    const std::vector<std::string> contents = {
        "", "# nothing\n% here\n\n", "#"};
    for (const std::string& content : contents) {
        const std::string file = write("empty.tsv", content);
        for (const int threads : kThreadCounts) {
            io::ParseOptions options;
            options.threads = threads;
            const CsrGraph g = io::readEdgeListCsr(file, options);
            EXPECT_EQ(g.numberOfNodes(), 0u);
            EXPECT_EQ(g.numberOfEdges(), 0u);
        }
    }
}

TEST_F(ParallelIoTest, EdgeListLongTokensNearChunkBoundaries) {
    // Wide ids make it likely that a naive byte split would land inside a
    // token; newline alignment must keep every parse identical.
    std::string content;
    for (int i = 0; i < 97; ++i) {
        content += std::to_string(1000000000000ull + static_cast<unsigned long long>(i) * 7919) +
                   "\t" +
                   std::to_string(1000000000000ull + static_cast<unsigned long long>(i + 1) * 7919) +
                   "\n";
    }
    const std::string file = write("wide.tsv", content);
    io::ParseOptions options;
    options.threads = 1;
    std::vector<std::uint64_t> referenceIds;
    const CsrGraph reference =
        io::readEdgeListCsr(file, options, &referenceIds);
    for (const int threads : {2, 3, 4, 5, 8, 13}) {
        options.threads = threads;
        std::vector<std::uint64_t> ids;
        expectSameCsr(io::readEdgeListCsr(file, options, &ids), reference,
                      "wide threads=" + std::to_string(threads));
        EXPECT_EQ(ids, referenceIds);
    }
}

TEST_F(ParallelIoTest, MoreThreadsThanLines) {
    const std::string file = write("tiny.tsv", "0 1\n");
    io::ParseOptions options;
    options.threads = 16;
    const CsrGraph g = io::readEdgeListCsr(file, options);
    EXPECT_EQ(g.numberOfNodes(), 2u);
    EXPECT_EQ(g.numberOfEdges(), 1u);
}

// --- mmap fallback -------------------------------------------------------

TEST_F(ParallelIoTest, ReadFallbackMatchesMmap) {
    Random::setSeed(91);
    const Graph g = ErdosRenyiGenerator(150, 0.06).generate();
    const std::string file = path("fallback.tsv");
    io::writeEdgeList(g, file);

    io::ParseOptions options;
    options.threads = 4;
    const CsrGraph viaMmap = io::readEdgeListCsr(file, options);
    {
        io::MappedFile mapped(file);
        EXPECT_TRUE(mapped.usedMmap());
    }

    ::setenv("GRAPR_IO_NO_MMAP", "1", 1);
    const CsrGraph viaRead = io::readEdgeListCsr(file, options);
    {
        io::MappedFile heap(file);
        EXPECT_FALSE(heap.usedMmap());
    }
    ::unsetenv("GRAPR_IO_NO_MMAP");
    expectSameCsr(viaRead, viaMmap, "read() fallback");
}

// --- strict vs permissive and error locations ----------------------------

TEST_F(ParallelIoTest, StrictReportsExactLineAndOffset) {
    const std::string file = write("bad.tsv", "0 1\nx y\n2 3\n");
    try {
        io::readEdgeListCsr(file);
        FAIL() << "expected IoError";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.path(), file);
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.byteOffset(), 4u);
    }
}

TEST_F(ParallelIoTest, FirstErrorWinsRegardlessOfThreads) {
    std::string content;
    for (int i = 0; i < 200; ++i) content += "0 1\n";
    content += "broken!\n";
    for (int i = 0; i < 200; ++i) content += "oops\n";
    const std::string file = write("manybad.tsv", content);
    for (const int threads : kThreadCounts) {
        io::ParseOptions options;
        options.threads = threads;
        try {
            io::readEdgeListCsr(file, options);
            FAIL() << "expected IoError";
        } catch (const io::IoError& e) {
            EXPECT_EQ(e.line(), 201u)
                << "threads=" << threads << ": " << e.what();
        }
    }
}

TEST_F(ParallelIoTest, PermissiveSkipsMalformedLines) {
    const std::string file =
        write("mixed.tsv", "0 1\nnot numbers\n1 2\n3\n2 0\n");
    io::ParseOptions options;
    options.strict = false;
    for (const int threads : kThreadCounts) {
        options.threads = threads;
        const CsrGraph g = io::readEdgeListCsr(file, options);
        EXPECT_EQ(g.numberOfNodes(), 3u);
        EXPECT_EQ(g.numberOfEdges(), 3u);
    }
}

TEST_F(ParallelIoTest, MissingFileThrowsIoErrorWithPath) {
    try {
        io::readEdgeListCsr(path("nope.tsv"));
        FAIL() << "expected IoError";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.path(), path("nope.tsv"));
        EXPECT_EQ(e.line(), 0u);
    }
}

TEST_F(ParallelIoTest, DeclaredHeaderBoundsIds) {
    const std::string file =
        write("over.tsv", "# grapr edge list: n=3 m=1\n0 7\n");
    EXPECT_THROW(io::readEdgeListCsr(file), io::IoError);
    io::ParseOptions permissive;
    permissive.strict = false;
    const CsrGraph g = io::readEdgeListCsr(file, permissive);
    EXPECT_EQ(g.numberOfNodes(), 3u);
    EXPECT_EQ(g.numberOfEdges(), 0u);
}

// --- METIS ---------------------------------------------------------------

TEST_F(ParallelIoTest, MetisParallelMatchesSequentialAcrossFamilies) {
    for (const Family& family : families()) {
        for (const bool weighted : {false, true}) {
            const Graph g =
                weighted ? withWeights(family.graph) : family.graph;
            const std::string file = path(family.name + ".metis");
            io::writeMetis(g, file);

            io::ParseOptions options;
            options.threads = 1;
            const CsrGraph reference = io::readMetisCsr(file, options);
            EXPECT_TRUE(reference.toGraph().structurallyEquals(g))
                << family.name;
            for (const int threads : kThreadCounts) {
                options.threads = threads;
                expectSameCsr(io::readMetisCsr(file, options), reference,
                              family.name + " metis threads=" +
                                  std::to_string(threads));
            }
        }
    }
}

TEST_F(ParallelIoTest, MetisIsolatedNodesAndCommentsAcrossThreads) {
    const std::string file = write(
        "iso.metis", "% top comment\n6 2\n2\n1\n\n% middle comment\n5\n4\n\n");
    io::ParseOptions options;
    options.threads = 1;
    options.strict = true;
    const CsrGraph reference = io::readMetisCsr(file, options);
    EXPECT_EQ(reference.numberOfNodes(), 6u);
    EXPECT_EQ(reference.numberOfEdges(), 2u);
    EXPECT_EQ(reference.degree(2), 0u);
    for (const int threads : {2, 4, 8}) {
        options.threads = threads;
        expectSameCsr(io::readMetisCsr(file, options), reference,
                      "metis iso threads=" + std::to_string(threads));
    }
}

TEST_F(ParallelIoTest, MetisOutOfRangeNeighborThrowsInBothModes) {
    const std::string file = write("range.metis", "2 1\n2\n9\n");
    io::ParseOptions strict;
    EXPECT_THROW(io::readMetisCsr(file, strict), io::IoError);
    io::ParseOptions permissive;
    permissive.strict = false;
    EXPECT_THROW(io::readMetisCsr(file, permissive), io::IoError);
}

TEST_F(ParallelIoTest, MetisMissingRowsThrows) {
    const std::string file = write("short.metis", "4 1\n2\n1\n");
    EXPECT_THROW(io::readMetisCsr(file), io::IoError);
}

TEST_F(ParallelIoTest, MetisErrorLocationPointsAtBadToken) {
    // Dropping the junk token must not desymmetrise the adjacency, so the
    // permissive parse below can still freeze the graph.
    const std::string file =
        write("badtok.metis", "3 3\n2 3\n1 3 zzz\n1 2\n");
    try {
        io::readMetisCsr(file); // strict default
        FAIL() << "expected IoError";
    } catch (const io::IoError& e) {
        EXPECT_EQ(e.line(), 3u);
    }
    io::ParseOptions permissive;
    permissive.strict = false;
    const CsrGraph g = io::readMetisCsr(file, permissive);
    EXPECT_EQ(g.numberOfNodes(), 3u); // junk token dropped with a warning
}

// --- buffer-level API ----------------------------------------------------

TEST_F(ParallelIoTest, BufferParseMatchesFileParse) {
    Random::setSeed(92);
    const Graph g = ErdosRenyiGenerator(120, 0.05).generate();
    const std::string file = path("buf.tsv");
    io::writeEdgeList(g, file);
    std::ifstream in(file, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    io::ParseOptions options;
    options.threads = 4;
    expectSameCsr(
        io::parseEdgeListCsr(bytes.data(), bytes.size(), "buf", options),
        io::readEdgeListCsr(file, options), "buffer vs file");
}
