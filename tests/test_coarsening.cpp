// Coarsening and prolongation: weight conservation, structural shape,
// parallel == sequential, projection identities.

#include <gtest/gtest.h>

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "quality/modularity.hpp"
#include "support/random.hpp"

using namespace grapr;

namespace {

Partition evenOddPartition(count n) {
    Partition p(n);
    for (node v = 0; v < n; ++v) p.set(v, v % 2);
    p.setUpperBound(2);
    return p;
}

} // namespace

TEST(Coarsening, TwoTrianglesToTwoNodes) {
    // Two triangles plus a bridge collapse to two coarse nodes with
    // self-loops of weight 3 and a connecting edge of weight 1.
    Graph g(6, false);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(3, 5);
    g.addEdge(2, 3);
    Partition p(6);
    for (node v = 0; v < 6; ++v) p.set(v, v < 3 ? 0 : 1);
    p.setUpperBound(2);

    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    const Graph& coarse = result.coarseGraph;
    EXPECT_EQ(coarse.numberOfNodes(), 2u);
    EXPECT_EQ(coarse.numberOfEdges(), 3u); // 2 loops + 1 edge
    EXPECT_DOUBLE_EQ(coarse.weight(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(coarse.weight(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(coarse.weight(0, 1), 1.0);
    coarse.checkConsistency();
}

TEST(Coarsening, PreservesTotalEdgeWeight) {
    Random::setSeed(70);
    Graph g = ErdosRenyiGenerator(500, 0.02).generate();
    const Partition p = evenOddPartition(g.upperNodeIdBound());
    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    EXPECT_NEAR(result.coarseGraph.totalEdgeWeight(), g.totalEdgeWeight(),
                1e-9);
}

TEST(Coarsening, PreservesCommunityVolumes) {
    Random::setSeed(71);
    Graph g = ErdosRenyiGenerator(300, 0.05).generate();
    Partition p(g.upperNodeIdBound());
    for (node v = 0; v < p.numberOfElements(); ++v) p.set(v, v % 7);
    p.setUpperBound(7);

    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    // Volume of coarse node c == summed volume of its fine community.
    std::vector<double> fineVolume(7, 0.0);
    g.forNodes([&](node v) { fineVolume[p[v]] += g.volume(v); });
    for (node c = 0; c < 7; ++c) {
        // Community ids are compacted ascending, so community c -> coarse c.
        EXPECT_NEAR(result.coarseGraph.volume(c), fineVolume[c], 1e-9);
    }
}

TEST(Coarsening, SequentialMatchesParallel) {
    Random::setSeed(72);
    Graph g = PlantedPartitionGenerator(600, 12, 0.2, 0.01).generate();
    Partition p(g.upperNodeIdBound());
    for (node v = 0; v < p.numberOfElements(); ++v) {
        p.set(v, static_cast<node>(Random::integer(40)));
    }
    p.setUpperBound(40);

    const CoarseningResult parallel =
        ParallelPartitionCoarsening(true).run(g, p);
    const CoarseningResult sequential =
        ParallelPartitionCoarsening(false).run(g, p);
    EXPECT_EQ(parallel.fineToCoarse, sequential.fineToCoarse);
    EXPECT_TRUE(
        parallel.coarseGraph.structurallyEquals(sequential.coarseGraph));
}

TEST(Coarsening, SingletonPartitionIsIdentityShape) {
    Random::setSeed(73);
    Graph g = ErdosRenyiGenerator(100, 0.05).generate();
    Partition p(g.upperNodeIdBound());
    p.allToSingletons();
    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    EXPECT_EQ(result.coarseGraph.numberOfNodes(), g.numberOfNodes());
    EXPECT_EQ(result.coarseGraph.numberOfEdges(), g.numberOfEdges());
    EXPECT_NEAR(result.coarseGraph.totalEdgeWeight(), g.totalEdgeWeight(),
                1e-9);
}

TEST(Coarsening, AllToOneGivesSingleNode) {
    Graph g = SimpleGraphs::clique(10);
    Partition p(10);
    p.allToOne();
    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    EXPECT_EQ(result.coarseGraph.numberOfNodes(), 1u);
    EXPECT_EQ(result.coarseGraph.numberOfSelfLoops(), 1u);
    EXPECT_DOUBLE_EQ(result.coarseGraph.weight(0, 0), 45.0);
}

TEST(Coarsening, NonCompactCommunityIdsAreCompacted) {
    Graph g = SimpleGraphs::path(4);
    Partition p(4);
    p.set(0, 100);
    p.set(1, 100);
    p.set(2, 7);
    p.set(3, 7);
    p.setUpperBound(101);
    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    EXPECT_EQ(result.coarseGraph.numberOfNodes(), 2u);
    // Ascending compaction: community 7 -> coarse 0, community 100 -> 1.
    EXPECT_EQ(result.fineToCoarse[0], 1u);
    EXPECT_EQ(result.fineToCoarse[2], 0u);
}

TEST(Coarsening, WeightedInputWeightsSummed) {
    Graph g(4, true);
    g.addEdge(0, 2, 1.5);
    g.addEdge(0, 3, 2.0);
    g.addEdge(1, 2, 0.5);
    Partition p(4);
    p.set(0, 0); p.set(1, 0); p.set(2, 1); p.set(3, 1);
    p.setUpperBound(2);
    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);
    EXPECT_DOUBLE_EQ(result.coarseGraph.weight(0, 1), 4.0);
}

TEST(Projector, ProjectBackBasic) {
    Partition coarse(2);
    coarse.set(0, 5);
    coarse.set(1, 9);
    coarse.setUpperBound(10);
    const std::vector<node> fineToCoarse = {0, 0, 1, 1, 0};
    const Partition fine =
        ClusteringProjector::projectBack(coarse, fineToCoarse);
    EXPECT_EQ(fine.numberOfElements(), 5u);
    EXPECT_EQ(fine[0], 5u);
    EXPECT_EQ(fine[1], 5u);
    EXPECT_EQ(fine[2], 9u);
    EXPECT_EQ(fine[4], 5u);
}

TEST(Projector, NoneEntriesStayUnassigned) {
    Partition coarse(1);
    coarse.set(0, 3);
    coarse.setUpperBound(4);
    const std::vector<node> fineToCoarse = {0, none, 0};
    const Partition fine =
        ClusteringProjector::projectBack(coarse, fineToCoarse);
    EXPECT_EQ(fine[1], none);
}

TEST(Projector, HierarchyComposition) {
    // Two levels: 6 fine -> 3 mid -> 2 coarse.
    const std::vector<node> level0 = {0, 0, 1, 1, 2, 2};
    const std::vector<node> level1 = {0, 0, 1};
    Partition coarsest(2);
    coarsest.set(0, 0);
    coarsest.set(1, 1);
    coarsest.setUpperBound(2);
    const Partition fine = ClusteringProjector::projectThroughHierarchy(
        coarsest, {level0, level1});
    EXPECT_EQ(fine.numberOfElements(), 6u);
    for (node v = 0; v < 4; ++v) EXPECT_EQ(fine[v], 0u);
    EXPECT_EQ(fine[4], 1u);
    EXPECT_EQ(fine[5], 1u);
}

TEST(Projector, ModularityInvariantUnderProjection) {
    // Modularity of a coarse solution on the coarse graph equals the
    // modularity of its projection on the fine graph — the identity that
    // makes the multilevel scheme sound.
    Random::setSeed(74);
    Graph g = PlantedPartitionGenerator(400, 8, 0.25, 0.01).generate();
    Partition p(g.upperNodeIdBound());
    for (node v = 0; v < p.numberOfElements(); ++v) {
        p.set(v, static_cast<node>(Random::integer(20)));
    }
    p.setUpperBound(20);
    const CoarseningResult result = ParallelPartitionCoarsening().run(g, p);

    // Any coarse solution: group coarse nodes by parity.
    Partition coarseSolution(result.coarseGraph.upperNodeIdBound());
    for (node c = 0; c < coarseSolution.numberOfElements(); ++c) {
        coarseSolution.set(c, c % 2);
    }
    coarseSolution.setUpperBound(2);

    const Partition fineSolution = ClusteringProjector::projectBack(
        coarseSolution, result.fineToCoarse);
    const double coarseQ =
        Modularity().getQuality(coarseSolution, result.coarseGraph);
    const double fineQ = Modularity().getQuality(fineSolution, g);
    EXPECT_NEAR(coarseQ, fineQ, 1e-9);
}
