// Competitor stand-ins: sequential Louvain, sequential label propagation,
// RG, CGGC(i), matching agglomeration (CLU_TBB / CEL), and the registry.

#include <gtest/gtest.h>

#include "baselines/cggc.hpp"
#include "baselines/clu_matching.hpp"
#include "baselines/label_prop_seq.hpp"
#include "baselines/louvain_seq.hpp"
#include "baselines/registry.hpp"
#include "baselines/rg.hpp"
#include "community/plm.hpp"
#include "generators/lfr.hpp"
#include "generators/planted_partition.hpp"
#include "generators/simple_graphs.hpp"
#include "quality/modularity.hpp"
#include "quality/partition_similarity.hpp"
#include "support/random.hpp"

using namespace grapr;

TEST(LouvainSeq, RecoversCliqueChain) {
    Random::setSeed(110);
    Graph g = SimpleGraphs::cliqueChain(10, 8);
    const Partition zeta = LouvainSeq().run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 10u);
    EXPECT_DOUBLE_EQ(
        jaccardIndex(zeta, SimpleGraphs::cliqueChainTruth(10, 8)), 1.0);
}

TEST(LouvainSeq, KarateQuality) {
    Random::setSeed(111);
    Graph g = SimpleGraphs::karateClub();
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        best = std::max(best, Modularity().getQuality(LouvainSeq().run(g), g));
    }
    EXPECT_GE(best, 0.40);
}

TEST(LouvainSeq, ComparableToPlm) {
    Random::setSeed(112);
    double louvainQ = 0.0, plmQ = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        LfrParameters params;
        params.n = 1500;
        params.mu = 0.4;
        LfrGenerator gen(params);
        Graph g = gen.generate();
        louvainQ += Modularity().getQuality(LouvainSeq().run(g), g);
        plmQ += Modularity().getQuality(Plm().run(g), g);
    }
    // The paper: Louvain's quality is marginally better or equal; both
    // should be in the same band.
    EXPECT_NEAR(louvainQ, plmQ, 0.05 * 3);
}

TEST(LabelPropSeq, RecoversCliqueChain) {
    Random::setSeed(113);
    Graph g = SimpleGraphs::cliqueChain(8, 8);
    LabelPropSeq lp;
    const Partition zeta = lp.run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 8u);
    EXPECT_GT(lp.iterations(), 0u);
}

TEST(LabelPropSeq, ConvergesOnBipartiteStructure) {
    // Asynchronous updating must not oscillate on a star (a bipartite
    // structure where synchronous LPA flip-flops forever).
    Random::setSeed(114);
    Graph g = SimpleGraphs::star(50);
    LabelPropSeq lp(/*maxIterations=*/500);
    (void)lp.run(g);
    EXPECT_LT(lp.iterations(), 500u);
}

TEST(RandomizedGreedy, RecoversCliqueChain) {
    Random::setSeed(115);
    Graph g = SimpleGraphs::cliqueChain(8, 8);
    const Partition zeta = RandomizedGreedy().run(g);
    EXPECT_DOUBLE_EQ(
        jaccardIndex(zeta, SimpleGraphs::cliqueChainTruth(8, 8)), 1.0);
}

TEST(RandomizedGreedy, HighQualityOnPlanted) {
    Random::setSeed(116);
    PlantedPartitionGenerator gen(600, 10, 0.25, 0.005);
    Graph g = gen.generate();
    const Partition zeta = RandomizedGreedy().run(g);
    EXPECT_GT(jaccardIndex(zeta, gen.groundTruth()), 0.85);
}

TEST(RandomizedGreedy, EdgelessGraph) {
    Graph g(10, false);
    const Partition zeta = RandomizedGreedy().run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 10u);
}

TEST(RandomizedGreedy, WeightedGraph) {
    Graph g(4, true);
    g.addEdge(0, 1, 10.0);
    g.addEdge(2, 3, 10.0);
    g.addEdge(1, 2, 0.1);
    Random::setSeed(117);
    const Partition zeta = RandomizedGreedy().run(g);
    EXPECT_EQ(zeta[0], zeta[1]);
    EXPECT_EQ(zeta[2], zeta[3]);
    EXPECT_NE(zeta[0], zeta[2]);
}

TEST(Cggc, RecoversPlantedPartition) {
    Random::setSeed(118);
    PlantedPartitionGenerator gen(400, 8, 0.3, 0.01);
    Graph g = gen.generate();
    const Partition zeta = Cggc(4).run(g);
    EXPECT_GT(jaccardIndex(zeta, gen.groundTruth()), 0.9);
}

TEST(CggcIterated, TerminatesWithGoodQuality) {
    Random::setSeed(119);
    PlantedPartitionGenerator gen(400, 8, 0.3, 0.01);
    Graph g = gen.generate();
    const Partition zeta = CggcIterated(4).run(g);
    EXPECT_GT(jaccardIndex(zeta, gen.groundTruth()), 0.9);
}

TEST(MatchingAgglomeration, CluTbbRecoversCliqueChain) {
    Random::setSeed(120);
    Graph g = SimpleGraphs::cliqueChain(8, 8);
    const Partition zeta =
        MatchingAgglomeration(/*starAdaptation=*/true).run(g);
    EXPECT_DOUBLE_EQ(
        jaccardIndex(zeta, SimpleGraphs::cliqueChainTruth(8, 8)), 1.0);
}

TEST(MatchingAgglomeration, CelRecoversCliqueChain) {
    Random::setSeed(121);
    Graph g = SimpleGraphs::cliqueChain(8, 8);
    const Partition zeta =
        MatchingAgglomeration(/*starAdaptation=*/false).run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 8u);
}

TEST(MatchingAgglomeration, StarAdaptationHelpsOnStars) {
    // A star graph: pure matching can contract only one leaf per round;
    // the adaptation pulls all satellites into the hub's group at once.
    // Both must terminate; the adapted variant should use fewer levels —
    // observable as: it produces one community on a star, quickly.
    Random::setSeed(122);
    Graph g = SimpleGraphs::star(1000);
    const Partition adapted =
        MatchingAgglomeration(true).run(g);
    EXPECT_LE(adapted.numberOfSubsets(), 2u);
}

TEST(MatchingAgglomeration, EdgelessGraph) {
    Graph g(5, false);
    const Partition zeta = MatchingAgglomeration(true).run(g);
    EXPECT_EQ(zeta.numberOfSubsets(), 5u);
}

TEST(Registry, AllNamesConstructible) {
    for (const auto& name : detectorNames()) {
        auto detector = makeDetector(name);
        ASSERT_NE(detector, nullptr) << name;
    }
}

TEST(Registry, UnknownNameThrows) {
    EXPECT_THROW(makeDetector("NoSuchAlgorithm"), std::runtime_error);
}

TEST(Registry, OursPlusCompetitorsCoverAll) {
    const auto all = detectorNames();
    const auto ours = ourDetectorNames();
    const auto theirs = competitorDetectorNames();
    for (const auto& name : ours) {
        EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
    }
    for (const auto& name : theirs) {
        EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
    }
}

TEST(Registry, EveryDetectorSolvesSmokeGraph) {
    Graph g = SimpleGraphs::cliqueChain(4, 6);
    const Partition truth = SimpleGraphs::cliqueChainTruth(4, 6);
    for (const auto& name : detectorNames()) {
        Random::setSeed(123);
        auto detector = makeDetector(name);
        const Partition zeta = detector->run(g);
        EXPECT_TRUE(zeta.isComplete()) << name;
        EXPECT_GT(jaccardIndex(zeta, truth), 0.5) << name;
    }
}
