#!/usr/bin/env python3
"""grapr_analyze: AST-grounded contract analyzer for the grapr codebase.

Thirteen checks, driven by the exported compile_commands.json (see
checks.py, protocol.py and effects.py for rule details and the sanctioned
escape hatches):

  csr-staleness        frozen CsrGraph views read after their source Graph
                       mutated (intra-procedural, with call summaries for
                       the coarsening pipeline)
  index-width          implicit narrowing of count/index/node/edgeweight
                       into 32-bit or lossy types
  annotation-liveness  grapr:benign-race / grapr:lint-allow /
                       grapr:analyze-allow annotations must anchor a real
                       site; stale or typo'd ones fail
  suppression-liveness tools/sanitizers/tsan.supp entries must still name
                       a defined symbol that reaches a parallel region
  durability-order     WAL append -> fsync -> publish, and checkpoint
                       write -> fsync -> rename -> dirsync, ordered on
                       every path (protocol.py)
  lock-discipline      writer/head mutex acquisition order is acyclic; no
                       blocking I/O under the reader-head mutex
  poison-path          failure edges between WAL append and publish reach
                       rollback or poison marking
  fault-site-coverage  raw I/O in durability code carries a fault point;
                       the static site list matches tests/fault_sites.txt
                       (the crash harness pins its dynamic trace to the
                       same manifest)
  shared-write-safety  every write inside an OpenMP region classifies as
                       thread-local / synchronized / disjoint on the
                       parallel-effect lattice, or carries a live
                       grapr:benign-race(<var>) annotation (effects.py)
  benign-race-validity a benign-race annotation on a write the analysis
                       proves safe is stale and fails
  region-alloc         no heap allocation / container growth inside
                       parallel regions of src/community, src/coarsening,
                       src/structures (ThreadLocalPool is the escape)
  benign-race-manifest the validated benign-race set equals
                       tests/benign_races.txt in both directions, tsan
                       suppressions map to manifest rows, and runtime=
                       names match the GRAPR_RACE_BENIGN_SITE trace
                       points (test_race_check drives the dynamic half)
  fault-point-in-parallel
                       a GRAPR_FAULT_POINT reached from a parallel region
                       at any call depth (the interprocedural authority
                       behind grapr_lint's one-level textual rule)

Use `--check parallel-effects` to run only the five effects.py checks
(or pass a comma-separated list of check ids).

Frontends (--frontend):
  clang   libclang via clang.cindex — canonical, used by the CI analyze
          job (which pins the libclang wheel)
  micro   bundled lexer/statement extractor — no dependencies, used by
          ctest in toolchains without libclang
  auto    clang when importable and loadable, else micro (default)

Usage:
  grapr_analyze.py [--compile-commands build/compile_commands.json]
                   [--root src] [--frontend auto|clang|micro]
                   [--tsan-supp tools/sanitizers/tsan.supp]
                   [--fault-manifest tests/fault_sites.txt]
                   [--exclude GLOB]... [files...]

With explicit files, only those files are analyzed and the tsan.supp
audit and fault-manifest cross-check are skipped (fixture mode). Exit
status 1 if any finding remains.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import checks                                    # noqa: E402
import effects                                   # noqa: E402
import frontend_clang                            # noqa: E402
import protocol                                  # noqa: E402
from frontend_micro import MicroFrontend, blank  # noqa: E402
from model import FileModel, build_summary       # noqa: E402


def _import_lint():
    lint_dir = Path(__file__).resolve().parent.parent / "grapr_lint"
    if not lint_dir.exists():
        return None
    sys.path.insert(0, str(lint_dir))
    try:
        import grapr_lint
        return grapr_lint
    except Exception:
        return None


def collect_files(args: argparse.Namespace) -> list[Path]:
    if args.files:
        return [Path(f) for f in args.files]
    root = Path(args.root).resolve()
    files: set[Path] = set()
    if args.compile_commands:
        cc = Path(args.compile_commands)
        if cc.exists():
            for entry in json.loads(cc.read_text()):
                f = Path(entry["file"])
                if not f.is_absolute():
                    f = Path(entry["directory"]) / f
                f = f.resolve()
                if root in f.parents or f == root:
                    files.add(f)
        else:
            print(f"grapr-analyze: note: {cc} not found; falling back to "
                  "a source glob", file=sys.stderr)
    if not files:
        files.update(root.rglob("*.cpp"))
    files.update(root.rglob("*.hpp"))
    files.update(root.rglob("*.h"))
    for pattern in args.exclude or []:
        files = {f for f in files
                 if not fnmatch.fnmatch(str(f), pattern)}
    return sorted(files)


def pick_frontend(choice: str, compile_commands: Path | None,
                  src_root: Path):
    if choice in ("clang", "auto") and frontend_clang.available():
        try:
            return frontend_clang.ClangFrontend(compile_commands, src_root)
        except Exception as e:
            if choice == "clang":
                raise
            print(f"grapr-analyze: note: libclang init failed ({e}); "
                  "using the micro frontend", file=sys.stderr)
    if choice == "clang":
        print("grapr-analyze: error: --frontend=clang requested but "
              "clang.cindex / libclang is not available", file=sys.stderr)
        sys.exit(2)
    return MicroFrontend()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--compile-commands", default=None,
                        help="path to compile_commands.json")
    parser.add_argument("--root", default="src",
                        help="source root to analyze (default: src)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "micro"))
    parser.add_argument("--tsan-supp", default=None,
                        help="tsan suppression file to audit (default: "
                             "tools/sanitizers/tsan.supp next to this "
                             "script; pass '' to disable)")
    parser.add_argument("--fault-manifest", default=None,
                        help="fault-site manifest to cross-check against "
                             "the GRAPR_FAULT_POINT sites found in the "
                             "sources (default: tests/fault_sites.txt at "
                             "the repo root; pass '' to disable)")
    parser.add_argument("--benign-manifest", default=None,
                        help="benign-race manifest to cross-check against "
                             "the validated grapr:benign-race set "
                             "(default: tests/benign_races.txt at the "
                             "repo root; pass '' to disable)")
    parser.add_argument("--check", default="all",
                        help="restrict reported findings: 'all' (default),"
                             " 'parallel-effects' (the five effects.py "
                             "checks), or a comma-separated list of check "
                             "ids")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="GLOB",
                        help="fnmatch pattern of file paths to skip "
                             "(repeatable; e.g. '*_fixtures/*')")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="explicit files (fixture mode: skips the "
                             "tsan.supp audit)")
    args = parser.parse_args()

    files = collect_files(args)
    if not files:
        print("grapr-analyze: no input files", file=sys.stderr)
        return 2

    cc = Path(args.compile_commands) if args.compile_commands else None
    src_root = Path(args.root).resolve()
    frontend = pick_frontend(args.frontend, cc, src_root)
    micro = MicroFrontend()
    lint_module = _import_lint()

    models: list[FileModel] = []
    pairs = []   # (model, blanked, allows)
    for path in files:
        try:
            lines = path.read_text().splitlines()
        except OSError as e:
            print(f"grapr-analyze: cannot read {path}: {e}",
                  file=sys.stderr)
            return 2
        try:
            model = frontend.lower(path, lines)
        except Exception as e:
            # A frontend crash must not take the whole gate down with an
            # unrelated stack trace; degrade to the micro frontend and say
            # so (the fixtures keep both frontends honest).
            if frontend.name == "micro":
                raise
            print(f"grapr-analyze: note: {frontend.name} frontend failed "
                  f"on {path} ({e}); re-lowering with micro",
                  file=sys.stderr)
            model = micro.lower(path, lines)
        models.append(model)
        pairs.append((model, blank(lines), checks.Allows(lines)))

    summary = build_summary(models)
    findings = []
    for model, blanked, allows in pairs:
        findings += checks.check_index_width(model, allows)
        findings += checks.check_csr_staleness(model, summary, allows)
        findings += checks.check_annotation_liveness(
            model, blanked, allows, lint_module)
    if args.fault_manifest is None:
        manifest = (Path(__file__).resolve().parent.parent.parent
                    / "tests" / "fault_sites.txt")
    elif args.fault_manifest == "":
        manifest = None
    else:
        manifest = Path(args.fault_manifest)
    findings += protocol.run_protocol_checks(
        [(m, a) for m, _, a in pairs],
        fixture_mode=bool(args.files), manifest=manifest)

    if args.benign_manifest is None:
        benign_manifest = (Path(__file__).resolve().parent.parent.parent
                           / "tests" / "benign_races.txt")
    elif args.benign_manifest == "":
        benign_manifest = None
    else:
        benign_manifest = Path(args.benign_manifest)
    if args.tsan_supp is None:
        supp = (Path(__file__).resolve().parent.parent
                / "sanitizers" / "tsan.supp")
    elif args.tsan_supp == "":
        supp = None
    else:
        supp = Path(args.tsan_supp)
    findings += effects.run_effects_checks(
        pairs, fixture_mode=bool(args.files), manifest=benign_manifest,
        tsan_supp=supp,
        explicit_manifest=args.benign_manifest not in (None, ""))

    findings += checks.check_unused_allows(
        [(m, a) for m, _, a in pairs])

    if not args.files and supp is not None:
        findings += checks.check_suppression_liveness(supp, models)

    if args.check != "all":
        if args.check == "parallel-effects":
            selected = set(effects.EFFECT_CHECK_IDS)
        else:
            selected = {c.strip() for c in args.check.split(",") if c.strip()}
            unknown = selected - checks.CHECK_IDS
            if unknown:
                print("grapr-analyze: error: unknown check id(s): "
                      f"{', '.join(sorted(unknown))} (known: "
                      f"{', '.join(sorted(checks.CHECK_IDS))})",
                      file=sys.stderr)
                return 2
        findings = [f for f in findings if f.check in selected]

    # One statement can surface the same defect through several lowered
    # facts (a call and its enclosing expression); report each site once.
    unique: dict[tuple[str, int, str], object] = {}
    for f in findings:
        unique.setdefault((str(f.path), f.line, f.check), f)
    findings = sorted(unique.values(), key=lambda f: (str(f.path), f.line))
    for f in findings:
        print(f.render())
    if not args.quiet:
        nfn = sum(len(m.functions) for m in models)
        print(f"grapr-analyze: frontend={frontend.name}, {len(files)} "
              f"files, {nfn} functions, {len(findings)} findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
