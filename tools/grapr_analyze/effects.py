"""parallel-effects: interprocedural classification of shared writes in
OpenMP regions.

For every variable or member written inside an OpenMP parallel region
(including writes reached through one level of same-TU helpers: hoisted
lambdas and same-file functions called from the region), classify the
write on a four-point effect lattice:

  thread-local   the written object is private to the executing thread —
                 declared inside the region/helper extent, listed in a
                 private/firstprivate/lastprivate clause, a worksharing
                 induction variable, a lambda parameter, or reached
                 through a `.local()` per-thread scratch slot
  synchronized   the write is covered by `#pragma omp atomic`, an
                 `omp critical` block, an omp_set_lock/omp_unset_lock
                 span or an RAII mutex-guard scope, or the variable is in
                 a reduction clause
  disjoint       the written element is selected by an index derived from
                 the worksharing induction variable (so no two threads
                 touch the same element) AND the region never reads the
                 container at a non-derived ("foreign") index — a foreign
                 read means other threads observe the written slots and
                 the disjointness of the *writes* no longer proves
                 race-freedom
  racy           everything else — a real data race that must carry a
                 live `grapr:benign-race(<var>)` annotation naming the
                 written lvalue

Checks built on the classification (ids registered in checks.CHECK_IDS):

  shared-write-safety      unannotated racy writes fail
  benign-race-validity     an annotation on a write proven synchronized /
                           disjoint / thread-local is stale and fails
  region-alloc             heap allocation or container growth inside a
                           parallel region in src/community,
                           src/coarsening or src/structures fails unless
                           the container is per-thread (declared in the
                           region or reached via `.local()` /
                           ThreadLocalPool)
  benign-race-manifest     the static benign-race set must equal
                           tests/benign_races.txt in BOTH directions;
                           tsan.supp entries must map to manifest rows;
                           runtime= site names must equal the
                           GRAPR_RACE_BENIGN_SITE instrumentation (the
                           compiled half of the cross-check lives in
                           tests/test_race_check.cpp, which drives the
                           manifest under GRAPR_RACE_CHECK and diffs the
                           runtime benign-write trace against it)
  fault-point-in-parallel  a GRAPR_FAULT_POINT reached from inside a
                           parallel region, at ANY call depth (cross-TU
                           fixed-point summary) — the authoritative
                           interprocedural answer behind grapr_lint's
                           one-level textual rule

Known false-negative edges (kept deliberately; documented in DESIGN.md):
pointer-laundered aliases (`auto& r = shared; r[i] = v` inside the region
classifies the write as a write to the region-local `r`), writes through
raw pointers/iterators (`*p = v`), and allocation hidden behind cross-TU
member calls. The runtime shadow checker and TSan remain the backstop
for exactly those shapes.

Both frontends produce identical findings by construction: region
extents, clauses and synchronization coverage come from the shared
model.extract_omp() extractor over comment-blanked lines, and write
sites are recovered from the same blanked lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from model import FileModel, Finding, OmpRegion
from checks import ANNOTATION, Allows, _report
from protocol import FAULT_SITE, strip_comments, _call_names

EFFECT_CHECK_IDS = {
    "shared-write-safety", "benign-race-validity", "region-alloc",
    "benign-race-manifest", "fault-point-in-parallel",
}

THREAD_LOCAL_LABEL = "thread-local"
SYNCHRONIZED = "synchronized"
DISJOINT = "disjoint"
RACY = "racy"

# Directories whose parallel regions are held to the no-allocation rule.
REGION_ALLOC_DIRS = {"community", "coarsening", "structures"}

# Publish-style mutating methods on shared containers (Partition, Cover,
# vector element stores routed through an API). First argument is the
# written element's index.
PUBLISH_METHODS = {"set", "moveToSubset", "addToSubset", "removeFromSubset",
                   "add"}

# Container-growth methods: any of these on a shared receiver inside a
# region is a heap-allocation hazard (region-alloc).
GROWTH_METHODS = {"push_back", "emplace_back", "emplace", "insert",
                  "resize", "reserve", "assign"}

ALLOC_CALLS = {"make_unique", "make_shared"}

# Read-accessor methods that observe an element of a shared container at
# an explicit index (used by the foreign-read rule).
READ_METHODS = {"subsetOf", "at", "read", "inSubset", "subsetsOf"}

_RUNTIME_SITE = re.compile(
    r'GRAPR_RACE_BENIGN_SITE\s*\(\s*"(?P<name>[^"]+)"')

# postfix chain: base ident followed by member/subscript/call segments.
_CHAIN = (r"[A-Za-z_]\w*"
          r"(?:(?:\.|->)[A-Za-z_]\w*|\([^()]*\)|\[[^\[\]]*\])*")

_WRITE = re.compile(
    r"(?P<lhs>[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*|\[[^\[\]]*\])*)\s*"
    r"(?<![=!<>+\-*/%&|^])"
    r"(?P<op><<=|>>=|=|\+=|-=|\*=|/=|%=|\|=|&=|\^=)(?![=<>])")
_INCDEC = re.compile(
    r"(?:\+\+|--)\s*(?P<pre>[A-Za-z_]\w*(?:\[[^\[\]]*\])?)"
    r"|(?P<post>[A-Za-z_]\w*(?:\[[^\[\]]*\])?)\s*(?:\+\+|--)")
_CALL_ON = re.compile(
    rf"(?P<chain>{_CHAIN})\s*(?:\.|->)\s*(?P<meth>[A-Za-z_]\w*)\s*\(")
_LAMBDA_DECL = re.compile(
    r"\b(?:const\s+)?auto\s+(?P<name>[A-Za-z_]\w*)\s*=\s*\[")
_STATIC_CAST = re.compile(r"static_cast\s*<[^<>]*(?:<[^<>]*>)?[^<>]*>")
_TID = re.compile(r"\bomp_get_thread_num\s*\(")
_NEW_EXPR = re.compile(r"(?<!operator )\bnew\b(?!\s*\()")

_CPPISH = {
    "if", "for", "while", "switch", "return", "else", "do", "sizeof",
    "static_cast", "const", "auto", "true", "false", "nullptr", "this",
    "break", "continue", "case", "default", "new", "delete", "operator",
    "node", "count", "index", "edgeweight", "double", "int", "bool",
    "std", "size_t",
}


@dataclass
class WriteSite:
    line: int                 # 1-based
    var: str                  # base identifier of the written lvalue
    index_text: str           # element selector text ("" for whole-object)
    classification: str
    reason: str
    kind: str                 # "assign" | "publish" | "incdec"


@dataclass
class RegionAnalysis:
    region: OmpRegion
    extents: list[tuple[int, int]]      # 1-based inclusive line ranges
    locals_: set[str] = field(default_factory=set)
    derived: set[str] = field(default_factory=set)
    writes: list[WriteSite] = field(default_factory=list)
    alloc_sites: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class EffectSummary:
    """Cross-TU fixed point over call names: which functions can reach a
    GRAPR_FAULT_POINT at any depth. Mirrors protocol.ProtocolSummary."""
    fault: set[str] = field(default_factory=set)


def build_effect_summary(pairs) -> EffectSummary:
    """A name's summary is the meet over every definition of that name:
    only when ALL definitions reach a fault point does a call through the
    bare name prove reachability. Calls bind by unqualified name, so a
    collision (AtomicVolumes::apply vs a WAL-touching StreamingGraph::
    apply) would otherwise poison every caller of the innocent overload."""
    defs: dict[str, list[tuple[bool, set[str]]]] = {}
    for model, _blanked, _allows in pairs:
        stripped = strip_comments(model.lines)
        for fn in model.functions:
            body = stripped[fn.start_line - 1:fn.end_line]
            direct = any(FAULT_SITE.search(ln) for ln in body)
            calls: set[str] = set()
            for stmt in fn.statements:
                calls.update(_call_names(stmt))
            defs.setdefault(fn.name, []).append((direct, calls))
    esum = EffectSummary()
    changed = True
    while changed:
        changed = False
        for name, bodies in defs.items():
            if name in esum.fault:
                continue
            if all(direct or (calls & esum.fault)
                   for direct, calls in bodies):
                esum.fault.add(name)
                changed = True
    return esum


# --------------------------------------------------------------------------
# Per-region analysis
# --------------------------------------------------------------------------

def _in_extents(line: int, extents: list[tuple[int, int]]) -> bool:
    return any(a <= line <= b for a, b in extents)


def _enclosing_function(model: FileModel, region: OmpRegion):
    best = None
    for fn in model.functions:
        if fn.start_line <= region.pragma_line <= fn.end_line:
            if best is None or fn.start_line > best.start_line:
                best = fn
    return best


def _brace_extent(blanked: list[str], start0: int) -> int:
    """Closing line (0-based) of the first brace block opening at or after
    start0."""
    depth = 0
    seen = False
    for j in range(start0, len(blanked)):
        for ch in blanked[j]:
            if ch == "{":
                depth += 1
                seen = True
            elif ch == "}":
                depth -= 1
        if seen and depth <= 0:
            return j
    return len(blanked) - 1


def _lambda_params(blanked: list[str], decl0: int) -> list[str]:
    """Ordered parameter names of a lambda declared at line decl0
    (0-based)."""
    text = " ".join(blanked[decl0:min(decl0 + 4, len(blanked))])
    m = re.search(r"\]\s*\(", text)
    if not m:
        return []
    depth, j = 1, m.end()
    while j < len(text) and depth:
        depth += {"(": 1, ")": -1}.get(text[j], 0)
        j += 1
    params = text[m.end():j - 1]
    names: list[str] = []
    for part in params.split(","):
        toks = re.findall(r"[A-Za-z_]\w*", part)
        if toks:
            names.append(toks[-1])
    return names


def _helper_extents(model: FileModel, blanked: list[str],
                    region: OmpRegion) -> tuple[list[tuple[int, int]],
                                                set[str],
                                                list[tuple[str, list[str]]]]:
    """One level of same-TU helpers reachable from the region: hoisted
    lambdas of the enclosing function that the region invokes or shares,
    and same-file named functions called from the region. Returns the
    extra (start, end) extents, the helper-local parameter names, and the
    hoisted lambdas as (name, ordered params) for call-site index
    derivation."""
    extents: list[tuple[int, int]] = []
    params: set[str] = set()
    lambdas: list[tuple[str, list[str]]] = []
    region_text = " ".join(
        blanked[region.start - 1:region.end])

    fn = _enclosing_function(model, region)
    if fn is not None:
        for i in range(fn.start_line - 1, region.start - 1):
            m = _LAMBDA_DECL.search(blanked[i])
            if not m:
                continue
            name = m.group("name")
            if not re.search(rf"\b{re.escape(name)}\b", region_text) \
                    and name not in region.shared:
                continue
            end0 = _brace_extent(blanked, i)
            extents.append((i + 1, end0 + 1))
            plist = _lambda_params(blanked, i)
            params |= set(plist)
            lambdas.append((name, plist))

    # Only FREE calls bind same-file functions. A member call like
    # `counts.clear(...)` resolves through its receiver, which this
    # textual layer cannot soundly bind to a same-file method definition —
    # per-thread scratch classes share method names (clear/add) with
    # shared containers, and following the wrong body manufactures
    # phantom shared writes.
    called = {m.group(1) for m in re.finditer(
        r"(?<![\w.>])([A-Za-z_]\w*)\s*\(", region_text)}
    for other in model.functions:
        if other is fn or other.name not in called:
            continue
        if other.start_line <= region.pragma_line <= other.end_line:
            continue
        extents.append((other.start_line, other.end_line))
        params |= {name for _t, name in other.params}
    return extents, params, lambdas


def _strip_casts(text: str) -> str:
    return _STATIC_CAST.sub(" ", text)


def _idents(text: str) -> set[str]:
    return {w for w in re.findall(r"[A-Za-z_]\w*", _strip_casts(text))
            if w not in _CPPISH}


def _pure_initializer(text: str) -> bool:
    """No subscripts and no calls other than static_cast — the shapes an
    induction-derived value may flow through."""
    t = _strip_casts(text)
    if "[" in t:
        return False
    return not re.search(r"[A-Za-z_]\w*\s*\(", t)


_FETCH_RESERVE = re.compile(r"(?:\.|->)\s*fetch_(?:add|sub)\s*\(")
_RESERVE_POSTINC = re.compile(
    r"^(?P<base>[A-Za-z_]\w*)\s*\[[^\[\]]*\]\s*\+\+\s*$")


def _slice_derived(text: str, derived: set[str],
                   locals_: set[str]) -> bool:
    """Per-thread slice cursors — the second way a value becomes a
    disjointness witness (ISSUE: 'a per-thread slice'):

      * an offset-table read at region-controlled indices
        (`offsets[cc]`, `firstRow[uc] + r`): the table partitions the
        output array into per-iteration slices
      * a unique-slot reservation: `slots[u].fetch_add(1)` or a
        post-increment of a region-local cursor cell (`cursor[e.u]++`)

    Whether the slices actually partition the output is beyond this
    lattice — overlapping-slice bugs remain the runtime shadow checker's
    job, and a value-table read laundered into an index (`zeta[v]`)
    defeats the heuristic; both edges are documented in DESIGN.md."""
    t = _strip_casts(text).strip()
    if _FETCH_RESERVE.search(t):
        return True
    m = _RESERVE_POSTINC.match(t)
    if m:
        return m.group("base") in locals_ or m.group("base") in derived
    # Member names after . / -> are not free identifiers.
    t = re.sub(r"(?:\.|->)\s*[A-Za-z_]\w*", " ", t)
    if "[" not in t:
        return False
    bases = set(re.findall(r"([A-Za-z_]\w*)\s*\[", t))
    rest = {w for w in re.findall(r"[A-Za-z_]\w*", t)
            if w not in _CPPISH} - bases
    # Strictly derived, NOT merely region-local: `neighbors[e]` with a
    # sequential inner-loop e yields a *neighbor id* — a value every
    # thread can hold — not a slice cursor. Offset tables read at the
    # worksharing index (`offsets[v]`, `firstRow[uc]`) are the shape this
    # rule exists for.
    if rest and not rest <= derived:
        return False
    return not re.search(r"[A-Za-z_]\w*\s*\(",
                         re.sub(r"\[[^\[\]]*\]", " ", t))


def _split_commas(text: str) -> list[str]:
    """Split on top-level commas (outside parens/brackets/braces)."""
    parts, depth, start = [], 0, 0
    for j, ch in enumerate(text):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:j])
            start = j + 1
    parts.append(text[start:])
    return [p.strip() for p in parts]


def _call_arg_lists(text: str, name: str) -> list[list[str]]:
    """Top-level argument texts of every free call to `name` in text."""
    out: list[list[str]] = []
    for m in re.finditer(rf"(?<![\w.>]){re.escape(name)}\s*\(", text):
        depth, j = 1, m.end()
        while j < len(text) and depth:
            depth += {"(": 1, ")": -1}.get(text[j], 0)
            j += 1
        out.append(_split_commas(text[m.end():j - 1]))
    return out


def analyze_region(model: FileModel, blanked: list[str],
                   region: OmpRegion) -> RegionAnalysis:
    extents = [(region.start, region.end)]
    helper_extents, helper_params, lambdas = \
        _helper_extents(model, blanked, region)
    extents += helper_extents

    ra = RegionAnalysis(region=region, extents=extents)
    ra.locals_ = set(region.induction) | set(region.privates) | helper_params

    # Declarations inside the extents are per-thread (each thread executes
    # the declaration); IR decl/loop statements carry them for both
    # frontends. The micro frontend lowers a multi-declarator statement
    # (`node u = 0, v = 0;`) to ONE decl whose initializer text hides the
    # later declarators, so parse the continuations out here — libclang
    # emits each declarator separately and lands on the same result.
    decl_inits: list[tuple[str, str]] = []
    for fn in model.functions:
        for stmt in fn.statements:
            if stmt.kind in ("decl", "loop") and \
                    _in_extents(stmt.line, extents):
                ra.locals_.add(stmt.name)
                if stmt.kind != "decl" or stmt.value is None:
                    continue
                parts = _split_commas(stmt.value.text or "")
                if parts:
                    decl_inits.append((stmt.name, parts[0]))
                for part in parts[1:]:
                    m = re.match(r"^([A-Za-z_]\w*)\s*=\s*(.*)$", part,
                                 re.DOTALL)
                    if m:
                        ra.locals_.add(m.group(1))
                        decl_inits.append((m.group(1), m.group(2)))

    lines_in_extents = [
        (ln, blanked[ln - 1])
        for a, b in extents
        for ln in range(a, min(b, len(blanked)) + 1)]
    all_text = " ".join(text for _ln, text in lines_in_extents)

    # Derived-index fixed point: start from the worksharing induction
    # variables; absorb locals whose initializer only combines derived
    # identifiers (no subscripts, no calls except static_cast) or is a
    # per-thread slice cursor (_slice_derived); absorb hoisted-lambda
    # parameters when EVERY call site passes a derived value in that
    # position (`writeRow(static_cast<node>(sv))`).
    ra.derived = set(region.induction)
    changed = True
    while changed:
        changed = False
        for name, text in decl_inits:
            if name in ra.derived or not text:
                continue
            if (_pure_initializer(text) and _idents(text)
                    and _idents(text) <= ra.derived) or \
                    _slice_derived(text, ra.derived, ra.locals_):
                ra.derived.add(name)
                changed = True
        for lname, plist in lambdas:
            arg_lists = _call_arg_lists(all_text, lname)
            if not arg_lists:
                continue
            for k, pname in enumerate(plist):
                if pname in ra.derived:
                    continue
                argtexts = [a[k] for a in arg_lists if k < len(a)]
                if argtexts and all(
                        a and _pure_initializer(a) and _idents(a)
                        and _idents(a) <= ra.derived for a in argtexts):
                    ra.derived.add(pname)
                    changed = True

    # ---- write sites (textual over the shared blanked lines) ----
    raw_writes: list[tuple[int, str, str, str]] = []
    for ln, text in lines_in_extents:
        for m in _WRITE.finditer(text):
            lhs = m.group("lhs")
            before = text[:m.start()].rstrip()
            if before and (before[-1].isalnum()
                           or before[-1] in "_>&*:"):
                # Preceded by a type (declaration-with-initializer) or part
                # of a larger expression — declarations initialize a fresh
                # per-thread object.
                ra.locals_.add(re.match(r"[A-Za-z_]\w*", lhs).group(0))
                continue
            base = re.match(r"[A-Za-z_]\w*", lhs).group(0)
            idx = ""
            brackets = re.findall(r"\[([^\[\]]*)\]", lhs)
            if brackets:
                idx = brackets[-1]
            raw_writes.append((ln, base, idx, "assign"))
        for m in _INCDEC.finditer(text):
            lv = m.group("pre") or m.group("post")
            base = re.match(r"[A-Za-z_]\w*", lv).group(0)
            br = re.findall(r"\[([^\[\]]*)\]", lv)
            raw_writes.append((ln, base, br[-1] if br else "", "incdec"))
        for m in _CALL_ON.finditer(text):
            meth = m.group("meth")
            chain = m.group("chain")
            base = re.match(r"[A-Za-z_]\w*", chain).group(0)
            if meth in PUBLISH_METHODS:
                rest = text[m.end():]
                arg = rest.split(",")[0].split(")")[0]
                raw_writes.append((ln, base, arg.strip(), "publish"))
            if meth in GROWTH_METHODS or meth in ALLOC_CALLS:
                if ".local()" in chain or ".local ()" in chain:
                    continue
                if base in ra.locals_:
                    continue
                ra.alloc_sites.append(
                    (ln, f"'{base}.{meth}(...)' grows a shared container"))
        if _NEW_EXPR.search(text):
            ra.alloc_sites.append((ln, "raw `new` expression"))
        for m in re.finditer(r"\b(" + "|".join(ALLOC_CALLS) + r")\s*<",
                             text):
            ra.alloc_sites.append((ln, f"'{m.group(1)}' allocation"))

    # ---- foreign-read scan per written base ----
    def has_foreign_access(base: str) -> bool:
        pat_sub = re.compile(rf"\b{re.escape(base)}\s*\[([^\[\]]*)\]")
        pat_meth = re.compile(
            rf"\b{re.escape(base)}\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
        for ln, text in lines_in_extents:
            if "single" in model.sync_lines.get(ln, set()):
                # An `omp single` block is bracketed by implicit barriers,
                # so its reads are ordered after every disjoint write.
                continue
            for m in pat_sub.finditer(text):
                ids = _idents(m.group(1))
                if ids and not ids <= ra.derived:
                    return True
            for m in pat_meth.finditer(text):
                meth = m.group(1)
                if meth not in READ_METHODS:
                    continue
                rest = text[m.end():]
                arg = rest.split(",")[0].split(")")[0]
                ids = _idents(arg)
                if ids and not ids <= ra.derived:
                    return True
        return False

    foreign_cache: dict[str, bool] = {}

    def classify(ln: int, base: str, idx: str) -> tuple[str, str]:
        if base in ra.locals_:
            return THREAD_LOCAL_LABEL, "written object is per-thread"
        if base in region.reductions:
            return SYNCHRONIZED, "reduction clause"
        tags = model.sync_lines.get(ln, set())
        sync = tags & {"atomic", "critical", "locked", "single"}
        if sync:
            return SYNCHRONIZED, f"covered by {sorted(sync)[0]}"
        if idx:
            if _TID.search(idx):
                return THREAD_LOCAL_LABEL, "thread-id-indexed slot"
            ids = _idents(idx)
            if ids and ids <= ra.derived:
                if base not in foreign_cache:
                    foreign_cache[base] = has_foreign_access(base)
                if not foreign_cache[base]:
                    return DISJOINT, \
                        "index derived from the worksharing induction " \
                        "variable and never accessed at a foreign index"
                return RACY, ("write index is induction-derived but the " \
                              "region also accesses the container at a " \
                              "foreign index")
        return RACY, "unsynchronized write to shared state"

    for ln, base, idx, kind in raw_writes:
        cls, reason = classify(ln, base, idx)
        ra.writes.append(WriteSite(ln, base, idx, cls, reason, kind))
    return ra


# --------------------------------------------------------------------------
# File-level analysis
# --------------------------------------------------------------------------

@dataclass
class FileEffects:
    model: FileModel
    blanked: list[str]
    regions: list[RegionAnalysis] = field(default_factory=list)

    @property
    def key(self) -> str:
        parts = self.model.path.parts
        return "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


def analyze_file(model: FileModel, blanked: list[str]) -> FileEffects:
    fe = FileEffects(model=model, blanked=blanked)
    for region in model.regions:
        fe.regions.append(analyze_region(model, blanked, region))
    return fe


def _annotations(model: FileModel) -> list[tuple[int, str]]:
    """(1-based line, var) for every grapr:benign-race annotation."""
    out = []
    for i, raw in enumerate(model.lines):
        m = ANNOTATION.search(raw)
        if m:
            out.append((i + 1, m.group("var")))
    return out


def _annotated(model: FileModel, line1: int, var: str) -> bool:
    """Does a benign-race annotation for var anchor this line? Mirrors
    checks.check_annotation_liveness: annotation at line i covers the next
    8 lines."""
    for aline, avar in _annotations(model):
        if avar == var and aline <= line1 <= aline + 8:
            return True
    return False


def _benign_set(fe: FileEffects) -> set[str]:
    """Validated benign races in this file, as '<dir/file>:<var>' keys:
    annotated racy writes plus annotated atomic-read stale snapshots."""
    out: set[str] = set()
    for ra in fe.regions:
        for w in ra.writes:
            if w.classification == RACY and \
                    _annotated(fe.model, w.line, w.var):
                out.add(f"{fe.key}:{w.var}")
    # Atomic-read stale-snapshot annotations (may sit outside any region in
    # this TU — e.g. volume View::read helpers called from regions in
    # another TU).
    for aline, avar in _annotations(fe.model):
        for j in range(aline, min(aline + 9, len(fe.blanked) + 1)):
            if "atomic-read" in fe.model.sync_lines.get(j, set()) and \
                    re.search(rf"\b{re.escape(avar)}\b", fe.blanked[j - 1]):
                out.add(f"{fe.key}:{avar}")
                break
    return out


# --------------------------------------------------------------------------
# Checks
# --------------------------------------------------------------------------

def check_shared_write_safety(fe: FileEffects,
                              allows: Allows) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple[int, str]] = set()
    for ra in fe.regions:
        for w in ra.writes:
            if w.classification != RACY:
                continue
            if (w.line, w.var) in seen:
                continue
            seen.add((w.line, w.var))
            if _annotated(fe.model, w.line, w.var):
                continue
            _report(findings, allows, fe.model.path, w.line,
                    "shared-write-safety",
                    f"unsynchronized write to shared '{w.var}' in a "
                    f"parallel region ({w.reason}); prove it safe or mark "
                    f"it grapr:benign-race({w.var}) with the tolerance "
                    "argument")
    return findings


def check_benign_race_validity(fe: FileEffects,
                               allows: Allows) -> list[Finding]:
    """An annotation whose anchored write the analysis proves synchronized,
    disjoint or thread-local is stale — the race it excuses no longer
    exists."""
    findings: list[Finding] = []
    for aline, avar in _annotations(fe.model):
        anchored = [
            w for ra in fe.regions for w in ra.writes
            if w.var == avar and aline <= w.line <= aline + 8]
        if not anchored:
            continue
        if any(w.classification == RACY for w in anchored):
            continue
        # All anchored writes are proven safe. An atomic-read stale
        # snapshot in the same window still justifies the annotation
        # (the benign race is the read, not the write).
        stale_read = any(
            "atomic-read" in fe.model.sync_lines.get(j, set())
            and re.search(rf"\b{re.escape(avar)}\b", fe.blanked[j - 1])
            for j in range(aline, min(aline + 9, len(fe.blanked) + 1)))
        if stale_read:
            continue
        w = anchored[0]
        _report(findings, allows, fe.model.path, aline,
                "benign-race-validity",
                f"stale grapr:benign-race({avar}): the annotated write at "
                f"line {w.line} is proven {w.classification} "
                f"({w.reason}) — the race no longer exists; delete the "
                "annotation and its manifest row")
    return findings


def check_region_alloc(fe: FileEffects, allows: Allows) -> list[Finding]:
    parts = set(fe.model.path.parts)
    in_scope = bool(parts & REGION_ALLOC_DIRS) or any(
        "grapr:region-alloc-scope" in ln for ln in fe.model.lines)
    if not in_scope:
        return []
    findings: list[Finding] = []
    seen: set[int] = set()
    for ra in fe.regions:
        for line, what in ra.alloc_sites:
            if line in seen:
                continue
            seen.add(line)
            _report(findings, allows, fe.model.path, line, "region-alloc",
                    f"{what} inside a parallel region — route per-thread "
                    "buffers through ThreadLocalPool / a region-local "
                    "declaration instead of allocating on the hot path")
    return findings


def check_fault_point_in_parallel(fe: FileEffects, esum: EffectSummary,
                                  allows: Allows) -> list[Finding]:
    findings: list[Finding] = []
    stripped = strip_comments(fe.model.lines)
    seen: set[int] = set()
    for ra in fe.regions:
        for a, b in ra.extents:
            for ln in range(a, min(b, len(stripped)) + 1):
                if FAULT_SITE.search(stripped[ln - 1]) and ln not in seen:
                    seen.add(ln)
                    _report(findings, allows, fe.model.path, ln,
                            "fault-point-in-parallel",
                            "GRAPR_FAULT_POINT inside a parallel region: "
                            "a fault fired here kills or throws on an "
                            "arbitrary worker thread mid-team")
        for fn in fe.model.functions:
            for stmt in fn.statements:
                if not _in_extents(stmt.line, ra.extents) \
                        or stmt.line in seen:
                    continue
                reached = [n for n in _call_names(stmt) if n in esum.fault]
                if reached:
                    seen.add(stmt.line)
                    _report(findings, allows, fe.model.path, stmt.line,
                            "fault-point-in-parallel",
                            f"'{reached[0]}' is called from a parallel "
                            "region and reaches a GRAPR_FAULT_POINT "
                            "(cross-TU call chain): a fault fired here "
                            "kills or throws on an arbitrary worker "
                            "thread mid-team")
    return findings


# --------------------------------------------------------------------------
# benign-race-manifest
# --------------------------------------------------------------------------

_ROW = re.compile(
    r"^(?P<key>\S+:\w+)\s+tsan=(?P<tsan>\S+)\s+runtime=(?P<rt>\S+)$")
# The pattern may contain spaces ('infra operator delete'); it matches a
# suppression entry's after-colon text.
_INFRA = re.compile(r"^infra\s+(?P<pat>\S.*?)\s*$")


def parse_manifest(path: Path):
    """Returns (rows: dict key -> (line, tsan set, runtime set),
    infra: dict pattern -> line). `-` means an empty set."""
    rows: dict[str, tuple[int, set[str], set[str]]] = {}
    infra: dict[str, int] = {}
    errors: list[tuple[int, str]] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        m = _INFRA.match(text)
        if m:
            infra.setdefault(m.group("pat"), lineno)
            continue
        m = _ROW.match(text)
        if not m:
            errors.append((lineno, text))
            continue
        tsan = set() if m.group("tsan") == "-" else \
            set(m.group("tsan").split(","))
        rt = set() if m.group("rt") == "-" else set(m.group("rt").split(","))
        rows.setdefault(m.group("key"), (lineno, tsan, rt))
    return rows, infra, errors


def check_benign_race_manifest(file_effects: list[tuple[FileEffects, Allows]],
                               manifest: Path | None,
                               tsan_supp: Path | None) -> list[Finding]:
    findings: list[Finding] = []
    if manifest is None:
        return findings
    if not manifest.exists():
        findings.append(Finding(
            manifest, 1, "benign-race-manifest",
            f"benign-race manifest {manifest} is missing (pass "
            "--benign-manifest '' to disable the cross-check)"))
        return findings

    rows, infra, errors = parse_manifest(manifest)
    for lineno, text in errors:
        findings.append(Finding(
            manifest, lineno, "benign-race-manifest",
            f"unparseable manifest row '{text}' — expected "
            "'<dir/file>:<var> tsan=<list|-> runtime=<list|->' or "
            "'infra <pattern>'"))

    static_set: dict[str, tuple[Path, int]] = {}
    for fe, _allows in file_effects:
        for key in _benign_set(fe):
            var = key.rsplit(":", 1)[1]
            line = next((l for l, v in _annotations(fe.model) if v == var),
                        1)
            static_set.setdefault(key, (fe.model.path, line))

    # Direction 1: every validated benign race has a manifest row.
    for key, (path, line) in sorted(static_set.items()):
        if key not in rows:
            findings.append(Finding(
                path, line, "benign-race-manifest",
                f"benign race '{key}' is not listed in {manifest.name} — "
                "add a row so the runtime trace and TSan suppressions are "
                "held to it"))
    # Direction 2: every manifest row names a validated benign race.
    for key, (lineno, _t, _r) in sorted(rows.items(),
                                        key=lambda kv: kv[1][0]):
        if key not in static_set:
            findings.append(Finding(
                manifest, lineno, "benign-race-manifest",
                f"manifest row '{key}' matches no validated "
                "grapr:benign-race annotation in the analyzed sources — "
                "remove the row or restore the annotation"))

    # tsan.supp <-> manifest mapping, both ways.
    if tsan_supp is not None and tsan_supp.exists():
        supp_entries: dict[str, int] = {}
        for lineno, raw in enumerate(tsan_supp.read_text().splitlines(),
                                     start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            supp_entries.setdefault(text, lineno)
        mapped: set[str] = set(infra)
        for _key, (_l, tsan, _r) in rows.items():
            mapped |= tsan
        for entry, lineno in sorted(supp_entries.items(),
                                    key=lambda kv: kv[1]):
            pattern = entry.split(":", 1)[1] if ":" in entry else entry
            if entry in mapped or pattern in mapped:
                continue
            findings.append(Finding(
                tsan_supp, lineno, "benign-race-manifest",
                f"tsan.supp entry '{entry}' maps to no row in "
                f"{manifest.name} — tie it to the benign race it excuses "
                "(tsan=...) or declare it 'infra <pattern>'"))
        supp_patterns = {e.split(":", 1)[1] if ":" in e else e
                         for e in supp_entries} | set(supp_entries)
        for _key, (lineno, tsan, _r) in sorted(rows.items(),
                                               key=lambda kv: kv[1][0]):
            for tok in sorted(tsan):
                if tok not in supp_patterns:
                    findings.append(Finding(
                        manifest, lineno, "benign-race-manifest",
                        f"manifest tsan token '{tok}' matches no entry in "
                        f"{tsan_supp.name} — remove it or restore the "
                        "suppression"))
        for pat, lineno in sorted(infra.items(), key=lambda kv: kv[1]):
            if pat not in supp_patterns:
                findings.append(Finding(
                    manifest, lineno, "benign-race-manifest",
                    f"infra pattern '{pat}' matches no entry in "
                    f"{tsan_supp.name} — remove it"))

    # runtime= names <-> GRAPR_RACE_BENIGN_SITE instrumentation, both ways.
    site_names: dict[str, tuple[Path, int]] = {}
    for fe, _allows in file_effects:
        stripped = strip_comments(fe.model.lines)
        for lineno, text in enumerate(stripped, start=1):
            for m in _RUNTIME_SITE.finditer(text):
                site_names.setdefault(m.group("name"),
                                      (fe.model.path, lineno))
    manifest_rt: dict[str, int] = {}
    for _key, (lineno, _t, rt) in rows.items():
        for name in rt:
            manifest_rt.setdefault(name, lineno)
    for name, (path, lineno) in sorted(site_names.items()):
        if name not in manifest_rt:
            findings.append(Finding(
                path, lineno, "benign-race-manifest",
                f"GRAPR_RACE_BENIGN_SITE(\"{name}\") is not named by any "
                f"runtime= list in {manifest.name} — the race-check "
                "harness cannot hold the trace to it"))
    for name, lineno in sorted(manifest_rt.items(), key=lambda kv: kv[1]):
        if name not in site_names:
            findings.append(Finding(
                manifest, lineno, "benign-race-manifest",
                f"runtime site '{name}' matches no "
                "GRAPR_RACE_BENIGN_SITE in the analyzed sources — remove "
                "it or restore the instrumentation"))
    return findings


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def run_effects_checks(pairs, fixture_mode: bool,
                       manifest: Path | None,
                       tsan_supp: Path | None,
                       explicit_manifest: bool = False) -> list[Finding]:
    """pairs: (FileModel, blanked lines, Allows) triples. In fixture mode
    the manifest cross-check only runs when the manifest was passed
    explicitly (the manifest_gap fixture does exactly that)."""
    esum = build_effect_summary(pairs)
    findings: list[Finding] = []
    file_effects: list[tuple[FileEffects, Allows]] = []
    for model, blanked, allows in pairs:
        fe = analyze_file(model, blanked)
        file_effects.append((fe, allows))
        findings += check_shared_write_safety(fe, allows)
        findings += check_benign_race_validity(fe, allows)
        findings += check_region_alloc(fe, allows)
        findings += check_fault_point_in_parallel(fe, esum, allows)
    if not fixture_mode or explicit_manifest:
        findings += check_benign_race_manifest(
            file_effects, manifest, tsan_supp)
    return findings
