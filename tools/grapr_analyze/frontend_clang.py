"""libclang (clang.cindex) frontend: the canonical AST lowering.

Used when the `clang` python package and a matching libclang shared
library are importable (the CI analyze job pins both); ctest environments
without libclang fall back to frontend_micro. Both frontends lower to the
same IR (model.py), and the must-fail fixtures pin the shared behaviour.

The lowering is deliberately shallow: the checks reason about declared
local types, statement order, and calls on named receivers — so this
walker flattens each function body into Stmt facts rather than preserving
the tree. Implicit-conversion *detection* stays in checks.py (domain
tables over declared types), identical for both frontends, so a finding
never depends on which frontend produced it.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from model import ExprInfo, FileModel, FunctionModel, Stmt, extract_omp
from frontend_micro import blank

try:
    from clang import cindex
    _CINDEX_IMPORT_ERROR = None
except Exception as e:  # pragma: no cover - exercised only without clang
    cindex = None
    _CINDEX_IMPORT_ERROR = e


def available() -> bool:
    """True if clang.cindex imports AND a libclang library actually loads
    (the package can be installed without the shared library)."""
    if cindex is None:
        return False
    try:
        cindex.Index.create()
        return True
    except Exception:
        return False


def _compile_args(compile_commands: Path | None,
                  src_root: Path) -> dict[str, list[str]]:
    """file -> clang args from compile_commands.json, with -c/-o and the
    input file stripped; headers get a fallback of ['-I<src_root>']."""
    table: dict[str, list[str]] = {}
    if compile_commands and compile_commands.exists():
        for entry in json.loads(compile_commands.read_text()):
            args = entry.get("arguments")
            if not args:
                args = entry.get("command", "").split()
            cleaned: list[str] = []
            skip = False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-c", entry["file"]):
                    continue
                if a == "-o":
                    skip = True
                    continue
                cleaned.append(a)
            f = Path(entry["file"])
            if not f.is_absolute():
                f = Path(entry["directory"]) / f
            table[str(f.resolve())] = cleaned
    table.setdefault("", ["-std=c++20", f"-I{src_root}"])
    return table


class ClangFrontend:
    name = "clang"

    def __init__(self, compile_commands: Path | None, src_root: Path):
        self.index = cindex.Index.create()
        self.args = _compile_args(compile_commands, src_root)
        self.fallback = ["-std=c++20", f"-I{src_root}", "-fopenmp"]
        # Not present in every libclang binding version.
        self.functional_cast = getattr(
            cindex.CursorKind, "FUNCTIONAL_CAST_EXPR", None)

    def lower(self, path: Path, lines: list[str]) -> FileModel:
        model = FileModel(path=path, lines=lines, frontend=self.name)
        args = self.args.get(str(path.resolve()), self.fallback)
        tu = self.index.parse(
            str(path), args=args,
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        target = str(path.resolve())
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is None or str(Path(str(loc.file)).resolve()) != target:
                continue
            kind = cursor.kind
            if kind in (cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL,
                        cindex.CursorKind.CLASS_TEMPLATE,
                        cindex.CursorKind.NAMESPACE):
                if cursor.spelling:
                    model.defined_classes.add(cursor.spelling)
            if kind in (cindex.CursorKind.FUNCTION_DECL,
                        cindex.CursorKind.CXX_METHOD,
                        cindex.CursorKind.CONSTRUCTOR,
                        cindex.CursorKind.DESTRUCTOR,
                        cindex.CursorKind.FUNCTION_TEMPLATE) \
                    and cursor.is_definition():
                fn = self._lower_function(cursor, lines)
                if fn is not None:
                    model.functions.append(fn)
                    model.defined_symbols.add(fn.qualname)
                    model.defined_symbols.add(fn.name)
        # OpenMP facts (region extents, clauses, atomic/critical/lock
        # coverage) come from the same textual extractor the micro frontend
        # uses — libclang's OpenMP cursor support varies by version, and the
        # parallel-effects pass must classify identically under both
        # frontends. blank() is pure line-level comment/string blanking.
        model.regions, model.sync_lines = extract_omp(blank(lines))
        return model

    # ------------------------------------------------------------------

    def _qualname(self, cursor) -> str:
        parts = [cursor.spelling]
        parent = cursor.semantic_parent
        while parent is not None and parent.kind not in (
                cindex.CursorKind.TRANSLATION_UNIT,):
            if parent.spelling:
                parts.append(parent.spelling)
            parent = parent.semantic_parent
        return "::".join(reversed(parts))

    def _lower_function(self, cursor, lines: list[str]):
        extent = cursor.extent
        start, end = extent.start.line, extent.end.line
        fn = FunctionModel(
            name=cursor.spelling or "<anon>",
            qualname=self._qualname(cursor),
            start_line=start, end_line=end)
        for arg in cursor.get_arguments():
            fn.params.append((arg.type.spelling, arg.spelling))
        body = None
        for child in cursor.get_children():
            if child.kind == cindex.CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return None
        for node in body.walk_preorder():
            self._lower_node(node, fn)
        fn.has_omp = any(
            "#pragma" in ln and "omp" in ln
            for ln in lines[start - 1:min(end, len(lines))])
        return fn

    def _expr_info(self, node) -> ExprInfo:
        info = ExprInfo(text=self._spelling(node))
        for sub in node.walk_preorder():
            if sub.kind == cindex.CursorKind.DECL_REF_EXPR and sub.spelling:
                info.idents.add(sub.spelling)
            elif sub.kind == cindex.CursorKind.MEMBER_REF_EXPR and \
                    sub.spelling:
                info.idents.add(sub.spelling)
            elif sub.kind == cindex.CursorKind.CALL_EXPR and sub.spelling:
                info.calls.append((self._receiver(sub), sub.spelling))
        return info

    def _spelling(self, node) -> str:
        try:
            return " ".join(t.spelling for t in node.get_tokens())[:200]
        except Exception:
            return ""

    def _receiver(self, call) -> str:
        """Best-effort receiver name of a member call: the first
        DECL_REF/MEMBER_REF in the callee subexpression."""
        children = list(call.get_children())
        if not children:
            return ""
        for sub in children[0].walk_preorder():
            if sub.kind in (cindex.CursorKind.DECL_REF_EXPR,
                            cindex.CursorKind.MEMBER_REF_EXPR):
                return sub.spelling
        return ""

    def _lower_node(self, node, fn: FunctionModel) -> None:
        k = node.kind
        line = node.location.line
        if k == cindex.CursorKind.VAR_DECL:
            init = None
            for child in node.get_children():
                if child.kind.is_expression():
                    init = self._expr_info(child)
            parent_kind = "decl"
            fn.statements.append(Stmt(
                parent_kind, line, name=node.spelling,
                declared_type=node.type.spelling, value=init))
        elif k == cindex.CursorKind.CALL_EXPR and node.spelling:
            args = []
            children = list(node.get_children())
            arg_nodes = children[1:] if children else []
            for a in arg_nodes:
                ident = ""
                refs = [s.spelling for s in a.walk_preorder()
                        if s.kind == cindex.CursorKind.DECL_REF_EXPR]
                if len(refs) == 1:
                    ident = refs[0]
                args.append(ident)
            fn.statements.append(Stmt(
                "call", line, recv=self._receiver(node),
                method=node.spelling, args=args,
                value=self._expr_info(node)))
        elif k in (cindex.CursorKind.BINARY_OPERATOR,
                   cindex.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR):
            children = list(node.get_children())
            if len(children) == 2:
                op = self._binary_op(node)
                if op and (op == "=" or op.endswith("=")) and \
                        not op.startswith(("==", "!=", "<=", ">=")):
                    lhs_refs = [s.spelling for s in children[0].walk_preorder()
                                if s.kind in (
                                    cindex.CursorKind.DECL_REF_EXPR,
                                    cindex.CursorKind.MEMBER_REF_EXPR)]
                    if lhs_refs:
                        fn.statements.append(Stmt(
                            "assign", line, name=lhs_refs[0], op=op,
                            value=self._expr_info(children[1])))
        elif k == cindex.CursorKind.CSTYLE_CAST_EXPR:
            children = list(node.get_children())
            if children:
                fn.statements.append(Stmt(
                    "cast", line, declared_type=node.type.spelling,
                    style="c", value=self._expr_info(children[-1])))
        elif self.functional_cast is not None and k == self.functional_cast:
            children = list(node.get_children())
            if children:
                fn.statements.append(Stmt(
                    "cast", line, declared_type=node.type.spelling,
                    style="functional", value=self._expr_info(children[-1])))
        elif k == cindex.CursorKind.FOR_STMT:
            children = list(node.get_children())
            if children and children[0].kind == cindex.CursorKind.DECL_STMT:
                var = next((c for c in children[0].get_children()
                            if c.kind == cindex.CursorKind.VAR_DECL), None)
                if var is not None and len(children) >= 2:
                    fn.statements.append(Stmt(
                        "loop", line, name=var.spelling,
                        declared_type=var.type.spelling,
                        value=self._expr_info(children[1])))
        elif k == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            var = next((c for c in children
                        if c.kind == cindex.CursorKind.VAR_DECL), None)
            if var is not None and len(children) >= 2:
                fn.statements.append(Stmt(
                    "loop", line, name=var.spelling,
                    declared_type=var.type.spelling,
                    value=self._expr_info(children[-1])))

    def _binary_op(self, node) -> str:
        try:
            tokens = list(node.get_tokens())
        except Exception:
            return ""
        children = list(node.get_children())
        if not children:
            return ""
        lhs_end = children[0].extent.end.offset
        for t in tokens:
            if t.extent.start.offset >= lhs_end and re.fullmatch(
                    r"[=+\-*/%|&^<>]{0,2}=", t.spelling):
                return t.spelling
        return ""
