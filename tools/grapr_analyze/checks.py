"""The three grapr_analyze checks plus the tsan.supp liveness audit.

All checks consume the frontend-neutral IR from model.py; nothing here
looks at tokens directly except the annotation resolver (annotations live
in comments, which no AST keeps) and the suppression scanner.

Check ids (stable; used in messages and `grapr:analyze-allow(<id>)`):
  csr-staleness        a frozen CsrGraph view is read after a mutating
                       Graph method ran on its source
  index-width          implicit narrowing of count/index/node/edgeweight
                       to a 32-bit (or smaller / lossy) type
  annotation-liveness  a grapr:benign-race / grapr:lint-allow /
                       grapr:analyze-allow annotation no longer anchors a
                       real site
  suppression-liveness a tsan.supp entry names a symbol that no longer
                       exists or no longer reaches a parallel region

The sanctioned escape hatches, by design:
  - static_cast<...> is never flagged: explicit narrowing is greppable
    and reviewable; the check hunts *silent* narrowing (implicit
    conversions, C-style and functional casts).
  - `grapr:analyze-allow(<check>): <reason>` on the offending line or the
    contiguous comment block above it suppresses one finding; unused
    allows are themselves errors (annotation-liveness).
"""

from __future__ import annotations

import re
from pathlib import Path

from model import (CSR_TYPES, EDGEWEIGHT_RETURN_METHODS, FileModel, Finding,
                   GRAPH_MUTATORS, GRAPH_TYPES, NARROW_INT_TYPES,
                   NODE_RETURN_METHODS, NODE_UNSAFE_TYPES, FLOAT_NARROW_TYPES,
                   Summary, WIDE_RETURN_METHODS, is_edgeweight, is_node,
                   is_wide, normalize_type)

from frontend_micro import expr_info

ANALYZE_ALLOW = re.compile(
    r"grapr:analyze-allow\((?P<check>[\w-]+)\)(?P<rest>[^\n]*)")
ANNOTATION = re.compile(
    r"grapr:benign-race\((?P<var>[A-Za-z_]\w*)\)(?P<rest>[^\n]*)")
LINT_ALLOW = re.compile(r"grapr:lint-allow\((?P<rule>[\w-]+)\)(?P<rest>[^\n]*)")

CHECK_IDS = {"csr-staleness", "index-width", "annotation-liveness",
             "suppression-liveness",
             # Durability-protocol checks (protocol.py).
             "durability-order", "lock-discipline", "poison-path",
             "fault-site-coverage",
             # Parallel-effects checks (effects.py).
             "shared-write-safety", "benign-race-validity", "region-alloc",
             "benign-race-manifest", "fault-point-in-parallel"}

# Integer-valued types (any width): an edgeweight (double) flowing into
# one of these silently truncates the fractional part.
_INTEGERISH = NARROW_INT_TYPES | {
    "count", "index", "node", "long", "long long", "unsigned long",
    "unsigned long long", "size_t", "std::size_t", "int64_t", "uint64_t",
    "std::int64_t", "std::uint64_t", "ptrdiff_t", "std::ptrdiff_t",
}


class Allows:
    """grapr:analyze-allow bookkeeping for one file (mirrors the lint's
    lint-allow semantics: same line or the contiguous // block above)."""

    def __init__(self, lines: list[str]):
        self.lines = lines
        self.sites: dict[int, str] = {}      # 0-based line -> check id
        self.used: set[int] = set()
        for i, raw in enumerate(lines):
            m = ANALYZE_ALLOW.search(raw)
            if m:
                self.sites[i] = m.group("check")

    def allowed(self, line1: int, check: str) -> bool:
        line0 = line1 - 1
        candidates = [line0]
        j = line0 - 1
        while j >= 0 and self.lines[j].lstrip().startswith("//"):
            candidates.append(j)
            j -= 1
        for j in candidates:
            if self.sites.get(j) == check:
                self.used.add(j)
                return True
        return False


def _report(findings: list[Finding], allows: Allows, path: Path,
            line: int, check: str, message: str) -> None:
    if not allows.allowed(line, check):
        findings.append(Finding(path, line, check, message))


# --------------------------------------------------------------------------
# index-width
# --------------------------------------------------------------------------

_STATIC_CAST = re.compile(r"static_cast\s*<[^<>]*(?:<[^<>]*>)?[^<>]*>\s*\(")


def _sanitize(value):
    """Strip the sanctioned idioms out of a value before classifying it:
    static_cast<...>(...) expressions (the explicit escape hatch) and
    subscript indices (an index selects an element; it does not flow into
    the element's value)."""
    if value is None or not value.text:
        return value
    text = value.text
    while True:
        m = _STATIC_CAST.search(text)
        if not m:
            break
        depth, j = 0, m.end() - 1
        for j in range(m.end() - 1, len(text)):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
        text = text[:m.start()] + " " + text[j + 1:]
    text = re.sub(r"\[[^\[\]]*\]", "[]", text)
    # Blank call-argument lists: `f(n)` does not flow `n` into the
    # enclosing value — the call's *return type* does. The call names
    # themselves survive as `f()` / `g.degree()`, so re-deriving the
    # ExprInfo from the sanitized text keeps the API-table call
    # classification while unknown calls stay unclassified instead of
    # borrowing their arguments' width.
    for _ in range(8):
        blanked = re.sub(r"([A-Za-z_]\w*\s*\()[^()]+\)", r"\1)", text)
        if blanked == text:
            break
        text = blanked
    return expr_info(text)


def _classify_value(value, types: dict[str, str]) -> set[str]:
    """Domains a value draws from: subset of {wide, node, edgeweight}."""
    domains: set[str] = set()
    if value is None:
        return domains
    for ident in value.idents:
        t = types.get(ident, "")
        if is_wide(t):
            domains.add("wide")
        elif is_node(t):
            domains.add("node")
        elif is_edgeweight(t):
            domains.add("edgeweight")
    for _, meth in value.calls:
        if meth in WIDE_RETURN_METHODS:
            domains.add("wide")
        elif meth in NODE_RETURN_METHODS:
            domains.add("node")
        elif meth in EDGEWEIGHT_RETURN_METHODS:
            domains.add("edgeweight")
    return domains


def check_index_width(model: FileModel, allows: Allows) -> list[Finding]:
    findings: list[Finding] = []
    for fn in model.functions:
        types: dict[str, str] = {
            name: normalize_type(ptype)
            for ptype, name in fn.params if name}

        def target_findings(stmt, tname: str, what: str) -> None:
            t = normalize_type(tname)
            domains = _classify_value(_sanitize(stmt.value), types)
            # A `node` induction variable over a count bound is the
            # codebase's core idiom and safe by construction (node ids are
            # capped at 2^32 by the Graph invariants); only sub-count
            # builtin types are unsafe as induction variables.
            node_target_unsafe = is_node(t) and stmt.kind != "loop"
            if "wide" in domains and (
                    t in NARROW_INT_TYPES or node_target_unsafe):
                _report(findings, allows, model.path, stmt.line,
                        "index-width",
                        f"{what} '{stmt.name or stmt.value.text.strip()[:40]}'"
                        f" has 32-bit-or-smaller type '{tname.strip()}' but "
                        "is computed from a 64-bit count/index value; "
                        "truncates beyond 2^32 edges (use count/index, or "
                        "static_cast after a range check)")
            elif "node" in domains and t in NODE_UNSAFE_TYPES:
                _report(findings, allows, model.path, stmt.line,
                        "index-width",
                        f"{what} '{stmt.name or '<expr>'}' narrows a node id "
                        f"into '{tname.strip()}': node is uint32 with the "
                        "`none` sentinel at 2^32-1, which this type cannot "
                        "represent")
            elif "edgeweight" in domains and t in _INTEGERISH:
                _report(findings, allows, model.path, stmt.line,
                        "index-width",
                        f"{what} '{stmt.name or '<expr>'}' converts an "
                        f"edgeweight (double) into integer type "
                        f"'{tname.strip()}': silently truncates fractional "
                        "weights")
            elif "edgeweight" in domains and t in FLOAT_NARROW_TYPES:
                _report(findings, allows, model.path, stmt.line,
                        "index-width",
                        f"{what} '{stmt.name or '<expr>'}' narrows an "
                        "edgeweight (double) to float: loses precision on "
                        "accumulated weights")

        for stmt in fn.statements:
            if stmt.kind in ("decl", "loop"):
                if stmt.name:
                    types.setdefault(stmt.name, normalize_type(
                        stmt.declared_type))
                what = ("loop induction variable" if stmt.kind == "loop"
                        else "declaration")
                target_findings(stmt, stmt.declared_type, what)
            elif stmt.kind == "assign":
                tname = types.get(stmt.name, "")
                if tname:
                    what = ("accumulator" if stmt.op in
                            ("+=", "-=", "*=", "/=") else "assignment")
                    target_findings(stmt, tname, what)
            elif stmt.kind == "cast":
                style = "C-style" if stmt.style == "c" else "functional"
                # Reuse the same domain rules; message names the cast.
                t = normalize_type(stmt.declared_type)
                domains = _classify_value(_sanitize(stmt.value), types)
                if ("wide" in domains and t in NARROW_INT_TYPES) or \
                        ("node" in domains and t in NODE_UNSAFE_TYPES) or \
                        ("edgeweight" in domains and
                         t in (NARROW_INT_TYPES | FLOAT_NARROW_TYPES)):
                    _report(findings, allows, model.path, stmt.line,
                            "index-width",
                            f"{style} cast to '{stmt.declared_type}' narrows "
                            "a count/index/node/edgeweight value; if the "
                            "narrowing is intended make it explicit and "
                            "auditable with static_cast<...>")
    return findings


# --------------------------------------------------------------------------
# csr-staleness
# --------------------------------------------------------------------------

def check_csr_staleness(model: FileModel, summary: Summary,
                        allows: Allows) -> list[Finding]:
    findings: list[Finding] = []
    for fn in model.functions:
        # view name -> (source idents, freeze line)
        views: dict[str, tuple[set[str], int]] = {}
        # graph/receiver name -> line of latest structural mutation
        mutated: dict[str, int] = {}
        graph_like: set[str] = {
            name for ptype, name in fn.params
            if normalize_type(ptype) in
            {normalize_type(g) for g in GRAPH_TYPES}}

        def note_use(stmt, names: set[str]) -> None:
            for vname in names & set(views):
                sources, frozen_at = views[vname]
                for src in sources:
                    mline = mutated.get(src, 0)
                    if mline > frozen_at and stmt.line >= mline:
                        _report(
                            findings, allows, model.path, stmt.line,
                            "csr-staleness",
                            f"frozen view '{vname}' (frozen from '{src}' at "
                            f"line {frozen_at}) is read here, but '{src}' "
                            f"was mutated at line {mline} after the freeze; "
                            "the view is a stale snapshot — re-freeze after "
                            "the last mutation or finish reads first")
                        break

        for stmt in fn.statements:
            if stmt.kind == "decl":
                if normalize_type(stmt.declared_type) in {
                        normalize_type(c) for c in CSR_TYPES}:
                    sources = set()
                    if stmt.value is not None:
                        # Direct freeze of a graph, or alias of a view.
                        for ident in stmt.value.idents:
                            if ident in views:
                                sources |= views[ident][0]
                            else:
                                sources.add(ident)
                    views[stmt.name] = (sources, stmt.line)
                    continue
                if normalize_type(stmt.declared_type) in {
                        normalize_type(g) for g in GRAPH_TYPES}:
                    graph_like.add(stmt.name)
                    mutated.pop(stmt.name, None)
                if stmt.value is not None:
                    note_use(stmt, stmt.value.idents)
            elif stmt.kind == "call":
                if stmt.value is not None:
                    note_use(stmt, stmt.value.idents | {stmt.recv})
                if stmt.recv and stmt.method in GRAPH_MUTATORS and \
                        stmt.recv not in views:
                    mutated[stmt.recv] = max(
                        mutated.get(stmt.recv, 0), stmt.line)
                elif not stmt.recv:
                    for pos in summary.mutating_positions(stmt.method):
                        if pos < len(stmt.args) and stmt.args[pos]:
                            mutated[stmt.args[pos]] = max(
                                mutated.get(stmt.args[pos], 0), stmt.line)
            elif stmt.kind == "assign":
                if stmt.name in graph_like:
                    mutated[stmt.name] = max(
                        mutated.get(stmt.name, 0), stmt.line)
                if stmt.value is not None:
                    note_use(stmt, stmt.value.idents)
            elif stmt.value is not None:
                note_use(stmt, stmt.value.idents)
    return findings


# --------------------------------------------------------------------------
# annotation-liveness
# --------------------------------------------------------------------------

PUBLISH_CALL = r"\.\s*(?:set|moveToSubset|addToSubset|removeFromSubset|add)\s*\("
SUBSCRIPT_WRITE = (r"\[[^\[\]]*\]\s*"
                   r"(?:=(?!=)|\+=|-=|\*=|/=|\|=|&=|\^=|\+\+|--)")


def check_annotation_liveness(model: FileModel, blanked: list[str],
                              allows: Allows,
                              lint_module) -> list[Finding]:
    findings: list[Finding] = []
    lines = model.lines

    def in_function(line1: int) -> bool:
        return any(fn.start_line <= line1 <= fn.end_line
                   for fn in model.functions)

    for i, raw in enumerate(lines):
        m = ANNOTATION.search(raw)
        if not m:
            continue
        var = m.group("var")
        line1 = i + 1
        window = range(i, min(len(blanked), i + 9))
        site = None
        for j in window:
            code = blanked[j]
            if re.search(rf"\b{re.escape(var)}\s*{PUBLISH_CALL}", code):
                site = ("publish-call", j)
                break
            if re.search(rf"\b{re.escape(var)}\s*{SUBSCRIPT_WRITE}", code):
                site = ("shared-write", j)
                break
            if re.search(rf"\b{re.escape(var)}\s*\[", code) and any(
                    "#pragma omp atomic" in blanked[k]
                    for k in range(i, j + 1)):
                site = ("atomic-snapshot", j)
                break
            if "GRAPR_RACE_" in code and \
                    re.search(rf"\b{re.escape(var)}\b", code):
                site = ("shadow-write", j)
                break
        if site is None:
            _report(findings, allows, model.path, line1,
                    "annotation-liveness",
                    f"grapr:benign-race({var}) does not anchor a racy site: "
                    "no publish call, shared subscript write, atomic "
                    f"snapshot, or shadow write on '{var}' within the next "
                    "8 lines — the annotation is stale (delete it or move "
                    "it to the site it excuses)")
            continue
        if not in_function(line1):
            _report(findings, allows, model.path, line1,
                    "annotation-liveness",
                    f"grapr:benign-race({var}) sits outside any function "
                    "body; annotations must mark a concrete site")

    # Escalate the lint's unused-suppression *warnings* to analyzer errors:
    # a lint-allow that suppresses nothing is a stale contract exception.
    if lint_module is not None:
        linter = lint_module.FileLint(model.path,
                                      [ln.rstrip("\n") for ln in lines])
        linter.lint()
        for f in linter.findings:
            if f.warning and "unused grapr:lint-allow" in f.message:
                _report(findings, allows, model.path, f.line,
                        "annotation-liveness",
                        "stale suppression: this grapr:lint-allow no longer "
                        "matches any lint finding — delete it (regenerate "
                        "with tools/grapr_lint if the rule moved)")
    return findings


def check_unused_allows(models_allows: list[tuple[FileModel, Allows]]
                        ) -> list[Finding]:
    findings: list[Finding] = []
    for model, allows in models_allows:
        for line0, check in sorted(allows.sites.items()):
            if line0 in allows.used:
                continue
            if check not in CHECK_IDS:
                findings.append(Finding(
                    model.path, line0 + 1, "annotation-liveness",
                    f"grapr:analyze-allow names unknown check '{check}' "
                    f"(known: {', '.join(sorted(CHECK_IDS))})"))
            else:
                findings.append(Finding(
                    model.path, line0 + 1, "annotation-liveness",
                    f"unused grapr:analyze-allow({check}) — the finding it "
                    "suppressed is gone; delete the annotation"))
    return findings


# --------------------------------------------------------------------------
# suppression-liveness (tools/sanitizers/tsan.supp)
# --------------------------------------------------------------------------

# Symbols TSan intercepts that are outside grapr's source: the OpenMP
# runtime and the global allocator (scanner false positives on libgomp's
# internal synchronization and on recycled allocations).
_SUPP_EXTERNAL = ("libgomp", "operator new", "operator delete", "pthread")


def check_suppression_liveness(supp_path: Path,
                               models: list[FileModel]) -> list[Finding]:
    findings: list[Finding] = []
    if not supp_path.exists():
        return findings

    functions = [fn for m in models for fn in m.functions]
    defined_names = {fn.name for fn in functions}
    defined_quals = {fn.qualname for fn in functions}
    classes = set().union(*(m.defined_classes for m in models)) \
        if models else set()

    omp_fn_names = {fn.name for fn in functions if fn.has_omp}
    omp_called: set[str] = set()
    omp_bodies: list[str] = []
    omp_quals: list[str] = []
    for m in models:
        for fn in m.functions:
            if not fn.has_omp:
                continue
            omp_quals.append(fn.qualname)
            omp_bodies.append(
                "\n".join(m.lines[fn.start_line - 1:fn.end_line]))
            for stmt in fn.statements:
                if stmt.kind == "call":
                    omp_called.add(stmt.method)
    omp_body_text = "\n".join(omp_bodies)

    for lineno, raw in enumerate(supp_path.read_text().splitlines(),
                                 start=1):
        entry = raw.strip()
        if not entry or entry.startswith("#"):
            continue
        if ":" not in entry:
            findings.append(Finding(supp_path, lineno, "suppression-liveness",
                                    f"malformed suppression '{entry}'"))
            continue
        kind, pattern = entry.split(":", 1)
        if any(ext in pattern for ext in _SUPP_EXTERNAL):
            continue
        if kind == "called_from_lib":
            findings.append(Finding(
                supp_path, lineno, "suppression-liveness",
                f"called_from_lib suppression for non-runtime '{pattern}' — "
                "only external runtimes (libgomp) belong here"))
            continue
        components = [c for c in pattern.strip("*").split("::") if c]
        if components and components[0] == "grapr":
            components = components[1:]
        missing = [c for c in components
                   if c not in defined_names and c not in classes]
        if missing:
            findings.append(Finding(
                supp_path, lineno, "suppression-liveness",
                f"suppression '{entry}' names '{missing[0]}', which is not "
                "a function or class defined anywhere in src/ — stale after "
                "a rename or removal"))
            continue
        class_pattern = pattern.rstrip("*").endswith("::")
        last = components[-1] if components else ""
        if class_pattern:
            alive = last in classes and (
                re.search(rf"\b{re.escape(last)}\b", omp_body_text)
                or any(last in q for q in omp_quals))
        else:
            alive = last in omp_fn_names or last in omp_called
        if not alive:
            findings.append(Finding(
                supp_path, lineno, "suppression-liveness",
                f"suppression '{entry}' no longer reaches a parallel "
                f"region: '{last}' neither contains an OpenMP pragma nor is "
                "called from a function that does — the race it excused is "
                "gone; delete the entry"))
    _ = defined_quals
    return findings
