#!/usr/bin/env python3
"""Dual-frontend agreement gate for the parallel-effects pass.

Lowers each input file with BOTH the bundled micro frontend and the
libclang frontend, runs the effects analysis on each lowering, and
asserts the results are IDENTICAL: same parallel regions (pragma line,
block extent), same per-write (line, var, classification) triples, and
same allocation sites. The OpenMP region map comes from the shared
textual extractor in model.py, so agreement holds by construction — this
gate pins that invariant so a frontend change cannot silently fork the
contract the two CI legs enforce (clang in the analyze job, micro in
ctest).

`--expect-pragmas N` additionally asserts the file contains exactly N
`#pragma omp` directives — a tripwire that the exemplar input still
exercises the full pragma surface (atomic, critical, single, combined
clauses) the frontends must agree on.

Exit codes: 0 agreement, 1 disagreement or wrong pragma count,
2 bad invocation, 77 libclang unavailable (ctest SKIP_RETURN_CODE).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import effects                                   # noqa: E402
import frontend_clang                            # noqa: E402
from frontend_micro import MicroFrontend, blank  # noqa: E402

SKIP = 77


def signature(model, blanked):
    """Frontend-independent digest of the effects analysis: one tuple per
    region with its location and the classified writes / alloc sites."""
    fe = effects.analyze_file(model, blanked)
    sig = []
    for ra in fe.regions:
        writes = tuple(sorted(
            (w.line, w.var, w.classification) for w in ra.writes))
        allocs = tuple(sorted(ra.alloc_sites))
        sig.append((ra.region.pragma_line, ra.region.start, ra.region.end,
                    writes, allocs))
    return sig


def describe(sig):
    out = []
    for pragma_line, start, end, writes, allocs in sig:
        out.append(f"  region @{pragma_line} [{start}..{end}]")
        for line, var, cls in writes:
            out.append(f"    write {line}: {var} -> {cls}")
        for line, what in allocs:
            out.append(f"    alloc {line}: {what}")
    return "\n".join(out) if out else "  (no parallel regions)"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--expect-pragmas", type=int, default=None,
                        metavar="N",
                        help="assert the file holds exactly N '#pragma "
                             "omp' directives")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    # The pragma-count tripwire needs no libclang — run it first so
    # micro-only environments still pin the exemplar's pragma surface.
    status = 0
    contents: dict[str, list[str]] = {}
    for name in args.files:
        path = Path(name)
        try:
            contents[name] = path.read_text().splitlines()
        except OSError as e:
            print(f"frontend-agreement: cannot read {path}: {e}",
                  file=sys.stderr)
            return 2
        if args.expect_pragmas is not None:
            pragmas = sum("#pragma omp" in ln for ln in contents[name])
            if pragmas != args.expect_pragmas:
                print(f"frontend-agreement: {path} holds {pragmas} "
                      f"'#pragma omp' directives, expected "
                      f"{args.expect_pragmas} — the exemplar no longer "
                      "covers the intended pragma surface; update the "
                      "expectation deliberately", file=sys.stderr)
                status = 1
    if status != 0:
        return status

    if not frontend_clang.available():
        print("frontend-agreement: libclang is not available; skipping "
              "(the micro-frontend leg still runs in ctest)")
        return SKIP

    cc = Path(args.compile_commands) if args.compile_commands else None
    src_root = Path(__file__).resolve().parent.parent.parent / "src"
    clang = frontend_clang.ClangFrontend(cc, src_root)
    micro = MicroFrontend()

    for name in args.files:
        path = Path(name)
        lines = contents[name]
        blanked = blank(lines)
        micro_sig = signature(micro.lower(path, lines), blanked)
        try:
            clang_sig = signature(clang.lower(path, lines), blanked)
        except Exception as e:
            print(f"frontend-agreement: clang frontend failed on {path}: "
                  f"{e}", file=sys.stderr)
            return 1

        if micro_sig != clang_sig:
            print(f"frontend-agreement: DISAGREEMENT on {path}\n"
                  f"micro frontend:\n{describe(micro_sig)}\n"
                  f"clang frontend:\n{describe(clang_sig)}",
                  file=sys.stderr)
            status = 1
        else:
            print(f"frontend-agreement: {path}: {len(micro_sig)} regions, "
                  "identical under both frontends")
    return status


if __name__ == "__main__":
    sys.exit(main())
