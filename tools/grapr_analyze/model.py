"""Shared IR and domain knowledge for grapr_analyze.

Both frontends (frontend_clang: libclang AST, frontend_micro: bundled
lexer/statement parser) lower translation units into this file's small IR;
the checks in checks.py consume only the IR, so rule behaviour is identical
whichever frontend produced it.

The domain tables below are the analyzer's ground truth about the grapr
API: which typedefs are 64-bit, which Graph/CsrGraph/Partition methods
return them, and which Graph methods mutate the adjacency structure (and
therefore invalidate frozen CsrGraph views).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Domain tables
# --------------------------------------------------------------------------

# 64-bit unsigned domain typedefs (support/common.hpp). Narrowing these to a
# 32-bit (or smaller) integer silently truncates on the paper's target
# scale (3.3B edges).
WIDE_TYPES = {"count", "index", "grapr::count", "grapr::index"}

# 32-bit node ids. Narrowing to a *signed* 32-bit (or anything smaller)
# breaks the `none` sentinel (2^32 - 1) and halves the usable id space.
NODE_TYPES = {"node", "grapr::node"}

# double edge weights; any integer target truncates, float loses precision.
EDGEWEIGHT_TYPES = {"edgeweight", "grapr::edgeweight"}

# Integer types with width < 64 bits on LP64 (the only platforms grapr
# targets). `long`/`std::size_t`/`std::int64_t`/... are 64-bit and fine.
NARROW_INT_TYPES = {
    "int", "signed", "signed int", "unsigned", "unsigned int",
    "short", "short int", "unsigned short", "unsigned short int",
    "char", "signed char", "unsigned char",
    "int32_t", "uint32_t", "int16_t", "uint16_t", "int8_t", "uint8_t",
    "std::int32_t", "std::uint32_t", "std::int16_t", "std::uint16_t",
    "std::int8_t", "std::uint8_t",
}
# Signed-or-smaller subset that cannot hold every `node` value.
NODE_UNSAFE_TYPES = NARROW_INT_TYPES - {
    "unsigned", "unsigned int", "uint32_t", "std::uint32_t",
}
FLOAT_NARROW_TYPES = {"float"}

# Method name -> domain return type, for receivers we cannot type exactly
# (the micro frontend) or exactly-typed calls (clang frontend checks the
# receiver too). These names are unique enough across the codebase that a
# name-only match does not produce false positives in practice.
WIDE_RETURN_METHODS = {
    # Graph / CsrGraph
    "numberOfNodes": "count",
    "numberOfEdges": "count",
    "numberOfSelfLoops": "count",
    "upperNodeIdBound": "count",
    "degree": "count",
    # Partition
    "numberOfElements": "count",
    "numberOfSubsets": "count",
    "compact": "count",
    # Parallel
    "prefixSum": "count",
}
EDGEWEIGHT_RETURN_METHODS = {
    "weightedDegree": "edgeweight",
    "volume": "edgeweight",
    "totalEdgeWeight": "edgeweight",
    "weight": "edgeweight",
    "getIthNeighborWeight": "edgeweight",
}
NODE_RETURN_METHODS = {
    "addNode": "node",
    "getIthNeighbor": "node",
    "upperBound": "node",
    "mergeSubsets": "node",
}

# Graph methods that mutate the adjacency structure or edge weights: a
# frozen CsrGraph view of the receiver is stale after any of these. The
# list mirrors the GRAPR_VIEW_BUMP call sites in graph.cpp — keep both in
# sync (the must-fail fixtures pin the overlap).
GRAPH_MUTATORS = {
    "addNode", "removeNode", "addEdge", "addEdgeChecked", "removeEdge",
    "increaseWeight", "sortNeighborLists",
}

# Free/namespace functions known to mutate a Graph& parameter (position ->
# mutates). Discovered summaries (Summary pass) extend this at run time.
KNOWN_MUTATING_FUNCTIONS = {
    "sortAdjacencies": {0},
}

GRAPH_TYPES = {"Graph", "grapr::Graph"}
CSR_TYPES = {"CsrGraph", "grapr::CsrGraph"}

# --------------------------------------------------------------------------
# Durability-protocol tables (protocol.py). The WAL/checkpoint contract is
# expressed over call *names* only — the clang frontend's receiver recovery
# is best-effort, and both frontends must agree on every fixture line.
# --------------------------------------------------------------------------

# Blocking I/O primitives by effect. Matched against the unqualified call
# name (both frontends strip :: qualification), so `::fsync`, `std::rename`
# and `std::filesystem::resize_file` all land here.
SYNC_PRIMITIVES = {"fsync", "fdatasync"}
WRITE_PRIMITIVES = {"fwrite"}
RENAME_PRIMITIVES = {"rename"}
TRUNCATE_PRIMITIVES = {"resize_file", "ftruncate"}
DIRSYNC_FUNCTIONS = {"syncDirectoryOf"}

# Durability-protocol verbs on the WAL / engine API.
WAL_APPEND_METHODS = {"append"}
PUBLISH_METHODS = {"publish"}
POISON_METHODS = {"poison"}

# RAII lock types (substring match against the declared type, so
# `std::lock_guard<std::mutex>` and `unique_lock<shared_mutex>` both hit).
LOCK_GUARD_TYPES = ("lock_guard", "unique_lock", "scoped_lock",
                    "shared_lock")

# Files whose functions are held to the durability ordering contract.
# Fixtures (and any future durable code outside these files) opt in with a
# `grapr:durability-scope` marker comment anywhere in the file.
DURABILITY_FILES = {
    "wal.cpp", "wal.hpp", "stream_engine.cpp", "stream_engine.hpp",
    "binary_csr.cpp", "binary_csr.hpp", "fault.cpp", "fault.hpp",
}
DURABILITY_MARKER = "grapr:durability-scope"


def normalize_type(spelling: str) -> str:
    """Collapse a type spelling to a comparable key: strip const/volatile,
    references, pointers, grapr:: qualification and redundant whitespace."""
    t = spelling.strip()
    for kw in ("const ", "volatile ", "constexpr ", "static ", "mutable "):
        t = t.replace(kw, "")
    t = t.replace("&", "").replace("*", "").strip()
    if t.startswith("grapr::"):
        t = t[len("grapr::"):]
    return " ".join(t.split())


def is_wide(tname: str) -> bool:
    return normalize_type(tname) in {normalize_type(x) for x in WIDE_TYPES}


def is_node(tname: str) -> bool:
    return normalize_type(tname) in {normalize_type(x) for x in NODE_TYPES}


def is_edgeweight(tname: str) -> bool:
    return normalize_type(tname) in {
        normalize_type(x) for x in EDGEWEIGHT_TYPES}


# --------------------------------------------------------------------------
# IR
# --------------------------------------------------------------------------

@dataclass
class ExprInfo:
    """What a (sub)expression references: identifiers and method calls.
    Enough to decide whether a value derives from a 64-bit domain type or
    from a tracked Graph object — the checks never need full expressions."""
    idents: set[str] = field(default_factory=set)
    # (receiver ident or "", method name) for every call in the expression.
    calls: list[tuple[str, str]] = field(default_factory=list)
    text: str = ""

    def mentions(self, name: str) -> bool:
        return name in self.idents


@dataclass
class Stmt:
    """One lowered statement-level fact. `kind` selects the payload:
      decl    name/declared_type/value      (value = initializer, may be None)
      assign  name/op/value                 (op: =, +=, -=, ...)
      call    recv/method/args/value        (args = top-level ident args)
      loop    name/declared_type/value      (induction var decl + bound expr)
      cast    declared_type/style/value     (style: c, functional)
      use     value                         (bare expression statement)
    """
    kind: str
    line: int
    name: str = ""
    declared_type: str = ""
    op: str = ""
    recv: str = ""
    method: str = ""
    args: list[str] = field(default_factory=list)
    style: str = ""
    value: ExprInfo | None = None


@dataclass
class FunctionModel:
    name: str                 # unqualified
    qualname: str             # Namespace::Class::name when known
    start_line: int
    end_line: int
    params: list[tuple[str, str]] = field(default_factory=list)  # (type, name)
    statements: list[Stmt] = field(default_factory=list)
    # Does the body contain an OpenMP pragma? Feeds the tsan.supp
    # suppression-liveness rule (a race: suppression must reach a parallel
    # region to still mean anything).
    has_omp: bool = False


@dataclass
class FileModel:
    path: Path
    functions: list[FunctionModel] = field(default_factory=list)
    # All function/method qualnames *defined* in this file — feeds the
    # tsan.supp suppression-liveness resolution.
    defined_symbols: set[str] = field(default_factory=set)
    # class/struct names defined in this file (for Class:: suppressions).
    defined_classes: set[str] = field(default_factory=set)
    # Raw source lines (1-based access via lines[i-1]) for annotation checks.
    lines: list[str] = field(default_factory=list)
    frontend: str = ""        # "clang" or "micro"


@dataclass
class Finding:
    path: Path
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.check}] {self.message}"


@dataclass
class Summary:
    """Cross-TU call summary: function name -> parameter positions through
    which a Graph can be mutated, and names that freeze/use CSR views."""
    mutates: dict[str, set[int]] = field(default_factory=dict)

    def mutating_positions(self, func: str) -> set[int]:
        positions = set(KNOWN_MUTATING_FUNCTIONS.get(func, set()))
        positions |= self.mutates.get(func, set())
        return positions


def build_summary(models: list[FileModel]) -> Summary:
    """Derive the call-summary pass from lowered models: a function mutates
    its Graph& parameter if its body calls a mutating method on it (directly
    or through an already-summarized callee). Iterates to a fixed point so
    chains like runRecursive -> coarsen -> builder are followed."""
    summary = Summary()
    changed = True
    while changed:
        changed = False
        for model in models:
            for fn in model.functions:
                graph_params = {
                    name: pos
                    for pos, (ptype, name) in enumerate(fn.params)
                    if normalize_type(ptype) in {
                        normalize_type(g) for g in GRAPH_TYPES}
                    and "const" not in ptype
                }
                if not graph_params:
                    continue
                mutated: set[int] = set()
                for stmt in fn.statements:
                    if stmt.kind == "call" and stmt.recv in graph_params \
                            and stmt.method in GRAPH_MUTATORS:
                        mutated.add(graph_params[stmt.recv])
                    if stmt.kind == "call":
                        callee = summary.mutating_positions(stmt.method)
                        for pos in callee:
                            if pos < len(stmt.args) \
                                    and stmt.args[pos] in graph_params:
                                mutated.add(graph_params[stmt.args[pos]])
                if mutated - summary.mutates.get(fn.name, set()):
                    summary.mutates.setdefault(fn.name, set()).update(mutated)
                    changed = True
    return summary
