"""Shared IR and domain knowledge for grapr_analyze.

Both frontends (frontend_clang: libclang AST, frontend_micro: bundled
lexer/statement parser) lower translation units into this file's small IR;
the checks in checks.py consume only the IR, so rule behaviour is identical
whichever frontend produced it.

The domain tables below are the analyzer's ground truth about the grapr
API: which typedefs are 64-bit, which Graph/CsrGraph/Partition methods
return them, and which Graph methods mutate the adjacency structure (and
therefore invalidate frozen CsrGraph views).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Domain tables
# --------------------------------------------------------------------------

# 64-bit unsigned domain typedefs (support/common.hpp). Narrowing these to a
# 32-bit (or smaller) integer silently truncates on the paper's target
# scale (3.3B edges).
WIDE_TYPES = {"count", "index", "grapr::count", "grapr::index"}

# 32-bit node ids. Narrowing to a *signed* 32-bit (or anything smaller)
# breaks the `none` sentinel (2^32 - 1) and halves the usable id space.
NODE_TYPES = {"node", "grapr::node"}

# double edge weights; any integer target truncates, float loses precision.
EDGEWEIGHT_TYPES = {"edgeweight", "grapr::edgeweight"}

# Integer types with width < 64 bits on LP64 (the only platforms grapr
# targets). `long`/`std::size_t`/`std::int64_t`/... are 64-bit and fine.
NARROW_INT_TYPES = {
    "int", "signed", "signed int", "unsigned", "unsigned int",
    "short", "short int", "unsigned short", "unsigned short int",
    "char", "signed char", "unsigned char",
    "int32_t", "uint32_t", "int16_t", "uint16_t", "int8_t", "uint8_t",
    "std::int32_t", "std::uint32_t", "std::int16_t", "std::uint16_t",
    "std::int8_t", "std::uint8_t",
}
# Signed-or-smaller subset that cannot hold every `node` value.
NODE_UNSAFE_TYPES = NARROW_INT_TYPES - {
    "unsigned", "unsigned int", "uint32_t", "std::uint32_t",
}
FLOAT_NARROW_TYPES = {"float"}

# Method name -> domain return type, for receivers we cannot type exactly
# (the micro frontend) or exactly-typed calls (clang frontend checks the
# receiver too). These names are unique enough across the codebase that a
# name-only match does not produce false positives in practice.
WIDE_RETURN_METHODS = {
    # Graph / CsrGraph
    "numberOfNodes": "count",
    "numberOfEdges": "count",
    "numberOfSelfLoops": "count",
    "upperNodeIdBound": "count",
    "degree": "count",
    # Partition
    "numberOfElements": "count",
    "numberOfSubsets": "count",
    "compact": "count",
    # Parallel
    "prefixSum": "count",
}
EDGEWEIGHT_RETURN_METHODS = {
    "weightedDegree": "edgeweight",
    "volume": "edgeweight",
    "totalEdgeWeight": "edgeweight",
    "weight": "edgeweight",
    "getIthNeighborWeight": "edgeweight",
}
NODE_RETURN_METHODS = {
    "addNode": "node",
    "getIthNeighbor": "node",
    "upperBound": "node",
    "mergeSubsets": "node",
}

# Graph methods that mutate the adjacency structure or edge weights: a
# frozen CsrGraph view of the receiver is stale after any of these. The
# list mirrors the GRAPR_VIEW_BUMP call sites in graph.cpp — keep both in
# sync (the must-fail fixtures pin the overlap).
GRAPH_MUTATORS = {
    "addNode", "removeNode", "addEdge", "addEdgeChecked", "removeEdge",
    "increaseWeight", "sortNeighborLists",
}

# Free/namespace functions known to mutate a Graph& parameter (position ->
# mutates). Discovered summaries (Summary pass) extend this at run time.
KNOWN_MUTATING_FUNCTIONS = {
    "sortAdjacencies": {0},
}

GRAPH_TYPES = {"Graph", "grapr::Graph"}
CSR_TYPES = {"CsrGraph", "grapr::CsrGraph"}

# --------------------------------------------------------------------------
# Durability-protocol tables (protocol.py). The WAL/checkpoint contract is
# expressed over call *names* only — the clang frontend's receiver recovery
# is best-effort, and both frontends must agree on every fixture line.
# --------------------------------------------------------------------------

# Blocking I/O primitives by effect. Matched against the unqualified call
# name (both frontends strip :: qualification), so `::fsync`, `std::rename`
# and `std::filesystem::resize_file` all land here.
SYNC_PRIMITIVES = {"fsync", "fdatasync"}
WRITE_PRIMITIVES = {"fwrite"}
RENAME_PRIMITIVES = {"rename"}
TRUNCATE_PRIMITIVES = {"resize_file", "ftruncate"}
DIRSYNC_FUNCTIONS = {"syncDirectoryOf"}

# Durability-protocol verbs on the WAL / engine API.
WAL_APPEND_METHODS = {"append"}
PUBLISH_METHODS = {"publish"}
POISON_METHODS = {"poison"}

# RAII lock types (substring match against the declared type, so
# `std::lock_guard<std::mutex>` and `unique_lock<shared_mutex>` both hit).
LOCK_GUARD_TYPES = ("lock_guard", "unique_lock", "scoped_lock",
                    "shared_lock")

# Files whose functions are held to the durability ordering contract.
# Fixtures (and any future durable code outside these files) opt in with a
# `grapr:durability-scope` marker comment anywhere in the file.
DURABILITY_FILES = {
    "wal.cpp", "wal.hpp", "stream_engine.cpp", "stream_engine.hpp",
    "binary_csr.cpp", "binary_csr.hpp", "fault.cpp", "fault.hpp",
}
DURABILITY_MARKER = "grapr:durability-scope"


def normalize_type(spelling: str) -> str:
    """Collapse a type spelling to a comparable key: strip const/volatile,
    references, pointers, grapr:: qualification and redundant whitespace."""
    t = spelling.strip()
    for kw in ("const ", "volatile ", "constexpr ", "static ", "mutable "):
        t = t.replace(kw, "")
    t = t.replace("&", "").replace("*", "").strip()
    if t.startswith("grapr::"):
        t = t[len("grapr::"):]
    return " ".join(t.split())


def is_wide(tname: str) -> bool:
    return normalize_type(tname) in {normalize_type(x) for x in WIDE_TYPES}


def is_node(tname: str) -> bool:
    return normalize_type(tname) in {normalize_type(x) for x in NODE_TYPES}


def is_edgeweight(tname: str) -> bool:
    return normalize_type(tname) in {
        normalize_type(x) for x in EDGEWEIGHT_TYPES}


# --------------------------------------------------------------------------
# IR
# --------------------------------------------------------------------------

@dataclass
class ExprInfo:
    """What a (sub)expression references: identifiers and method calls.
    Enough to decide whether a value derives from a 64-bit domain type or
    from a tracked Graph object — the checks never need full expressions."""
    idents: set[str] = field(default_factory=set)
    # (receiver ident or "", method name) for every call in the expression.
    calls: list[tuple[str, str]] = field(default_factory=list)
    text: str = ""

    def mentions(self, name: str) -> bool:
        return name in self.idents


@dataclass
class Stmt:
    """One lowered statement-level fact. `kind` selects the payload:
      decl    name/declared_type/value      (value = initializer, may be None)
      assign  name/op/value                 (op: =, +=, -=, ...)
      call    recv/method/args/value        (args = top-level ident args)
      loop    name/declared_type/value      (induction var decl + bound expr)
      cast    declared_type/style/value     (style: c, functional)
      use     value                         (bare expression statement)
    """
    kind: str
    line: int
    name: str = ""
    declared_type: str = ""
    op: str = ""
    recv: str = ""
    method: str = ""
    args: list[str] = field(default_factory=list)
    style: str = ""
    value: ExprInfo | None = None


@dataclass
class FunctionModel:
    name: str                 # unqualified
    qualname: str             # Namespace::Class::name when known
    start_line: int
    end_line: int
    params: list[tuple[str, str]] = field(default_factory=list)  # (type, name)
    statements: list[Stmt] = field(default_factory=list)
    # Does the body contain an OpenMP pragma? Feeds the tsan.supp
    # suppression-liveness rule (a race: suppression must reach a parallel
    # region to still mean anything).
    has_omp: bool = False


@dataclass
class OmpRegion:
    """One `#pragma omp parallel` region: pragma text (continuations and
    chained worksharing pragmas joined), structured-block extent, data-sharing
    clauses, and the worksharing induction variables (combined parallel-for
    header plus every inner `#pragma omp for` loop)."""
    pragma_line: int          # 1-based line of the first pragma token
    start: int                # first line of the structured block
    end: int                  # last line of the structured block (inclusive)
    text: str = ""            # full joined pragma text
    induction: set[str] = field(default_factory=set)
    shared: set[str] = field(default_factory=set)
    privates: set[str] = field(default_factory=set)   # private/firstprivate/lastprivate
    reductions: set[str] = field(default_factory=set)


@dataclass
class FileModel:
    path: Path
    functions: list[FunctionModel] = field(default_factory=list)
    # All function/method qualnames *defined* in this file — feeds the
    # tsan.supp suppression-liveness resolution.
    defined_symbols: set[str] = field(default_factory=set)
    # class/struct names defined in this file (for Class:: suppressions).
    defined_classes: set[str] = field(default_factory=set)
    # Raw source lines (1-based access via lines[i-1]) for annotation checks.
    lines: list[str] = field(default_factory=list)
    frontend: str = ""        # "clang" or "micro"
    # OpenMP facts, produced by extract_omp() over comment-blanked lines.
    # Both frontends call the same extractor, so region extents and
    # synchronization coverage are identical by construction.
    regions: list[OmpRegion] = field(default_factory=list)
    # line -> synchronization tags covering that line: "atomic" (update/
    # capture/write), "atomic-read", "critical", "locked" (omp_set_lock span
    # or RAII mutex guard scope).
    sync_lines: dict[int, set[str]] = field(default_factory=dict)


@dataclass
class Finding:
    path: Path
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.check}] {self.message}"


@dataclass
class Summary:
    """Cross-TU call summary: function name -> parameter positions through
    which a Graph can be mutated, and names that freeze/use CSR views."""
    mutates: dict[str, set[int]] = field(default_factory=dict)

    def mutating_positions(self, func: str) -> set[int]:
        positions = set(KNOWN_MUTATING_FUNCTIONS.get(func, set()))
        positions |= self.mutates.get(func, set())
        return positions


def build_summary(models: list[FileModel]) -> Summary:
    """Derive the call-summary pass from lowered models: a function mutates
    its Graph& parameter if its body calls a mutating method on it (directly
    or through an already-summarized callee). Iterates to a fixed point so
    chains like runRecursive -> coarsen -> builder are followed."""
    summary = Summary()
    changed = True
    while changed:
        changed = False
        for model in models:
            for fn in model.functions:
                graph_params = {
                    name: pos
                    for pos, (ptype, name) in enumerate(fn.params)
                    if normalize_type(ptype) in {
                        normalize_type(g) for g in GRAPH_TYPES}
                    and "const" not in ptype
                }
                if not graph_params:
                    continue
                mutated: set[int] = set()
                for stmt in fn.statements:
                    if stmt.kind == "call" and stmt.recv in graph_params \
                            and stmt.method in GRAPH_MUTATORS:
                        mutated.add(graph_params[stmt.recv])
                    if stmt.kind == "call":
                        callee = summary.mutating_positions(stmt.method)
                        for pos in callee:
                            if pos < len(stmt.args) \
                                    and stmt.args[pos] in graph_params:
                                mutated.add(graph_params[stmt.args[pos]])
                if mutated - summary.mutates.get(fn.name, set()):
                    summary.mutates.setdefault(fn.name, set()).update(mutated)
                    changed = True
    return summary


# --------------------------------------------------------------------------
# OpenMP fact extraction (shared by both frontends)
# --------------------------------------------------------------------------
#
# Region extents, data-sharing clauses and synchronization coverage are
# *textual* properties of the pragma lines and brace structure — libclang's
# OpenMP AST support varies by version and the micro frontend has no AST at
# all, so both frontends delegate to this one extractor over comment-blanked
# lines. That makes the parallel-effects pass agree across frontends by
# construction; the dual-frontend agreement test pins it.

import re as _re

_PRAGMA_OMP = _re.compile(r"^\s*#\s*pragma\s+omp\b(?P<rest>.*)$")
_CLAUSE = _re.compile(r"\b(shared|private|firstprivate|lastprivate)\s*\(")
_REDUCTION = _re.compile(r"\breduction\s*\(")
_FOR_HEADER = _re.compile(
    r"for\s*\(\s*(?:[A-Za-z_][\w:<>\s]*?[\s&*])?(?P<var>[A-Za-z_]\w*)\s*[=:]")
_LOCK_SET = _re.compile(r"\bomp_set_lock\s*\(")
_LOCK_UNSET = _re.compile(r"\bomp_unset_lock\s*\(")


def _logical_pragmas(lines: list[str]) -> list[tuple[int, int, str]]:
    """Join backslash continuations: (first_line0, last_line0, text) per
    logical `#pragma omp` line."""
    out = []
    i = 0
    while i < len(lines):
        if _PRAGMA_OMP.match(lines[i]):
            start = i
            text = lines[i].rstrip()
            while text.endswith("\\") and i + 1 < len(lines):
                text = text[:-1].rstrip() + " " + lines[i + 1].strip()
                i += 1
            out.append((start, i, " ".join(text.split())))
        i += 1
    return out


def _clause_vars(text: str) -> tuple[set[str], set[str], set[str]]:
    """(shared, privates, reductions) variable sets from a pragma text."""
    shared: set[str] = set()
    privates: set[str] = set()
    reductions: set[str] = set()

    def args_at(m: _re.Match) -> str:
        depth, j = 1, m.end()
        while j < len(text) and depth:
            depth += {"(": 1, ")": -1}.get(text[j], 0)
            j += 1
        return text[m.end():j - 1]

    for m in _CLAUSE.finditer(text):
        vars_ = {v.strip() for v in args_at(m).split(",") if v.strip()}
        (shared if m.group(1) == "shared" else privates).update(vars_)
    for m in _REDUCTION.finditer(text):
        body = args_at(m)
        # reduction(op : a, b) — vars after the last top-level colon.
        vars_part = body.rsplit(":", 1)[-1]
        reductions.update(v.strip() for v in vars_part.split(",") if v.strip())
    return shared, privates, reductions


def _block_extent(lines: list[str], i: int) -> tuple[int, int]:
    """Structured-block extent (first_line0, last_line0) starting the scan at
    line i: a brace block, a for/while/if statement (with its own block or
    single statement), or a single `;`-terminated statement. Skips further
    pragma lines (chained worksharing directives) first."""
    n = len(lines)
    while i < n and (_PRAGMA_OMP.match(lines[i]) or not lines[i].strip()):
        if _PRAGMA_OMP.match(lines[i]):
            while lines[i].rstrip().endswith("\\") and i + 1 < n:
                i += 1
        i += 1
    if i >= n:
        return i, i
    start = i
    # Find the first `{` before a bare `;` at depth 0: that brace opens the
    # structured block (covers `for (...) {`, `if (...) {`, bare `{`).
    depth = 0
    j = i
    opened_at = -1
    while j < n:
        for ch in lines[j]:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "{" and depth == 0:
                opened_at = j
                break
            elif ch == ";" and depth == 0:
                # Statement ends before any block opens. A for/while header
                # contains its `;`s inside parens, so depth-0 `;` is the end
                # of a single-statement body.
                return start, j
        if opened_at >= 0:
            break
        j += 1
    if opened_at < 0:
        return start, min(start, n - 1)
    # Match braces from opened_at to the closing line.
    depth = 0
    seen = False
    for k in range(opened_at, n):
        for ch in lines[k]:
            if ch == "{":
                depth += 1
                seen = True
            elif ch == "}":
                depth -= 1
        if seen and depth <= 0:
            return start, k
    return start, n - 1


def _guard_scope_end(lines: list[str], decl_line0: int) -> int:
    """Last line (0-based) of the brace scope enclosing decl_line0: scan
    forward until the running brace depth drops below its start value."""
    depth = 0
    for j in range(decl_line0, len(lines)):
        for ch in lines[j]:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth < 0:
                    return j
    return len(lines) - 1


def extract_omp(blanked: list[str]) -> tuple[list[OmpRegion], dict[int, set[str]]]:
    """Extract OmpRegion records and per-line synchronization coverage from
    comment-blanked source lines (1-based results)."""
    regions: list[OmpRegion] = []
    sync: dict[int, set[str]] = {}

    def cover(first0: int, last0: int, tag: str) -> None:
        for ln in range(first0 + 1, last0 + 2):
            sync.setdefault(ln, set()).add(tag)

    pragmas = _logical_pragmas(blanked)
    for first0, last0, text in pragmas:
        rest = _PRAGMA_OMP.match(text).group("rest")
        words = rest.split()
        if not words:
            continue
        if words[0] == "parallel":
            shared, privates, reductions = _clause_vars(text)
            bstart0, bend0 = _block_extent(blanked, last0 + 1)
            region = OmpRegion(
                pragma_line=first0 + 1, start=bstart0 + 1, end=bend0 + 1,
                text=text, shared=shared, privates=privates,
                reductions=reductions)
            # Combined parallel-for: induction var from the loop header.
            if "for" in words:
                header = " ".join(blanked[bstart0:min(bstart0 + 3, len(blanked))])
                m = _FOR_HEADER.search(header)
                if m:
                    region.induction.add(m.group("var"))
            # Inner worksharing loops inside the region extent.
            for f0, l0, t in pragmas:
                if not (bstart0 <= f0 <= bend0):
                    continue
                inner = _PRAGMA_OMP.match(t).group("rest").split()
                if inner and inner[0] == "for":
                    _, ipriv, ired = _clause_vars(t)
                    region.privates |= ipriv
                    region.reductions |= ired
                    istart0, _ = _block_extent(blanked, l0 + 1)
                    header = " ".join(
                        blanked[istart0:min(istart0 + 3, len(blanked))])
                    m = _FOR_HEADER.search(header)
                    if m:
                        region.induction.add(m.group("var"))
            regions.append(region)
        elif words[0] == "atomic":
            tag = "atomic-read" if "read" in words[1:2] else "atomic"
            # Covers the next statement through its `;`.
            j = last0 + 1
            while j < len(blanked) and ";" not in blanked[j]:
                j += 1
            cover(last0 + 1, min(j, len(blanked) - 1), tag)
        elif words[0] == "critical":
            cstart0, cend0 = _block_extent(blanked, last0 + 1)
            cover(cstart0, cend0, "critical")
        elif words[0] in ("single", "master", "masked"):
            # One thread executes the block; `single` is additionally
            # bracketed by implicit barriers (no nowait in this codebase).
            cstart0, cend0 = _block_extent(blanked, last0 + 1)
            cover(cstart0, cend0, "single")

    # omp_set_lock .. omp_unset_lock spans.
    i = 0
    while i < len(blanked):
        if _LOCK_SET.search(blanked[i]):
            j = i
            while j < len(blanked) and not _LOCK_UNSET.search(blanked[j]):
                j += 1
            cover(i, min(j, len(blanked) - 1), "locked")
            i = j
        i += 1

    # RAII mutex guards: declaration line through the end of its scope.
    guard_re = _re.compile(
        r"\b(?:std\s*::\s*)?(?:%s)\s*<" % "|".join(LOCK_GUARD_TYPES))
    for i, line in enumerate(blanked):
        if guard_re.search(line):
            cover(i, _guard_scope_end(blanked, i), "locked")

    return regions, sync
