"""Bundled fallback frontend: a C++ lexer + statement-level extractor.

This frontend exists so `grapr_analyze` runs everywhere ctest runs — the
canonical frontend is libclang (frontend_clang.py), but libclang is not
part of the base toolchain image, and the analyzer's fixture tests must
not silently skip. The micro frontend is NOT a C++ parser: it blanks
comments/strings, walks braces/parens to recover scopes and statements,
and lowers each statement with a handful of declarator/assignment/call
regexes into the same IR the clang frontend produces. That is precise
enough for the three checks (they reason about declared local types,
method calls on named receivers, and statement order), and the must-fail
fixtures pin the behaviour both frontends must agree on.

Known, accepted imprecision (documented here so nobody "fixes" the
checks around it): expressions attribute to the first line of their
statement; brace initializers parse as nested blocks; `a * b;` as an
expression statement reads as a declaration (the same ambiguity C++
itself has without symbol tables).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from model import (ExprInfo, FileModel, FunctionModel, NARROW_INT_TYPES,
                   FLOAT_NARROW_TYPES, Stmt, extract_omp)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "else", "do",
    "constexpr", "sizeof", "alignof", "decltype", "noexcept", "new",
    "delete", "throw", "case", "default", "goto", "try", "static_assert",
    "requires", "alignas",
}

CPP_KEYWORDS = CONTROL_KEYWORDS | {
    "const", "static", "inline", "auto", "void", "bool", "true", "false",
    "int", "unsigned", "signed", "long", "short", "char", "float", "double",
    "class", "struct", "enum", "union", "namespace", "using", "typedef",
    "template", "typename", "public", "private", "protected", "virtual",
    "override", "final", "friend", "operator", "this", "nullptr", "break",
    "continue", "mutable", "thread_local", "explicit", "export", "extern",
    "volatile", "and", "or", "not", "co_await", "co_return", "co_yield",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
}

_BUILTIN = r"(?:unsigned|signed|long|short|int|char|bool|float|double|auto)"
_NAMED = r"[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*(?:<[^<>;={}]*(?:<[^<>]*>[^<>;={}]*)*>)?"
_TYPE = (r"(?:(?:const|constexpr|static|inline|mutable|thread_local)\s+)*"
         rf"(?:{_BUILTIN}(?:\s+{_BUILTIN})*|{_NAMED})"
         r"(?:\s+const)?")

DECL_RE = re.compile(
    rf"^(?P<type>{_TYPE})\s*(?P<ref>[&*]*)\s*(?P<name>[A-Za-z_]\w*)\s*"
    r"(?P<init>=\s*[^=].*|\(.*\))?$", re.DOTALL)

ASSIGN_RE = re.compile(
    r"^(?P<lhs>[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*|\[[^\[\]]*\])*)\s*"
    r"(?P<op>=|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=)(?!=)\s*(?P<rhs>.*)$",
    re.DOTALL)

METHOD_CALL_RE = re.compile(
    r"(?P<recv>[A-Za-z_]\w*)\s*(?:\.|->)\s*(?P<meth>[A-Za-z_]\w*)\s*\(")
FREE_CALL_RE = re.compile(
    r"(?<![\w.:>])(?P<name>(?:::)?(?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*\(")

_NARROW_PAT = "|".join(
    sorted((NARROW_INT_TYPES | FLOAT_NARROW_TYPES), key=len, reverse=True))
C_CAST_RE = re.compile(
    rf"\(\s*(?P<type>{_NARROW_PAT})\s*\)\s*(?=[A-Za-z_(])")
FUNC_CAST_RE = re.compile(
    rf"(?<![\w.:>])(?P<type>{_NARROW_PAT})\s*\(")

FUNC_NAME_RE = re.compile(
    r"(?P<name>~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*"
    r"|operator\s*[^\s(]+)\s*\($")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?P<name>[A-Za-z_]\w*)")
NAMESPACE_RE = re.compile(r"^namespace(?:\s+(?P<name>[A-Za-z_]\w*))?\s*$")


def blank(lines: list[str]) -> list[str]:
    """Blank comments and string/char literal contents, preserving line
    structure, so the segmenter never trips over braces in text."""
    text = "\n".join(lines)
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state, i = "line", i + 2
                out.append("  ")
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state, i = "block", i + 2
                out.append("  ")
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or \
                    (state == "char" and c == "'"):
                state = "code"
                out.append(c)
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    blanked = "".join(out).split("\n")
    while len(blanked) < len(lines):
        blanked.append("")
    return blanked


def expr_info(text: str) -> ExprInfo:
    info = ExprInfo(text=text)
    info.idents = {w for w in re.findall(r"[A-Za-z_]\w*", text)
                   if w not in CPP_KEYWORDS}
    for m in METHOD_CALL_RE.finditer(text):
        info.calls.append((m.group("recv"), m.group("meth")))
    method_names = {meth for _, meth in info.calls}
    for m in FREE_CALL_RE.finditer(text):
        name = m.group("name").split("::")[-1]
        if name in CPP_KEYWORDS or name in method_names:
            continue
        info.calls.append(("", name))
    return info


def _split_top(text: str, sep: str) -> list[str]:
    """Split on `sep` at angle/paren/bracket depth zero."""
    parts, depth, last = [], 0, 0
    for i, c in enumerate(text):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth = max(0, depth - 1)
        elif c == sep and depth == 0:
            parts.append(text[last:i])
            last = i + 1
    parts.append(text[last:])
    return parts


def parse_params(text: str) -> list[tuple[str, str]]:
    params: list[tuple[str, str]] = []
    for raw in _split_top(text, ","):
        p = _split_top(raw, "=")[0].strip()  # drop default argument
        if not p or p == "void":
            continue
        idents = re.findall(r"[A-Za-z_]\w*", p)
        if not idents:
            continue
        name = idents[-1]
        cut = p.rfind(name)
        ptype = p[:cut].strip()
        if not ptype:               # unnamed param: only the type was given
            ptype, name = p, ""
        params.append((ptype, name))
    return params


def _balanced_paren_group(text: str, open_pos: int) -> str:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i]
    return text[open_pos + 1:]


def call_args(text: str, open_pos: int) -> list[str]:
    """Top-level arguments of the call whose '(' is at open_pos; only
    plain-identifier args are kept (that is all the summary pass needs)."""
    inner = _balanced_paren_group(text, open_pos)
    args = []
    for part in _split_top(inner, ","):
        part = part.strip()
        args.append(part if re.fullmatch(r"[A-Za-z_]\w*", part) else "")
    return args


@dataclass
class _Scope:
    kind: str           # namespace | class | function | block
    name: str = ""
    fn: FunctionModel | None = None


@dataclass
class MicroFrontend:
    name: str = "micro"

    def lower(self, path: Path, lines: list[str]) -> FileModel:
        model = FileModel(path=path, lines=lines, frontend=self.name)
        code = blank(lines)

        # Flatten the non-preprocessor lines into one buffer with a
        # char-offset -> line-number map; preprocessor lines (and their
        # backslash continuations) are opaque to the segmenter but still
        # counted for has_omp below.
        flat_chars: list[str] = []
        linemap: list[int] = []
        in_pp = False
        for lineno, line in enumerate(code, start=1):
            stripped = line.strip()
            if in_pp or stripped.startswith("#"):
                in_pp = stripped.endswith("\\")
                continue
            for c in line:
                flat_chars.append(c)
                linemap.append(lineno)
            flat_chars.append(" ")
            linemap.append(lineno)
        flat = "".join(flat_chars)

        scopes: list[_Scope] = []
        current_fn: FunctionModel | None = None
        paren_stack: list[bool] = []   # True = `for(` header parens
        seg_start = 0

        def current_chunk(end: int) -> tuple[str, int]:
            raw = flat[seg_start:end]
            text = re.sub(r"\s+", " ", raw).strip()
            offset = seg_start + (len(raw) - len(raw.lstrip()))
            line = linemap[min(offset, len(linemap) - 1)] if linemap else 1
            return text, line

        def lower_into_fn(end: int) -> tuple[str, int]:
            text, line = current_chunk(end)
            if text and current_fn is not None:
                self._lower_chunk(text, line, current_fn)
            return text, line

        i, n = 0, len(flat)
        while i < n:
            c = flat[i]
            if c == "(":
                paren_stack.append(
                    bool(re.search(r"\bfor\s*$", flat[seg_start:i])))
            elif c == ")":
                if paren_stack:
                    paren_stack.pop()
            elif c == ";" and not any(paren_stack):
                lower_into_fn(i)
                seg_start = i + 1
            elif c == "{":
                header, line = current_chunk(i)
                scope = self._classify_header(
                    header, line, scopes, current_fn, model)
                if scope.kind == "function":
                    current_fn = scope.fn
                    model.functions.append(scope.fn)
                elif current_fn is not None and header:
                    # Control header (`if (...)`, `for (...)`, lambda
                    # intro, ...) — lower it as a statement of the
                    # enclosing function before entering the block.
                    self._lower_chunk(
                        re.sub(r"\s+", " ", header).strip(),
                        line, current_fn)
                scopes.append(scope)
                seg_start = i + 1
            elif c == "}":
                lower_into_fn(i)
                if scopes:
                    closed = scopes.pop()
                    if closed.kind == "function" and closed.fn is not None:
                        closed.fn.end_line = linemap[i]
                        current_fn = next(
                            (s.fn for s in reversed(scopes)
                             if s.kind == "function"), None)
                seg_start = i + 1
            i += 1

        for fn in model.functions:
            body = lines[fn.start_line - 1:fn.end_line]
            fn.has_omp = any("#pragma" in ln and "omp" in ln for ln in body)
            model.defined_symbols.add(fn.qualname)
            model.defined_symbols.add(fn.name)
        # OpenMP facts come from the shared textual extractor: pragma lines
        # are invisible to the statement segmenter above (preprocessor skip),
        # so region extents, clauses and atomic/critical coverage would
        # otherwise be lost here and disagree with the clang frontend.
        model.regions, model.sync_lines = extract_omp(code)
        return model

    def _classify_header(self, header: str, line: int,
                         scopes: list[_Scope],
                         current_fn: FunctionModel | None,
                         model: FileModel) -> _Scope:
        header = re.sub(r"\[\[[^\]]*\]\]", " ", header)
        header = re.sub(r"\s+", " ", header).strip()
        m = NAMESPACE_RE.match(header)
        if m:
            if m.group("name"):
                # Namespaces join the defined-scope universe so that
                # suppression patterns like grapr::Parallel::prefixSum
                # resolve whether Parallel is a class or a namespace.
                model.defined_classes.add(m.group("name"))
            return _Scope("namespace", m.group("name") or "")
        m = CLASS_RE.search(header)
        if m and "(" not in header.split(m.group("name"))[0]:
            model.defined_classes.add(m.group("name"))
            return _Scope("class", m.group("name"))
        if current_fn is None and "(" in header and ")" in header:
            open_pos = header.find("(")
            m = FUNC_NAME_RE.search(header[:open_pos + 1])
            if m:
                name = re.sub(r"\s+", "", m.group("name"))
                last = name.split("::")[-1]
                if last not in CONTROL_KEYWORDS and \
                        not header.startswith(("if ", "for ", "while ",
                                               "switch ", "catch ")):
                    qual = [s.name for s in scopes
                            if s.kind in ("namespace", "class") and s.name]
                    if "::" in name:
                        qual += name.split("::")[:-1]
                    fn = FunctionModel(
                        name=last,
                        qualname="::".join(qual + [last]),
                        start_line=line, end_line=line,
                        params=parse_params(
                            _balanced_paren_group(header, open_pos)))
                    return _Scope("function", last, fn)
        return _Scope("block")

    # -- statement lowering -------------------------------------------------

    def _lower_chunk(self, text: str, line: int, fn: FunctionModel) -> None:
        while True:
            stripped = re.sub(r"^(?:else|do|try)\b\s*", "", text)
            if stripped == text:
                break
            text = stripped
        if not text or not re.search(r"[A-Za-z_]", text):
            return

        self._emit_calls(text, line, fn)
        self._emit_casts(text, line, fn)

        m = re.match(r"^(?P<kw>for|if|while|switch)\s*\(", text)
        if m:
            inner = _balanced_paren_group(text, m.end() - 1)
            rest = text[m.end() + len(inner) + 1:].strip()
            if m.group("kw") == "for":
                self._lower_for(inner, line, fn)
            else:
                fn.statements.append(Stmt("use", line,
                                          value=expr_info(inner)))
            if rest:
                # Braceless body (`for (...) stmt;`): lower the trailing
                # statement separately so it never bleeds into the bound.
                self._lower_chunk(rest, line, fn)
            return
        if text.startswith("return"):
            fn.statements.append(
                Stmt("use", line, value=expr_info(text[len("return"):])))
            return

        m = DECL_RE.match(text)
        if m and m.group("name") not in CPP_KEYWORDS and \
                m.group("type") not in CONTROL_KEYWORDS and \
                m.group("type") not in ("using", "namespace"):
            init = (m.group("init") or "").lstrip("= ").strip()
            if init.startswith("(") and init.endswith(")"):
                init = init[1:-1]
            fn.statements.append(Stmt(
                "decl", line, name=m.group("name"),
                declared_type=m.group("type"),
                value=expr_info(init) if init else None))
            return
        m = ASSIGN_RE.match(text)
        if m:
            base = re.match(r"[A-Za-z_]\w*", m.group("lhs")).group(0)
            fn.statements.append(Stmt(
                "assign", line, name=base, op=m.group("op"),
                value=expr_info(m.group("rhs"))))
            return
        fn.statements.append(Stmt("use", line, value=expr_info(text)))

    def _lower_for(self, inner: str, line: int, fn: FunctionModel) -> None:
        colon = _split_top(inner, ":")
        if len(colon) == 2 and "?" not in inner:
            decl = colon[0].strip()
            m = DECL_RE.match(decl) or re.match(
                rf"^(?P<type>{_TYPE})\s*(?P<ref>[&*]*)\s*"
                r"(?P<name>[A-Za-z_]\w*)$", decl)
            if m:
                fn.statements.append(Stmt(
                    "loop", line, name=m.group("name"),
                    declared_type=m.group("type"),
                    value=expr_info(colon[1])))
                return
            fn.statements.append(Stmt("use", line, value=expr_info(inner)))
            return
        parts = _split_top(inner, ";")
        init = parts[0].strip() if parts else ""
        rest = ";".join(parts[1:])
        m = DECL_RE.match(init)
        if m and m.group("name") not in CPP_KEYWORDS:
            bound = (m.group("init") or "").lstrip("= ") + " ; " + rest
            fn.statements.append(Stmt(
                "loop", line, name=m.group("name"),
                declared_type=m.group("type"), value=expr_info(bound)))
        else:
            fn.statements.append(Stmt("use", line, value=expr_info(inner)))

    def _emit_calls(self, text: str, line: int, fn: FunctionModel) -> None:
        seen_methods = set()
        for m in METHOD_CALL_RE.finditer(text):
            seen_methods.add(m.group("meth"))
            fn.statements.append(Stmt(
                "call", line, recv=m.group("recv"), method=m.group("meth"),
                args=call_args(text, m.end() - 1),
                value=expr_info(_balanced_paren_group(text, m.end() - 1))))
        for m in FREE_CALL_RE.finditer(text):
            name = m.group("name").split("::")[-1]
            if name in CPP_KEYWORDS or name in seen_methods:
                continue
            if name in NARROW_INT_TYPES or name in FLOAT_NARROW_TYPES:
                continue   # functional cast, handled by _emit_casts
            fn.statements.append(Stmt(
                "call", line, recv="", method=name,
                args=call_args(text, m.end() - 1),
                value=expr_info(_balanced_paren_group(text, m.end() - 1))))

    def _emit_casts(self, text: str, line: int, fn: FunctionModel) -> None:
        for m in C_CAST_RE.finditer(text):
            rest = text[m.end():]
            if rest.startswith("("):
                operand = _balanced_paren_group(rest, 0)
            else:
                om = re.match(
                    r"[A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*)*"
                    r"(?:\([^()]*\))?(?:\[[^\[\]]*\])?", rest)
                operand = om.group(0) if om else rest[:40]
            fn.statements.append(Stmt(
                "cast", line, declared_type=m.group("type"), style="c",
                value=expr_info(operand)))
        for m in FUNC_CAST_RE.finditer(text):
            fn.statements.append(Stmt(
                "cast", line, declared_type=m.group("type"),
                style="functional",
                value=expr_info(_balanced_paren_group(text, m.end() - 1))))
