"""Durability-protocol checks for grapr_analyze.

Four checks over the frontend-neutral IR (model.py), verifying the
WAL/publish/poison contract that PR 8's crash harness enforces only
dynamically:

  durability-order    on every path through a durable commit, the WAL
                      append must be fsync'd before any publish is
                      reachable, and checkpoint renames must follow
                      write -> fsync -> rename -> dirsync
  lock-discipline     consistent mutex acquisition order across the
                      writer/head mutexes (no cycles, no re-acquisition
                      through a callee) and no blocking I/O while the
                      reader-head mutex is held
  poison-path         between a WAL append and its publish, failure
                      edges must reach rollback (truncate) or poison
                      marking — a durable record with no handler leaves
                      the log ahead of memory silently
  fault-site-coverage every fsync/fwrite/rename/truncate call in
                      durability code carries a GRAPR_FAULT_POINT in the
                      same function, and the static site list matches
                      tests/fault_sites.txt (whose other consumer is the
                      crash harness's captureSites() trace — drift in
                      either direction fails)

Scope: durability ordering, poison-path and site coverage apply to the
files in model.DURABILITY_FILES, plus any file carrying a
`grapr:durability-scope` marker comment (how fixtures opt in).
lock-discipline is global.

The analysis is name-keyed and flow-insensitive within a statement: both
frontends agree on call names and line numbers, but not on receivers, so
the contract is expressed over method/function names only. Effects
propagate cross-TU through a fixed-point summary (same shape as
model.build_summary): a call to `appendToWal` carries every effect of
`WalWriter::append` at the call line. Known false-negative edges are
documented in DESIGN.md ("Static protocol contracts").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from model import (DIRSYNC_FUNCTIONS, DURABILITY_FILES, DURABILITY_MARKER,
                   FileModel, Finding, FunctionModel, LOCK_GUARD_TYPES,
                   POISON_METHODS, PUBLISH_METHODS, RENAME_PRIMITIVES,
                   Stmt, SYNC_PRIMITIVES, TRUNCATE_PRIMITIVES,
                   WAL_APPEND_METHODS, WRITE_PRIMITIVES)

from checks import Allows, _report

# --------------------------------------------------------------------------
# Effect model
# --------------------------------------------------------------------------

# Unqualified call name -> protocol effect at the call site.
_DIRECT_EFFECTS: dict[str, str] = {}
for _n in SYNC_PRIMITIVES:
    _DIRECT_EFFECTS[_n] = "sync"
for _n in WRITE_PRIMITIVES:
    _DIRECT_EFFECTS[_n] = "write"
for _n in RENAME_PRIMITIVES:
    _DIRECT_EFFECTS[_n] = "rename"
for _n in TRUNCATE_PRIMITIVES:
    _DIRECT_EFFECTS[_n] = "truncate"
for _n in DIRSYNC_FUNCTIONS:
    _DIRECT_EFFECTS[_n] = "dirsync"
for _n in WAL_APPEND_METHODS:
    _DIRECT_EFFECTS[_n] = "append"
for _n in PUBLISH_METHODS:
    _DIRECT_EFFECTS[_n] = "publish"
for _n in POISON_METHODS:
    _DIRECT_EFFECTS[_n] = "poison"

# Effects that block (hold no lock across these) and that count as raw
# I/O for fault-site coverage.
BLOCKING_EFFECTS = {"write", "sync", "rename", "dirsync", "truncate"}
PRIMITIVE_CALLS = (SYNC_PRIMITIVES | WRITE_PRIMITIVES | RENAME_PRIMITIVES
                   | TRUNCATE_PRIMITIVES)

FAULT_SITE = re.compile(
    r'GRAPR_FAULT_(?:POINT|INJECT)\s*\(\s*"(?P<site>[^"]+)"')

_POISON_IDENT = re.compile(r"(?i)poison")

# A lock-guard initializer ident counts as a mutex when it *looks* like
# one; bare type names and std tags are excluded (the clang frontend can
# surface the template argument `std::mutex` as an ident).
MUTEX_IDENT = re.compile(r"(?i)(?:mutex|mtx|lock)")
_NOT_MUTEXES = {
    "std", "defer_lock", "try_to_lock", "adopt_lock",
    "lock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex",
}
HEAD_MUTEX = re.compile(r"(?i)head")


def strip_comments(lines: list[str]) -> list[str]:
    """Remove // and /* */ comments, KEEPING string literal contents (the
    opposite trade-off from frontend_micro.blank): fault-site names live
    inside string literals, and wal.hpp's doc comments quote example
    GRAPR_FAULT_POINT lines that must not register as sites."""
    out: list[str] = []
    in_block = False
    for raw in lines:
        buf: list[str] = []
        i = 0
        in_str = in_chr = False
        while i < len(raw):
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < len(raw) else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str or in_chr:
                buf.append(c)
                if c == "\\" and nxt:
                    buf.append(nxt)
                    i += 2
                    continue
                if in_str and c == '"':
                    in_str = False
                elif in_chr and c == "'":
                    in_chr = False
                i += 1
                continue
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c == '"':
                in_str = True
            elif c == "'":
                # Digit separators (1'000'000) are not char literals.
                prev = raw[i - 1] if i > 0 else ""
                if not (prev.isdigit() and nxt.isdigit()):
                    in_chr = True
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def _call_names(stmt: Stmt) -> list[str]:
    """Every call name a statement mentions: the lowered call itself plus
    calls inside its value expression (frontends differ on which of the
    two carries a nested call; the driver dedups per line)."""
    names: list[str] = []
    if stmt.kind == "call" and stmt.method:
        names.append(stmt.method)
    if stmt.value is not None:
        for _recv, meth in stmt.value.calls:
            if meth:
                names.append(meth)
    return names


def _lock_decl_mutexes(stmt: Stmt) -> set[str]:
    """Mutex names acquired by an RAII lock declaration."""
    if stmt.kind != "decl":
        return set()
    if not any(t in stmt.declared_type for t in LOCK_GUARD_TYPES):
        return set()
    if stmt.value is None:
        return set()
    return {i for i in stmt.value.idents
            if MUTEX_IDENT.search(i) and i not in _NOT_MUTEXES}


@dataclass
class ProtocolSummary:
    """Cross-TU fixed point: function name -> protocol effects its body
    can reach, and mutexes it (or a callee) acquires."""
    effects: dict[str, set[str]] = field(default_factory=dict)
    locks: dict[str, set[str]] = field(default_factory=dict)


def build_protocol_summary(models: list[FileModel]) -> ProtocolSummary:
    psum = ProtocolSummary()
    changed = True
    while changed:
        changed = False
        for model in models:
            for fn in model.functions:
                eff: set[str] = set()
                lks: set[str] = set()
                for stmt in fn.statements:
                    for name in _call_names(stmt):
                        direct = _DIRECT_EFFECTS.get(name)
                        if direct:
                            eff.add(direct)
                        eff |= psum.effects.get(name, set())
                        lks |= psum.locks.get(name, set())
                    if stmt.kind == "assign" \
                            and _POISON_IDENT.search(stmt.name or ""):
                        eff.add("poison")
                    lks |= _lock_decl_mutexes(stmt)
                if eff - psum.effects.get(fn.name, set()):
                    psum.effects.setdefault(fn.name, set()).update(eff)
                    changed = True
                if lks - psum.locks.get(fn.name, set()):
                    psum.locks.setdefault(fn.name, set()).update(lks)
                    changed = True
    return psum


def _stmt_effects(stmt: Stmt, psum: ProtocolSummary) -> set[str]:
    eff: set[str] = set()
    for name in _call_names(stmt):
        direct = _DIRECT_EFFECTS.get(name)
        if direct:
            eff.add(direct)
        eff |= psum.effects.get(name, set())
    if stmt.kind == "assign" and _POISON_IDENT.search(stmt.name or ""):
        eff.add("poison")
    return eff


def _function_events(fn: FunctionModel,
                     psum: ProtocolSummary) -> list[tuple[int, str]]:
    """(line, effect) pairs, deduped. A call inherits every effect of its
    callee at the call line, so a whole committed transaction reached
    through one call collapses onto one line — which is exactly why the
    ordering checks compare first occurrences with <, never <=."""
    events: set[tuple[int, str]] = set()
    for stmt in fn.statements:
        for eff in _stmt_effects(stmt, psum):
            events.add((stmt.line, eff))
    return sorted(events)


def _in_scope(model: FileModel) -> bool:
    if model.path.name in DURABILITY_FILES:
        return True
    return any(DURABILITY_MARKER in line for line in model.lines)


def _effect_lines(events: list[tuple[int, str]], effect: str) -> list[int]:
    return [line for line, eff in events if eff == effect]


# --------------------------------------------------------------------------
# durability-order
# --------------------------------------------------------------------------

def check_durability_order(pairs: list[tuple[FileModel, Allows]],
                           psum: ProtocolSummary) -> list[Finding]:
    findings: list[Finding] = []
    for model, allows in pairs:
        if not _in_scope(model):
            continue
        for fn in model.functions:
            events = _function_events(fn, psum)
            appends = _effect_lines(events, "append")
            pubs = _effect_lines(events, "publish")
            writes = _effect_lines(events, "write")
            syncs = _effect_lines(events, "sync")
            renames = _effect_lines(events, "rename")
            dirsyncs = _effect_lines(events, "dirsync")
            where = fn.qualname or fn.name

            # o1: a publish must not be reachable before the WAL append.
            if pubs and appends and min(pubs) < min(appends):
                _report(findings, allows, model.path, min(pubs),
                        "durability-order",
                        f"publish at line {min(pubs)} is reachable before "
                        f"the WAL append at line {min(appends)} in {where} "
                        "(a crash after publish loses the acknowledged "
                        "batch)")

            # o2: data written/appended before a publish must have been
            # fsync'd on or after the last such write, at or before the
            # publish.
            if pubs:
                p = min(pubs)
                unsynced = [w for w in set(writes) | set(appends) if w < p]
                if unsynced and not any(max(unsynced) <= s <= p
                                        for s in syncs):
                    _report(findings, allows, model.path, p,
                            "durability-order",
                            f"publish at line {p} with no fsync after the "
                            f"WAL write at line {max(unsynced)} in {where} "
                            "(the record may still sit in the stdio "
                            "buffer when the generation becomes visible)")

            # o3: checkpoint protocol — every rename is preceded by an
            # fsync of the written temp file and followed by a directory
            # sync that makes the rename itself durable.
            if renames:
                r = min(renames)
                before = [w for w in writes if w <= r]
                if before and not any(max(before) <= s <= r for s in syncs):
                    _report(findings, allows, model.path, r,
                            "durability-order",
                            f"rename at line {r} with no fsync after the "
                            f"write at line {max(before)} in {where} (the "
                            "renamed file may be durable-in-name only)")
                if not any(d >= r for d in dirsyncs):
                    _report(findings, allows, model.path, r,
                            "durability-order",
                            f"rename at line {r} is not followed by a "
                            f"directory sync in {where} (the rename entry "
                            "itself is not durable until the directory is "
                            "fsync'd)")
    return findings


# --------------------------------------------------------------------------
# poison-path
# --------------------------------------------------------------------------

def check_poison_path(pairs: list[tuple[FileModel, Allows]],
                      psum: ProtocolSummary) -> list[Finding]:
    findings: list[Finding] = []
    for model, allows in pairs:
        if not _in_scope(model):
            continue
        for fn in model.functions:
            events = _function_events(fn, psum)
            appends = _effect_lines(events, "append")
            pubs = _effect_lines(events, "publish")
            if not appends or not pubs:
                continue
            a = min(appends)
            pubs_after = [p for p in pubs if p > a]
            if not pubs_after:
                # Append and publish collapse onto one call line: the
                # callee's own body is where the handler is checked.
                continue
            handlers = [line for line, eff in events
                        if eff in ("poison", "truncate") and line > a]
            if not handlers:
                where = fn.qualname or fn.name
                _report(findings, allows, model.path, min(pubs_after),
                        "poison-path",
                        f"failure edges between the WAL append (line {a}) "
                        f"and the publish (line {min(pubs_after)}) in "
                        f"{where} reach neither rollback (truncate) nor "
                        "poison marking — a crash here leaves the log "
                        "ahead of memory with the engine still accepting "
                        "commits")
    return findings


# --------------------------------------------------------------------------
# lock-discipline
# --------------------------------------------------------------------------

def check_lock_discipline(pairs: list[tuple[FileModel, Allows]],
                          psum: ProtocolSummary) -> list[Finding]:
    findings: list[Finding] = []
    # (held, acquired) -> first witness site, for the global cycle check.
    edges: dict[tuple[str, str], tuple[Path, int, Allows, str]] = {}
    for model, allows in pairs:
        for fn in model.functions:
            where = fn.qualname or fn.name
            held: list[tuple[int, str]] = []  # (line, mutex), this body
            for stmt in fn.statements:
                acquired: set[str] = set(_lock_decl_mutexes(stmt))
                for name in _call_names(stmt):
                    acquired |= psum.locks.get(name, set())
                for m in sorted(acquired):
                    for hline, hm in held:
                        if hm == m:
                            _report(findings, allows, model.path,
                                    stmt.line, "lock-discipline",
                                    f"mutex '{m}' already held (acquired "
                                    f"at line {hline}) is acquired again "
                                    f"in {where} — std::mutex is not "
                                    "reentrant")
                        else:
                            edges.setdefault(
                                (hm, m),
                                (model.path, stmt.line, allows, where))
                # Blocking I/O while directly holding a reader-head mutex.
                blocking = _stmt_effects(stmt, psum) & BLOCKING_EFFECTS
                if blocking:
                    for hline, hm in held:
                        if HEAD_MUTEX.search(hm):
                            _report(findings, allows, model.path,
                                    stmt.line, "lock-discipline",
                                    "blocking I/O ("
                                    + "/".join(sorted(blocking))
                                    + f") under the reader-head mutex "
                                    f"'{hm}' (acquired at line {hline}) "
                                    f"in {where} — pinned readers stall "
                                    "behind disk latency")
                held.extend((stmt.line, m)
                            for m in sorted(_lock_decl_mutexes(stmt)))

    adjacency: dict[str, set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)

    def reaches(src: str, dst: str) -> bool:
        seen: set[str] = set()
        stack = [src]
        while stack:
            x = stack.pop()
            if x == dst:
                return True
            if x in seen:
                continue
            seen.add(x)
            stack.extend(adjacency.get(x, ()))
        return False

    for (a, b), (path, line, allows, where) in sorted(
            edges.items(), key=lambda kv: (str(kv[1][0]), kv[1][1])):
        if reaches(b, a):
            _report(findings, allows, path, line, "lock-discipline",
                    f"lock-order cycle: '{b}' is acquired while holding "
                    f"'{a}' in {where}, but the opposite order also "
                    "occurs — two threads can deadlock")
    return findings


# --------------------------------------------------------------------------
# fault-site-coverage
# --------------------------------------------------------------------------

def check_fault_site_coverage(pairs: list[tuple[FileModel, Allows]],
                              psum: ProtocolSummary,
                              manifest: Path | None,
                              fixture_mode: bool) -> list[Finding]:
    findings: list[Finding] = []
    all_sites: dict[str, tuple[Path, int]] = {}
    for model, allows in pairs:
        stripped = strip_comments(model.lines)
        sites: list[tuple[int, str]] = []
        for lineno, text in enumerate(stripped, start=1):
            for m in FAULT_SITE.finditer(text):
                sites.append((lineno, m.group("site")))
                all_sites.setdefault(m.group("site"), (model.path, lineno))
        if not _in_scope(model):
            continue
        for fn in model.functions:
            covered = any(fn.start_line <= line <= fn.end_line
                          for line, _site in sites)
            if covered:
                continue
            where = fn.qualname or fn.name
            for stmt in fn.statements:
                primitives = [n for n in _call_names(stmt)
                              if n in PRIMITIVE_CALLS]
                if primitives:
                    _report(findings, allows, model.path, stmt.line,
                            "fault-site-coverage",
                            f"'{primitives[0]}' in {where} has no "
                            "GRAPR_FAULT_POINT in the same function — the "
                            "crash harness cannot kill or fail this I/O")

    # Static/dynamic cross-check through the shared manifest. The crash
    # harness asserts fault::sites() == the same manifest, so drift in
    # either direction fails one of the two gates.
    if manifest is None or fixture_mode:
        return findings
    if not manifest.exists():
        findings.append(Finding(
            manifest, 1, "fault-site-coverage",
            f"fault-site manifest {manifest} is missing (pass "
            "--fault-manifest '' to disable the cross-check)"))
        return findings
    entries: dict[str, int] = {}
    for lineno, raw in enumerate(manifest.read_text().splitlines(),
                                 start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        entries.setdefault(text, lineno)
    for name, (path, line) in sorted(all_sites.items()):
        if name not in entries:
            findings.append(Finding(
                path, line, "fault-site-coverage",
                f"fault site '{name}' is not listed in {manifest.name} — "
                "add it so the crash harness's captureSites() trace is "
                "held to it"))
    for name, lineno in sorted(entries.items(), key=lambda kv: kv[1]):
        if name not in all_sites:
            findings.append(Finding(
                manifest, lineno, "fault-site-coverage",
                f"manifest entry '{name}' matches no GRAPR_FAULT_POINT in "
                "the analyzed sources — remove it or restore the site"))
    return findings


def run_protocol_checks(pairs: list[tuple[FileModel, Allows]],
                        fixture_mode: bool,
                        manifest: Path | None) -> list[Finding]:
    models = [model for model, _allows in pairs]
    psum = build_protocol_summary(models)
    findings: list[Finding] = []
    findings += check_durability_order(pairs, psum)
    findings += check_poison_path(pairs, psum)
    findings += check_lock_discipline(pairs, psum)
    findings += check_fault_site_coverage(pairs, psum, manifest,
                                          fixture_mode)
    return findings
