// grapr — command-line interface to the community detection framework.
//
//   grapr generate --type lfr --n 100000 --mu 0.3 --out g.grpr
//   grapr detect   --algo PLM --in g.grpr --out communities.txt
//   grapr stats    --in g.grpr
//   grapr compare  --a communities.txt --b truth.txt [--graph g.grpr]
//   grapr convert  --in g.metis --out g.tsv
//
// Graph formats are inferred from the extension: .metis/.graph (METIS),
// .grpr (grapr binary), anything else is read/written as a whitespace
// edge list. The tool is the scripting surface of the library — the
// paper's "interactive data analysis workflow" driven from a shell.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "grapr.hpp"
#include "generators/holme_kim.hpp"
#include "graph/distances.hpp"
#include "quality/conductance.hpp"
#include "quality/core_decomposition.hpp"
#include "community/local_expansion.hpp"
#include "community/overlapping_lpa.hpp"

using namespace grapr;

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
    if (error) std::fprintf(stderr, "error: %s\n\n", error);
    std::fprintf(stderr,
        "usage: grapr <command> [options]\n"
        "\n"
        "commands:\n"
        "  generate  --type lfr|rmat|ba|hk|er|pp|ws|grid --out FILE\n"
        "            [--n N] [--mu F] [--scale S] [--edge-factor K]\n"
        "            [--attachment K] [--p F] [--groups K] [--pin F]\n"
        "            [--pout F] [--seed N]\n"
        "  detect    --algo NAME --in FILE [--out FILE] [--seed N]\n"
        "            [--threads N] [--gamma F]\n"
        "            (NAME: PLP PLM PLMR 'EPP(4,PLP,PLM)' Louvain RG\n"
        "             CGGC CGGCi CLU_TBB CEL ...)\n"
        "  stats     --in FILE [--diameter] [--cores]\n"
        "  local     --in FILE --seed NODE [--max-size N]\n"
        "  overlap   --in FILE [--memberships V] [--out FILE]\n"
        "  compare   --a PARTFILE --b PARTFILE [--graph FILE]\n"
        "  convert   --in FILE --out FILE\n"
        "  stream    --durable DIR [--in FILE] [--batches N] [--ops K]\n"
        "            [--group-commit G] [--checkpoint-interval C]\n"
        "            [--seed N] [--out FILE]\n"
        "            (with --in: seed a fresh durable engine from FILE;\n"
        "             without: recover the engine from DIR and continue.\n"
        "             Applies N synthetic churn batches through the WAL;\n"
        "             kill it anytime — rerun without --in to recover.)\n"
        "\n"
        "loading options (any command that reads a graph):\n"
        "  --permissive      skip malformed lines with a warning instead of\n"
        "                    aborting with a parse error\n"
        "  --io-threads N    parser threads for text formats (default: all)\n"
        "  --weighted        edge-list files carry a third weight column\n"
        "  --one-indexed     edge-list node ids start at 1, not 0\n");
    std::exit(2);
}

class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) usage("expected --option");
            key = key.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "1"; // boolean flag
            }
        }
    }

    bool has(const std::string& key) const { return values_.count(key) > 0; }

    std::string str(const std::string& key,
                    const std::string& fallback = "") const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::string required(const std::string& key) const {
        if (!has(key)) usage(("missing --" + key).c_str());
        return values_.at(key);
    }

    double real(const std::string& key, double fallback) const {
        return has(key) ? std::strtod(values_.at(key).c_str(), nullptr)
                        : fallback;
    }

    count integer(const std::string& key, count fallback) const {
        return has(key)
                   ? std::strtoull(values_.at(key).c_str(), nullptr, 10)
                   : fallback;
    }

private:
    std::map<std::string, std::string> values_;
};

bool endsWith(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Graph loadGraph(const std::string& path, const Args& args) {
    io::ParseOptions options;
    options.strict = !args.has("permissive");
    options.threads = static_cast<int>(args.integer("io-threads", 0));
    options.weighted = args.has("weighted");
    if (args.has("one-indexed")) options.indexBase = 1;
    if (endsWith(path, ".metis") || endsWith(path, ".graph")) {
        return io::readMetis(path, options);
    }
    if (endsWith(path, ".grpr")) return io::readBinary(path);
    return io::readEdgeListCsr(path, options).toGraph();
}

void saveGraph(const Graph& g, const std::string& path) {
    if (endsWith(path, ".metis") || endsWith(path, ".graph")) {
        io::writeMetis(g, path);
    } else if (endsWith(path, ".grpr")) {
        io::writeBinary(g, path);
    } else if (endsWith(path, ".dot")) {
        io::writeDot(g, path);
    } else {
        io::writeEdgeList(g, path, g.isWeighted());
    }
}

int commandGenerate(const Args& args) {
    Random::setSeed(args.integer("seed", 42));
    const std::string type = args.required("type");
    const std::string out = args.required("out");
    const count n = args.integer("n", 100000);

    Graph g = [&]() -> Graph {
        if (type == "lfr") {
            LfrParameters params;
            params.n = n;
            params.mu = args.real("mu", 0.3);
            params.minDegree = args.integer("min-degree", 8);
            params.maxDegree = args.integer("max-degree", 50);
            params.minCommunitySize = args.integer("min-community", 20);
            params.maxCommunitySize = args.integer("max-community", 100);
            LfrGenerator generator(params);
            Graph graph = generator.generate();
            if (args.has("truth")) {
                io::writePartition(generator.groundTruth(),
                                   args.str("truth"));
                std::printf("ground truth -> %s\n",
                            args.str("truth").c_str());
            }
            return graph;
        }
        if (type == "rmat") {
            return RmatGenerator(args.integer("scale", 16),
                                 args.integer("edge-factor", 16))
                .generate();
        }
        if (type == "ba") {
            return BarabasiAlbertGenerator(n, args.integer("attachment", 4))
                .generate();
        }
        if (type == "hk") {
            return HolmeKimGenerator(n, args.integer("attachment", 4),
                                     args.real("triad", 0.5))
                .generate();
        }
        if (type == "er") {
            return ErdosRenyiGenerator(n, args.real("p", 0.0001)).generate();
        }
        if (type == "pp") {
            return PlantedPartitionGenerator(n, args.integer("groups", 100),
                                             args.real("pin", 0.05),
                                             args.real("pout", 0.0005))
                .generate();
        }
        if (type == "ws") {
            return WattsStrogatzGenerator(n, args.integer("k", 8),
                                          args.real("beta", 0.1))
                .generate();
        }
        if (type == "grid") {
            const count rows = args.integer("rows", 100);
            return GridGenerator(rows, n / rows).generate();
        }
        usage("unknown --type");
    }();

    saveGraph(g, out);
    std::printf("generated %s: n=%llu m=%llu -> %s\n", type.c_str(),
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()),
                out.c_str());
    return 0;
}

int commandDetect(const Args& args) {
    Random::setSeed(args.integer("seed", 42));
    if (args.has("threads")) {
        Parallel::setThreads(static_cast<int>(args.integer("threads", 1)));
    }
    const std::string algorithmName = args.str("algo", "PLM");
    Graph g = loadGraph(args.required("in"), args);
    std::printf("graph: n=%llu m=%llu\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()));

    auto detector = [&]() -> std::unique_ptr<CommunityDetector> {
        if (args.has("gamma")) {
            const double gamma = args.real("gamma", 1.0);
            if (algorithmName == "PLM") {
                return std::make_unique<Plm>(PlmConfig{.gamma = gamma});
            }
            if (algorithmName == "PLMR") {
                return std::make_unique<Plmr>(gamma);
            }
        }
        return makeDetector(algorithmName);
    }();

    Timer timer;
    Partition zeta = detector->run(g);
    const double seconds = timer.elapsed();
    const double q = Modularity().getQuality(zeta, g);
    const CommunitySizeStats stats = communitySizeStats(zeta);
    std::printf("%s: %llu communities, modularity %.4f, %s "
                "(%.0f edges/s)\n",
                detector->toString().c_str(),
                static_cast<unsigned long long>(stats.communities), q,
                formatDuration(seconds).c_str(),
                static_cast<double>(g.numberOfEdges()) / seconds);
    if (args.has("out")) {
        io::writePartition(zeta, args.str("out"));
        std::printf("solution -> %s\n", args.str("out").c_str());
    }
    return 0;
}

int commandStats(const Args& args) {
    Graph g = loadGraph(args.required("in"), args);
    const GraphProfile profile =
        profileGraph(g, g.numberOfEdges() > 2000000 ? 1000000 : 0);
    std::printf("n               %llu\n",
                static_cast<unsigned long long>(profile.n));
    std::printf("m               %llu\n",
                static_cast<unsigned long long>(profile.m));
    std::printf("max degree      %llu\n",
                static_cast<unsigned long long>(profile.maxDegree));
    std::printf("avg degree      %.2f\n", profile.averageDegree);
    std::printf("components      %llu\n",
                static_cast<unsigned long long>(profile.components));
    std::printf("avg local CC    %.4f\n", profile.averageLcc);
    std::printf("assortativity   %+.4f\n", degreeAssortativity(g));
    if (args.has("diameter")) {
        std::printf("diameter (>=)   %llu\n",
                    static_cast<unsigned long long>(approximateDiameter(g)));
    }
    if (args.has("cores")) {
        CoreDecomposition cores(g);
        cores.run();
        std::printf("degeneracy      %llu\n",
                    static_cast<unsigned long long>(cores.degeneracy()));
    }
    return 0;
}

int commandLocal(const Args& args) {
    Random::setSeed(args.integer("seed-rng", 42));
    Graph g = loadGraph(args.required("in"), args);
    const node seed = static_cast<node>(args.integer("seed", 0));
    LocalExpansion expansion(args.integer("max-size", 1000));
    Timer timer;
    const LocalCommunity community = expansion.expand(g, seed);
    std::printf("community of node %llu: %zu members, conductance %.4f "
                "(%s)\n",
                static_cast<unsigned long long>(seed),
                community.members.size(), community.conductance,
                formatDuration(timer.elapsed()).c_str());
    for (std::size_t i = 0; i < community.members.size() && i < 50; ++i) {
        std::printf("%llu%c",
                    static_cast<unsigned long long>(community.members[i]),
                    (i + 1 == community.members.size() || i == 49) ? '\n'
                                                                   : ' ');
    }
    if (community.members.size() > 50) std::printf("... (truncated)\n");
    return 0;
}

int commandOverlap(const Args& args) {
    Random::setSeed(args.integer("seed", 42));
    Graph g = loadGraph(args.required("in"), args);
    OverlappingLpaConfig config;
    config.maxMemberships = args.integer("memberships", 2);
    OverlappingLpa lpa(config);
    Timer timer;
    const Cover cover = lpa.run(g);
    std::printf("overlapping LPA: %llu communities, %.1f%% of nodes in "
                "overlaps, %llu iterations (%s)\n",
                static_cast<unsigned long long>(cover.numberOfSubsets()),
                100.0 * cover.overlapFraction(),
                static_cast<unsigned long long>(lpa.iterations()),
                formatDuration(timer.elapsed()).c_str());
    if (args.has("out")) {
        // One line per node: space-separated community ids.
        std::FILE* f = std::fopen(args.str("out").c_str(), "w");
        if (!f) fail("overlap: cannot open " + args.str("out"));
        for (node v = 0; v < cover.numberOfElements(); ++v) {
            bool first = true;
            for (node c : cover.subsetsOf(v)) {
                std::fprintf(f, first ? "%u" : " %u", c);
                first = false;
            }
            std::fprintf(f, "\n");
        }
        std::fclose(f);
        std::printf("cover -> %s\n", args.str("out").c_str());
    }
    return 0;
}

int commandCompare(const Args& args) {
    const Partition a = io::readPartition(args.required("a"));
    const Partition b = io::readPartition(args.required("b"));
    std::printf("jaccard  %.4f\n", jaccardIndex(a, b));
    std::printf("rand     %.4f\n", randIndex(a, b));
    std::printf("nmi      %.4f\n", normalizedMutualInformation(a, b));
    if (args.has("graph")) {
        Graph g = loadGraph(args.str("graph"), args);
        std::printf("modularity(a) %.4f\n", Modularity().getQuality(a, g));
        std::printf("modularity(b) %.4f\n", Modularity().getQuality(b, g));
        const ConductanceSummary phi = conductanceSummary(a, g);
        std::printf("conductance(a) avg %.4f (min %.4f, max %.4f)\n",
                    phi.average, phi.minimum, phi.maximum);
    }
    return 0;
}

int commandStream(const Args& args) {
    // Durable streaming driver: the operational face of the WAL +
    // checkpoint subsystem (DESIGN.md "Durability, recovery, and fault
    // injection"). With --in it seeds a fresh engine and makes it durable;
    // without, it recovers whatever the directory holds — so a kill -9
    // mid-run followed by a re-run without --in is the end-to-end crash
    // drill. GRAPR_FAULT=<site:nth:kill> turns it into a scripted one.
    const std::string dir = args.required("durable");
    DurabilityOptions options;
    options.groupCommit = args.integer("group-commit", 1);
    options.checkpointInterval = args.integer("checkpoint-interval", 256);

    std::unique_ptr<StreamingGraph> engine;
    if (args.has("in")) {
        Graph g = loadGraph(args.str("in"), args);
        std::printf("seed graph: n=%llu m=%llu\n",
                    static_cast<unsigned long long>(g.numberOfNodes()),
                    static_cast<unsigned long long>(g.numberOfEdges()));
        engine = std::make_unique<StreamingGraph>(g);
        engine->enableDurability(dir, options);
    } else {
        engine = std::make_unique<StreamingGraph>(dir, options);
        std::printf("recovered generation %llu from %s\n",
                    static_cast<unsigned long long>(engine->generation()),
                    dir.c_str());
    }

    // Synthetic churn: mixed inserts and removes against the live edge
    // set, applied Permissive (duplicate inserts / misses are counted,
    // not fatal). Deterministic in --seed so two runs of the same command
    // replay the same workload.
    const count batches = args.integer("batches", 64);
    const count opsPerBatch = args.integer("ops", 32);
    SplitMix64 gen = Random::forStream(args.integer("seed", 42));
    count applied = 0;
    Timer timer;
    for (count b = 0; b < batches; ++b) {
        const SnapshotPtr snap = engine->pin();
        const node bound =
            static_cast<node>(snap->graph.upperNodeIdBound());
        if (bound < 2) fail("stream: need at least 2 nodes to churn");
        EdgeBatch batch;
        for (count k = 0; k < opsPerBatch; ++k) {
            node u = static_cast<node>(Random::integer(gen, bound));
            node v = static_cast<node>(Random::integer(gen, bound - 1));
            if (v >= u) ++v; // uniform over v != u
            if (Random::chance(gen, 0.5)) {
                batch.insert(u, v, 1.0 + Random::real(gen));
            } else {
                batch.remove(u, v);
            }
        }
        const BatchResult result =
            engine->apply(batch, StreamApplyMode::Permissive);
        applied += result.inserted + result.removed + result.reweighted;
    }
    const double seconds = timer.elapsed();
    const SnapshotPtr finalSnap = engine->pin();
    std::printf("applied %llu batches (%llu net ops) in %s -> "
                "generation %llu, m=%llu\n",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(applied),
                formatDuration(seconds).c_str(),
                static_cast<unsigned long long>(finalSnap->generation),
                static_cast<unsigned long long>(
                    finalSnap->graph.numberOfEdges()));
    if (args.has("out")) {
        saveGraph(finalSnap->graph.toGraph(), args.str("out"));
        std::printf("final snapshot -> %s\n", args.str("out").c_str());
    }
    return 0;
}

int commandConvert(const Args& args) {
    Graph g = loadGraph(args.required("in"), args);
    saveGraph(g, args.required("out"));
    std::printf("converted: n=%llu m=%llu -> %s\n",
                static_cast<unsigned long long>(g.numberOfNodes()),
                static_cast<unsigned long long>(g.numberOfEdges()),
                args.required("out").c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    const std::string command = argv[1];
    try {
        const Args args(argc, argv, 2);
        if (command == "generate") return commandGenerate(args);
        if (command == "detect") return commandDetect(args);
        if (command == "stats") return commandStats(args);
        if (command == "local") return commandLocal(args);
        if (command == "overlap") return commandOverlap(args);
        if (command == "compare") return commandCompare(args);
        if (command == "convert") return commandConvert(args);
        if (command == "stream") return commandStream(args);
        usage("unknown command");
    } catch (const io::IoError& e) {
        // Structured parse errors carry their own location; print it the
        // way compilers do so editors can jump to the offending line.
        std::fprintf(stderr, "error: %s\n", e.what());
        if (e.line() > 0) {
            std::fprintf(stderr,
                         "hint: re-run with --permissive to skip malformed "
                         "lines\n");
        }
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
