#!/usr/bin/env sh
# Run clang-tidy (profile: .clang-tidy) over the grapr sources using an
# exported compile database, and compare the warning count against the
# committed baseline.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Exit codes:
#   0  warning count <= baseline
#   1  warning count grew past the baseline (fix, or bump the baseline
#      consciously in review)
#   2  setup problem (no clang-tidy, no compile_commands.json)
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE_FILE="$ROOT/tools/clang_tidy_baseline.txt"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$TIDY' not found; install clang-tidy or set" \
         "CLANG_TIDY" >&2
    exit 2
fi
if [ ! -f "$ROOT/$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
         "configure with cmake first (export is always on)" >&2
    exit 2
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# Sources only; headers are pulled in via HeaderFilterRegex.
find "$ROOT/src" -name '*.cpp' | sort | \
    xargs "$TIDY" -p "$ROOT/$BUILD_DIR" --quiet 2>/dev/null | tee "$LOG"

COUNT="$(grep -c 'warning:' "$LOG" || true)"
BASELINE="$(cat "$BASELINE_FILE" 2>/dev/null || echo 0)"
echo "clang-tidy: $COUNT warnings (baseline: $BASELINE)"
if [ "$COUNT" -gt "$BASELINE" ]; then
    echo "clang-tidy: warning count grew past the baseline" >&2
    exit 1
fi
exit 0
