#!/usr/bin/env sh
# Run clang-tidy (profile: .clang-tidy) over the grapr sources using an
# exported compile database and gate on warning CONTENT, not count: any
# warning whose normalized form is absent from the committed baseline
# (tools/clang_tidy_baseline.txt) fails the run. A count-based gate lets
# a new warning ride in whenever an old one is fixed in the same change;
# a content diff does not.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir]                    gate vs baseline
#   tools/run_clang_tidy.sh --update-baseline [build-dir]  regenerate it
#
# Normalized form: "<repo-relative-path>: warning: <message> [check-id]"
# with line:column stripped, so edits above a baselined warning do not
# churn the gate. Lines starting with '#' in the baseline are comments.
# Regenerate ONLY to shrink the baseline (after fixing warnings) or with
# a review-visible justification for each new entry.
#
# Exit codes:
#   0  no warnings outside the baseline
#   1  new warnings (fix them, or consciously regenerate with
#      --update-baseline and justify the diff in review)
#   2  setup problem (no clang-tidy, no compile_commands.json)
set -u

UPDATE=0
if [ "${1:-}" = "--update-baseline" ]; then
    UPDATE=1
    shift
fi
BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE_FILE="$ROOT/tools/clang_tidy_baseline.txt"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$TIDY' not found; install clang-tidy or set" \
         "CLANG_TIDY" >&2
    exit 2
fi
if [ ! -f "$ROOT/$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
         "configure with cmake first (export is always on)" >&2
    exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Sources only; headers are pulled in via HeaderFilterRegex.
find "$ROOT/src" -name '*.cpp' | sort | \
    xargs "$TIDY" -p "$ROOT/$BUILD_DIR" --quiet 2>/dev/null | \
    tee "$WORK/log"

sed -n 's/^\(.*\):[0-9][0-9]*:[0-9][0-9]*: warning: /\1: warning: /p' \
    "$WORK/log" | sed "s|^$ROOT/||" | sort -u > "$WORK/got"

if [ "$UPDATE" -eq 1 ]; then
    {
        echo "# clang-tidy baseline: normalized warnings tolerated by"
        echo "# tools/run_clang_tidy.sh. Regenerate with:"
        echo "#   tools/run_clang_tidy.sh --update-baseline [build-dir]"
        echo "# Shrink freely; grow only with per-entry justification."
        cat "$WORK/got"
    } > "$BASELINE_FILE"
    echo "run_clang_tidy: baseline regenerated" \
         "($(wc -l < "$WORK/got" | tr -d ' ') entries)"
    exit 0
fi

grep -v '^#' "$BASELINE_FILE" 2>/dev/null | grep -v '^$' | sort -u \
    > "$WORK/want" || true

comm -23 "$WORK/got" "$WORK/want" > "$WORK/new"
comm -13 "$WORK/got" "$WORK/want" > "$WORK/stale"

NEW="$(wc -l < "$WORK/new" | tr -d ' ')"
STALE="$(wc -l < "$WORK/stale" | tr -d ' ')"
echo "clang-tidy: $(wc -l < "$WORK/got" | tr -d ' ') warnings," \
     "$NEW outside the baseline, $STALE baseline entries now stale"
if [ "$STALE" -gt 0 ]; then
    echo "run_clang_tidy: note: stale baseline entries (fixed warnings —" \
         "shrink the baseline with --update-baseline):"
    sed 's/^/  /' "$WORK/stale"
fi
if [ "$NEW" -gt 0 ]; then
    echo "run_clang_tidy: new warnings not in the baseline:" >&2
    sed 's/^/  /' "$WORK/new" >&2
    exit 1
fi
exit 0
