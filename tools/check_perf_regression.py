#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh micro_plm_kernels run against the
committed BENCH_plm.json.

The committed file records the tuned-vs-baseline move-phase speedup per
instance; a fresh --quick run measures the shared anchor instance
(rmat_s13) on whatever machine CI happens to give us. Absolute times are
not comparable across machines, but the SPEEDUP is a within-run ratio of
two interleaved measurements on the same box, so it transfers: if the
tuned kernel's ratio collapses relative to the committed record, a perf
regression (or a broken variant wiring) slipped in.

Exit 0 when every shared instance's fresh speedup is within --tolerance
(default 15%) of the committed one, 1 otherwise.  Usage:

    micro_plm_kernels --quick            # writes ./BENCH_plm.json
    python3 tools/check_perf_regression.py \
        --committed BENCH_plm.json --fresh build/bench/BENCH_plm.json
"""

import argparse
import json
import sys


def load_speedups(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return {
        inst["name"]: inst["speedup_tuned_vs_baseline"]
        for inst in data.get("instances", [])
    }


def main():
    parser = argparse.ArgumentParser(
        description="Fail if the tuned move-phase speedup regressed "
        "relative to the committed BENCH_plm.json."
    )
    parser.add_argument("--committed", required=True,
                        help="BENCH_plm.json committed in the repository")
    parser.add_argument("--fresh", required=True,
                        help="BENCH_plm.json from a fresh (quick) run")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative speedup loss (default 0.15)")
    args = parser.parse_args()

    committed = load_speedups(args.committed)
    fresh = load_speedups(args.fresh)

    shared = sorted(set(committed) & set(fresh))
    if not shared:
        print(
            "check_perf_regression: no shared instances between "
            f"{args.committed} ({sorted(committed)}) and "
            f"{args.fresh} ({sorted(fresh)})",
            file=sys.stderr,
        )
        return 1

    failed = False
    for name in shared:
        floor = committed[name] * (1.0 - args.tolerance)
        status = "ok" if fresh[name] >= floor else "REGRESSED"
        print(
            f"{name}: committed speedup {committed[name]:.2f}x, "
            f"fresh {fresh[name]:.2f}x, floor {floor:.2f}x -> {status}"
        )
        failed |= fresh[name] < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
