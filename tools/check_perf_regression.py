#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh bench JSON against the committed one.

Both files carry an ``instances`` list of per-instance metric objects; the
gate compares one or more named metrics on the instances the two files
share (CI measures only the quick anchor, e.g. rmat_s13, while the
committed file also records the full-size instances).

Absolute times are not comparable across machines, but within-run RATIOS
(``speedup_tuned_vs_baseline``, ``speedup_batch_vs_rebuild``) transfer:
two interleaved measurements on the same box divide out the machine. Gate
those with a tight tolerance. Absolute rates (``updates_per_sec``) only
get a loose floor that catches order-of-magnitude collapses.

Each ``--metric`` is ``NAME`` or ``NAME:TOLERANCE`` (allowed relative
loss, default --tolerance). With no --metric the historical default
``speedup_tuned_vs_baseline`` is checked — the BENCH_plm.json contract.
Exit 0 when every shared instance's fresh value is within tolerance of
the committed one, 1 otherwise.  Usage:

    micro_plm_kernels --quick            # writes ./BENCH_plm.json
    python3 tools/check_perf_regression.py \
        --committed BENCH_plm.json --fresh build/bench/BENCH_plm.json

    micro_stream --quick                 # writes ./BENCH_stream.json
    python3 tools/check_perf_regression.py \
        --committed BENCH_stream.json --fresh build/bench/BENCH_stream.json \
        --metric speedup_batch_vs_rebuild:0.5 --metric updates_per_sec:0.9
"""

import argparse
import json
import sys


def load_instances(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return {inst["name"]: inst for inst in data.get("instances", [])}


def metric_keys(instances):
    """Every numeric field any instance carries (the gateable metrics)."""
    keys = set()
    for inst in instances.values():
        keys |= {k for k, v in inst.items()
                 if k != "name" and isinstance(v, (int, float))}
    return sorted(keys)


def parse_metric_spec(spec, default_tolerance):
    if ":" in spec:
        name, tolerance = spec.rsplit(":", 1)
        return name, float(tolerance)
    return spec, default_tolerance


def check_metric(committed_path, fresh_path, metric, tolerance, verbose):
    committed_inst = load_instances(committed_path)
    fresh_inst = load_instances(fresh_path)
    committed = {n: i[metric] for n, i in committed_inst.items()
                 if metric in i}
    fresh = {n: i[metric] for n, i in fresh_inst.items() if metric in i}

    # A metric name no file carries is a misconfigured gate (typoed
    # --metric or a renamed bench field), not a pass: fail loudly and say
    # what IS gateable so the caller can fix the spec.
    for path, have, insts in ((committed_path, committed, committed_inst),
                              (fresh_path, fresh, fresh_inst)):
        if insts and not have:
            print(
                f"check_perf_regression: metric '{metric}' does not exist "
                f"in any instance of {path}; available metrics: "
                f"{', '.join(metric_keys(insts)) or '(none)'}",
                file=sys.stderr,
            )
            return True

    shared = sorted(set(committed) & set(fresh))
    if not shared:
        print(
            f"check_perf_regression: metric '{metric}' has no shared "
            f"instances between {committed_path} ({sorted(committed)}) "
            f"and {fresh_path} ({sorted(fresh)})",
            file=sys.stderr,
        )
        return True

    failed = False
    # An instance both files measure, where the committed record has the
    # metric but the fresh run stopped emitting it, must not silently
    # shrink the comparison set.
    for name in sorted(set(committed) & set(fresh_inst) - set(fresh)):
        print(
            f"{name}.{metric}: committed {committed[name]:.3g}, but the "
            "fresh run no longer emits this metric -> REGRESSED",
            file=sys.stderr,
        )
        failed = True
    for name in shared:
        floor = committed[name] * (1.0 - tolerance)
        regressed = fresh[name] < floor
        # Failures always print; passing rows only at -v, so a triage run
        # across BENCH_plm/stream/wal surfaces every regression at once
        # without burying them in green lines.
        if regressed or verbose:
            status = "REGRESSED" if regressed else "ok"
            print(
                f"{name}.{metric}: committed {committed[name]:.3g}, "
                f"fresh {fresh[name]:.3g}, floor {floor:.3g} -> {status}"
            )
        failed |= regressed
    return failed


def main():
    parser = argparse.ArgumentParser(
        description="Fail if a bench metric regressed relative to the "
        "committed BENCH_*.json."
    )
    parser.add_argument("--committed", required=True,
                        help="BENCH_*.json committed in the repository")
    parser.add_argument("--fresh", required=True,
                        help="BENCH_*.json from a fresh (quick) run")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="default allowed relative loss (default 0.15)")
    parser.add_argument("--metric", action="append", default=[],
                        metavar="NAME[:TOLERANCE]",
                        help="per-instance metric to gate on; repeatable. "
                        "Default: speedup_tuned_vs_baseline")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print measured/committed values for "
                        "passing metrics (default: failures only)")
    args = parser.parse_args()

    specs = args.metric or ["speedup_tuned_vs_baseline"]
    regressed = []
    for spec in specs:
        name, tolerance = parse_metric_spec(spec, args.tolerance)
        if check_metric(args.committed, args.fresh, name, tolerance,
                        args.verbose):
            regressed.append(name)
    if regressed:
        print(
            f"check_perf_regression: {len(regressed)} of {len(specs)} "
            f"metric(s) regressed: {', '.join(regressed)}"
        )
    else:
        print(
            f"check_perf_regression: all {len(specs)} metric(s) within "
            "tolerance"
        )
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
