#!/usr/bin/env python3
"""grapr-lint: OpenMP concurrency-contract linter for the grapr codebase.

The PLM/PLP/PLMR family stays correct while tolerating stale reads under
parallel label updates. That contract is enforced mechanically here, so a
refactor cannot silently turn a tolerated stale read into an unreviewed
data race, or quietly widen the set of variables a parallel region touches.

Rules (each has a stable id used by `grapr:lint-allow(<rule>)`):

  omp-default-none        Every `#pragma omp parallel` / `parallel for`
                          must carry `default(none)` so all data sharing is
                          explicit (the compiler then enforces the clause
                          lists; the lint enforces that the clause exists).
  no-default-shared       `default(shared)` is banned outright.
  no-rand                 `rand()` / `srand()` / `drand48()` etc. are banned
                          everywhere: parallel code must use the per-thread
                          or counter-based engines in support/random.hpp.
  no-stream-log           `std::cout` / `std::cerr` / `printf` inside a
                          parallel region (interleaved output, hidden
                          serialization). Log outside the region.
  container-mutation      Mutating calls (`push_back`, `insert`, `erase`,
                          `resize`, ...) on a container that is not
                          declared inside the parallel region and not
                          accessed through a per-thread slot
                          (`[omp_get_thread_num()]`, `.local()`).
  benign-race             Fast-path PRE-SCREEN (the interprocedural
                          authority is grapr_analyze's parallel-effects
                          pass, which classifies every shared write on an
                          effect lattice; a textual hit the analyzer
                          disproves is suppressed with lint-allow citing
                          it). Sites that read or publish shared state
                          non-atomically by design must be annotated:
                            * every `#pragma omp atomic read` (a stale
                              snapshot of a concurrently-updated value),
                            * Partition/Cover mutators (`.set`,
                              `.moveToSubset`, `.addToSubset`,
                              `.removeFromSubset`) on shared objects,
                            * plain writes through a shared subscript path
                              that is also *read* elsewhere in the region.
                          The annotation names the variable and the reason:
                              // grapr:benign-race(<var>): <reason>
                          within the 4 lines above the site (or trailing).
  compound-shared-write   `x += ...` / `++x` on a variable listed in the
                          region's shared() clause without an immediately
                          preceding `#pragma omp atomic` (classic lost
                          update) and without an annotation.
  annotation-format       Every `grapr:benign-race(...)` comment must be
                          well-formed, give a non-empty reason, and name a
                          variable that occurs within the next 8 lines.
  fault-point-in-parallel `GRAPR_FAULT_POINT` / `GRAPR_FAULT_INJECT` sites
                          inside an OpenMP parallel region are forbidden: a
                          trigger throws or kills the process and must fire
                          on the single-threaded commit path only, never
                          from inside a team (a mid-region kill tears the
                          team; a mid-region throw cannot cross the OpenMP
                          region boundary and aborts). Also flagged: a call
                          inside the region to a helper function defined in
                          the same file whose body contains a site (one
                          level deep). A same-file chain DEEPER than one
                          level is reported as a warning pointing at
                          grapr_analyze — its cross-TU fixed-point summary
                          (fault-point-in-parallel) is the authority beyond
                          this rule's textual horizon, so the lint points
                          there instead of staying silent.

Suppression: `// grapr:lint-allow(<rule>): <reason>` on the offending line
or the line directly above. Suppressions require a non-empty reason and an
existing rule id; unused suppressions are reported as warnings.

Known textual limitation (by design, documented in DESIGN.md): a lambda
*defined outside* a parallel region but invoked inside it is not part of
the region's textual extent and is not scanned by the region-scoped rules.
The shadow race checker (GRAPR_RACE_CHECK) covers those paths at runtime.

Usage:
  grapr_lint.py [--compile-commands build/compile_commands.json]
                [--root src] [files...]

With no explicit files, the file set is the union of the translation units
listed in compile_commands.json that live under --root, plus every header
under --root. Exit status 1 if any violation is found.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = {
    "omp-default-none",
    "no-default-shared",
    "no-rand",
    "no-stream-log",
    "container-mutation",
    "benign-race",
    "compound-shared-write",
    "annotation-format",
    "fault-point-in-parallel",
}

BANNED_RNG = re.compile(r"(?<![\w:.>])(rand|srand|drand48|lrand48|mrand48|random)\s*\(")
STREAM_LOG = re.compile(r"std::cout|std::cerr|(?<![\w:.>])(?:printf|fprintf|puts)\s*\(")
MUTATORS = (
    "push_back|emplace_back|emplace|pop_back|insert|erase|resize|assign|"
    "reserve|clear|shrink_to_fit"
)
CONTAINER_MUTATION = re.compile(
    r"(?P<recv>[A-Za-z_]\w*(?:(?:\[[^\][]*\]|\.[A-Za-z_]\w*|->[A-Za-z_]\w*))*)"
    r"\.(?P<call>" + MUTATORS + r")\s*\("
)
PARTITION_MUTATORS = re.compile(
    r"(?P<recv>[A-Za-z_]\w*)\.(?P<call>set|moveToSubset|addToSubset|removeFromSubset)\s*\("
)
ANNOTATION = re.compile(r"grapr:benign-race\((?P<var>[A-Za-z_]\w*)\)(?P<rest>[^\n]*)")
LINT_ALLOW = re.compile(r"grapr:lint-allow\((?P<rule>[\w-]+)\)(?P<rest>[^\n]*)")
FAULT_POINT = re.compile(r"\bGRAPR_FAULT_(?:POINT|INJECT)\s*\(")
COMPOUND_WRITE = re.compile(
    r"(?:\+\+|--)\s*(?P<pre>[A-Za-z_]\w*)\s*(?:\[[^\][]*\])?\s*;"
    r"|(?P<post>[A-Za-z_]\w*)\s*(?:\[[^\][]*\])?\s*(?:\+\+|--)\s*;"
    r"|(?P<asgn>[A-Za-z_]\w*)\s*(?:\[[^\][]*\])?\s*(?:\+=|-=|\*=|/=|\|=|&=|\^=)"
)


@dataclass
class Pragma:
    line: int            # 1-based line of the `#pragma`
    text: str            # full pragma text, continuations joined
    end_line: int        # last physical line of the pragma itself


@dataclass
class Region:
    pragma: Pragma
    begin: int           # first line of the structured block (1-based)
    end: int             # last line of the structured block (inclusive)


@dataclass
class Finding:
    path: Path
    line: int
    rule: str
    message: str
    warning: bool = False

    def render(self) -> str:
        kind = "warning" if self.warning else "error"
        return f"{self.path}:{self.line}: {kind}: [{self.rule}] {self.message}"


@dataclass
class FileLint:
    path: Path
    lines: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    used_allows: set[int] = field(default_factory=set)

    # -- comment / string handling -----------------------------------------

    def code_line(self, i: int) -> str:
        """Line i (0-based) with comments and string contents blanked."""
        return self._code[i]

    def prepare(self) -> None:
        text = "\n".join(self.lines)
        out = []
        i, n = 0, len(text)
        state = "code"
        # Lines whose newline falls inside an unterminated /* ... */. A
        # directive whose trailing comment spans a newline continues onto
        # the next line (comments become one space *before* the
        # preprocessor finds the directive's terminating newline), so
        # pragmas() must join across these.
        open_comment = [False] * len(self.lines)
        line_no = 0
        while i < n:
            c = text[i]
            if c == "\n":
                if state == "block_comment" and line_no < len(open_comment):
                    open_comment[line_no] = True
                line_no += 1
            if state == "code":
                if c == "/" and i + 1 < n and text[i + 1] == "/":
                    state = "line_comment"
                    out.append("  ")
                    i += 2
                    continue
                if c == "/" and i + 1 < n and text[i + 1] == "*":
                    state = "block_comment"
                    out.append("  ")
                    i += 2
                    continue
                if c == '"':
                    state = "string"
                    out.append(c)
                    i += 1
                    continue
                if c == "'":
                    state = "char"
                    out.append(c)
                    i += 1
                    continue
                out.append(c)
            elif state == "line_comment":
                if c == "\n":
                    state = "code"
                    out.append(c)
                else:
                    out.append(" ")
            elif state == "block_comment":
                if c == "*" and i + 1 < n and text[i + 1] == "/":
                    state = "code"
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if c == "\n" else " ")
            elif state == "string":
                if c == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                if c == '"':
                    state = "code"
                    out.append(c)
                else:
                    out.append("\n" if c == "\n" else " ")
            elif state == "char":
                if c == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                if c == "'":
                    state = "code"
                    out.append(c)
                else:
                    out.append(" ")
            i += 1
        self._code = "".join(out).split("\n")
        # Re-add trailing newline artifacts so indices line up.
        while len(self._code) < len(self.lines):
            self._code.append("")
        self._open_comment = open_comment
        while len(self._open_comment) < len(self._code):
            self._open_comment.append(False)

    # -- suppression / annotation lookup ------------------------------------

    def allowed(self, line0: int, rule: str) -> bool:
        """Is a `grapr:lint-allow(rule)` present on this line or in the
        contiguous comment block directly above it? Walking the whole block
        lets suppression reasons wrap over several comment lines."""
        candidates = [line0]
        j = line0 - 1
        while j >= 0 and self.lines[j].lstrip().startswith("//"):
            candidates.append(j)
            j -= 1
        for j in candidates:
            if 0 <= j < len(self.lines):
                m = LINT_ALLOW.search(self.lines[j])
                if m and m.group("rule") == rule:
                    self.used_allows.add(j)
                    return True
        return False

    def annotated(self, line0: int, lookback: int = 4) -> bool:
        """Is a benign-race annotation within `lookback` lines above (or on
        the same line as) line0?"""
        for j in range(max(0, line0 - lookback), line0 + 1):
            if ANNOTATION.search(self.lines[j]):
                return True
        return False

    def report(self, line0: int, rule: str, message: str,
               warning: bool = False) -> None:
        if not warning and self.allowed(line0, rule):
            return
        self.findings.append(
            Finding(self.path, line0 + 1, rule, message, warning))

    # -- fault-site helper discovery -----------------------------------------

    _CONTROL_KEYWORDS = {
        "if", "for", "while", "switch", "catch", "return", "sizeof",
        "alignof", "decltype", "defined", "assert", "static_assert",
    }

    def fault_helpers(self) -> tuple[dict[str, int],
                                     dict[str, tuple[str, int]]]:
        """Two maps over functions *defined in this file*:
          direct: name -> 1-based line of a GRAPR_FAULT_POINT/_INJECT site
                  lexically inside that function's body (the one-level
                  rule's error path), and
          deep:   name -> (callee, site line) for functions that reach a
                  site only through a same-file call chain of depth >= 2
                  (the advisory path: grapr_analyze's cross-TU summary is
                  authoritative there)."""
        flat = "\n".join(self._code)
        line_starts = [0]
        for ln in self._code:
            line_starts.append(line_starts[-1] + len(ln) + 1)

        def line_of(pos: int) -> int:
            lo, hi = 0, len(line_starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_starts[mid] <= pos:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1

        helpers: dict[str, int] = {}
        callees: dict[str, set[str]] = {}
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", flat):
            name = m.group(1)
            if name in self._CONTROL_KEYWORDS:
                continue
            # Balance the parameter list, then require a function body
            # (optionally after const/noexcept/override/trailing-return)
            # so plain calls never register.
            p = m.end() - 1
            depth = 0
            while p < len(flat):
                if flat[p] == "(":
                    depth += 1
                elif flat[p] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                p += 1
            if p >= len(flat):
                continue
            tail = re.match(
                r"\s*(?:const\b|noexcept\b|override\b|final\b"
                r"|->\s*[\w:<>,&*\s]+?)*\s*\{", flat[p + 1:p + 120])
            if not tail:
                continue
            body_open = p + 1 + tail.end() - 1
            depth = 0
            q = body_open
            while q < len(flat):
                if flat[q] == "{":
                    depth += 1
                elif flat[q] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                q += 1
            if q >= len(flat):
                continue
            site = FAULT_POINT.search(flat, body_open, q)
            if site:
                helpers.setdefault(name, line_of(site.start()))
            called = {c.group(1)
                      for c in re.finditer(r"\b([A-Za-z_]\w*)\s*\(",
                                           flat[body_open:q])
                      if c.group(1) not in self._CONTROL_KEYWORDS
                      and c.group(1) != name}
            callees.setdefault(name, set()).update(called)
        # Same-file transitive closure: functions that reach a site only
        # through another defined function (depth >= 2 from a region that
        # calls them).
        deep: dict[str, tuple[str, int]] = {}
        changed = True
        while changed:
            changed = False
            for name, called in callees.items():
                if name in helpers or name in deep:
                    continue
                for c in sorted(called):
                    if c in helpers:
                        deep[name] = (c, helpers[c])
                        changed = True
                        break
                    if c in deep:
                        deep[name] = (c, deep[c][1])
                        changed = True
                        break
        return helpers, deep

    # -- pragma and region discovery ----------------------------------------

    def pragmas(self) -> list[Pragma]:
        # Join each directive's continuation lines FIRST, then decide
        # whether the joined text is an omp pragma. Classifying on the
        # first physical line alone misses `#pragma \` + `omp ...`
        # (false negative: the pragma escapes every rule) and truncates
        # directives whose trailing /* comment */ spans the newline
        # (false positive: clauses on the continuation line vanish).
        result = []
        i = 0
        n = len(self._code)
        while i < n:
            stripped = self._code[i].strip()
            if stripped.startswith("#"):
                text = stripped
                end = i
                while end + 1 < n and (text.endswith("\\")
                                       or self._open_comment[end]):
                    text = text[:-1] if text.endswith("\\") else text
                    end += 1
                    text = text.rstrip() + " " + self._code[end].strip()
                text = re.sub(r"\s+", " ", text).strip()
                text = re.sub(r"^#\s*pragma\b", "#pragma", text)
                if re.match(r"#pragma omp\b", text):
                    result.append(Pragma(i + 1, text, end + 1))
                i = end + 1
                continue
            i += 1
        return result

    def region_for(self, pragma: Pragma) -> Region | None:
        """Textual extent of the structured block following `pragma`."""
        flat = "\n".join(self._code)
        line_starts = [0]
        for ln in self._code:
            line_starts.append(line_starts[-1] + len(ln) + 1)
        pos = line_starts[pragma.end_line]  # char offset after pragma's last line

        def line_of(p: int) -> int:
            lo, hi = 0, len(line_starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_starts[mid] <= p:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1  # 1-based

        def skip_ws(p: int) -> int:
            while p < len(flat) and flat[p] in " \t\n":
                p += 1
            return p

        def match_delim(p: int, open_c: str, close_c: str) -> int:
            depth = 0
            while p < len(flat):
                if flat[p] == open_c:
                    depth += 1
                elif flat[p] == close_c:
                    depth -= 1
                    if depth == 0:
                        return p
                p += 1
            return -1

        p = skip_ws(pos)
        # A chain of omp pragmas (e.g. `omp parallel` then `omp for`):
        # the region is the block after the first non-pragma construct.
        while flat.startswith("#pragma", p):
            nl = flat.find("\n", p)
            while nl != -1 and flat[:nl].rstrip().endswith("\\"):
                nl = flat.find("\n", nl + 1)
            if nl == -1:
                return None
            p = skip_ws(nl + 1)
        if flat.startswith("for", p):
            close = match_delim(flat.find("(", p), "(", ")")
            if close == -1:
                return None
            p = skip_ws(close + 1)
        if p < len(flat) and flat[p] == "{":
            close = match_delim(p, "{", "}")
            if close == -1:
                return None
            return Region(pragma, line_of(p), line_of(close))
        # Single-statement body: up to the terminating semicolon.
        semi = flat.find(";", p)
        if semi == -1:
            return None
        return Region(pragma, line_of(p), line_of(semi))

    # -- rules ---------------------------------------------------------------

    def lint(self) -> None:
        self.prepare()
        self._fault_helpers, self._fault_deep = self.fault_helpers()
        self.check_rng()
        self.check_annotation_format()
        regions = []
        for pragma in self.pragmas():
            tokens = pragma.text.split()
            # tokens: ['#pragma', 'omp', directive...]
            directive = tokens[2] if len(tokens) > 2 else ""
            if directive != "parallel":
                continue
            self.check_pragma_clauses(pragma)
            region = self.region_for(pragma)
            if region is None:
                self.report(pragma.line - 1, "omp-default-none",
                            "could not determine the structured block of "
                            "this parallel construct")
                continue
            regions.append(region)
        for region in regions:
            self.check_region(region)
        self.check_unused_allows()

    def check_pragma_clauses(self, pragma: Pragma) -> None:
        line0 = pragma.line - 1
        if "default(shared)" in pragma.text.replace(" ", ""):
            self.report(line0, "no-default-shared",
                        "default(shared) is banned; use default(none) with "
                        "explicit shared()/firstprivate() clauses")
            return
        if "default(none)" not in pragma.text.replace(" ", ""):
            self.report(line0, "omp-default-none",
                        "parallel construct without default(none): every "
                        "OpenMP region must declare its data sharing "
                        "explicitly")

    def shared_vars(self, pragma: Pragma) -> set[str]:
        shared: set[str] = set()
        for m in re.finditer(r"shared\s*\(([^)]*)\)", pragma.text):
            for var in m.group(1).split(","):
                var = var.strip()
                if var and var != "this":
                    shared.add(var)
        return shared

    def region_text(self, region: Region) -> list[tuple[int, str]]:
        """(0-based line, blanked code) pairs of the region's extent."""
        return [(i, self._code[i])
                for i in range(region.begin - 1, region.end)]

    def declared_in_region(self, region: Region, ident: str,
                           before_line0: int) -> bool:
        decl = re.compile(
            r"(?:^|[(,;{]|\bauto\b[^;]{0,40}?|\bconst\b\s+)"
            r"(?:[A-Za-z_][\w:]*(?:<[^;=]*>)?\s*[&*]?\s+|&\s*|\[)"
            r"(?:\[?\s*)?" + re.escape(ident) + r"\b\s*(?:[,\]=;({:]|$)")
        simple = re.compile(
            r"(?:\bauto\b|\bconst\b|[A-Za-z_][\w:]*(?:<[^;=]*>)?)\s*"
            r"[&*]?\s*\b" + re.escape(ident) + r"\b\s*[=;({]")
        structured = re.compile(
            r"\[[^\]]*\b" + re.escape(ident) + r"\b[^\]]*\]\s*[:=]")
        for i, code in self.region_text(region):
            if i > before_line0:
                break
            if simple.search(code) or decl.search(code) or \
                    structured.search(code):
                return True
        return False

    def check_rng(self) -> None:
        for i, code in enumerate(self._code):
            m = BANNED_RNG.search(code)
            if m:
                self.report(i, "no-rand",
                            f"'{m.group(1)}()' is banned: use the "
                            "per-thread/counter-based engines in "
                            "support/random.hpp")

    def check_annotation_format(self) -> None:
        for i, raw in enumerate(self.lines):
            for m in ANNOTATION.finditer(raw):
                rest = m.group("rest")
                if not rest.startswith(":") or not rest[1:].strip():
                    self.report(i, "annotation-format",
                                "benign-race annotation must be "
                                "'grapr:benign-race(<var>): <reason>' with "
                                "a non-empty reason")
                    continue
                var = m.group("var")
                window = "\n".join(
                    self._code[i:min(len(self._code), i + 9)])
                if not re.search(r"\b" + re.escape(var) + r"\b", window):
                    self.report(i, "annotation-format",
                                f"annotated variable '{var}' does not occur "
                                "within the next 8 lines")
            for m in LINT_ALLOW.finditer(raw):
                rule = m.group("rule")
                rest = m.group("rest")
                if rule not in RULES:
                    self.report(i, "annotation-format",
                                f"lint-allow names unknown rule '{rule}'")
                if not rest.startswith(":") or not rest[1:].strip():
                    self.report(i, "annotation-format",
                                "lint-allow must give a non-empty reason: "
                                "'grapr:lint-allow(<rule>): <reason>'")

    def check_region(self, region: Region) -> None:
        shared = self.shared_vars(region.pragma)
        reads: dict[str, int] = {}
        writes: list[tuple[int, str]] = []

        for i, code in self.region_text(region):
            if STREAM_LOG.search(code):
                self.report(i, "no-stream-log",
                            "stream/printf logging inside a parallel region")
            if FAULT_POINT.search(code):
                self.report(i, "fault-point-in-parallel",
                            "fault-injection site inside a parallel region: "
                            "triggers throw or kill and must fire on the "
                            "single-threaded commit path only")
            for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", code):
                name = m.group(1)
                site = self._fault_helpers.get(name)
                if site is not None and not (region.begin <= site
                                             <= region.end):
                    self.report(i, "fault-point-in-parallel",
                                f"'{name}(...)' called inside a "
                                "parallel region reaches the fault-"
                                f"injection site at line {site}: triggers "
                                "throw or kill and must fire on the "
                                "single-threaded commit path only")
                    continue
                deep = self._fault_deep.get(name)
                if deep is not None:
                    via, dsite = deep
                    self.report(i, "fault-point-in-parallel",
                                f"'{name}(...)' called inside a parallel "
                                "region reaches a fault-injection site "
                                f"through '{via}' (line {dsite}) — beyond "
                                "the one-level textual rule; run "
                                "grapr_analyze (fault-point-in-parallel, "
                                "cross-TU fixed point) for the "
                                "authoritative verdict", warning=True)
            for m in CONTAINER_MUTATION.finditer(code):
                recv = m.group("recv")
                base = re.match(r"[A-Za-z_]\w*", recv).group(0)
                if "omp_get_thread_num" in recv or ".local()" in recv:
                    continue
                if self.declared_in_region(region, base, i):
                    continue
                self.report(i, "container-mutation",
                            f"'{recv}.{m.group('call')}(...)' mutates a "
                            "container that is neither region-local nor "
                            "per-thread")
            for m in PARTITION_MUTATORS.finditer(code):
                recv = m.group("recv")
                if self.declared_in_region(region, recv, i):
                    continue
                if not self.annotated(i):
                    self.report(i, "benign-race",
                                f"'{recv}.{m.group('call')}(...)' publishes "
                                "a label visible to concurrent readers; "
                                "annotate with grapr:benign-race("
                                f"{recv}): <reason> (pre-screen — if "
                                "grapr_analyze parallel-effects proves the "
                                "write disjoint, cite it in a lint-allow "
                                "instead)")
            for m in COMPOUND_WRITE.finditer(code):
                var = m.group("pre") or m.group("post") or m.group("asgn")
                if var in shared:
                    prev = self._code[i - 1].strip() if i > 0 else ""
                    if prev.startswith("#pragma omp atomic"):
                        continue
                    if not self.annotated(i):
                        self.report(i, "compound-shared-write",
                                    f"read-modify-write of shared '{var}' "
                                    "without '#pragma omp atomic' (lost "
                                    "update)")
            # Track subscript reads/writes of shared vars for the
            # write+read stale-publication rule.
            for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\[", code):
                var = m.group(1)
                if var not in shared:
                    continue
                close = code.find("]", m.end())
                after = code[close + 1:close + 4] if close != -1 else ""
                if re.match(r"\s*=(?!=)", after):
                    writes.append((i, var))
                else:
                    reads.setdefault(var, i)

        atomic_read_pending = False
        for i in range(region.pragma.line - 1, region.end):
            stripped = self._code[i].strip()
            if stripped.startswith("#pragma omp atomic") and \
                    "read" in stripped:
                if not self.annotated(i):
                    self.report(i, "benign-race",
                                "atomic read of concurrently-updated state "
                                "takes a stale snapshot by design; annotate "
                                "with grapr:benign-race(<var>): <reason>")
                atomic_read_pending = True
        del atomic_read_pending

        for i, var in writes:
            if var in reads and not self.annotated(i):
                self.report(i, "benign-race",
                            f"plain write through shared '{var}[...]' which "
                            "is also read in this region: concurrent "
                            "readers may observe the update (stale-read "
                            "contract); annotate with grapr:benign-race("
                            f"{var}): <reason>")

    def check_unused_allows(self) -> None:
        for i, raw in enumerate(self.lines):
            if LINT_ALLOW.search(raw) and i not in self.used_allows:
                self.report(i, "annotation-format",
                            "unused grapr:lint-allow suppression",
                            warning=True)


def collect_files(args: argparse.Namespace) -> list[Path]:
    if args.files:
        return [Path(f) for f in args.files]
    root = Path(args.root).resolve()
    files: set[Path] = set()
    if args.compile_commands:
        cc_path = Path(args.compile_commands)
        if cc_path.exists():
            for entry in json.loads(cc_path.read_text()):
                f = Path(entry["file"])
                if not f.is_absolute():
                    f = Path(entry["directory"]) / f
                f = f.resolve()
                if root in f.parents or f == root:
                    files.add(f)
        else:
            print(f"grapr-lint: note: {cc_path} not found; "
                  "falling back to a source glob", file=sys.stderr)
    if not files:
        files.update(root.rglob("*.cpp"))
    files.update(root.rglob("*.hpp"))
    files.update(root.rglob("*.h"))
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--compile-commands", default=None,
                        help="path to compile_commands.json")
    parser.add_argument("--root", default="src",
                        help="source root to lint (default: src)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    parser.add_argument("files", nargs="*",
                        help="explicit files (overrides discovery)")
    args = parser.parse_args()

    files = collect_files(args)
    if not files:
        print("grapr-lint: no input files", file=sys.stderr)
        return 2

    errors = 0
    warnings = 0
    regions = 0
    for path in files:
        try:
            text = path.read_text()
        except OSError as e:
            print(f"grapr-lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        linter = FileLint(path, text.splitlines(keepends=False))
        linter.lint()
        regions += sum(1 for p in linter.pragmas()
                       if len(p.text.split()) > 2
                       and p.text.split()[2] == "parallel")
        for finding in linter.findings:
            print(finding.render())
            if finding.warning:
                warnings += 1
            else:
                errors += 1

    if not args.quiet:
        print(f"grapr-lint: {len(files)} files, {regions} parallel regions, "
              f"{errors} errors, {warnings} warnings")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
