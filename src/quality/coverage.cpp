#include "quality/coverage.hpp"

namespace grapr {

namespace {

// One kernel, generic over the graph layout (Graph or frozen CsrGraph).
template <typename GraphT>
double coverageImpl(const Partition& zeta, const GraphT& g) {
    require(zeta.numberOfElements() >= g.upperNodeIdBound(),
            "Coverage: partition does not cover the graph");
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0.0;

    double intra = 0.0;
    const auto bound = static_cast<std::int64_t>(g.upperNodeIdBound());
#pragma omp parallel for default(none) shared(g, zeta, bound)                \
    schedule(guided) reduction(+ : intra)
    for (std::int64_t su = 0; su < bound; ++su) {
        const node u = static_cast<node>(su);
        if (!g.hasNode(u)) continue;
        double local = 0.0;
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (zeta[u] != zeta[v]) return;
            // Non-loop intra edges are visited from both endpoints and
            // contribute half each time; loops are visited once.
            local += (u == v) ? w : 0.5 * w;
        });
        intra += local;
    }
    return intra / omegaE;
}

} // namespace

double Coverage::getQuality(const Partition& zeta, const Graph& g) const {
    return coverageImpl(zeta, g);
}

double Coverage::getQuality(const Partition& zeta, const CsrGraph& g) const {
    return coverageImpl(zeta, g);
}

} // namespace grapr
