#pragma once
// One-call structural profile of a network — exactly the columns of the
// paper's Table I: n, m, maximum degree, number of connected components,
// and average local clustering coefficient.

#include <string>

#include "graph/graph.hpp"

namespace grapr {

struct GraphProfile {
    count n = 0;
    count m = 0;
    count maxDegree = 0;
    count components = 0;
    double averageLcc = 0.0;
    double averageDegree = 0.0;
};

/// Compute the Table-I profile. `lccSamples` > 0 switches the clustering
/// coefficient to wedge sampling (recommended beyond ~10^6 edges).
GraphProfile profileGraph(const Graph& g, count lccSamples = 0);

/// Render a profile as the paper's table row: name, n, m, max.d., comp, LCC.
std::string formatProfileRow(const std::string& name, const GraphProfile& p);

} // namespace grapr
