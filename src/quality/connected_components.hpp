#pragma once
// Connected components via label-propagation-style pointer jumping
// (Shiloach–Vishkin flavored), parallel and lock-free; used for the
// Table-I "comp." column and by generator sanity tests.

#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

class ConnectedComponents {
public:
    explicit ConnectedComponents(const Graph& g) : g_(&g) {}

    void run();

    /// Number of connected components (run() first).
    count numberOfComponents() const;

    /// Component id per node, compacted to [0, #components).
    const Partition& componentPartition() const { return components_; }

    /// Size of each component.
    std::vector<count> componentSizes() const;

    /// Number of nodes in the largest component.
    count largestComponentSize() const;

private:
    const Graph* g_;
    Partition components_;
    bool hasRun_ = false;
};

} // namespace grapr
