#include "quality/clustering_coefficient.hpp"

#include <algorithm>
#include <vector>

#include "support/random.hpp"

namespace grapr {

namespace {

/// Sorted, loop-free copy of v's neighbor list.
std::vector<node> sortedNeighbors(const Graph& g, node v) {
    std::vector<node> result;
    result.reserve(g.degree(v));
    g.forNeighborsOf(v, [&](node u, edgeweight) {
        if (u != v) result.push_back(u);
    });
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

count intersectionSize(const std::vector<node>& a, const std::vector<node>& b) {
    count size = 0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib) {
            ++ia;
        } else if (*ib < *ia) {
            ++ib;
        } else {
            ++size;
            ++ia;
            ++ib;
        }
    }
    return size;
}

} // namespace

double ClusteringCoefficient::averageLocal(const Graph& g) {
    double sum = 0.0;
    count contributors = 0;
    const auto bound = static_cast<std::int64_t>(g.upperNodeIdBound());
#pragma omp parallel for default(none) shared(g, bound)                      \
    schedule(guided) reduction(+ : sum, contributors)
    for (std::int64_t sv = 0; sv < bound; ++sv) {
        const node v = static_cast<node>(sv);
        if (!g.hasNode(v)) continue;
        const std::vector<node> nv = sortedNeighbors(g, v);
        const count d = nv.size();
        if (d < 2) continue;
        count triangles = 0;
        for (node u : nv) {
            triangles += intersectionSize(nv, sortedNeighbors(g, u));
        }
        // Each triangle at v counted twice (once per other endpoint pair
        // ordering through the intersection).
        sum += static_cast<double>(triangles) /
               static_cast<double>(d * (d - 1));
        ++contributors;
    }
    return contributors == 0 ? 0.0
                             : sum / static_cast<double>(contributors);
}

double ClusteringCoefficient::approxAverageLocal(const Graph& g,
                                                 count samples) {
    // Schank–Wagner: sample a node of degree >= 2 uniformly, then a random
    // wedge at it; the closure probability estimates the average LCC.
    std::vector<node> eligible;
    g.forNodes([&](node v) {
        if (g.degree(v) >= 2) eligible.push_back(v);
    });
    if (eligible.empty() || samples == 0) return 0.0;

    count closed = 0;
    const auto total = static_cast<std::int64_t>(samples);
#pragma omp parallel for default(none) shared(g, eligible, total)            \
    schedule(static) reduction(+ : closed)
    for (std::int64_t s = 0; s < total; ++s) {
        const node v = eligible[Random::integer(eligible.size())];
        const count d = g.degree(v);
        index i = Random::integer(d);
        index j = Random::integer(d - 1);
        if (j >= i) ++j;
        const node a = g.getIthNeighbor(v, i);
        const node b = g.getIthNeighbor(v, j);
        if (a != b && a != v && b != v && g.hasEdge(a, b)) ++closed;
    }
    return static_cast<double>(closed) / static_cast<double>(samples);
}

} // namespace grapr
