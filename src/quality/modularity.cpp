#include "quality/modularity.hpp"

#include <vector>

#include <omp.h>

namespace grapr {

namespace {

// One kernel, generic over the graph layout (Graph or frozen CsrGraph).
template <typename GraphT>
double modularityImpl(const Partition& zeta, const GraphT& g, double gamma) {
    require(zeta.numberOfElements() >= g.upperNodeIdBound(),
            "Modularity: partition does not cover the graph");
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0.0;
    const count k = zeta.upperBound();
    require(k > 0, "Modularity: partition upper bound is zero");

    // Intra-community weight per community. Accumulated in per-thread
    // arrays to avoid atomics on the hot path; k is usually << n. When the
    // replicated arrays would exceed ~512 MB (singleton partitions on huge
    // graphs), fall back to one sequential sweep instead.
    int threads = omp_get_max_threads();
    if (static_cast<double>(k) * threads * 16.0 > 512e6) threads = 1;
    std::vector<std::vector<double>> intraLocal(
        static_cast<std::size_t>(threads), std::vector<double>(k, 0.0));
    std::vector<std::vector<double>> volumeLocal(
        static_cast<std::size_t>(threads), std::vector<double>(k, 0.0));

    auto accumulate = [&](node u, std::size_t t) {
        const node cu = zeta[u];
        require(cu != none && cu < k, "Modularity: node unassigned");
        double volume = 0.0;
        double intra = 0.0;
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            volume += w;
            if (u == v) volume += w; // self-loop counts twice in vol
            if (zeta[v] == cu) {
                // Non-loop intra edges will be seen from both endpoints
                // (contributing w/2 + w/2); loops are seen once and count
                // fully.
                intra += (u == v) ? w : 0.5 * w;
            }
        });
        intraLocal[t][cu] += intra;
        volumeLocal[t][cu] += volume;
    };
    if (threads == 1) {
        g.forNodes([&](node u) { accumulate(u, 0); });
    } else {
        g.parallelForNodes([&](node u) {
            accumulate(u, static_cast<std::size_t>(omp_get_thread_num()));
        });
    }

    double quality = 0.0;
    for (count c = 0; c < k; ++c) {
        double intra = 0.0;
        double volume = 0.0;
        for (int t = 0; t < threads; ++t) {
            intra += intraLocal[static_cast<std::size_t>(t)][c];
            volume += volumeLocal[static_cast<std::size_t>(t)][c];
        }
        quality += intra / omegaE -
                   gamma * (volume * volume) / (4.0 * omegaE * omegaE);
    }
    return quality;
}

} // namespace

double Modularity::getQuality(const Partition& zeta, const Graph& g) const {
    return modularityImpl(zeta, g, gamma_);
}

double Modularity::getQuality(const Partition& zeta, const CsrGraph& g) const {
    return modularityImpl(zeta, g, gamma_);
}

} // namespace grapr
