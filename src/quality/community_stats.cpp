#include "quality/community_stats.hpp"

#include <algorithm>
#include <unordered_map>

namespace grapr {

CommunitySizeStats communitySizeStats(const Partition& zeta) {
    std::unordered_map<node, count> sizes;
    for (node v = 0; v < zeta.numberOfElements(); ++v) {
        if (zeta[v] != none) ++sizes[zeta[v]];
    }
    CommunitySizeStats stats;
    stats.communities = sizes.size();
    if (sizes.empty()) return stats;

    std::vector<count> sorted;
    sorted.reserve(sizes.size());
    count total = 0;
    for (const auto& [c, s] : sizes) {
        sorted.push_back(s);
        total += s;
    }
    std::sort(sorted.begin(), sorted.end());
    stats.smallest = sorted.front();
    stats.largest = sorted.back();
    stats.average =
        static_cast<double>(total) / static_cast<double>(sorted.size());
    const std::size_t mid = sorted.size() / 2;
    stats.median = sorted.size() % 2 == 1
                       ? static_cast<double>(sorted[mid])
                       : (static_cast<double>(sorted[mid - 1]) +
                          static_cast<double>(sorted[mid])) /
                             2.0;
    return stats;
}

EdgeCut communityEdgeCut(const Partition& zeta, const Graph& g) {
    EdgeCut cut;
    double intra = 0.0;
    double inter = 0.0;
    const auto bound = static_cast<std::int64_t>(g.upperNodeIdBound());
#pragma omp parallel for default(none) shared(g, zeta, bound)                \
    schedule(guided) reduction(+ : intra, inter)
    for (std::int64_t su = 0; su < bound; ++su) {
        const node u = static_cast<node>(su);
        if (!g.hasNode(u)) continue;
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (u == v) {
                intra += w;
            } else if (zeta[u] == zeta[v]) {
                intra += 0.5 * w;
            } else {
                inter += 0.5 * w;
            }
        });
    }
    cut.intraWeight = intra;
    cut.interWeight = inter;
    return cut;
}

} // namespace grapr
