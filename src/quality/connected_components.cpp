#include "quality/connected_components.hpp"

#include <algorithm>
#include <atomic>

namespace grapr {

void ConnectedComponents::run() {
    const Graph& g = *g_;
    const count bound = g.upperNodeIdBound();
    components_ = Partition(bound);

    // Label propagation to the minimum id in the component: every node
    // starts with its own id and repeatedly adopts the smallest label in
    // its closed neighborhood. Converges in O(diameter) rounds; each round
    // is a parallel sweep. For the small-world graphs this library targets,
    // diameter is tiny; for grids/paths the pointer-jumping shortcut below
    // keeps rounds low.
    std::vector<node> label(bound);
    for (node v = 0; v < bound; ++v) label[v] = v;

    std::atomic<bool> changed{true};
    while (changed.load(std::memory_order_relaxed)) {
        changed.store(false, std::memory_order_relaxed);
        g.balancedParallelForNodes([&](node u) {
            node best = label[u];
            g.forNeighborsOf(u, [&](node v, edgeweight) {
                best = std::min(best, label[v]);
            });
            if (best < label[u]) {
                label[u] = best;
                changed.store(true, std::memory_order_relaxed);
            }
        });
        // Pointer jumping: label[v] <- label[label[v]] until stable within
        // the sweep; collapses long chains exponentially.
        g.parallelForNodes([&](node u) {
            node l = label[u];
            while (g.hasNode(l) && label[l] < l) l = label[l];
            if (l < label[u]) {
                label[u] = l;
                changed.store(true, std::memory_order_relaxed);
            }
        });
    }

    g.forNodes([&](node v) { components_.set(v, label[v]); });
    components_.setUpperBound(static_cast<node>(bound));
    components_.compact();
    hasRun_ = true;
}

count ConnectedComponents::numberOfComponents() const {
    require(hasRun_, "ConnectedComponents: call run() first");
    return components_.upperBound();
}

std::vector<count> ConnectedComponents::componentSizes() const {
    require(hasRun_, "ConnectedComponents: call run() first");
    return components_.subsetSizes();
}

count ConnectedComponents::largestComponentSize() const {
    const auto sizes = componentSizes();
    return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

} // namespace grapr
