#include "quality/graph_stats.hpp"

#include <cstdio>

#include "graph/graph_tools.hpp"
#include "quality/clustering_coefficient.hpp"
#include "quality/connected_components.hpp"

namespace grapr {

GraphProfile profileGraph(const Graph& g, count lccSamples) {
    GraphProfile profile;
    profile.n = g.numberOfNodes();
    profile.m = g.numberOfEdges();
    const auto degrees = GraphTools::degreeStatistics(g);
    profile.maxDegree = degrees.maximum;
    profile.averageDegree = degrees.average;

    ConnectedComponents cc(g);
    cc.run();
    profile.components = cc.numberOfComponents();

    profile.averageLcc =
        lccSamples > 0 ? ClusteringCoefficient::approxAverageLocal(g, lccSamples)
                       : ClusteringCoefficient::averageLocal(g);
    return profile;
}

std::string formatProfileRow(const std::string& name, const GraphProfile& p) {
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "%-22s %12llu %14llu %9llu %9llu %8.3f",
                  name.c_str(), static_cast<unsigned long long>(p.n),
                  static_cast<unsigned long long>(p.m),
                  static_cast<unsigned long long>(p.maxDegree),
                  static_cast<unsigned long long>(p.components), p.averageLcc);
    return buffer;
}

} // namespace grapr
