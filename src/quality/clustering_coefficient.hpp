#pragma once
// Average local clustering coefficient (the Table-I "LCC" column):
// LCC(v) = triangles through v / (deg(v) choose 2), averaged over nodes of
// degree >= 2. Exact counting by neighbor-set intersection over sorted
// adjacencies, parallel over nodes; optionally sampled for huge graphs.

#include "graph/graph.hpp"

namespace grapr {

class ClusteringCoefficient {
public:
    /// Exact average local clustering coefficient.
    /// Cost: O(Σ_v deg(v) · davg) with sorted-adjacency merges.
    static double averageLocal(const Graph& g);

    /// Approximate via `samples` uniformly sampled wedges (Schank–Wagner):
    /// unbiased, error ~ 1/sqrt(samples). Deterministic under a fixed seed.
    static double approxAverageLocal(const Graph& g, count samples);
};

} // namespace grapr
