#pragma once
// Modularity (Girvan–Newman, Eq. III.1 of the paper) with the resolution
// parameter gamma of §III-B:
//
//   mod(ζ, G) = Σ_C [ ω(C)/ω(E) − γ · vol(C)² / (4 ω(E)²) ]
//
// γ = 1 is standard modularity; γ -> 0 favours one community, γ -> 2m
// favours singletons. Evaluation is a single parallel edge sweep plus a
// parallel volume reduction, O(m + n).

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

class Modularity {
public:
    explicit Modularity(double gamma = 1.0) : gamma_(gamma) {}

    /// Modularity of zeta on g. Requires a complete partition (every node
    /// assigned) with ids < zeta.upperBound().
    double getQuality(const Partition& zeta, const Graph& g) const;
    /// Frozen-graph overload — same kernel over the CSR layout.
    double getQuality(const Partition& zeta, const CsrGraph& g) const;

    double gamma() const noexcept { return gamma_; }

private:
    double gamma_;
};

/// Δmod of moving node u from community C to community D (both given with
/// the weight from u into them, excluding u itself), per the closed form in
/// §III-B. Shared by PLM, PLMR and the sequential Louvain baseline so all
/// movers agree on the objective.
///
///   omegaE      = ω(E)
///   weightToC   = ω(u, C \ {u})
///   weightToD   = ω(u, D \ {u})
///   volC        = vol(C \ {u}) (volume of C with u already removed)
///   volD        = vol(D) (u not a member)
///   volU        = vol(u)
inline double deltaModularity(double omegaE, double weightToC, double weightToD,
                              double volC, double volD, double volU,
                              double gamma = 1.0) {
    const double gain = (weightToD - weightToC) / omegaE;
    const double penalty =
        gamma * ((volC - volD) * volU) / (2.0 * omegaE * omegaE);
    return gain + penalty;
}

} // namespace grapr
