#include "quality/conductance.hpp"

#include <algorithm>
#include <cmath>

namespace grapr {

namespace {

struct CommunityAggregates {
    std::vector<double> volume;  ///< vol(C)
    std::vector<double> cut;     ///< ω(C, V\C)
    std::vector<count> intraEdges;
    std::vector<count> size;
    double totalVolume = 0.0;
    count communities = 0;
};

CommunityAggregates aggregate(const Partition& zeta, const Graph& g) {
    require(zeta.numberOfElements() >= g.upperNodeIdBound(),
            "conductance: partition does not cover the graph");
    const count k = zeta.upperBound();
    require(k > 0, "conductance: empty partition");
    CommunityAggregates agg;
    agg.volume.assign(k, 0.0);
    agg.cut.assign(k, 0.0);
    agg.intraEdges.assign(k, 0);
    agg.size.assign(k, 0);
    agg.communities = k;

    g.forNodes([&](node u) {
        const node c = zeta[u];
        require(c != none && c < k, "conductance: node unassigned");
        ++agg.size[c];
        agg.volume[c] += g.volume(u);
    });
    g.forEdges([&](node u, node v, edgeweight w) {
        if (zeta[u] == zeta[v]) {
            if (u != v) ++agg.intraEdges[zeta[u]];
        } else {
            agg.cut[zeta[u]] += w;
            agg.cut[zeta[v]] += w;
        }
    });
    agg.totalVolume = 2.0 * g.totalEdgeWeight();
    return agg;
}

} // namespace

std::vector<double> communityConductances(const Partition& zeta,
                                          const Graph& g) {
    const CommunityAggregates agg = aggregate(zeta, g);
    std::vector<double> result(agg.communities, 0.0);
    for (count c = 0; c < agg.communities; ++c) {
        const double volC = agg.volume[c];
        const double volRest = agg.totalVolume - volC;
        const double denom = std::min(volC, volRest);
        result[c] = denom > 0.0 ? agg.cut[c] / denom : 0.0;
    }
    return result;
}

ConductanceSummary conductanceSummary(const Partition& zeta, const Graph& g) {
    const CommunityAggregates agg = aggregate(zeta, g);
    const std::vector<double> phi = communityConductances(zeta, g);
    ConductanceSummary summary;
    double total = 0.0;
    double weighted = 0.0;
    double weightTotal = 0.0;
    double minimum = 1.0;
    double maximum = 0.0;
    count populated = 0;
    for (count c = 0; c < phi.size(); ++c) {
        if (agg.size[c] == 0) continue;
        ++populated;
        total += phi[c];
        weighted += phi[c] * agg.volume[c];
        weightTotal += agg.volume[c];
        minimum = std::min(minimum, phi[c]);
        maximum = std::max(maximum, phi[c]);
    }
    if (populated == 0) return summary;
    summary.minimum = minimum;
    summary.maximum = maximum;
    summary.average = total / static_cast<double>(populated);
    summary.weightedAverage = weightTotal > 0.0 ? weighted / weightTotal : 0.0;
    return summary;
}

double averageIntraDensity(const Partition& zeta, const Graph& g) {
    const CommunityAggregates agg = aggregate(zeta, g);
    double total = 0.0;
    count contributors = 0;
    for (count c = 0; c < agg.communities; ++c) {
        const count s = agg.size[c];
        if (s < 2) continue;
        const double possible = static_cast<double>(s) * (s - 1) / 2.0;
        total += static_cast<double>(agg.intraEdges[c]) / possible;
        ++contributors;
    }
    return contributors == 0 ? 0.0 : total / contributors;
}

double performanceMeasure(const Partition& zeta, const Graph& g) {
    const CommunityAggregates agg = aggregate(zeta, g);
    const count n = g.numberOfNodes();
    if (n < 2) return 1.0;
    const double allPairs = static_cast<double>(n) * (n - 1) / 2.0;

    double intraPairs = 0.0;
    count intraEdges = 0;
    for (count c = 0; c < agg.communities; ++c) {
        const double s = static_cast<double>(agg.size[c]);
        intraPairs += s * (s - 1) / 2.0;
        intraEdges += agg.intraEdges[c];
    }
    count nonLoopEdges = 0;
    g.forEdges([&](node u, node v, edgeweight) {
        if (u != v) ++nonLoopEdges;
    });
    const count interEdges = nonLoopEdges - intraEdges;
    // Correct: intra pairs WITH an edge + inter pairs WITHOUT an edge.
    const double interPairs = allPairs - intraPairs;
    const double correct = static_cast<double>(intraEdges) +
                           (interPairs - static_cast<double>(interEdges));
    return correct / allPairs;
}

} // namespace grapr
