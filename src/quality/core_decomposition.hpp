#pragma once
// k-core decomposition by bucket peeling (Batagelj–Zaversnik, O(m)).
// Coreness complements community structure analysis: the dense cores of a
// complex network are where community detection is hardest (hub overlap),
// and core numbers are a standard feature in the network profiles the
// framework targets.

#include <vector>

#include "graph/graph.hpp"

namespace grapr {

class CoreDecomposition {
public:
    explicit CoreDecomposition(const Graph& g) : g_(&g) {}

    void run();

    /// Core number per node (0 for removed/isolated nodes).
    const std::vector<count>& coreNumbers() const;

    /// Largest core number (the degeneracy of the graph).
    count degeneracy() const;

    /// Number of nodes with core number >= k.
    count coreSize(count k) const;

private:
    const Graph* g_;
    std::vector<count> core_;
    count degeneracy_ = 0;
    bool hasRun_ = false;
};

} // namespace grapr
