#pragma once
// Coverage: the fraction of total edge weight that falls within
// communities. The objective PLP implicitly maximizes (§III-A: "a locally
// greedy coverage maximizer").

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

class Coverage {
public:
    /// Coverage of zeta on g, in [0, 1].
    double getQuality(const Partition& zeta, const Graph& g) const;
    /// Frozen-graph overload — same kernel over the CSR layout.
    double getQuality(const Partition& zeta, const CsrGraph& g) const;
};

} // namespace grapr
