#pragma once
// Partition similarity measures:
//
//  * Jaccard index over node pairs — the paper's accuracy measure for the
//    LFR benchmark (Fig. 8) and its base-solution diversity probe (§V-D,
//    "Jaccard dissimilarity").
//  * Rand index — pair-counting agreement.
//  * Normalized mutual information (NMI) — the information-theoretic
//    standard in the community detection literature.
//
// Pair counting is done exactly in O(n + Σ contingency cells) via a sparse
// contingency table, not by enumerating the O(n²) pairs.

#include "structures/partition.hpp"

namespace grapr {

/// Pair-counting summary of two partitions over the same node set.
struct PairCounts {
    count bothSame = 0;       ///< pairs together in A and in B (n11)
    count firstOnly = 0;      ///< together in A, split in B (n10)
    count secondOnly = 0;     ///< split in A, together in B (n01)
    count bothDifferent = 0;  ///< split in both (n00)
};

PairCounts countPairs(const Partition& a, const Partition& b);

/// Jaccard index n11 / (n11 + n10 + n01), 1 = identical grouping.
double jaccardIndex(const Partition& a, const Partition& b);

/// Rand index (n11 + n00) / all pairs.
double randIndex(const Partition& a, const Partition& b);

/// NMI with arithmetic-mean normalization, in [0, 1].
double normalizedMutualInformation(const Partition& a, const Partition& b);

} // namespace grapr
