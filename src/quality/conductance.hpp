#pragma once
// Per-community quality measures beyond modularity: conductance (the
// bottleneck measure — the paper's intro definition of a community as an
// "internally dense node set with sparse connections to the rest"),
// intra-community density, and the performance measure. These give the
// per-community drill-down that a single modularity number hides.

#include <vector>

#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

/// Conductance of one community C: ω(C, V\C) / min(vol(C), vol(V\C)).
/// 0 = perfectly separated, 1 = all edges leave. Communities with zero
/// volume report 0.
std::vector<double> communityConductances(const Partition& zeta,
                                          const Graph& g);

struct ConductanceSummary {
    double minimum = 0.0;
    double maximum = 0.0;
    double average = 0.0;
    /// Volume-weighted average — large communities count proportionally.
    double weightedAverage = 0.0;
};

ConductanceSummary conductanceSummary(const Partition& zeta, const Graph& g);

/// Fraction of realized intra-community edges over possible ones,
/// averaged over communities (unweighted; size-1 communities skipped).
double averageIntraDensity(const Partition& zeta, const Graph& g);

/// Performance (Fortunato §3): fraction of node pairs classified
/// correctly — intra pairs with an edge plus inter pairs without one,
/// over all pairs. Exact, computed from edge counts in O(m + k).
double performanceMeasure(const Partition& zeta, const Graph& g);

} // namespace grapr
