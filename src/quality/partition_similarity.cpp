#include "quality/partition_similarity.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

namespace grapr {

namespace {

/// Sparse contingency table between two partitions: for every community
/// pair (a-community, b-community) that co-occurs at some node, its size.
/// Both partitions are compacted into local id spaces first.
struct Contingency {
    std::vector<count> sizesA;
    std::vector<count> sizesB;
    std::unordered_map<std::uint64_t, count> cells;
    count n = 0;
};

Contingency buildContingency(const Partition& a, const Partition& b) {
    require(a.numberOfElements() == b.numberOfElements(),
            "partition similarity: element counts differ");
    Contingency table;
    std::unordered_map<node, node> remapA, remapB;
    for (node v = 0; v < a.numberOfElements(); ++v) {
        if (a[v] == none || b[v] == none) continue;
        auto [ia, insertedA] =
            remapA.emplace(a[v], static_cast<node>(remapA.size()));
        auto [ib, insertedB] =
            remapB.emplace(b[v], static_cast<node>(remapB.size()));
        const node ca = ia->second;
        const node cb = ib->second;
        if (ca >= table.sizesA.size()) table.sizesA.resize(ca + 1, 0);
        if (cb >= table.sizesB.size()) table.sizesB.resize(cb + 1, 0);
        ++table.sizesA[ca];
        ++table.sizesB[cb];
        const std::uint64_t key =
            (static_cast<std::uint64_t>(ca) << 32) | cb;
        ++table.cells[key];
        ++table.n;
    }
    return table;
}

count choose2(count x) { return x * (x - 1) / 2; }

} // namespace

PairCounts countPairs(const Partition& a, const Partition& b) {
    const Contingency table = buildContingency(a, b);
    PairCounts counts;
    count sameA = 0, sameB = 0, both = 0;
    for (count s : table.sizesA) sameA += choose2(s);
    for (count s : table.sizesB) sameB += choose2(s);
    for (const auto& [key, size] : table.cells) both += choose2(size);
    const count allPairs = choose2(table.n);
    counts.bothSame = both;
    counts.firstOnly = sameA - both;
    counts.secondOnly = sameB - both;
    counts.bothDifferent = allPairs - sameA - sameB + both;
    return counts;
}

double jaccardIndex(const Partition& a, const Partition& b) {
    const PairCounts c = countPairs(a, b);
    const count denom = c.bothSame + c.firstOnly + c.secondOnly;
    if (denom == 0) return 1.0; // both partitions are all-singletons
    return static_cast<double>(c.bothSame) / static_cast<double>(denom);
}

double randIndex(const Partition& a, const Partition& b) {
    const PairCounts c = countPairs(a, b);
    const count total =
        c.bothSame + c.firstOnly + c.secondOnly + c.bothDifferent;
    if (total == 0) return 1.0;
    return static_cast<double>(c.bothSame + c.bothDifferent) /
           static_cast<double>(total);
}

double normalizedMutualInformation(const Partition& a, const Partition& b) {
    const Contingency table = buildContingency(a, b);
    if (table.n == 0) return 1.0;
    const double n = static_cast<double>(table.n);

    auto entropy = [n](const std::vector<count>& sizes) {
        double h = 0.0;
        for (count s : sizes) {
            if (s == 0) continue;
            const double p = static_cast<double>(s) / n;
            h -= p * std::log(p);
        }
        return h;
    };
    const double ha = entropy(table.sizesA);
    const double hb = entropy(table.sizesB);

    double mutualInformation = 0.0;
    for (const auto& [key, size] : table.cells) {
        const auto ca = static_cast<node>(key >> 32);
        const auto cb = static_cast<node>(key & 0xffffffffULL);
        const double pij = static_cast<double>(size) / n;
        const double pi = static_cast<double>(table.sizesA[ca]) / n;
        const double pj = static_cast<double>(table.sizesB[cb]) / n;
        mutualInformation += pij * std::log(pij / (pi * pj));
    }
    if (ha == 0.0 && hb == 0.0) return 1.0; // both trivial partitions
    const double normalizer = (ha + hb) / 2.0;
    if (normalizer == 0.0) return 0.0;
    return mutualInformation / normalizer;
}

} // namespace grapr
