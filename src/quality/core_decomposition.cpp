#include "quality/core_decomposition.hpp"

#include <algorithm>

namespace grapr {

void CoreDecomposition::run() {
    const Graph& g = *g_;
    const count bound = g.upperNodeIdBound();
    core_.assign(bound, 0);

    // Bucket sort nodes by degree (self-loops excluded from the peeling
    // degree: a loop cannot be peeled away by removing a neighbor).
    std::vector<count> degree(bound, 0);
    count maxDegree = 0;
    g.forNodes([&](node v) {
        count d = 0;
        g.forNeighborsOf(v, [&](node u, edgeweight) {
            if (u != v) ++d;
        });
        degree[v] = d;
        maxDegree = std::max(maxDegree, d);
    });

    std::vector<count> bucketStart(maxDegree + 2, 0);
    g.forNodes([&](node v) { ++bucketStart[degree[v] + 1]; });
    for (count d = 1; d < bucketStart.size(); ++d) {
        bucketStart[d] += bucketStart[d - 1];
    }
    std::vector<node> order(g.numberOfNodes());
    std::vector<count> position(bound, 0);
    {
        std::vector<count> cursor(bucketStart.begin(),
                                  bucketStart.end() - 1);
        g.forNodes([&](node v) {
            position[v] = cursor[degree[v]]++;
            order[position[v]] = v;
        });
    }
    // bucketStart[d] = index of the first node with current degree d.

    degeneracy_ = 0;
    for (count i = 0; i < order.size(); ++i) {
        const node v = order[i];
        core_[v] = degree[v];
        degeneracy_ = std::max(degeneracy_, degree[v]);
        g.forNeighborsOf(v, [&](node u, edgeweight) {
            if (u == v || degree[u] <= degree[v]) return;
            // Move u one bucket down: swap it with the first node of its
            // current bucket, then shrink the bucket.
            const count du = degree[u];
            const count posU = position[u];
            const count posFirst = bucketStart[du];
            const node first = order[posFirst];
            if (u != first) {
                std::swap(order[posU], order[posFirst]);
                position[u] = posFirst;
                position[first] = posU;
            }
            ++bucketStart[du];
            --degree[u];
        });
    }
    hasRun_ = true;
}

const std::vector<count>& CoreDecomposition::coreNumbers() const {
    require(hasRun_, "CoreDecomposition: call run() first");
    return core_;
}

count CoreDecomposition::degeneracy() const {
    require(hasRun_, "CoreDecomposition: call run() first");
    return degeneracy_;
}

count CoreDecomposition::coreSize(count k) const {
    require(hasRun_, "CoreDecomposition: call run() first");
    count size = 0;
    g_->forNodes([&](node v) {
        if (core_[v] >= k) ++size;
    });
    return size;
}

} // namespace grapr
