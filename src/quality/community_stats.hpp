#pragma once
// Descriptive statistics of a community detection solution: community
// count, size distribution, intra/inter edge weight split. Backs the
// qualitative analysis of §VI (e.g. "PLP detects ca. 1000 small
// communities, PLM/PLMR/EPP ca. 100" on PGPgiantcompo).

#include <vector>

#include "graph/graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

struct CommunitySizeStats {
    count communities = 0;
    count smallest = 0;
    count largest = 0;
    double average = 0.0;
    double median = 0.0;
};

/// Size distribution of the communities of zeta (ignores `none`).
CommunitySizeStats communitySizeStats(const Partition& zeta);

struct EdgeCut {
    edgeweight intraWeight = 0.0;
    edgeweight interWeight = 0.0;
};

/// Intra- vs inter-community edge weight (loops are intra by definition).
EdgeCut communityEdgeCut(const Partition& zeta, const Graph& g);

} // namespace grapr
