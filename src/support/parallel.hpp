#pragma once
// Thin OpenMP conveniences: thread-count control, parallel prefix sums and
// reductions, and a timestamped sparse accumulator used in the hot loops of
// PLP and PLM.
//
// The algorithms in src/community use `#pragma omp parallel for
// schedule(guided)` directly, as the paper prescribes for scale-free degree
// distributions; these helpers cover the supporting plumbing.

#include <atomic>
#include <cstddef>
#include <vector>

#include <omp.h>

#include "support/common.hpp"

namespace grapr {

namespace Parallel {

/// Rebuilds the join happens-before edge of a parallel region for
/// ThreadSanitizer. GCC ships libgomp uninstrumented, so TSan cannot see
/// the barrier at a region's end; plain stores made by workers and read by
/// the caller after the join are then (flakily) reported as races. One
/// release-RMW per thread at region end (`arrive`), acquired once after
/// the region (`join`), expresses the same edge in standard C++ atomics
/// that TSan does understand. Compiled to no-ops outside TSan builds.
class TsanJoinFence {
public:
#if defined(__SANITIZE_THREAD__)
    void arrive() noexcept { token_.fetch_add(1, std::memory_order_acq_rel); }
    void join() noexcept { (void)token_.load(std::memory_order_acquire); }

private:
    std::atomic<int> token_{0};
#else
    void arrive() noexcept {}
    void join() noexcept {}
#endif
};

/// Number of threads OpenMP will use for the next parallel region.
int maxThreads();

/// Set the OpenMP thread count (also re-seeds nothing; callers who need
/// reproducibility should call Random::setSeed afterwards so the per-thread
/// RNG pool matches the new count).
void setThreads(int threads);

/// Exclusive prefix sum of `values` in place; returns the total.
/// Parallel two-pass algorithm for large inputs, sequential fallback below
/// a size threshold where the parallel version cannot win.
count prefixSum(std::vector<count>& values);

/// Sum of a vector<double> with per-thread partials (deterministic order
/// within a fixed thread count).
double sum(const std::vector<double>& values);

/// Maximum element of a vector<count>; 0 for empty input.
count max(const std::vector<count>& values);

} // namespace Parallel

/// Dense map from small-integer keys to double values with O(1) clear.
///
/// PLP and PLM repeatedly accumulate "edge weight from node u into each
/// neighboring community" and then discard the map. A std::map per node (the
/// paper's first implementation) was found to be the bottleneck; this is the
/// "recompute with fast scratch" strategy the paper settled on. Each thread
/// owns one accumulator sized to the key universe; clearing bumps a
/// generation stamp instead of touching memory.
class SparseAccumulator {
public:
    SparseAccumulator() = default;
    explicit SparseAccumulator(index keyUniverse) { resize(keyUniverse); }

    void resize(index keyUniverse) {
        values_.assign(keyUniverse, 0.0);
        stamp_.assign(keyUniverse, 0);
        touched_.clear();
        generation_ = 1;
    }

    index capacity() const noexcept { return values_.size(); }

    /// Add `delta` to key `k`, registering k on first touch this generation.
    void add(index k, double delta) {
        if (stamp_[k] != generation_) {
            stamp_[k] = generation_;
            values_[k] = 0.0;
            touched_.push_back(k);
        }
        values_[k] += delta;
    }

    /// Value of key `k` this generation (0 if untouched).
    double operator[](index k) const {
        return stamp_[k] == generation_ ? values_[k] : 0.0;
    }

    /// Hint that key `k` is about to be added to. Kernels that know their
    /// keys a few steps ahead (e.g. scans over a CSR row) use this to hide
    /// the random-access latency of the stamp/value arrays.
    void prefetch(index k) const {
        __builtin_prefetch(&stamp_[k], 1, 1);
        __builtin_prefetch(&values_[k], 1, 1);
    }

    /// Keys touched since the last clear, in first-touch order.
    const std::vector<index>& touched() const noexcept { return touched_; }

    /// O(touched) clear; O(1) amortized per subsequent add.
    void clear() {
        touched_.clear();
        ++generation_;
        if (generation_ == 0) { // stamp wraparound: full reset
            stamp_.assign(stamp_.size(), 0);
            generation_ = 1;
        }
    }

private:
    std::vector<double> values_;
    std::vector<std::uint32_t> stamp_;
    std::vector<index> touched_;
    std::uint32_t generation_ = 1;
};

/// Pool of per-thread scratch objects, one slot per thread OpenMP could
/// deliver to the next parallel region.
///
/// This is the single sanctioned idiom for per-thread kernel scratch —
/// it replaces both of the historical spellings (a bespoke ScratchPool
/// and hand-rolled `scratch[omp_get_thread_num()]` vectors), which made
/// the team-size assumptions implicit. The pool is sized at construction
/// to `omp_get_max_threads()`; OpenMP is free to deliver a *smaller* team
/// (num_threads is only a request), which is always safe here because
/// thread numbers of a team are dense in [0, teamSize). The converse —
/// the thread count being raised after construction, or `local()` being
/// called from a nested region with a larger cumulative team — would
/// index out of bounds, so `local()` bounds-checks and fails loudly
/// instead of corrupting memory.
///
/// Constructor arguments are forwarded to every slot's constructor.
template <typename T>
class ThreadLocalPool {
public:
    template <typename... Args>
    explicit ThreadLocalPool(const Args&... args) {
        const auto slots = static_cast<std::size_t>(omp_get_max_threads());
        slots_.reserve(slots);
        for (std::size_t t = 0; t < slots; ++t) slots_.emplace_back(args...);
    }

    /// The calling thread's slot. Valid from inside a parallel region or
    /// serial code (thread 0); aborts if the team outgrew the pool.
    T& local() {
        const auto t = static_cast<std::size_t>(omp_get_thread_num());
        require(t < slots_.size(),
                "ThreadLocalPool: thread id outside the pool — the OpenMP "
                "thread count was raised after construction (construct the "
                "pool after Parallel::setThreads)");
        return slots_[t];
    }

    /// Number of slots (the max team size the pool was built for).
    std::size_t size() const noexcept { return slots_.size(); }

    /// Slot access for sequential reductions over all potential threads
    /// (slots of threads that never ran are default/ctor-arg state).
    T& slot(std::size_t t) { return slots_[t]; }
    const T& slot(std::size_t t) const { return slots_[t]; }

private:
    std::vector<T> slots_;
};

/// Pool of per-thread SparseAccumulators sized to one key universe.
using ScratchPool = ThreadLocalPool<SparseAccumulator>;

} // namespace grapr
