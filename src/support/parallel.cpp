#include "support/parallel.hpp"

#include <algorithm>

namespace grapr::Parallel {

int maxThreads() { return omp_get_max_threads(); }

void setThreads(int threads) {
    if (threads >= 1) omp_set_num_threads(threads);
}

count prefixSum(std::vector<count>& values) {
    const std::size_t n = values.size();
    constexpr std::size_t kParallelThreshold = 1u << 16;
    if (n < kParallelThreshold || maxThreads() == 1) {
        count running = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const count v = values[i];
            values[i] = running;
            running += v;
        }
        return running;
    }

    const int threads = maxThreads();
    std::vector<count> blockTotals(static_cast<std::size_t>(threads) + 1, 0);
    const std::size_t chunk = (n + static_cast<std::size_t>(threads) - 1) /
                              static_cast<std::size_t>(threads);

#pragma omp parallel num_threads(threads)
    {
        const auto t = static_cast<std::size_t>(omp_get_thread_num());
        const std::size_t lo = std::min(t * chunk, n);
        const std::size_t hi = std::min(lo + chunk, n);
        count local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            const count v = values[i];
            values[i] = local;
            local += v;
        }
        blockTotals[t + 1] = local;
#pragma omp barrier
#pragma omp single
        {
            for (std::size_t b = 1; b < blockTotals.size(); ++b) {
                blockTotals[b] += blockTotals[b - 1];
            }
        }
        const count offset = blockTotals[t];
        if (offset != 0) {
            for (std::size_t i = lo; i < hi; ++i) values[i] += offset;
        }
    }
    return blockTotals.back();
}

double sum(const std::vector<double>& values) {
    double total = 0.0;
    const auto n = static_cast<std::int64_t>(values.size());
#pragma omp parallel for reduction(+ : total) schedule(static)
    for (std::int64_t i = 0; i < n; ++i) total += values[static_cast<std::size_t>(i)];
    return total;
}

count max(const std::vector<count>& values) {
    count best = 0;
    const auto n = static_cast<std::int64_t>(values.size());
#pragma omp parallel for reduction(max : best) schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
        best = std::max(best, values[static_cast<std::size_t>(i)]);
    }
    return best;
}

} // namespace grapr::Parallel
