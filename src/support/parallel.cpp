#include "support/parallel.hpp"

#include <algorithm>

namespace grapr::Parallel {

int maxThreads() { return omp_get_max_threads(); }

void setThreads(int threads) {
    if (threads >= 1) omp_set_num_threads(threads);
}

count prefixSum(std::vector<count>& values) {
    const std::size_t n = values.size();
    constexpr std::size_t kParallelThreshold = 1u << 16;
    if (n < kParallelThreshold || maxThreads() == 1) {
        count running = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const count v = values[i];
            values[i] = running;
            running += v;
        }
        return running;
    }

    const int threads = maxThreads();
    std::vector<count> blockTotals(static_cast<std::size_t>(threads) + 1, 0);
    const std::size_t chunk = (n + static_cast<std::size_t>(threads) - 1) /
                              static_cast<std::size_t>(threads);

    // Blocks are distributed by worksharing loops, NOT by thread id: the
    // old scheme gave block t to team member t, so a team smaller than
    // `threads` (num_threads is only a request) would silently skip the
    // trailing blocks. The implicit barriers after each `omp for` and the
    // `single` give the three-phase scan its ordering.
    TsanJoinFence fence;
#pragma omp parallel default(none)                                           \
    shared(values, blockTotals, chunk, n, threads, fence)
    {
#pragma omp for schedule(static)
        for (int t = 0; t < threads; ++t) {
            const auto st = static_cast<std::size_t>(t);
            const std::size_t lo = std::min(st * chunk, n);
            const std::size_t hi = std::min(lo + chunk, n);
            count local = 0;
            for (std::size_t i = lo; i < hi; ++i) {
                const count v = values[i];
                // grapr:lint-allow(benign-race): block [lo, hi) belongs to
                // exactly one loop iteration; no other thread touches it.
                // grapr:analyze-allow(shared-write-safety): barrier-phased
                // block ownership — i ranges over this iteration's [lo, hi)
                // only, a slice the derived-index rule cannot express.
                values[i] = local;
                local += v;
            }
            // grapr:lint-allow(benign-race): slot st+1 is owned by this
            // iteration; the single below reads it only after the implicit
            // barrier of this worksharing loop.
            blockTotals[st + 1] = local;
        }
#pragma omp single
        {
            for (std::size_t b = 1; b < blockTotals.size(); ++b) {
                // grapr:lint-allow(compound-shared-write): inside `omp
                // single` — exactly one thread runs this scan, bracketed
                // by the implicit barriers of single and the loops.
                blockTotals[b] += blockTotals[b - 1];
            }
        }
#pragma omp for schedule(static)
        for (int t = 0; t < threads; ++t) {
            const auto st = static_cast<std::size_t>(t);
            const std::size_t lo = std::min(st * chunk, n);
            const std::size_t hi = std::min(lo + chunk, n);
            const count offset = blockTotals[st];
            if (offset != 0) {
                // grapr:lint-allow(compound-shared-write): block [lo, hi)
                // is owned by this iteration — no concurrent writer.
                // grapr:analyze-allow(shared-write-safety): same
                // barrier-phased block ownership as the downsweep above.
                for (std::size_t i = lo; i < hi; ++i) values[i] += offset;
            }
        }
        fence.arrive();
    }
    fence.join();
    return blockTotals.back();
}

double sum(const std::vector<double>& values) {
    double total = 0.0;
    const auto n = static_cast<std::int64_t>(values.size());
#pragma omp parallel for default(none) shared(values, n)                     \
    reduction(+ : total) schedule(static)
    for (std::int64_t i = 0; i < n; ++i) total += values[static_cast<std::size_t>(i)];
    return total;
}

count max(const std::vector<count>& values) {
    count best = 0;
    const auto n = static_cast<std::int64_t>(values.size());
#pragma omp parallel for default(none) shared(values, n)                     \
    reduction(max : best) schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
        best = std::max(best, values[static_cast<std::size_t>(i)]);
    }
    return best;
}

} // namespace grapr::Parallel
