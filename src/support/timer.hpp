#pragma once
// Wall-clock timing for experiments. All running times reported by the
// benchmark harnesses are wall time, matching the paper's "time to
// solution" methodology (sequential and parallel codes measured alike).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace grapr {

/// Simple wall-clock stopwatch.
class Timer {
public:
    Timer() { restart(); }

    void restart() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last restart().
    double elapsed() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed.
    double elapsedMilliseconds() const { return elapsed() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Runs a callable `repetitions` times and reports the minimum, median-ish
/// (middle sample of the sorted list) and mean wall time. The paper averages
/// over multiple runs to compensate for fluctuations; harnesses use this.
struct TimingStats {
    double minimum = 0.0;
    double median = 0.0;
    double mean = 0.0;
};

template <typename F>
TimingStats timeRepeated(F&& f, int repetitions) {
    TimingStats stats;
    if (repetitions <= 0) return stats;
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repetitions));
    for (int r = 0; r < repetitions; ++r) {
        Timer t;
        f();
        samples.push_back(t.elapsed());
    }
    std::sort(samples.begin(), samples.end());
    stats.minimum = samples.front();
    stats.median = samples[samples.size() / 2];
    double total = 0.0;
    for (double s : samples) total += s;
    stats.mean = total / static_cast<double>(samples.size());
    return stats;
}

/// Human-readable duration, e.g. "1.24 s" or "310 ms".
std::string formatDuration(double seconds);

} // namespace grapr
