#pragma once
// CRC-32 (the ISO-HDLC / zlib polynomial 0xEDB88320), table-driven and
// chainable. Used by the durability layer to checksum WAL records and
// binary CSR checkpoints (graph/wal.hpp, io/binary_csr.hpp): a record is
// accepted on replay only if its stored CRC matches the recomputed one,
// which is what makes the torn-tail truncation rule safe — a partially
// written record cannot masquerade as a valid one.

#include <array>
#include <cstddef>
#include <cstdint>

namespace grapr {

namespace detail {

constexpr std::array<std::uint32_t, 256> makeCrc32Table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = makeCrc32Table();

} // namespace detail

/// CRC-32 of [data, data + bytes). Chainable: pass a previous result as
/// `seed` to checksum a logical stream in pieces without buffering it.
inline std::uint32_t crc32(const void* data, std::size_t bytes,
                           std::uint32_t seed = 0) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        c = detail::kCrc32Table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return ~c;
}

} // namespace grapr
