#include "support/fault.hpp"

#ifdef GRAPR_FAULT_INJECTION

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "support/common.hpp"

namespace grapr::fault {

namespace {

struct Trigger {
    std::uint64_t nth = 1;
    bool kill = false;
    bool fired = false;
};

struct State {
    std::mutex mutex;
    bool parsedEnv = false;
    bool capture = false;
    std::map<std::string, Trigger> triggers;
    std::map<std::string, std::uint64_t> counts;
};

State& state() {
    static State s;
    return s;
}

/// Fast-path gate: false only when we know nothing is armed and capture
/// is off, so production hits cost one relaxed load. Starts true because
/// the environment has not been consulted yet.
std::atomic<bool>& maybeArmed() {
    static std::atomic<bool> armed{true};
    return armed;
}

void updateArmedLocked(const State& s) {
    maybeArmed().store(!s.parsedEnv || s.capture || !s.triggers.empty(),
                       std::memory_order_relaxed);
}

void parseSpecLocked(State& s, const std::string& spec) {
    std::stringstream stream(spec);
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (item.empty()) continue;
        Trigger trigger;
        const std::size_t c1 = item.find(':');
        const std::string site = item.substr(0, c1);
        require(!site.empty(), "GRAPR_FAULT: empty site name in spec");
        if (c1 != std::string::npos) {
            const std::string rest = item.substr(c1 + 1);
            const std::size_t c2 = rest.find(':');
            const std::string nthText = rest.substr(0, c2);
            // A malformed count must fail loudly, not silently disarm:
            // a harness that misspells "wal.write:3" as "wal.write:3x"
            // would otherwise run to completion with no fault armed and
            // report green.
            if (nthText.empty()) {
                fail("GRAPR_FAULT: empty hit count in '" + item +
                     "' (expected site[:nth[:throw|kill]])");
            }
            char* end = nullptr;
            const unsigned long long nth =
                std::strtoull(nthText.c_str(), &end, 10);
            if (end == nullptr || *end != '\0') {
                fail("GRAPR_FAULT: non-numeric hit count '" + nthText +
                     "' in '" + item + "'");
            }
            if (nth == 0) {
                fail("GRAPR_FAULT: hit count must be >= 1 in '" + item +
                     "'");
            }
            trigger.nth = nth;
            if (c2 != std::string::npos) {
                const std::string action = rest.substr(c2 + 1);
                if (action == "kill") {
                    trigger.kill = true;
                } else if (action != "throw") {
                    fail("GRAPR_FAULT: unknown action '" + action +
                         "' in '" + item + "' (expected throw or kill)");
                }
            }
        }
        s.triggers[site] = trigger;
    }
}

void parseEnvLocked(State& s) {
    if (s.parsedEnv) return;
    s.parsedEnv = true;
    if (const char* env = std::getenv("GRAPR_FAULT")) {
        parseSpecLocked(s, env);
    }
}

/// Returns whether `site` triggers on this hit; sets `kill` accordingly.
bool triggered(const char* site, bool& kill) {
    if (!maybeArmed().load(std::memory_order_relaxed)) return false;
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    parseEnvLocked(s);
    updateArmedLocked(s);
    if (s.triggers.empty() && !s.capture) return false;
    const std::uint64_t n = ++s.counts[site];
    const auto it = s.triggers.find(site);
    if (it == s.triggers.end() || it->second.fired || n != it->second.nth) {
        return false;
    }
    it->second.fired = true;
    kill = it->second.kill;
    return true;
}

} // namespace

bool inject(const char* site) {
    bool kill = false;
    if (!triggered(site, kill)) return false;
    if (kill) {
        // Simulated crash: no destructors, no stream flushes, no atexit
        // handlers — whatever was not fsync'd is what recovery gets.
#if defined(__unix__) || defined(__APPLE__)
        ::_exit(kKilledExitCode);
#else
        std::_Exit(kKilledExitCode);
#endif
    }
    return true;
}

void hit(const char* site) {
    if (inject(site)) throw InjectedFault(site);
}

void configure(const std::string& spec) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.parsedEnv = true; // programmatic arming overrides the environment
    s.triggers.clear();
    s.counts.clear();
    parseSpecLocked(s, spec);
    updateArmedLocked(s);
}

void clearConfiguration() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.parsedEnv = true;
    s.triggers.clear();
    s.counts.clear();
    updateArmedLocked(s);
}

void captureSites(bool enabled) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    parseEnvLocked(s);
    s.capture = enabled;
    updateArmedLocked(s);
}

std::vector<std::pair<std::string, std::uint64_t>> sites() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return {s.counts.begin(), s.counts.end()};
}

} // namespace grapr::fault

#else // !GRAPR_FAULT_INJECTION

// Keep the translation unit non-empty when the framework is compiled out.
namespace grapr::fault {
void faultInjectionDisabled() {}
} // namespace grapr::fault

#endif // GRAPR_FAULT_INJECTION
