#pragma once
// Minimal leveled logging to stderr. Algorithms log at DEBUG/INFO; the
// default level WARN keeps benchmark output clean. Not asynchronous: grapr
// never logs from inner parallel loops.

#include <sstream>
#include <string>

namespace grapr {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

namespace Log {

void setLevel(LogLevel level);
LogLevel level();

/// Parse "trace" | "debug" | "info" | "warn" | "error" | "off".
LogLevel parseLevel(const std::string& name);

void write(LogLevel level, const std::string& message);

} // namespace Log

namespace detail {

template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

template <typename... Args>
void logDebug(Args&&... args) {
    if (Log::level() <= LogLevel::Debug)
        Log::write(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logInfo(Args&&... args) {
    if (Log::level() <= LogLevel::Info)
        Log::write(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logWarn(Args&&... args) {
    if (Log::level() <= LogLevel::Warn)
        Log::write(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logError(Args&&... args) {
    if (Log::level() <= LogLevel::Error)
        Log::write(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

} // namespace grapr
