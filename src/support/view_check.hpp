#pragma once
// GRAPR_VIEW_CHECK — a runtime backstop for the CSR view-lifecycle contract
// (DESIGN.md "View lifecycle contract").
//
// A CsrGraph is a frozen snapshot of a Graph. The contract says a view must
// never be *read* after its source Graph mutates: the snapshot would keep
// serving pre-mutation volumes, degrees and adjacency while the caller
// believes it reflects the current graph. The static analyzer
// (tools/grapr_analyze, check `csr-staleness`) proves the property for the
// code paths it can see; this header is the cheap runtime complement that
// catches whatever escapes it — views smuggled through containers, type
// erasure, or call chains the intra-procedural analysis cannot follow.
//
// Mechanism: every Graph owns a heap cell holding {generation counter,
// last-mutation site}. Each mutating method bumps the generation and stamps
// its caller's source location (std::source_location, captured through a
// defaulted parameter so the report points at user code, not graph.cpp).
// CsrGraph's freezing constructor shares the cell and records the
// generation plus its own call site; every accessor asserts the generation
// still matches and aborts with BOTH locations — where the view was frozen
// and where the source mutated — on a mismatch.
//
// Lifetime: the cell is a shared_ptr, so a view outliving its source Graph
// is fine (destruction is not mutation — the snapshot owns its arrays).
// Copying a Graph allocates a fresh cell: a copy is a new graph, and
// mutating it must not invalidate views frozen from the original. Moving
// transfers the cell: views follow the data.
//
// Everything compiles to `((void)0)` / empty members unless the build sets
// GRAPR_VIEW_CHECK (cmake -DGRAPR_VIEW_CHECK=ON). The macro arguments are
// not evaluated in that case, so call sites may name members that only
// exist under the flag.

#ifdef GRAPR_VIEW_CHECK

#include <atomic>
#include <cstdint>
#include <memory>
#include <source_location>

namespace grapr::view {

/// Shared generation cell: one per live Graph, referenced by every view
/// frozen from it. The mutation-site fields are plain stores behind the
/// atomic counter — Graph mutators are sequential by contract (the shadow
/// race checker enforces that independently), so the counter alone carries
/// the cross-thread visibility the *assert* path needs.
struct GenerationCell {
    std::atomic<std::uint64_t> generation{0};
    std::atomic<const char*> mutationFile{nullptr};
    std::atomic<std::uint32_t> mutationLine{0};
};

/// Abort with a two-location report. Defined in view_check.cpp.
[[noreturn]] void reportStaleView(const char* freezeFile,
                                  std::uint32_t freezeLine,
                                  const GenerationCell& cell,
                                  std::uint64_t frozenGeneration);

/// Owned by Graph. Copy = fresh cell (a copied graph is a new graph);
/// move = transfer (views follow the data); a moved-from stamp lazily
/// re-allocates on the next bump.
class SourceStamp {
public:
    SourceStamp() : cell_(std::make_shared<GenerationCell>()) {}

    SourceStamp(const SourceStamp&)
        : cell_(std::make_shared<GenerationCell>()) {}
    SourceStamp& operator=(const SourceStamp& other) {
        if (this != &other) cell_ = std::make_shared<GenerationCell>();
        return *this;
    }
    SourceStamp(SourceStamp&&) noexcept = default;
    SourceStamp& operator=(SourceStamp&&) noexcept = default;

    void bump(const std::source_location& site) {
        if (!cell_) cell_ = std::make_shared<GenerationCell>();
        cell_->mutationFile.store(site.file_name(),
                                  std::memory_order_relaxed);
        cell_->mutationLine.store(site.line(), std::memory_order_relaxed);
        cell_->generation.fetch_add(1, std::memory_order_release);
    }

    const std::shared_ptr<GenerationCell>& cell() const noexcept {
        return cell_;
    }

private:
    std::shared_ptr<GenerationCell> cell_;
};

/// Owned by CsrGraph. Disengaged (never fires) for views assembled from
/// raw arrays — they have no source Graph to go stale against.
class ViewStamp {
public:
    ViewStamp() = default;

    ViewStamp(const SourceStamp& source, const std::source_location& site)
        : cell_(source.cell()),
          frozenGeneration_(
              cell_->generation.load(std::memory_order_acquire)),
          freezeFile_(site.file_name()),
          freezeLine_(site.line()) {}

    void check() const {
        if (cell_ &&
            cell_->generation.load(std::memory_order_acquire) !=
                frozenGeneration_) {
            reportStaleView(freezeFile_, freezeLine_, *cell_,
                            frozenGeneration_);
        }
    }

private:
    std::shared_ptr<const GenerationCell> cell_;
    std::uint64_t frozenGeneration_ = 0;
    const char* freezeFile_ = nullptr;
    std::uint32_t freezeLine_ = 0;
};

} // namespace grapr::view

// Mutators take a defaulted std::source_location so the stale-view report
// names the *caller's* line, not graph.cpp. The parameter exists only under
// the flag; plain builds keep the unmodified signatures.
#define GRAPR_VIEW_SITE_PARAM                                                \
    , std::source_location graprViewSite_ = std::source_location::current()
#define GRAPR_VIEW_SITE_ARG , std::source_location graprViewSite_
// Variants for parameter lists that are otherwise empty (no leading comma).
#define GRAPR_VIEW_SITE_PARAM0                                               \
    std::source_location graprViewSite_ = std::source_location::current()
#define GRAPR_VIEW_SITE_ARG0 std::source_location graprViewSite_
// Forward the caller's site through an internal mutator-to-mutator call.
#define GRAPR_VIEW_SITE_FWD , graprViewSite_
#define GRAPR_VIEW_BUMP(stamp) (stamp).bump(graprViewSite_)
#define GRAPR_VIEW_ASSERT(stamp) (stamp).check()

#else // !GRAPR_VIEW_CHECK

#define GRAPR_VIEW_SITE_PARAM
#define GRAPR_VIEW_SITE_ARG
#define GRAPR_VIEW_SITE_PARAM0
#define GRAPR_VIEW_SITE_ARG0
#define GRAPR_VIEW_SITE_FWD
#define GRAPR_VIEW_BUMP(stamp) ((void)0)
#define GRAPR_VIEW_ASSERT(stamp) ((void)0)

#endif // GRAPR_VIEW_CHECK
