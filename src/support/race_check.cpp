#include "support/race_check.hpp"

#ifdef GRAPR_RACE_CHECK

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include <omp.h>

namespace grapr::race {

namespace {

// Record layout (64 bits):
//   [63..36] epoch      (28 bits)
//   [35]     benign site
//   [34]     written inside a parallel region
//   [33..20] thread id  (14 bits)
//   [19..0]  site id    (20 bits)
// A zero record means "never written" (epochs start at 1).

constexpr std::uint64_t kEpochShift = 36;
constexpr std::uint64_t kBenignBit = 1ULL << 35;
constexpr std::uint64_t kParallelBit = 1ULL << 34;
constexpr std::uint64_t kThreadShift = 20;
constexpr std::uint64_t kThreadMask = (1ULL << 14) - 1;
constexpr std::uint64_t kSiteMask = (1ULL << 20) - 1;

std::atomic<std::uint32_t> gEpoch{1};
std::atomic<const char*> gPhaseName{"<start>"};

struct SiteTable {
    std::mutex mutex;
    std::vector<std::string> names;
    std::vector<bool> benign;
};

SiteTable& sites() {
    static SiteTable table;
    return table;
}

[[noreturn]] void fail(std::size_t cell, std::uint64_t prev,
                       std::uint64_t mine) {
    const auto prevSite = static_cast<std::uint32_t>(prev & kSiteMask);
    const auto mineSite = static_cast<std::uint32_t>(mine & kSiteMask);
    const auto prevThread =
        static_cast<unsigned>((prev >> kThreadShift) & kThreadMask);
    const auto mineThread =
        static_cast<unsigned>((mine >> kThreadShift) & kThreadMask);
    std::fprintf(
        stderr,
        "grapr race checker: unannotated cross-thread write detected\n"
        "  phase:  %s (epoch %u)\n"
        "  cell:   %zu\n"
        "  write:  thread %u at %s\n"
        "  prior:  thread %u at %s\n"
        "Two threads wrote the same cell within one parallel phase. Either\n"
        "this is a real race, or the write is benign by design and must be\n"
        "annotated: use GRAPR_RACE_WRITE_BENIGN plus a\n"
        "'// grapr:benign-race(<var>): <reason>' comment at the site.\n",
        gPhaseName.load(std::memory_order_relaxed),
        static_cast<unsigned>(mine >> kEpochShift), cell, mineThread,
        siteName(mineSite), prevThread, siteName(prevSite));
    std::fflush(stderr);
    std::abort();
}

} // namespace

std::uint32_t registerSite(const char* file, int line, bool benign) {
    SiteTable& table = sites();
    std::lock_guard<std::mutex> lock(table.mutex);
    // Keep only the path tail; full build paths bloat the report.
    const char* tail = file;
    for (const char* p = file; *p; ++p) {
        if ((*p == '/' || *p == '\\') && std::strstr(p, "src") == p + 1) {
            tail = p + 1;
        }
    }
    table.names.push_back(std::string(tail) + ":" + std::to_string(line));
    table.benign.push_back(benign);
    const auto id = static_cast<std::uint32_t>(table.names.size() - 1);
    if (id > kSiteMask) {
        std::fprintf(stderr, "grapr race checker: site table overflow\n");
        std::abort();
    }
    return id;
}

const char* siteName(std::uint32_t site) {
    SiteTable& table = sites();
    std::lock_guard<std::mutex> lock(table.mutex);
    return site < table.names.size() ? table.names[site].c_str()
                                     : "<unknown site>";
}

void beginPhase(const char* name) {
    if (omp_in_parallel()) {
        std::fprintf(stderr,
                     "grapr race checker: GRAPR_RACE_PHASE(\"%s\") called "
                     "inside a parallel region\n",
                     name);
        std::abort();
    }
    gPhaseName.store(name, std::memory_order_relaxed);
    gEpoch.fetch_add(1, std::memory_order_acq_rel);
}

std::uint32_t currentEpoch() {
    return gEpoch.load(std::memory_order_relaxed);
}

namespace {

struct BenignTrace {
    std::mutex mutex;
    std::vector<std::string> names;
};

BenignTrace& benignTrace() {
    static BenignTrace trace;
    return trace;
}

} // namespace

void noteBenignSite(const char* name) {
    BenignTrace& trace = benignTrace();
    std::lock_guard<std::mutex> lock(trace.mutex);
    for (const std::string& have : trace.names) {
        if (have == name) return;
    }
    trace.names.emplace_back(name);
}

std::vector<std::string> benignSitesExecuted() {
    BenignTrace& trace = benignTrace();
    std::lock_guard<std::mutex> lock(trace.mutex);
    std::vector<std::string> out = trace.names;
    std::sort(out.begin(), out.end());
    return out;
}

void ShadowCells::reset(std::size_t n) {
    n_ = n;
    cells_.reset(n == 0 ? nullptr : new std::atomic<std::uint64_t>[n]);
    for (std::size_t i = 0; i < n; ++i) {
        cells_[i].store(0, std::memory_order_relaxed);
    }
}

void ShadowCells::recordWrite(std::size_t cell, std::uint32_t site,
                              bool benign) {
    if (cell >= n_) return; // structure grew without reset; stay silent
    const bool inParallel = omp_in_parallel() != 0;
    const auto epoch =
        static_cast<std::uint64_t>(gEpoch.load(std::memory_order_relaxed));
    const auto thread =
        static_cast<std::uint64_t>(omp_get_thread_num()) & kThreadMask;
    const std::uint64_t mine = (epoch << kEpochShift) |
                               (benign ? kBenignBit : 0) |
                               (inParallel ? kParallelBit : 0) |
                               (thread << kThreadShift) |
                               (site & kSiteMask);
    const std::uint64_t prev =
        cells_[cell].exchange(mine, std::memory_order_acq_rel);
    if (prev == 0) return;
    if (!inParallel || !(prev & kParallelBit)) return;
    if ((prev >> kEpochShift) != epoch) return;
    if (((prev >> kThreadShift) & kThreadMask) == thread) return;
    if ((prev & kBenignBit) || benign) return;
    fail(cell, prev, mine);
}

} // namespace grapr::race

#endif // GRAPR_RACE_CHECK
