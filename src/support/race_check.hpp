#pragma once
// GRAPR_RACE_CHECK — an in-tree shadow race checker for the label/structure
// write paths (Partition, Cover, CsrGraph assembly).
//
// Motivation: the repo's concurrency contract (DESIGN.md "Concurrency
// contract") says parallel label updates may be *read* stale by other
// threads, but every cell is *written* by at most one thread per parallel
// phase. ThreadSanitizer cannot check that contract selectively — it flags
// the benign stale reads too, needs a suppression file, and an
// uninstrumented libgomp blinds it to OpenMP's happens-before edges. This
// checker is the complement: it watches only writes, knows the phase
// structure, and runs in any debug build at a fraction of TSan's cost.
//
// Mechanism: each checked structure owns a shadow array with one atomic
// 64-bit record per cell, packing {epoch, thread, site id, flags}. A write
// exchanges its record in; if the previous record is from the same epoch,
// a different thread, inside a parallel region, and neither site is
// annotated benign, the checker prints both source locations and aborts.
// Epochs advance at phase boundaries (GRAPR_RACE_PHASE), called outside
// parallel regions — e.g. once per PLM move round — so writes in
// *successive* rounds never alias.
//
// All hooks compile to `((void)0)` unless the build sets GRAPR_RACE_CHECK
// (cmake -DGRAPR_RACE_CHECK=ON). The macro arguments are not evaluated in
// that case, so call sites may reference members that only exist under the
// flag.

#ifdef GRAPR_RACE_CHECK

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace grapr::race {

/// Register a write site (FILE:LINE). Called once per call site through a
/// function-local static in the GRAPR_RACE_WRITE macros. `benign` marks the
/// site as a tolerated race (must carry a grapr:benign-race annotation in
/// source — the lint cross-checks that).
std::uint32_t registerSite(const char* file, int line, bool benign);

/// Human-readable "file:line" of a registered site.
const char* siteName(std::uint32_t site);

/// Advance the global epoch. Must be called OUTSIDE any parallel region,
/// at every parallel phase boundary of an instrumented algorithm (e.g.
/// before each PLM move round). `name` shows up in failure reports.
void beginPhase(const char* name);

/// Current epoch (for tests).
std::uint32_t currentEpoch();

/// Record that the named benign-race write site executed. Called (once per
/// site, via GRAPR_RACE_BENIGN_SITE's once-flag) from inside parallel
/// regions, so it must be thread-safe.
void noteBenignSite(const char* name);

/// Sorted names of every benign-race site that executed so far. The
/// manifest round-trip test (tests/benign_races.txt) diffs this against
/// the runtime= lists after driving each algorithm.
std::vector<std::string> benignSitesExecuted();

/// Per-cell last-writer log. One record per cell of the shadowed array.
/// Copying a ShadowCells produces a *fresh* shadow of the same size (the
/// copied-from history belongs to the source object); moving transfers it.
class ShadowCells {
public:
    ShadowCells() = default;
    explicit ShadowCells(std::size_t n) { reset(n); }

    ShadowCells(const ShadowCells& other) { reset(other.n_); }
    ShadowCells& operator=(const ShadowCells& other) {
        if (this != &other) reset(other.n_);
        return *this;
    }
    ShadowCells(ShadowCells&&) noexcept = default;
    ShadowCells& operator=(ShadowCells&&) noexcept = default;

    /// (Re)size to n cells and forget all write history.
    void reset(std::size_t n);

    /// Record a write to `cell` from the calling thread at `site`; abort
    /// with both locations on an unannotated cross-thread same-epoch
    /// write. `benign` is the site's static annotation flag (passed by the
    /// macro so the hot path needs no site-table lookup).
    void recordWrite(std::size_t cell, std::uint32_t site, bool benign);

    std::size_t size() const noexcept { return n_; }

private:
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
    std::size_t n_ = 0;
};

} // namespace grapr::race

#define GRAPR_RACE_WRITE(shadow, cell)                                       \
    do {                                                                     \
        static const std::uint32_t graprRaceSite_ =                          \
            ::grapr::race::registerSite(__FILE__, __LINE__, false);          \
        (shadow).recordWrite((cell), graprRaceSite_, false);                 \
    } while (0)

#define GRAPR_RACE_WRITE_BENIGN(shadow, cell)                                \
    do {                                                                     \
        static const std::uint32_t graprRaceSite_ =                          \
            ::grapr::race::registerSite(__FILE__, __LINE__, true);           \
        (shadow).recordWrite((cell), graprRaceSite_, true);                  \
    } while (0)

#define GRAPR_RACE_PHASE(name) ::grapr::race::beginPhase(name)

// Names a benign-race write site for the manifest round-trip
// (tests/benign_races.txt runtime= lists). The once-flag keeps the hot
// path to one relaxed load after the first execution; `name` must match a
// runtime= token — grapr_analyze's benign-race-manifest check enforces the
// correspondence both ways.
#define GRAPR_RACE_BENIGN_SITE(name)                                         \
    do {                                                                     \
        static std::atomic<bool> graprBenignNoted_{false};                   \
        if (!graprBenignNoted_.load(std::memory_order_relaxed) &&            \
            !graprBenignNoted_.exchange(true, std::memory_order_relaxed)) {  \
            ::grapr::race::noteBenignSite(name);                             \
        }                                                                    \
    } while (0)

#else // !GRAPR_RACE_CHECK

#define GRAPR_RACE_WRITE(shadow, cell) ((void)0)
#define GRAPR_RACE_WRITE_BENIGN(shadow, cell) ((void)0)
#define GRAPR_RACE_PHASE(name) ((void)0)
#define GRAPR_RACE_BENIGN_SITE(name) ((void)0)

#endif // GRAPR_RACE_CHECK
