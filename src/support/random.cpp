#include "support/random.hpp"

#include <atomic>
#include <cmath>

#include <omp.h>

namespace grapr::Random {

namespace {

// Seed state is a pair of atomics instead of a mutex-guarded pool: the old
// design kept a global std::vector<SplitMix64> and rebuilt it under a lock
// when a late thread appeared, invalidating engine references other threads
// were concurrently drawing from. Thread-local engines keyed by a seed
// version cannot race — setSeed only bumps the version, and each thread
// re-derives its own engine on its next draw.
std::atomic<std::uint64_t> globalSeed{42};
std::atomic<std::uint64_t> seedVersion{1};

/// Mix (seed, streamId) into an engine seed. Feeding the raw pair into
/// SplitMix64 directly would correlate streams of consecutive ids; two
/// scramble rounds decorrelate them (SplitMix64's own finalizer).
std::uint64_t deriveStreamSeed(std::uint64_t seed, std::uint64_t streamId) {
    SplitMix64 mixer(seed ^ (streamId * 0xbf58476d1ce4e5b9ULL));
    mixer();
    return mixer();
}

struct ThreadEngine {
    std::uint64_t version = 0; // 0 = never seeded
    SplitMix64 engine{0};
};

ThreadEngine& localEngine() {
    thread_local ThreadEngine local;
    const std::uint64_t version = seedVersion.load(std::memory_order_acquire);
    if (local.version != version) {
        local.version = version;
        const auto tid =
            static_cast<std::uint64_t>(omp_get_thread_num());
        local.engine = SplitMix64(deriveStreamSeed(
            globalSeed.load(std::memory_order_acquire), tid));
    }
    return local;
}

} // namespace

void setSeed(std::uint64_t seed) {
    globalSeed.store(seed, std::memory_order_release);
    seedVersion.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t seed() { return globalSeed.load(std::memory_order_acquire); }

SplitMix64& engine() { return localEngine().engine; }

SplitMix64 forStream(std::uint64_t streamId) {
    // Offset stream ids away from the thread-id streams so a generator's
    // row 0 does not replay thread 0's sequence.
    return SplitMix64(deriveStreamSeed(
        globalSeed.load(std::memory_order_acquire),
        streamId ^ 0x94d049bb133111ebULL));
}

std::uint64_t integer(SplitMix64& rng, std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless bounded sampling.
    auto wide = static_cast<unsigned __int128>(rng()) * bound;
    auto low = static_cast<std::uint64_t>(wide);
    if (low < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (low < threshold) {
            wide = static_cast<unsigned __int128>(rng()) * bound;
            low = static_cast<std::uint64_t>(wide);
        }
    }
    return static_cast<std::uint64_t>(wide >> 64);
}

std::uint64_t integer(std::uint64_t bound) { return integer(engine(), bound); }

std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return lo + integer(hi - lo + 1);
}

double real(SplitMix64& rng) {
    // 53 random mantissa bits -> uniform double in [0,1).
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double real() { return real(engine()); }

double real(double lo, double hi) { return lo + (hi - lo) * real(); }

bool chance(SplitMix64& rng, double p) { return real(rng) < p; }

bool chance(double p) { return real() < p; }

index choice(index size) { return integer(size); }

count geometricSkip(SplitMix64& rng, double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return std::numeric_limits<count>::max();
    const double u = 1.0 - real(rng); // u in (0,1]
    return static_cast<count>(std::floor(std::log(u) / std::log1p(-p)));
}

count geometricSkip(double p) { return geometricSkip(engine(), p); }

} // namespace grapr::Random

namespace grapr {

PowerLawSampler::PowerLawSampler(count minValue, count maxValue, double gamma)
    : min_(minValue), max_(maxValue) {
    require(minValue >= 1, "PowerLawSampler: minValue must be >= 1");
    require(maxValue >= minValue, "PowerLawSampler: maxValue < minValue");
    const count buckets = max_ - min_ + 1;
    cdf_.resize(buckets);
    double total = 0.0;
    for (count i = 0; i < buckets; ++i) {
        const double k = static_cast<double>(min_ + i);
        total += std::pow(k, -gamma);
        cdf_[i] = total;
    }
    double expectation = 0.0;
    double prev = 0.0;
    for (count i = 0; i < buckets; ++i) {
        cdf_[i] /= total;
        expectation += static_cast<double>(min_ + i) * (cdf_[i] - prev);
        prev = cdf_[i];
    }
    mean_ = expectation;
}

count PowerLawSampler::sample() const {
    const double u = Random::real();
    // First bucket whose cdf >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return min_ + lo;
}

} // namespace grapr
