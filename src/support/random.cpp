#include "support/random.hpp"

#include <cmath>
#include <mutex>

#include <omp.h>

namespace grapr::Random {

namespace {

std::uint64_t globalSeed = 42;
std::vector<SplitMix64> pool; // one engine per OpenMP thread id
std::mutex poolMutex;

void rebuildPool(std::size_t threads) {
    pool.clear();
    pool.reserve(threads);
    // Derive per-thread streams by running a seeding engine; SplitMix64
    // outputs are equidistributed, so consecutive outputs give independent
    // stream seeds.
    SplitMix64 seeder(globalSeed);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(seeder());
}

} // namespace

void setSeed(std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(poolMutex);
    globalSeed = seed;
    rebuildPool(static_cast<std::size_t>(omp_get_max_threads()));
}

std::uint64_t seed() { return globalSeed; }

SplitMix64& engine() {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    if (tid >= pool.size()) {
        // Defensive growth: the thread count was raised after the last
        // setSeed. Serialized, but happens at most once per thread count.
        std::lock_guard<std::mutex> lock(poolMutex);
        if (tid >= pool.size()) rebuildPool(tid + 1);
    }
    return pool[tid];
}

std::uint64_t integer(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless bounded sampling.
    SplitMix64& rng = engine();
    auto wide = static_cast<unsigned __int128>(rng()) * bound;
    auto low = static_cast<std::uint64_t>(wide);
    if (low < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (low < threshold) {
            wide = static_cast<unsigned __int128>(rng()) * bound;
            low = static_cast<std::uint64_t>(wide);
        }
    }
    return static_cast<std::uint64_t>(wide >> 64);
}

std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return lo + integer(hi - lo + 1);
}

double real() {
    // 53 random mantissa bits -> uniform double in [0,1).
    return static_cast<double>(engine()() >> 11) * 0x1.0p-53;
}

double real(double lo, double hi) { return lo + (hi - lo) * real(); }

bool chance(double p) { return real() < p; }

index choice(index size) { return integer(size); }

count geometricSkip(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return std::numeric_limits<count>::max();
    const double u = 1.0 - real(); // u in (0,1]
    return static_cast<count>(std::floor(std::log(u) / std::log1p(-p)));
}

} // namespace grapr::Random

namespace grapr {

PowerLawSampler::PowerLawSampler(count minValue, count maxValue, double gamma)
    : min_(minValue), max_(maxValue) {
    require(minValue >= 1, "PowerLawSampler: minValue must be >= 1");
    require(maxValue >= minValue, "PowerLawSampler: maxValue < minValue");
    const count buckets = max_ - min_ + 1;
    cdf_.resize(buckets);
    double total = 0.0;
    for (count i = 0; i < buckets; ++i) {
        const double k = static_cast<double>(min_ + i);
        total += std::pow(k, -gamma);
        cdf_[i] = total;
    }
    double expectation = 0.0;
    double prev = 0.0;
    for (count i = 0; i < buckets; ++i) {
        cdf_[i] /= total;
        expectation += static_cast<double>(min_ + i) * (cdf_[i] - prev);
        prev = cdf_[i];
    }
    mean_ = expectation;
}

count PowerLawSampler::sample() const {
    const double u = Random::real();
    // First bucket whose cdf >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] < u) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return min_ + lo;
}

} // namespace grapr
