#pragma once
// Deterministic fault injection for the durability paths (DESIGN.md
// "Durability, recovery, and fault injection").
//
// Production code marks the places where an I/O failure or a crash is
// *interesting* with a named site:
//
//     GRAPR_FAULT_POINT("wal.append.fsync");   // throws or kills here
//     if (GRAPR_FAULT_INJECT("io.write.edgelist")) out.setstate(badbit);
//
// Site names follow `<subsystem>.<operation>[.<step>]`, all lowercase
// (e.g. "wal.append.write", "checkpoint.rename", "engine.publish").
// Sites are FORBIDDEN inside OpenMP parallel regions — grapr_lint rule
// `fault-point-in-parallel` — because a trigger throws or kills and must
// fire on the single-threaded commit path only, never mid-team.
//
// Arming. Nothing fires unless a site is armed, either via the
// environment:
//
//     GRAPR_FAULT="<site>:<nth>[:throw|kill][,<site>:<nth>[:action]...]"
//
// (parsed once, on the first hit) or programmatically from tests via
// fault::configure(spec). A spec fires exactly once, on the nth time its
// site is hit process-wide:
//   throw (default) — the site raises fault::InjectedFault, exercising
//       the error-propagation / rollback path;
//   kill — the site calls ::_exit(fault::kKilledExitCode): a simulated
//       crash with no destructors, no stream flushes, no atexit handlers.
//       The crash-consistency harness (tests/test_crash_recovery.cpp)
//       re-execs itself with kill specs and recovers the durable
//       directory afterwards.
//
// GRAPR_FAULT_POINT(site) throws/kills on trigger. GRAPR_FAULT_INJECT
// (site) instead *returns true* on a throw-action trigger (kill still
// kills), so a call site can simulate the failure in-band — e.g. set
// badbit on a stream and let the production error path surface it.
//
// When the build does not define GRAPR_FAULT_INJECTION (cmake
// -DGRAPR_FAULT_INJECTION=OFF) both macros compile to no-ops and the
// whole framework disappears from the binary. When armed with nothing,
// the per-hit cost is one relaxed atomic load.

#ifdef GRAPR_FAULT_INJECTION

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace grapr::fault {

/// Exit code of a `kill`-action trigger — distinguishable from crashes
/// (signals) and from ordinary failures in the re-exec harness.
inline constexpr int kKilledExitCode = 87;

/// Thrown by a `throw`-action trigger.
class InjectedFault : public std::runtime_error {
public:
    explicit InjectedFault(const std::string& site)
        : std::runtime_error("injected fault at " + site), site_(site) {}
    const std::string& site() const noexcept { return site_; }

private:
    std::string site_;
};

/// Record a hit of `site`; returns true when an armed throw-action spec
/// triggers on this hit (a kill-action spec does not return).
bool inject(const char* site);

/// inject() + throw InjectedFault on trigger.
void hit(const char* site);

/// Replace the armed specs (same grammar as GRAPR_FAULT) and reset all
/// hit counters. Overrides the environment for the rest of the process.
void configure(const std::string& spec);

/// Disarm everything and reset hit counters (site capture is kept).
void clearConfiguration();

/// Start/stop recording every site hit (for enumeration by the crash
/// harness). Capture is off by default.
void captureSites(bool enabled);

/// (site name, hits observed while armed or capturing), sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> sites();

} // namespace grapr::fault

#define GRAPR_FAULT_POINT(site) ::grapr::fault::hit(site)
#define GRAPR_FAULT_INJECT(site) ::grapr::fault::inject(site)

#else // !GRAPR_FAULT_INJECTION

#define GRAPR_FAULT_POINT(site) ((void)0)
#define GRAPR_FAULT_INJECT(site) false

#endif
