#pragma once
// Deterministic, thread-local random number generation.
//
// Parallel generators and algorithms must not share one RNG (contention and
// non-reproducibility) nor seed per call (correlation). grapr keeps a pool
// of SplitMix64 engines, one per OpenMP thread, all derived from a single
// global seed; re-seeding the pool restores bitwise-identical sequential
// behaviour, and per-thread streams are independent by construction.

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace grapr {

/// SplitMix64: tiny, fast, passes BigCrush; ideal as a per-thread engine
/// and as a seed sequence for other engines.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
        : state_(seed) {}

    result_type operator()() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }

private:
    std::uint64_t state_;
};

/// Thread-local random number generation. All free functions below draw
/// from an engine that lives in thread-local storage, derived from the
/// global seed and the calling thread's OpenMP id. setSeed bumps a seed
/// version; each thread lazily re-derives its engine on the next draw, so
/// re-seeding involves no shared mutable pool (the previous design rebuilt
/// a global vector of engines while other threads could still hold
/// references into it — a use-after-free race under defensive growth).
namespace Random {

/// (Re-)seed. Takes effect in every thread on its next draw.
void setSeed(std::uint64_t seed);

/// The seed last passed to setSeed (default 42).
std::uint64_t seed();

/// Engine of the calling thread (thread-local; re-derived after setSeed).
SplitMix64& engine();

/// Independent engine for a logical stream, derived from (seed, streamId)
/// only. Generators draw one stream per row/sample instead of one per
/// thread, which makes their output independent of the thread count and
/// of the OpenMP schedule. Cheap enough to construct per item.
SplitMix64 forStream(std::uint64_t streamId);

/// Uniform integer in [0, bound) from an explicit engine, using Lemire's
/// multiply-shift rejection.
std::uint64_t integer(SplitMix64& rng, std::uint64_t bound);

/// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
std::uint64_t integer(std::uint64_t bound);

/// Uniform integer in [lo, hi] inclusive.
std::uint64_t integer(std::uint64_t lo, std::uint64_t hi);

/// Uniform real in [0, 1) from an explicit engine.
double real(SplitMix64& rng);

/// Uniform real in [0, 1).
double real();

/// Uniform real in [lo, hi).
double real(double lo, double hi);

/// Bernoulli trial with success probability p from an explicit engine.
bool chance(SplitMix64& rng, double p);

/// Bernoulli trial with success probability p.
bool chance(double p);

/// Uniformly chosen element index for a container of the given size.
index choice(index size);

/// Geometric skip length for Bernoulli(p) edge sampling from an explicit
/// engine: the number of failures before the next success, i.e.
/// floor(log(U)/log(1-p)).
count geometricSkip(SplitMix64& rng, double p);

/// Geometric skip length for Bernoulli(p) edge sampling: the number of
/// failures before the next success, i.e. floor(log(U)/log(1-p)).
/// Used by G(n,p)-style generators to run in O(edges) instead of O(n^2).
count geometricSkip(double p);

/// Fisher-Yates shuffle using the calling thread's engine.
template <typename It>
void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
        std::swap(first[i - 1], first[integer(i)]);
    }
}

} // namespace Random

/// Samples integers from a bounded power-law distribution
/// P(k) ∝ k^-gamma for k in [minValue, maxValue], by inverting the
/// precomputed CDF with binary search. Used for LFR degree and community
/// size sequences.
class PowerLawSampler {
public:
    PowerLawSampler(count minValue, count maxValue, double gamma);

    /// One sample using the calling thread's engine.
    count sample() const;

    /// Expected value of the distribution.
    double mean() const noexcept { return mean_; }

    count minValue() const noexcept { return min_; }
    count maxValue() const noexcept { return max_; }

private:
    count min_;
    count max_;
    double mean_ = 0.0;
    std::vector<double> cdf_; // cdf_[i] = P(X <= min_+i)
};

} // namespace grapr
