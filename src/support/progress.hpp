#pragma once
// Per-iteration tracing hooks used by the Figure-1 experiment (active and
// updated label counts per PLP iteration) and by long-running benches.

#include <functional>
#include <vector>

#include "support/common.hpp"

namespace grapr {

/// One record per algorithm iteration; semantics of the two counters are
/// algorithm-defined (PLP: active nodes entering the iteration / labels
/// updated in it; PLM move phase: nodes moved / total nodes scanned).
struct IterationRecord {
    count iteration = 0;
    count active = 0;
    count updated = 0;
};

/// Collects IterationRecords when attached to an algorithm. Algorithms hold
/// a non-owning pointer; a null tracer costs one branch per iteration.
class IterationTracer {
public:
    void record(count iteration, count active, count updated) {
        records_.push_back({iteration, active, updated});
    }

    const std::vector<IterationRecord>& records() const noexcept {
        return records_;
    }

    void clear() { records_.clear(); }

private:
    std::vector<IterationRecord> records_;
};

} // namespace grapr
