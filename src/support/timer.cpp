#include "support/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace grapr {

std::string formatDuration(double seconds) {
    char buffer[64];
    if (seconds < 1e-3) {
        std::snprintf(buffer, sizeof buffer, "%.0f us", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buffer, sizeof buffer, "%.1f ms", seconds * 1e3);
    } else if (seconds < 120.0) {
        std::snprintf(buffer, sizeof buffer, "%.2f s", seconds);
    } else {
        std::snprintf(buffer, sizeof buffer, "%.1f min", seconds / 60.0);
    }
    return buffer;
}

} // namespace grapr
