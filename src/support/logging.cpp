#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace grapr::Log {

namespace {

std::atomic<LogLevel> currentLevel{LogLevel::Warn};
std::mutex writeMutex;

const char* levelName(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void setLevel(LogLevel level) { currentLevel.store(level); }

LogLevel level() { return currentLevel.load(std::memory_order_relaxed); }

LogLevel parseLevel(const std::string& name) {
    if (name == "trace") return LogLevel::Trace;
    if (name == "debug") return LogLevel::Debug;
    if (name == "info") return LogLevel::Info;
    if (name == "warn") return LogLevel::Warn;
    if (name == "error") return LogLevel::Error;
    return LogLevel::Off;
}

void write(LogLevel messageLevel, const std::string& message) {
    std::lock_guard<std::mutex> lock(writeMutex);
    std::fprintf(stderr, "[grapr %-5s] %s\n", levelName(messageLevel),
                 message.c_str());
}

} // namespace grapr::Log
