#pragma once
// Fundamental type aliases and small helpers shared by every grapr module.
//
// Node identifiers are 32-bit: the reproduction suite tops out in the tens
// of millions of nodes, and halving the id width doubles the number of
// adjacency entries per cache line, which matters for the complex-network
// workloads this library targets (small-world graphs are latency bound).

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace grapr {

/// Node identifier. Nodes of a graph are consecutive integers [0, n).
using node = std::uint32_t;
/// Generic index / size type for containers that may exceed 2^32 entries.
using index = std::uint64_t;
/// Count of nodes/edges/iterations.
using count = std::uint64_t;
/// Edge weight. Coarsened graphs accumulate weights, so floating point.
using edgeweight = double;

/// Sentinel for "no node" / "no community".
inline constexpr node none = std::numeric_limits<node>::max();

/// Default total-order tie break used when two choices score equally:
/// prefer the smaller id, which keeps sequential runs deterministic.
inline constexpr bool tieBreakLess(node a, node b) noexcept { return a < b; }

/// Throw std::runtime_error with a formatted location-free message.
[[noreturn]] inline void fail(const std::string& message) {
    throw std::runtime_error(message);
}

/// Precondition check that survives NDEBUG: used on public API boundaries
/// where violating the contract would corrupt memory, not just results.
inline void require(bool condition, const char* message) {
    if (!condition) fail(message);
}

} // namespace grapr
