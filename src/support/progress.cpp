#include "support/progress.hpp"

// IterationTracer is header-only; this translation unit anchors the module
// in the build so the target exists even if the header becomes non-inline.
