#include "support/view_check.hpp"

#ifdef GRAPR_VIEW_CHECK

#include <cstdio>
#include <cstdlib>

namespace grapr::view {

[[noreturn]] void reportStaleView(const char* freezeFile,
                                  std::uint32_t freezeLine,
                                  const GenerationCell& cell,
                                  std::uint64_t frozenGeneration) {
    const char* mutFile = cell.mutationFile.load(std::memory_order_relaxed);
    const std::uint32_t mutLine =
        cell.mutationLine.load(std::memory_order_relaxed);
    const std::uint64_t current =
        cell.generation.load(std::memory_order_relaxed);
    std::fprintf(
        stderr,
        "grapr: VIEW-LIFECYCLE VIOLATION: stale CsrGraph read\n"
        "  view frozen at:      %s:%u (source generation %llu)\n"
        "  source mutated at:   %s:%u (generation now %llu)\n"
        "  contract: a frozen view must not be read after its source Graph\n"
        "  mutates — re-freeze after the last mutation, or finish reading\n"
        "  the view first (DESIGN.md \"View lifecycle contract\").\n",
        freezeFile ? freezeFile : "<unknown>", freezeLine,
        static_cast<unsigned long long>(frozenGeneration),
        mutFile ? mutFile : "<unknown>", mutLine,
        static_cast<unsigned long long>(current));
    std::fflush(stderr);
    std::abort();
}

} // namespace grapr::view

#endif // GRAPR_VIEW_CHECK
