#include "community/streaming_update.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include <omp.h>

#include "support/parallel.hpp"
#include "support/race_check.hpp"

namespace grapr {

namespace {

/// Grow `zeta` to `bound` node slots, assigning every new node a fresh
/// unique community id, then compact the ids to [0, k). Returns k. The
/// shared prologue of both incremental detectors: after it, community ids
/// are dense, deterministic (ascending-old-id order), and new nodes sit in
/// their own singletons.
count growAndCompact(Partition& zeta, count bound) {
    const count oldSize = zeta.numberOfElements();
    require(bound >= oldSize,
            "streaming update: snapshot bound shrank below the partition");
    if (bound > oldSize) {
        Partition grown(bound);
        node next = zeta.upperBound();
        for (node v = 0; v < oldSize; ++v) grown.set(v, zeta[v]);
        for (count v = oldSize; v < bound; ++v) {
            grown.set(static_cast<node>(v), next++);
        }
        grown.setUpperBound(next);
        zeta = std::move(grown);
    }
    return zeta.compact();
}

/// Touched list filtered to nodes that exist in g with a non-empty row,
/// sorted ascending and deduplicated — the seed frontier.
std::vector<node> seedFrontier(const CsrGraph& g,
                               const std::vector<node>& touched) {
    const count bound = g.upperNodeIdBound();
    const std::vector<index>& offsets = g.offsets();
    std::vector<node> frontier;
    frontier.reserve(touched.size());
    for (const node v : touched) {
        if (v < bound && offsets[v] != offsets[v + 1]) frontier.push_back(v);
    }
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
    return frontier;
}

/// Per-thread scratch of the seeded label sweep.
struct PlpScratch {
    explicit PlpScratch(index universe) : acc(universe) {}
    SparseAccumulator acc;
    std::vector<node> frontier;
};

} // namespace

// --- StreamingPlm --------------------------------------------------------

void StreamingPlm::initialize(const CsrGraph& g) {
    Plm detector(config_.cold);
    zeta_ = detector.runFrozen(g); // compacted, upperBound = k
    lastReactivated_ = 0;
    lastMoves_ = 0;
    initialized_ = true;
}

void StreamingPlm::applyBatch(const CsrGraph& g,
                              const std::vector<node>& touched) {
    require(initialized_,
            "StreamingPlm::applyBatch: call initialize() first");
    const count bound = g.upperNodeIdBound();
    const count k = growAndCompact(zeta_, bound);

    // Reserve the split-off range [k, k + bound): node u may leave its
    // community for the empty community k + u when the batch's deletions
    // make staying (and every neighbor community) a modularity loss.
    const auto splitBase = static_cast<node>(k);
    zeta_.setUpperBound(static_cast<node>(k + bound));

    const std::vector<node> frontier = seedFrontier(g, touched);
    count evaluated = 0;
    lastMoves_ =
        Plm::movePhaseSeeded(g, zeta_, config_.gamma, config_.maxSweeps,
                             frontier, splitBase, &evaluated, config_.kernel,
                             config_.minGain);
    lastReactivated_ = evaluated;
    zeta_.compact(); // drop unused split-off ids, re-densify
}

// --- StreamingPlp --------------------------------------------------------

void StreamingPlp::initialize(const CsrGraph& g) {
    Plp detector(config_.cold);
    zeta_ = detector.runFrozen(g);
    // Labels are node-id based; make room so grown graphs can hand new
    // nodes their own id as a fresh label.
    zeta_.setUpperBound(static_cast<node>(
        std::max<count>(zeta_.upperBound(), g.upperNodeIdBound())));
    lastReactivated_ = 0;
    lastSweeps_ = 0;
    initialized_ = true;
}

void StreamingPlp::applyBatch(const CsrGraph& g,
                              const std::vector<node>& touched) {
    require(initialized_,
            "StreamingPlp::applyBatch: call initialize() first");
    const count bound = g.upperNodeIdBound();
    const count k = growAndCompact(zeta_, bound);
    (void)k;

    const index universe =
        std::max<count>(zeta_.upperBound(), bound);
    const index* offsets = g.offsets().data();
    const node* neighbors = g.neighborArray().data();
    const edgeweight* weights =
        g.isWeighted() ? g.weightArray().data() : nullptr;

    std::vector<node> frontier = seedFrontier(g, touched);

    // Deduplication bitmap of the next frontier (same scheme as the PLM
    // active-set kernel: first flag-raiser appends).
    std::vector<std::atomic<std::uint8_t>> pending(bound);
    for (auto& p : pending) p.store(0, std::memory_order_relaxed);

    ThreadLocalPool<PlpScratch> scratch(universe);
    Partition& zeta = zeta_;

    count sweeps = 0;
    count evaluated = 0;
    // Distinct re-activated nodes, not evaluation work: a node revisited
    // by several frontier rounds is one node of re-detection locality (the
    // <10%-of-n metric BENCH_stream.json tracks).
    std::vector<std::uint8_t> everEvaluated(bound, 0);
    while (sweeps < config_.maxSweeps && !frontier.empty()) {
        GRAPR_RACE_PHASE("stream.plpSeeded");
        for (const node u : frontier) {
            if (!everEvaluated[u]) {
                everEvaluated[u] = 1;
                ++evaluated;
            }
        }
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(frontier.size());
#pragma omp parallel default(none)                                          \
    shared(frontier, zeta, scratch, pending, offsets, neighbors, weights,   \
               n) reduction(+ : movedThisRound)
        {
            PlpScratch& sc = scratch.local();
#pragma omp for schedule(guided)
            for (std::int64_t i = 0; i < n; ++i) {
                const node u = frontier[static_cast<std::size_t>(i)];
                const index lo = offsets[u];
                const index hi = offsets[u + 1];
                SparseAccumulator& acc = sc.acc;
                acc.clear();
                // Asynchronous label reads: a neighbor's label may be from
                // this or the previous sweep (PLP's contract, §III-A); the
                // racy write side carries the benign-race annotation below.
                for (index e = lo; e < hi; ++e) {
                    const node v = neighbors[e];
                    if (v != u) acc.add(zeta[v], weights ? weights[e] : 1.0);
                }
                const node current = zeta[u];
                node bestLabel = current;
                double bestWeight = acc[current];
                for (const index c : acc.touched()) {
                    const auto candidate = static_cast<node>(c);
                    const double w = acc[c];
                    // Dominant label, smaller-id tie break; ">" keeps the
                    // current label sticky on equal weight, so converged
                    // regions are fixpoints.
                    if (w > bestWeight ||
                        (w == bestWeight && candidate < bestLabel)) {
                        bestWeight = w;
                        bestLabel = candidate;
                    }
                }
                // Sticky current label: if u's own label is among the
                // heaviest, keep it (matches Plp's rule) — a converged
                // region is a fixpoint, untouched nodes never churn.
                if (acc[current] == bestWeight) bestLabel = current;
                if (bestLabel != current) {
                    // grapr:benign-race(zeta): non-atomic label publish,
                    // stale reads tolerated (see above).
                    zeta.set(u, bestLabel);
                    GRAPR_RACE_BENIGN_SITE("stream.plpSeeded.zeta");
                    ++movedThisRound;
                    for (index e = lo; e < hi; ++e) {
                        const node v = neighbors[e];
                        if (v == u) continue;
                        if (pending[v].load(std::memory_order_relaxed) ==
                                0 &&
                            pending[v].exchange(
                                1, std::memory_order_relaxed) == 0) {
                            sc.frontier.push_back(v);
                        }
                    }
                }
            }
        }
        ++sweeps;
        if (movedThisRound == 0) break;
        frontier.clear();
        for (std::size_t t = 0; t < scratch.size(); ++t) {
            std::vector<node>& slice = scratch.slot(t).frontier;
            frontier.insert(frontier.end(), slice.begin(), slice.end());
            slice.clear();
        }
        std::sort(frontier.begin(), frontier.end());
        for (const node v : frontier) {
            pending[v].store(0, std::memory_order_relaxed);
        }
    }
    lastSweeps_ = sweeps;
    lastReactivated_ = evaluated;
}

} // namespace grapr
