#include "community/overlapping_lpa.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "support/random.hpp"

namespace grapr {

namespace {

/// Sparse belonging-coefficient vector: (label, coefficient) pairs, sorted
/// by label, coefficients summing to 1.
using LabelVector = std::vector<std::pair<node, double>>;

} // namespace

Cover OverlappingLpa::run(const Graph& g) {
    const count bound = g.upperNodeIdBound();
    const double threshold = 1.0 / static_cast<double>(config_.maxMemberships);

    std::vector<LabelVector> current(bound);
    std::vector<LabelVector> next(bound);
    g.forNodes([&](node v) { current[v] = {{v, 1.0}}; });

    iterations_ = 0;
    count stableRounds = 0;
    for (count iteration = 0; iteration < config_.maxIterations; ++iteration) {
        std::atomic<count> changed{0};
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel default(none)                                           \
    shared(g, n, current, next, changed, threshold)
        {
            std::unordered_map<node, double> acc;
#pragma omp for schedule(guided)
            for (std::int64_t sv = 0; sv < n; ++sv) {
                const node v = static_cast<node>(sv);
                if (!g.hasNode(v)) continue;
                if (g.degree(v) == 0) {
                    next[v] = current[v];
                    continue;
                }

                // Weighted average of neighbor coefficient vectors.
                acc.clear();
                double totalWeight = 0.0;
                g.forNeighborsOf(v, [&](node u, edgeweight w) {
                    totalWeight += w;
                    for (const auto& [label, coeff] : current[u]) {
                        acc[label] += coeff * w;
                    }
                });

                // Threshold and keep the strongest maxMemberships labels.
                LabelVector kept;
                double best = 0.0;
                node bestLabel = none;
                for (const auto& [label, mass] : acc) {
                    const double coeff = mass / totalWeight;
                    if (coeff > best ||
                        (coeff == best &&
                         (bestLabel == none || label < bestLabel))) {
                        best = coeff;
                        bestLabel = label;
                    }
                    if (coeff >= threshold) kept.emplace_back(label, coeff);
                }
                if (kept.empty() && bestLabel != none) {
                    kept.emplace_back(bestLabel, best); // strongest survives
                }
                if (kept.size() > config_.maxMemberships) {
                    std::partial_sort(
                        kept.begin(),
                        kept.begin() +
                            static_cast<std::ptrdiff_t>(
                                config_.maxMemberships),
                        kept.end(), [](const auto& a, const auto& b) {
                            return a.second > b.second;
                        });
                    kept.resize(config_.maxMemberships);
                }
                std::sort(kept.begin(), kept.end());
                double sum = 0.0;
                for (const auto& [label, coeff] : kept) sum += coeff;
                for (auto& [label, coeff] : kept) coeff /= sum;

                // Change detection on the label set (coefficients always
                // drift slightly; the retained set is what matters).
                bool sameLabels = kept.size() == current[v].size();
                if (sameLabels) {
                    for (std::size_t i = 0; i < kept.size(); ++i) {
                        if (kept[i].first != current[v][i].first) {
                            sameLabels = false;
                            break;
                        }
                    }
                }
                if (!sameLabels) {
                    changed.fetch_add(1, std::memory_order_relaxed);
                }
                next[v] = std::move(kept);
            }
        }
        current.swap(next);
        ++iterations_;
        if (changed.load() == 0) {
            if (++stableRounds >= 2) break; // coefficient fixpoint reached
        } else {
            stableRounds = 0;
        }
    }

    Cover cover(bound);
    g.forNodes([&](node v) {
        for (const auto& [label, coeff] : current[v]) {
            cover.addToSubset(v, label);
        }
    });
    cover.compact();
    return cover;
}

} // namespace grapr
