#include "community/vertex_following.hpp"

#include <vector>

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"

namespace grapr {

namespace VertexFollowing {

VertexFollowingReduction reduce(const CsrGraph& g) {
    const count bound = g.upperNodeIdBound();
    const index* offsets = g.offsets().data();
    const node* neighbors = g.neighborArray().data();

    // Live degree = incident edges to OTHER nodes (self-loops never make a
    // node a pendant; a multi-edge to one neighbor counts twice, which is
    // conservative — such a node is simply not collapsed).
    std::vector<count> degree(bound, 0);
    for (node u = 0; u < bound; ++u) {
        count d = 0;
        for (index i = offsets[u]; i < offsets[u + 1]; ++i) {
            if (neighbors[i] != u) ++d;
        }
        degree[u] = d;
    }

    // Single-pass collapse of the ORIGINAL pendants. Deliberately NOT
    // iterated to a full peel: once a node has absorbed followers its
    // volume grows (the collapsed edge becomes a self-loop), and the
    // argument that a degree-1 node belongs with its neighbor — true for a
    // light pendant — no longer applies to the heavy carrier. An iterated
    // peel dissolves every tree into one node (modularity 0 on tree-like
    // inputs); the single pass keeps the quality guarantee the property
    // tests pin (VF modularity >= plain modularity) while still removing
    // the degree-1 class, the largest degree class of scale-free inputs.
    // Chain TIPS therefore fold one step onto the chain; the remaining
    // chain interior is handled fine by the ordinary sweep (degree-2 rows
    // are cheap).
    VertexFollowingReduction result;
    result.anchor.resize(bound);
    count collapsed = 0;
    for (node u = 0; u < bound; ++u) {
        result.anchor[u] = u;
        if (degree[u] != 1) continue;
        node a = none;
        for (index i = offsets[u]; i < offsets[u + 1]; ++i) {
            if (neighbors[i] != u) {
                a = neighbors[i];
                break;
            }
        }
        if (a == none) continue; // defensive: inconsistent degree
        // Two-node component (both pendants): the smaller id anchors the
        // pair, so exactly one of the two collapses.
        if (degree[a] == 1 && u < a) continue;
        result.anchor[u] = a;
        ++collapsed;
    }
    result.collapsed = collapsed;

    if (collapsed == 0) {
        // No pendants: skip the contraction, callers should use g as-is.
        return result;
    }

    // Contract follower->anchor blocks; intra-block (followed) edges fold
    // into self-loops, so reduced node volumes equal the summed original
    // volumes and the modularity arithmetic carries over exactly.
    Partition blocks(bound);
    blocks.allToSingletons();
    for (node u = 0; u < bound; ++u) {
        if (result.anchor[u] != u) blocks.set(u, result.anchor[u]);
    }
    ParallelPartitionCoarsening coarsener(true);
    CsrCoarseningResult contracted = coarsener.run(g, blocks);
    result.reduced = std::move(contracted.coarseGraph);
    result.fineToCoarse = std::move(contracted.fineToCoarse);
    return result;
}

Partition projectBack(const Partition& reducedSolution,
                      const VertexFollowingReduction& reduction) {
    return ClusteringProjector::projectBack(reducedSolution,
                                            reduction.fineToCoarse);
}

} // namespace VertexFollowing

} // namespace grapr
