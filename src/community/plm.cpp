#include "community/plm.hpp"

#include <cmath>
#include <unordered_map>

#include <omp.h>

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"

namespace grapr {

count Plm::movePhase(const Graph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;

    const count communityBound =
        std::max<count>(zeta.upperBound(), bound);

    // Per-community volume, maintained under atomic updates (the only
    // shared interim value — see header).
    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    ScratchPool scratch(communityBound);

    count totalMoves = 0;
    count iteration = 0;
    for (; iteration < maxIterations; ++iteration) {
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u) || g.degree(u) == 0) continue;

            const node current = zeta[u];

            // Recompute the edge weight from u to every neighboring
            // community (the paper's chosen strategy over cached maps).
            SparseAccumulator& acc = scratch.local();
            acc.clear();
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v != u) acc.add(zeta[v], w);
            });

            const double volU = nodeVolume[u];
            const double weightToCurrent = acc[current];
            // vol(C \ {u}): the community volume without u. Reads may be
            // stale under concurrency — tolerated by design.
            double volCurrent;
#pragma omp atomic read
            volCurrent = communityVolume[current];
            volCurrent -= volU;

            node bestCommunity = current;
            double bestDelta = 0.0;
            for (index c : acc.touched()) {
                const node candidate = static_cast<node>(c);
                if (candidate == current) continue;
                double volCandidate;
#pragma omp atomic read
                volCandidate = communityVolume[candidate];
                const double delta =
                    deltaModularity(omegaE, weightToCurrent, acc[c],
                                    volCurrent, volCandidate, volU, gamma);
                if (delta > bestDelta ||
                    (delta == bestDelta && bestDelta > 0.0 &&
                     candidate < bestCommunity)) {
                    bestDelta = delta;
                    bestCommunity = candidate;
                }
            }

            if (bestCommunity != current && bestDelta > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                zeta.set(u, bestCommunity);
                ++movedThisRound;
            }
        }

        totalMoves += movedThisRound;
        if (tracer) {
            tracer->record(iteration + 1, g.numberOfNodes(), movedThisRound);
        }
        if (movedThisRound == 0) break;
    }
    return totalMoves;
}

count Plm::movePhaseCachedMaps(const Graph& g, Partition& zeta, double gamma,
                               count maxIterations) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;
    const count communityBound = std::max<count>(zeta.upperBound(), bound);

    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    // The abandoned design: one weight-to-community map and one lock per
    // vertex. All reads and writes of a vertex's map go through its lock
    // (std::map/unordered_map are not thread-safe).
    std::vector<std::unordered_map<node, double>> weightTo(bound);
    std::vector<omp_lock_t> locks(bound);
    for (auto& lock : locks) omp_init_lock(&lock);
    g.parallelForNodes([&](node u) {
        auto& map = weightTo[u];
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (v != u) map[zeta[v]] += w;
        });
    });

    count totalMoves = 0;
    for (count iteration = 0; iteration < maxIterations; ++iteration) {
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u) || g.degree(u) == 0) continue;
            const node current = zeta[u];
            const double volU = nodeVolume[u];

            node bestCommunity = current;
            double bestDelta = 0.0;
            {
                omp_set_lock(&locks[u]);
                const auto& map = weightTo[u];
                const auto itCurrent = map.find(current);
                const double weightToCurrent =
                    itCurrent == map.end() ? 0.0 : itCurrent->second;
                double volCurrent;
#pragma omp atomic read
                volCurrent = communityVolume[current];
                volCurrent -= volU;
                for (const auto& [candidate, weight] : map) {
                    if (candidate == current) continue;
                    double volCandidate;
#pragma omp atomic read
                    volCandidate = communityVolume[candidate];
                    const double delta =
                        deltaModularity(omegaE, weightToCurrent, weight,
                                        volCurrent, volCandidate, volU,
                                        gamma);
                    if (delta > bestDelta) {
                        bestDelta = delta;
                        bestCommunity = candidate;
                    }
                }
                omp_unset_lock(&locks[u]);
            }

            if (bestCommunity != current && bestDelta > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                zeta.set(u, bestCommunity);
                // Propagate the move into every neighbor's cached map.
                g.forNeighborsOf(u, [&](node v, edgeweight w) {
                    if (v == u) return;
                    omp_set_lock(&locks[v]);
                    auto& map = weightTo[v];
                    auto it = map.find(current);
                    if (it != map.end()) {
                        it->second -= w;
                        if (it->second <= 0.0) map.erase(it);
                    }
                    map[bestCommunity] += w;
                    omp_unset_lock(&locks[v]);
                });
                ++movedThisRound;
            }
        }
        totalMoves += movedThisRound;
        if (movedThisRound == 0) break;
    }
    for (auto& lock : locks) omp_destroy_lock(&lock);
    return totalMoves;
}

Partition Plm::runRecursive(const Graph& g, count level) {
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();

    PlmLevelInfo info;
    info.nodes = g.numberOfNodes();
    info.edges = g.numberOfEdges();

    IterationTracer moveTracer;
    const count moves =
        config_.strategy == PlmWeightStrategy::CachedMaps
            ? movePhaseCachedMaps(g, zeta, config_.gamma,
                                  config_.maxMoveIterations)
            : movePhase(g, zeta, config_.gamma, config_.maxMoveIterations,
                        tracer_ ? &moveTracer : nullptr);
    info.moveIterations = moveTracer.records().size();
    info.totalMoves = moves;
    levels_.push_back(info);
    if (tracer_) {
        for (const auto& r : moveTracer.records()) {
            tracer_->record(level * 1000 + r.iteration, r.active, r.updated);
        }
    }

    if (moves == 0) return zeta; // ζ unchanged: recursion bottoms out

    ParallelPartitionCoarsening coarsener(config_.parallelCoarsening);
    CoarseningResult coarse = coarsener.run(g, zeta);

    // Guard against non-contraction (every community a singleton would
    // reproduce the same graph forever).
    if (coarse.coarseGraph.numberOfNodes() >= g.numberOfNodes()) return zeta;

    const Partition coarseSolution =
        runRecursive(coarse.coarseGraph, level + 1);
    zeta = ClusteringProjector::projectBack(coarseSolution,
                                            coarse.fineToCoarse);

    if (config_.refine) {
        // PLMR: re-evaluate node assignments on this level in view of the
        // changes made on the coarser levels (Algorithm 4 line 7).
        zeta.setUpperBound(
            static_cast<node>(std::max<count>(zeta.upperBound(),
                                              g.upperNodeIdBound())));
        if (config_.strategy == PlmWeightStrategy::CachedMaps) {
            movePhaseCachedMaps(g, zeta, config_.gamma,
                                config_.maxMoveIterations);
        } else {
            movePhase(g, zeta, config_.gamma, config_.maxMoveIterations,
                      nullptr);
        }
    }
    return zeta;
}

Partition Plm::run(const Graph& g) {
    levels_.clear();
    Partition zeta = runRecursive(g, 0);
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

std::string Plm::toString() const {
    std::string name = config_.refine ? "PLMR" : "PLM";
    if (config_.gamma != 1.0) {
        name += "(gamma=" + std::to_string(config_.gamma) + ")";
    }
    if (!config_.parallelCoarsening) name += "+seqcoarse";
    return name;
}

} // namespace grapr
