#include "community/plm.hpp"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include <omp.h>

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/race_check.hpp"

namespace grapr {

namespace {

// The move phase and its ablation variant are written once, generic over
// the graph layout: GraphT is either Graph (mutable adjacency lists) or
// CsrGraph (the frozen flat layout, where volume() is a precomputed O(1)
// read and neighbor scans stream over one contiguous arena).

template <typename GraphT>
count movePhaseImpl(const GraphT& g, Partition& zeta, double gamma,
                    count maxIterations, IterationTracer* tracer) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;

    const count communityBound =
        std::max<count>(zeta.upperBound(), bound);

    // Per-community volume, maintained under atomic updates (the only
    // shared interim value — see header).
    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    ScratchPool scratch(communityBound);

    count totalMoves = 0;
    count iteration = 0;
    for (; iteration < maxIterations; ++iteration) {
        GRAPR_RACE_PHASE("plm.move");
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none)                                       \
    shared(g, zeta, communityVolume, nodeVolume, scratch, omegaE, gamma, n)  \
    schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u) || g.degree(u) == 0) continue;

            const node current = zeta[u];

            // Recompute the edge weight from u to every neighboring
            // community (the paper's chosen strategy over cached maps).
            SparseAccumulator& acc = scratch.local();
            acc.clear();
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v != u) acc.add(zeta[v], w);
            });

            const double volU = nodeVolume[u];
            const double weightToCurrent = acc[current];
            // vol(C \ {u}): the community volume without u.
            // grapr:benign-race(communityVolume): stale snapshot tolerated
            // by design — concurrent movers may change the volume between
            // this read and the move (paper's asynchronous contract).
            double volCurrent;
#pragma omp atomic read
            volCurrent = communityVolume[current];
            volCurrent -= volU;

            node bestCommunity = current;
            double bestDelta = 0.0;
            for (index c : acc.touched()) {
                const node candidate = static_cast<node>(c);
                if (candidate == current) continue;
                // grapr:benign-race(communityVolume): stale candidate
                // volume tolerated by design (same contract as above).
                double volCandidate;
#pragma omp atomic read
                volCandidate = communityVolume[candidate];
                const double delta =
                    deltaModularity(omegaE, weightToCurrent, acc[c],
                                    volCurrent, volCandidate, volU, gamma);
                // Ties always resolve to the lowest community id — making
                // the selection independent of neighbor order, and with it
                // single-threaded runs reproducible across layouts and
                // schedules.
                if (delta > bestDelta ||
                    (delta == bestDelta && candidate < bestCommunity)) {
                    bestDelta = delta;
                    bestCommunity = candidate;
                }
            }

            if (bestCommunity != current && bestDelta > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                // grapr:benign-race(zeta): the new label is published
                // non-atomically; concurrent neighbor scans may read the
                // old or the new value (stale reads tolerated by design).
                // Each node is written by exactly one thread per round.
                zeta.set(u, bestCommunity);
                ++movedThisRound;
            }
        }

        totalMoves += movedThisRound;
        if (tracer) {
            tracer->record(iteration + 1, g.numberOfNodes(), movedThisRound);
        }
        if (movedThisRound == 0) break;
    }
    return totalMoves;
}

// ---------------------------------------------------------------------------
// Tuned kernel for the frozen layout. Same decisions as movePhaseImpl —
// enforced bit-for-bit by tests/test_csr.cpp — but engineered around this
// kernel's two actual costs: the random accesses of the per-community
// accumulation, and the per-candidate Δmod arithmetic.
//
//  * Scoring is division-free: instead of Δ we compare the scaled value
//    2ω(E)²·Δ = 2ω(E)(ω(u,D\{u}) − ω(u,C\{u})) + γ·vol(u)(vol(C\{u}) − vol(D)),
//    a positive multiple of Δ, so argmax, ties, and the Δ > 0 gate are
//    unchanged. On integer-valued weights (every unweighted input, and
//    every coarse graph derived from one) these products are computed
//    EXACTLY in doubles (≪ 2^53), so equal-gain ties are detected exactly;
//    the reference formula's rounding error (~1e-21) is orders of magnitude
//    below the smallest nonzero scaled gap (~1/(2ω²)), so the two scorings
//    can never disagree on an ordering.
//  * The accumulator stores {value, stamp} fused in one cell — one random
//    cache line per add instead of two — and counts in 8-byte integer
//    cells when the graph is unweighted (counts ARE the exact sums of
//    1.0-weights, so values are identical).
// ---------------------------------------------------------------------------

/// Fused-cell accumulator over integer counts (unweighted rows).
class FrozenCountCells {
public:
    explicit FrozenCountCells(count universe) : cells_(universe, {0, 0}) {}
    void clear() {
        touched_.clear();
        if (++generation_ == 0) {
            cells_.assign(cells_.size(), {0, 0});
            generation_ = 1;
        }
    }
    void add(node k, edgeweight /*w — always defaultEdgeWeight*/) {
        Cell& c = cells_[k];
        if (c.stamp != generation_) {
            c.stamp = generation_;
            c.count = 1;
            touched_.push_back(k);
        } else {
            ++c.count;
        }
    }
    double get(node k) const {
        const Cell& c = cells_[k];
        return c.stamp == generation_ ? static_cast<double>(c.count) : 0.0;
    }
    const std::vector<node>& touched() const noexcept { return touched_; }

private:
    struct Cell {
        std::uint32_t count;
        std::uint32_t stamp;
    };
    std::vector<Cell> cells_;
    std::vector<node> touched_;
    std::uint32_t generation_ = 1;
};

/// Fused-cell accumulator over edge weights (weighted rows).
class FrozenWeightCells {
public:
    explicit FrozenWeightCells(count universe) : cells_(universe, {0.0, 0}) {}
    void clear() {
        touched_.clear();
        if (++generation_ == 0) {
            cells_.assign(cells_.size(), {0.0, 0});
            generation_ = 1;
        }
    }
    void add(node k, edgeweight w) {
        Cell& c = cells_[k];
        if (c.stamp != generation_) {
            c.stamp = generation_;
            c.value = w;
            touched_.push_back(k);
        } else {
            c.value += w;
        }
    }
    double get(node k) const {
        const Cell& c = cells_[k];
        return c.stamp == generation_ ? c.value : 0.0;
    }
    const std::vector<node>& touched() const noexcept { return touched_; }

private:
    struct Cell {
        double value;
        std::uint32_t stamp;
    };
    std::vector<Cell> cells_;
    std::vector<node> touched_;
    std::uint32_t generation_ = 1;
};

template <typename Cells>
count movePhaseFrozenImpl(const CsrGraph& g, Partition& zeta, double gamma,
                          count maxIterations, IterationTracer* tracer) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;
    const double twoOmega = 2.0 * omegaE;
    const count communityBound = std::max<count>(zeta.upperBound(), bound);

    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    const index* offsets = g.offsets().data();
    const node* neighbors = g.neighborArray().data();
    const edgeweight* weights =
        g.isWeighted() ? g.weightArray().data() : nullptr;

    std::vector<Cells> scratch;
    const int maxThreads = omp_get_max_threads();
    scratch.reserve(maxThreads);
    for (int t = 0; t < maxThreads; ++t) scratch.emplace_back(communityBound);

    count totalMoves = 0;
    for (count iteration = 0; iteration < maxIterations; ++iteration) {
        GRAPR_RACE_PHASE("plm.moveFrozen");
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none)                                       \
    shared(offsets, neighbors, weights, zeta, scratch, communityVolume,      \
               nodeVolume, twoOmega, gamma, n)                               \
    schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            const index lo = offsets[u];
            const index hi = offsets[u + 1];
            if (lo == hi) continue; // holes and isolated nodes: empty rows

            const node current = zeta[u];
            Cells& acc = scratch[omp_get_thread_num()];
            acc.clear();
            const node* zetaData = zeta.vector().data();
            if (weights) {
                for (index i = lo; i < hi; ++i) {
                    if (i + 8 < hi) {
                        __builtin_prefetch(&zetaData[neighbors[i + 8]], 0, 1);
                    }
                    const node v = neighbors[i];
                    if (v != u) acc.add(zetaData[v], weights[i]);
                }
            } else {
                for (index i = lo; i < hi; ++i) {
                    if (i + 8 < hi) {
                        __builtin_prefetch(&zetaData[neighbors[i + 8]], 0, 1);
                    }
                    const node v = neighbors[i];
                    if (v != u) acc.add(zetaData[v], 1.0);
                }
            }

            const double volU = nodeVolume[u];
            const double weightToCurrent = acc.get(current);
            // grapr:benign-race(communityVolume): stale snapshot tolerated
            // by design (asynchronous contract, see movePhaseImpl).
            double volCurrent;
#pragma omp atomic read
            volCurrent = communityVolume[current];
            volCurrent -= volU;

            // score(D) = 2ω·ω(u,D) − γ·vol(u)·vol(D) + base, where base
            // folds in the (candidate-independent) cost of leaving C.
            const double gammaVolU = gamma * volU;
            const double base =
                gammaVolU * volCurrent - twoOmega * weightToCurrent;
            node bestCommunity = current;
            double bestScore = 0.0;
            for (node candidate : acc.touched()) {
                __builtin_prefetch(&communityVolume[candidate], 0, 1);
            }
            for (node candidate : acc.touched()) {
                if (candidate == current) continue;
                // grapr:benign-race(communityVolume): stale candidate
                // volume tolerated by design (same contract as above).
                double volCandidate;
#pragma omp atomic read
                volCandidate = communityVolume[candidate];
                const double score = twoOmega * acc.get(candidate) -
                                     gammaVolU * volCandidate + base;
                // Lowest-id tie break, exactly as movePhaseImpl.
                if (score > bestScore ||
                    (score == bestScore && candidate < bestCommunity)) {
                    bestScore = score;
                    bestCommunity = candidate;
                }
            }

            if (bestCommunity != current && bestScore > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                // grapr:benign-race(zeta): non-atomic label publish; stale
                // reads tolerated, one writer per node per round (see
                // movePhaseImpl).
                zeta.set(u, bestCommunity);
                ++movedThisRound;
            }
        }
        totalMoves += movedThisRound;
        if (tracer) {
            tracer->record(iteration + 1, g.numberOfNodes(), movedThisRound);
        }
        if (movedThisRound == 0) break;
    }
    return totalMoves;
}

count movePhaseFrozen(const CsrGraph& g, Partition& zeta, double gamma,
                      count maxIterations, IterationTracer* tracer) {
    return g.isWeighted()
               ? movePhaseFrozenImpl<FrozenWeightCells>(g, zeta, gamma,
                                                        maxIterations, tracer)
               : movePhaseFrozenImpl<FrozenCountCells>(g, zeta, gamma,
                                                       maxIterations, tracer);
}

/// Layout dispatch for the Recompute strategy: the mutable layout runs the
/// reference kernel, the frozen layout the tuned one (identical decisions).
count moveNodes(const Graph& g, Partition& zeta, double gamma,
                count maxIterations, IterationTracer* tracer) {
    return movePhaseImpl(g, zeta, gamma, maxIterations, tracer);
}

count moveNodes(const CsrGraph& g, Partition& zeta, double gamma,
                count maxIterations, IterationTracer* tracer) {
    return movePhaseFrozen(g, zeta, gamma, maxIterations, tracer);
}

template <typename GraphT>
count movePhaseCachedMapsImpl(const GraphT& g, Partition& zeta, double gamma,
                              count maxIterations) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;
    const count communityBound = std::max<count>(zeta.upperBound(), bound);

    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    // The abandoned design: one weight-to-community map and one lock per
    // vertex. All reads and writes of a vertex's map go through its lock
    // (std::map/unordered_map are not thread-safe).
    std::vector<std::unordered_map<node, double>> weightTo(bound);
    std::vector<omp_lock_t> locks(bound);
    for (auto& lock : locks) omp_init_lock(&lock);
    g.parallelForNodes([&](node u) {
        auto& map = weightTo[u];
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (v != u) map[zeta[v]] += w;
        });
    });

    count totalMoves = 0;
    for (count iteration = 0; iteration < maxIterations; ++iteration) {
        GRAPR_RACE_PHASE("plm.moveCachedMaps");
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none)                                       \
    shared(g, zeta, communityVolume, nodeVolume, weightTo, locks, omegaE,    \
               gamma, n)                                                     \
    schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u) || g.degree(u) == 0) continue;
            const node current = zeta[u];
            const double volU = nodeVolume[u];

            node bestCommunity = current;
            double bestDelta = 0.0;
            {
                omp_set_lock(&locks[u]);
                const auto& map = weightTo[u];
                const auto itCurrent = map.find(current);
                const double weightToCurrent =
                    itCurrent == map.end() ? 0.0 : itCurrent->second;
                // grapr:benign-race(communityVolume): stale snapshot
                // tolerated by design (see movePhaseImpl).
                double volCurrent;
#pragma omp atomic read
                volCurrent = communityVolume[current];
                volCurrent -= volU;
                for (const auto& [candidate, weight] : map) {
                    if (candidate == current) continue;
                    // grapr:benign-race(communityVolume): stale candidate
                    // volume tolerated by design (see movePhaseImpl).
                    double volCandidate;
#pragma omp atomic read
                    volCandidate = communityVolume[candidate];
                    const double delta =
                        deltaModularity(omegaE, weightToCurrent, weight,
                                        volCurrent, volCandidate, volU,
                                        gamma);
                    // Lowest-id tie break (see movePhaseImpl) — essential
                    // here, where the map's iteration order is arbitrary.
                    if (delta > bestDelta ||
                        (delta == bestDelta && candidate < bestCommunity)) {
                        bestDelta = delta;
                        bestCommunity = candidate;
                    }
                }
                omp_unset_lock(&locks[u]);
            }

            if (bestCommunity != current && bestDelta > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                // grapr:benign-race(zeta): non-atomic label publish; stale
                // reads tolerated, one writer per node per round (see
                // movePhaseImpl).
                zeta.set(u, bestCommunity);
                // Propagate the move into every neighbor's cached map.
                g.forNeighborsOf(u, [&](node v, edgeweight w) {
                    if (v == u) return;
                    omp_set_lock(&locks[v]);
                    auto& map = weightTo[v];
                    auto it = map.find(current);
                    if (it != map.end()) {
                        it->second -= w;
                        if (it->second <= 0.0) map.erase(it);
                    }
                    map[bestCommunity] += w;
                    omp_unset_lock(&locks[v]);
                });
                ++movedThisRound;
            }
        }
        totalMoves += movedThisRound;
        if (movedThisRound == 0) break;
    }
    for (auto& lock : locks) omp_destroy_lock(&lock);
    return totalMoves;
}

} // namespace

count Plm::movePhase(const Graph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer) {
    return movePhaseImpl(g, zeta, gamma, maxIterations, tracer);
}

count Plm::movePhase(const CsrGraph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer) {
    return movePhaseFrozen(g, zeta, gamma, maxIterations, tracer);
}

count Plm::movePhaseCachedMaps(const Graph& g, Partition& zeta, double gamma,
                               count maxIterations) {
    return movePhaseCachedMapsImpl(g, zeta, gamma, maxIterations);
}

count Plm::movePhaseCachedMaps(const CsrGraph& g, Partition& zeta,
                               double gamma, count maxIterations) {
    return movePhaseCachedMapsImpl(g, zeta, gamma, maxIterations);
}

template <typename GraphT>
Partition Plm::runRecursive(const GraphT& g, count level) {
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();

    PlmLevelInfo info;
    info.nodes = g.numberOfNodes();
    info.edges = g.numberOfEdges();

    IterationTracer moveTracer;
    const count moves =
        config_.strategy == PlmWeightStrategy::CachedMaps
            ? movePhaseCachedMapsImpl(g, zeta, config_.gamma,
                                      config_.maxMoveIterations)
            : moveNodes(g, zeta, config_.gamma, config_.maxMoveIterations,
                        tracer_ ? &moveTracer : nullptr);
    info.moveIterations = moveTracer.records().size();
    info.totalMoves = moves;
    levels_.push_back(info);
    if (tracer_) {
        for (const auto& r : moveTracer.records()) {
            tracer_->record(level * 1000 + r.iteration, r.active, r.updated);
        }
    }

    if (moves == 0) return zeta; // ζ unchanged: recursion bottoms out

    ParallelPartitionCoarsening coarsener(config_.parallelCoarsening);
    // Overload resolution keeps the recursion in the input layout: a
    // frozen level coarsens CSR-to-CSR (prefix-sum construction), a
    // mutable level through the builder-based scheme.
    auto coarse = coarsener.run(g, zeta);

    // Guard against non-contraction (every community a singleton would
    // reproduce the same graph forever).
    if (coarse.coarseGraph.numberOfNodes() >= g.numberOfNodes()) return zeta;

    const Partition coarseSolution =
        runRecursive(coarse.coarseGraph, level + 1);
    zeta = ClusteringProjector::projectBack(coarseSolution,
                                            coarse.fineToCoarse);

    if (config_.refine) {
        // PLMR: re-evaluate node assignments on this level in view of the
        // changes made on the coarser levels (Algorithm 4 line 7). Runs on
        // the same frozen view as the first move phase — the level is
        // frozen once, not per pass.
        zeta.setUpperBound(
            static_cast<node>(std::max<count>(zeta.upperBound(),
                                              g.upperNodeIdBound())));
        if (config_.strategy == PlmWeightStrategy::CachedMaps) {
            movePhaseCachedMapsImpl(g, zeta, config_.gamma,
                                    config_.maxMoveIterations);
        } else {
            moveNodes(g, zeta, config_.gamma, config_.maxMoveIterations,
                      nullptr);
        }
    }
    return zeta;
}

Partition Plm::run(const Graph& g) {
    levels_.clear();
    Partition zeta;
    if (config_.freeze) {
        const CsrGraph frozen(g);
        zeta = runRecursive(frozen, 0);
    } else {
        zeta = runRecursive(g, 0);
    }
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

Partition Plm::runFrozen(const CsrGraph& g) {
    levels_.clear();
    Partition zeta = runRecursive(g, 0);
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

std::string Plm::toString() const {
    std::string name = config_.refine ? "PLMR" : "PLM";
    if (config_.gamma != 1.0) {
        name += "(gamma=" + std::to_string(config_.gamma) + ")";
    }
    if (!config_.parallelCoarsening) name += "+seqcoarse";
    if (!config_.freeze) name += "+nofreeze";
    return name;
}

} // namespace grapr
