#include "community/plm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include <omp.h>

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "community/community_volumes.hpp"
#include "community/vertex_following.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"
#include "support/race_check.hpp"

namespace grapr {

namespace {

// The move phase and its ablation variant are written once, generic over
// the graph layout: GraphT is either Graph (mutable adjacency lists) or
// CsrGraph (the frozen flat layout, where volume() is a precomputed O(1)
// read and neighbor scans stream over one contiguous arena).

template <typename GraphT>
count movePhaseImpl(const GraphT& g, Partition& zeta, double gamma,
                    count maxIterations, IterationTracer* tracer) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;

    const count communityBound =
        std::max<count>(zeta.upperBound(), bound);

    // Per-community volume, maintained under atomic updates (the only
    // shared interim value — see header).
    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    ScratchPool scratch(communityBound);

    count totalMoves = 0;
    count iteration = 0;
    for (; iteration < maxIterations; ++iteration) {
        GRAPR_RACE_PHASE("plm.move");
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none)                                       \
    shared(g, zeta, communityVolume, nodeVolume, scratch, omegaE, gamma, n)  \
    schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u) || g.degree(u) == 0) continue;

            const node current = zeta[u];

            // Recompute the edge weight from u to every neighboring
            // community (the paper's chosen strategy over cached maps).
            SparseAccumulator& acc = scratch.local();
            acc.clear();
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v != u) acc.add(zeta[v], w);
            });

            const double volU = nodeVolume[u];
            const double weightToCurrent = acc[current];
            // vol(C \ {u}): the community volume without u.
            // grapr:benign-race(communityVolume): stale snapshot tolerated
            // by design — concurrent movers may change the volume between
            // this read and the move (paper's asynchronous contract).
            double volCurrent;
#pragma omp atomic read
            volCurrent = communityVolume[current];
            volCurrent -= volU;

            node bestCommunity = current;
            double bestDelta = 0.0;
            for (index c : acc.touched()) {
                const node candidate = static_cast<node>(c);
                if (candidate == current) continue;
                // grapr:benign-race(communityVolume): stale candidate
                // volume tolerated by design (same contract as above).
                double volCandidate;
#pragma omp atomic read
                volCandidate = communityVolume[candidate];
                const double delta =
                    deltaModularity(omegaE, weightToCurrent, acc[c],
                                    volCurrent, volCandidate, volU, gamma);
                // Ties always resolve to the lowest community id — making
                // the selection independent of neighbor order, and with it
                // single-threaded runs reproducible across layouts and
                // schedules.
                if (delta > bestDelta ||
                    (delta == bestDelta && candidate < bestCommunity)) {
                    bestDelta = delta;
                    bestCommunity = candidate;
                }
            }

            if (bestCommunity != current && bestDelta > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                // grapr:benign-race(zeta): the new label is published
                // non-atomically; concurrent neighbor scans may read the
                // old or the new value (stale reads tolerated by design).
                // Each node is written by exactly one thread per round.
                zeta.set(u, bestCommunity);
                GRAPR_RACE_BENIGN_SITE("plm.move.zeta");
                ++movedThisRound;
            }
        }

        totalMoves += movedThisRound;
        if (tracer) {
            tracer->record(iteration + 1, g.numberOfNodes(), movedThisRound);
        }
        if (movedThisRound == 0) break;
    }
    return totalMoves;
}

// ---------------------------------------------------------------------------
// Tuned kernel for the frozen layout. Same decisions as movePhaseImpl —
// enforced bit-for-bit by tests/test_csr.cpp and tests/test_move_kernels.cpp
// — but engineered around this kernel's actual costs: the random accesses of
// the per-community accumulation, the per-candidate Δmod arithmetic, the
// coherence traffic on the shared volume array, and the sweep's load
// balance.
//
//  * Scoring is division-free: instead of Δ we compare the scaled value
//    2ω(E)²·Δ = 2ω(E)(ω(u,D\{u}) − ω(u,C\{u})) + γ·vol(u)(vol(C\{u}) − vol(D)),
//    a positive multiple of Δ, so argmax, ties, and the Δ > 0 gate are
//    unchanged. On integer-valued weights (every unweighted input, and
//    every coarse graph derived from one) these products are computed
//    EXACTLY in doubles (≪ 2^53), so equal-gain ties are detected exactly;
//    the reference formula's rounding error (~1e-21) is orders of magnitude
//    below the smallest nonzero scaled gap (~1/(2ω²)), so the two scorings
//    can never disagree on an ordering.
//  * The accumulator stores {value, stamp} fused in one cell — one random
//    cache line per add instead of two — and counts in 8-byte integer
//    cells when the graph is unweighted (counts ARE the exact sums of
//    1.0-weights, so values are identical).
//  * The kernel is templated over a Volumes policy (AtomicVolumes /
//    ShardedVolumes, see community_volumes.hpp) replacing the hard-coded
//    atomic array, over a sweep schedule (flat guided vs degree-bucketed),
//    and carries a batch SIMD scoring path plus an optional active-set
//    frontier — all selected by PlmKernelConfig.
// ---------------------------------------------------------------------------

/// Fused-cell accumulator over integer counts (unweighted rows).
class FrozenCountCells {
public:
    explicit FrozenCountCells(count universe) : cells_(universe, {0, 0}) {}
    void clear() {
        touched_.clear();
        if (++generation_ == 0) {
            cells_.assign(cells_.size(), {0, 0});
            generation_ = 1;
        }
    }
    void add(node k, edgeweight /*w — always defaultEdgeWeight*/) {
        Cell& c = cells_[k];
        if (c.stamp != generation_) {
            c.stamp = generation_;
            c.count = 1;
            touched_.push_back(k);
        } else {
            ++c.count;
        }
    }
    double get(node k) const {
        const Cell& c = cells_[k];
        return c.stamp == generation_ ? static_cast<double>(c.count) : 0.0;
    }
    const std::vector<node>& touched() const noexcept { return touched_; }

private:
    struct Cell {
        std::uint32_t count;
        std::uint32_t stamp;
    };
    std::vector<Cell> cells_;
    std::vector<node> touched_;
    std::uint32_t generation_ = 1;
};

/// Fused-cell accumulator over edge weights (weighted rows).
class FrozenWeightCells {
public:
    explicit FrozenWeightCells(count universe) : cells_(universe, {0.0, 0}) {}
    void clear() {
        touched_.clear();
        if (++generation_ == 0) {
            cells_.assign(cells_.size(), {0.0, 0});
            generation_ = 1;
        }
    }
    void add(node k, edgeweight w) {
        Cell& c = cells_[k];
        if (c.stamp != generation_) {
            c.stamp = generation_;
            c.value = w;
            touched_.push_back(k);
        } else {
            c.value += w;
        }
    }
    double get(node k) const {
        const Cell& c = cells_[k];
        return c.stamp == generation_ ? c.value : 0.0;
    }
    const std::vector<node>& touched() const noexcept { return touched_; }

private:
    struct Cell {
        double value;
        std::uint32_t stamp;
    };
    std::vector<Cell> cells_;
    std::vector<node> touched_;
    std::uint32_t generation_ = 1;
};

/// Per-thread state of the tuned kernel: the community-weight accumulator
/// plus the gather/score lanes of the SIMD path and this thread's slice of
/// the next frontier. One pool slot per potential thread (ThreadLocalPool).
template <typename Cells>
struct MoveScratch {
    explicit MoveScratch(count universe) : acc(universe) {}
    Cells acc;
    std::vector<double> candWeight;
    std::vector<double> candVolume;
    std::vector<double> candScore;
    std::vector<node> frontier;
};

/// Below this many candidate communities the batch path's gather setup
/// costs more than it saves; the scalar loop handles short rows.
constexpr std::size_t kSimdMinCandidates = 8;

/// Below this many work items a bucketed sweep loses: its three
/// worksharing loops pay two extra barriers per iteration plus the bucket
/// rebuild, which only the load imbalance of a LARGE skewed sweep repays.
/// Small levels (and late active-set frontiers) take the flat sweep.
constexpr std::size_t kBucketedMinWork = std::size_t{1} << 15;

/// Restriction of the tuned kernel to a seeded frontier — the streaming
/// engine's incremental re-detection mode (Plm::movePhaseSeeded). Instead
/// of sweeping all nodes, iteration 0 evaluates only `seed` (the nodes a
/// batch touched) and later iterations ride the active-set frontier
/// exactly as kernel.activeNodes does, so re-detection cost scales with
/// the perturbation, not the graph. `splitBase` additionally lets every
/// node u consider leaving for its own reserved empty community
/// (splitBase + u): after deletions a node's best move may be to no
/// existing neighbor community at all, which the static kernel never needs
/// (it starts from singletons) but a warm start from a converged partition
/// does.
struct SeededSweep {
    const std::vector<node>* seed = nullptr;
    node splitBase = none;
    count* evaluated = nullptr; ///< out: DISTINCT nodes evaluated (the
                                ///< re-activated set across iterations)
    /// Minimum Δmodularity a move must gain to be accepted. A batch shifts
    /// the total edge weight ω, which perturbs EVERY marginal node's score
    /// a little; without a floor, converged near-tie nodes far from the
    /// perturbation flip on those micro-gains and drag their whole
    /// neighborhood into the frontier. 0.0 reproduces the static rule
    /// (any positive gain moves).
    double minGain = 0.0;
};

template <typename Cells, typename Volumes>
count movePhaseTunedImpl(const CsrGraph& g, Partition& zeta, double gamma,
                         count maxIterations, IterationTracer* tracer,
                         const PlmKernelConfig& kernel,
                         const SeededSweep* seeded = nullptr) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;
    const double twoOmega = 2.0 * omegaE;
    const count communityBound = std::max<count>(zeta.upperBound(), bound);

    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    std::vector<double> initialVolume(communityBound, 0.0);
    g.forNodes([&](node u) { initialVolume[zeta[u]] += nodeVolume[u]; });
    Volumes volumes(std::move(initialVolume));

    const index* offsets = g.offsets().data();
    const node* neighbors = g.neighborArray().data();
    const edgeweight* weights =
        g.isWeighted() ? g.weightArray().data() : nullptr;

    ThreadLocalPool<MoveScratch<Cells>> scratch(communityBound);

#if defined(GRAPR_KERNEL_SIMD)
    const bool simd = kernel.simdScoring;
#else
    const bool simd = false; // build option off: scalar oracle only
#endif
    // A seeded sweep is frontier-driven by construction: iteration 0 is
    // the seed, later iterations the nodes whose neighborhood changed.
    const bool active = kernel.activeNodes || seeded != nullptr;
    const node splitBase = seeded ? seeded->splitBase : none;
    // score = 2ω²·ΔQ, so a ΔQ floor translates to score units as
    // minGain · 2ω² (= minGain · twoOmega² / 2).
    const double moveThreshold =
        seeded ? seeded->minGain * 0.5 * twoOmega * twoOmega : 0.0;
    // Bucketing exists to fix multi-thread load imbalance; sequentially it
    // is pure overhead and would reorder the evaluation sweep, so a
    // one-thread run always takes the flat in-order path (this is what
    // keeps every config bit-identical to the reference single-threaded).
    const bool bucketed =
        kernel.schedule == PlmSweepSchedule::DegreeBucketed &&
        omp_get_max_threads() > 1;

    // The work list: nodes with non-empty rows, ascending (the reference
    // evaluation order). Under activeNodes it becomes the frontier after
    // the first iteration. A seeded sweep starts from the seed instead of
    // all nodes (sorted + deduplicated for a deterministic order).
    std::vector<node> work;
    if (seeded) {
        work.reserve(seeded->seed->size());
        for (const node u : *seeded->seed) {
            if (u < bound && offsets[u] != offsets[u + 1]) work.push_back(u);
        }
        std::sort(work.begin(), work.end());
        work.erase(std::unique(work.begin(), work.end()), work.end());
    } else {
        work.reserve(bound);
        for (node u = 0; u < bound; ++u) {
            if (offsets[u] != offsets[u + 1]) work.push_back(u);
        }
    }

    // Deduplication bitmap of the next frontier: a mover raises its
    // neighbors' flags with a relaxed exchange; whoever wins the exchange
    // appends the node to its thread's frontier slice.
    std::vector<std::atomic<std::uint8_t>> pending(active ? bound : 0);

    // The per-node evaluation, hoisted out of the parallel regions so all
    // three bucket loops (and the flat loop) share one definition. `moved`
    // binds to the enclosing loop's reduction variable; `sc` and `vols`
    // are the calling thread's scratch slot and volume view, resolved
    // once per region (per-node thread-id lookups measurably drag the
    // sweep).
    auto processNode = [&](node u, count& moved, MoveScratch<Cells>& sc,
                           auto& vols) {
        const index lo = offsets[u];
        const index hi = offsets[u + 1];
        const node current = zeta[u];
        Cells& acc = sc.acc;
        acc.clear();
        const node* zetaData = zeta.vector().data();
        // Split row scan: the main loop prefetches the label lookup a few
        // entries ahead with no per-iteration bounds branch; the short
        // tail (and every short row) runs the plain loop.
        const index pfEnd = hi - lo > 8 ? hi - 8 : lo;
        if (weights) {
            index i = lo;
            for (; i < pfEnd; ++i) {
                __builtin_prefetch(&zetaData[neighbors[i + 8]], 0, 1);
                const node v = neighbors[i];
                if (v != u) acc.add(zetaData[v], weights[i]);
            }
            for (; i < hi; ++i) {
                const node v = neighbors[i];
                if (v != u) acc.add(zetaData[v], weights[i]);
            }
        } else {
            index i = lo;
            for (; i < pfEnd; ++i) {
                __builtin_prefetch(&zetaData[neighbors[i + 8]], 0, 1);
                const node v = neighbors[i];
                if (v != u) acc.add(zetaData[v], 1.0);
            }
            for (; i < hi; ++i) {
                const node v = neighbors[i];
                if (v != u) acc.add(zetaData[v], 1.0);
            }
        }

        const double volU = nodeVolume[u];
        const double weightToCurrent = acc.get(current);
        const double volCurrent = vols.read(current) - volU;

        // score(D) = 2ω·ω(u,D) − γ·vol(u)·vol(D) + base, where base folds
        // in the (candidate-independent) cost of leaving C.
        const double gammaVolU = gamma * volU;
        const double base = gammaVolU * volCurrent - twoOmega * weightToCurrent;
        node bestCommunity = current;
        double bestScore = 0.0;
        const std::vector<node>& cands = acc.touched();

        if (simd && cands.size() >= kSimdMinCandidates) {
            for (const node candidate : cands) vols.prefetch(candidate);
            // Batch path: gather weights and volume snapshots into dense
            // lanes (manual 2x unroll hides the volume-read latency), score
            // every lane branch-free under omp simd, then argmax scalar.
            // The lane expression is literally the scalar path's expression,
            // so on integer-weight inputs (where every product is exact in
            // a double) the two paths pick identical moves.
            const std::size_t k = cands.size();
            if (sc.candWeight.size() < k) {
                sc.candWeight.resize(k);
                sc.candVolume.resize(k);
                sc.candScore.resize(k);
            }
            double* cw = sc.candWeight.data();
            double* cv = sc.candVolume.data();
            double* cs = sc.candScore.data();
            const node* cand = cands.data();
            std::size_t i = 0;
            for (; i + 1 < k; i += 2) {
                cw[i] = acc.get(cand[i]);
                cv[i] = vols.read(cand[i]);
                cw[i + 1] = acc.get(cand[i + 1]);
                cv[i + 1] = vols.read(cand[i + 1]);
            }
            for (; i < k; ++i) {
                cw[i] = acc.get(cand[i]);
                cv[i] = vols.read(cand[i]);
            }
#pragma omp simd
            for (std::size_t j = 0; j < k; ++j) {
                cs[j] = twoOmega * cw[j] - gammaVolU * cv[j] + base;
            }
            for (std::size_t j = 0; j < k; ++j) {
                const node candidate = cand[j];
                if (candidate == current) continue;
                const double score = cs[j];
                // Lowest-id tie break, exactly as movePhaseImpl.
                if (score > bestScore ||
                    (score == bestScore && candidate < bestCommunity)) {
                    bestScore = score;
                    bestCommunity = candidate;
                }
            }
        } else {
            for (const node candidate : cands) {
                if (candidate == current) continue;
                const double score = twoOmega * acc.get(candidate) -
                                     gammaVolU * vols.read(candidate) + base;
                // Lowest-id tie break, exactly as movePhaseImpl.
                if (score > bestScore ||
                    (score == bestScore && candidate < bestCommunity)) {
                    bestScore = score;
                    bestCommunity = candidate;
                }
            }
        }

        if (splitBase != none) {
            // Splitting off into u's reserved empty community scores
            // ω(u,D) = 0, vol(D) = 0 — i.e. exactly `base`. Strictly
            // greater only: on a tie, staying (or a real neighbor
            // community) always beats opening a new one.
            const node isolated = splitBase + u;
            if (current != isolated && base > bestScore) {
                bestScore = base;
                bestCommunity = isolated;
            }
        }

        if (bestCommunity != current && bestScore > moveThreshold) {
            vols.apply(current, -volU);
            vols.apply(bestCommunity, volU);
            // grapr:benign-race(zeta): non-atomic label publish; stale
            // reads tolerated, one writer per node per round (see
            // movePhaseImpl).
            zeta.set(u, bestCommunity);
            GRAPR_RACE_BENIGN_SITE("plm.moveTuned.zeta");
            ++moved;
            if (active) {
                // u's move changes every neighbor's Δmod landscape: seed
                // them into the next frontier (first flag-raiser appends).
                for (index i = lo; i < hi; ++i) {
                    const node v = neighbors[i];
                    if (v == u) continue;
                    if (pending[v].load(std::memory_order_relaxed) == 0 &&
                        pending[v].exchange(1, std::memory_order_relaxed) ==
                            0) {
                        sc.frontier.push_back(v);
                    }
                }
            }
        }
        // Per-node boundary: the sharded policy flushes its write buffer
        // here once the staleness budget is spent (no-op for atomic).
        vols.completeNode();
    };

    std::vector<node> lowBucket;
    std::vector<node> midBucket;
    std::vector<node> hubBucket;

    count totalMoves = 0;
    count evaluatedNodes = 0;
    // Seeded sweeps report the distinct re-activated set, not evaluation
    // work: a node revisited by five frontier rounds is still one node of
    // re-detection locality (the <10%-of-n acceptance metric).
    std::vector<std::uint8_t> everEvaluated;
    if (seeded) everEvaluated.assign(bound, 0);
    for (count iteration = 0;
         iteration < maxIterations && !work.empty(); ++iteration) {
        GRAPR_RACE_PHASE("plm.moveTuned");
        if (seeded) {
            for (const node u : work) {
                if (!everEvaluated[u]) {
                    everEvaluated[u] = 1;
                    ++evaluatedNodes;
                }
            }
        } else {
            evaluatedNodes += work.size();
        }
        count movedThisRound = 0;
        if (bucketed && work.size() >= kBucketedMinWork) {
            // Split the sweep by row shape: short uniform rows get cheap
            // static chunks, the middle keeps the paper's guided schedule,
            // and hubs go through dynamic work-stealing one row at a time
            // so a million-entry row cannot serialize the iteration tail.
            lowBucket.clear();
            midBucket.clear();
            hubBucket.clear();
            for (const node u : work) {
                const count deg =
                    static_cast<count>(offsets[u + 1] - offsets[u]);
                if (deg < kernel.lowDegreeMax) {
                    lowBucket.push_back(u);
                } else if (deg >= kernel.hubDegreeMin) {
                    hubBucket.push_back(u);
                } else {
                    midBucket.push_back(u);
                }
            }
            const auto nLow = static_cast<std::int64_t>(lowBucket.size());
            const auto nMid = static_cast<std::int64_t>(midBucket.size());
            const auto nHub = static_cast<std::int64_t>(hubBucket.size());
            // One region, three worksharing loops (implicit barrier after
            // each keeps the bucket phases ordered without paying three
            // fork/joins); scratch slot and volume view resolve once per
            // thread.
#pragma omp parallel default(none)                                           \
    shared(processNode, scratch, volumes, lowBucket, midBucket, hubBucket,   \
               nLow, nMid, nHub) reduction(+ : movedThisRound)
            {
                MoveScratch<Cells>& sc = scratch.local();
                auto vols = volumes.view();
#pragma omp for schedule(static)
                for (std::int64_t i = 0; i < nLow; ++i) {
                    processNode(lowBucket[i], movedThisRound, sc, vols);
                }
#pragma omp for schedule(guided)
                for (std::int64_t i = 0; i < nMid; ++i) {
                    processNode(midBucket[i], movedThisRound, sc, vols);
                }
#pragma omp for schedule(dynamic, 1)
                for (std::int64_t i = 0; i < nHub; ++i) {
                    processNode(hubBucket[i], movedThisRound, sc, vols);
                }
            }
        } else {
            const auto n = static_cast<std::int64_t>(work.size());
#pragma omp parallel default(none)                                           \
    shared(processNode, scratch, volumes, work, n)                           \
        reduction(+ : movedThisRound)
            {
                MoveScratch<Cells>& sc = scratch.local();
                auto vols = volumes.view();
#pragma omp for schedule(guided)
                for (std::int64_t i = 0; i < n; ++i) {
                    processNode(work[i], movedThisRound, sc, vols);
                }
            }
        }
        // Serial iteration boundary: fold the volume shards (no-op for the
        // atomic policy) so the next sweep reads fresh totals.
        volumes.endIteration();

        totalMoves += movedThisRound;
        if (tracer) {
            tracer->record(iteration + 1,
                           active ? static_cast<count>(work.size())
                                  : g.numberOfNodes(),
                           movedThisRound);
        }
        if (movedThisRound == 0) break;

        if (active) {
            // Next sweep = the frontier: concatenate the per-thread slices,
            // sort for a deterministic evaluation order, drop the flags.
            work.clear();
            for (std::size_t t = 0; t < scratch.size(); ++t) {
                std::vector<node>& slice = scratch.slot(t).frontier;
                work.insert(work.end(), slice.begin(), slice.end());
                slice.clear();
            }
            std::sort(work.begin(), work.end());
            for (const node v : work) {
                pending[v].store(0, std::memory_order_relaxed);
            }
        }
    }
    if (seeded && seeded->evaluated) *seeded->evaluated = evaluatedNodes;
    return totalMoves;
}

count movePhaseTuned(const CsrGraph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer,
                     const PlmKernelConfig& kernel,
                     const SeededSweep* seeded = nullptr) {
    const bool sharded = kernel.volumePolicy == PlmVolumePolicy::Sharded;
    if (g.isWeighted()) {
        return sharded
                   ? movePhaseTunedImpl<FrozenWeightCells, ShardedVolumes>(
                         g, zeta, gamma, maxIterations, tracer, kernel,
                         seeded)
                   : movePhaseTunedImpl<FrozenWeightCells, AtomicVolumes>(
                         g, zeta, gamma, maxIterations, tracer, kernel,
                         seeded);
    }
    return sharded ? movePhaseTunedImpl<FrozenCountCells, ShardedVolumes>(
                         g, zeta, gamma, maxIterations, tracer, kernel,
                         seeded)
                   : movePhaseTunedImpl<FrozenCountCells, AtomicVolumes>(
                         g, zeta, gamma, maxIterations, tracer, kernel,
                         seeded);
}

/// Layout dispatch for the Recompute strategy: the mutable layout runs the
/// reference kernel (the kernel config is a frozen-path concept), the
/// frozen layout the tuned one (identical decisions).
count moveNodes(const Graph& g, Partition& zeta, double gamma,
                count maxIterations, IterationTracer* tracer,
                const PlmKernelConfig& /*kernel*/) {
    return movePhaseImpl(g, zeta, gamma, maxIterations, tracer);
}

count moveNodes(const CsrGraph& g, Partition& zeta, double gamma,
                count maxIterations, IterationTracer* tracer,
                const PlmKernelConfig& kernel) {
    return movePhaseTuned(g, zeta, gamma, maxIterations, tracer, kernel);
}

template <typename GraphT>
count movePhaseCachedMapsImpl(const GraphT& g, Partition& zeta, double gamma,
                              count maxIterations) {
    const count bound = g.upperNodeIdBound();
    const double omegaE = g.totalEdgeWeight();
    if (omegaE <= 0.0) return 0;
    const count communityBound = std::max<count>(zeta.upperBound(), bound);

    std::vector<double> communityVolume(communityBound, 0.0);
    std::vector<double> nodeVolume(bound, 0.0);
    g.parallelForNodes([&](node u) { nodeVolume[u] = g.volume(u); });
    g.forNodes([&](node u) { communityVolume[zeta[u]] += nodeVolume[u]; });

    // The abandoned design: one weight-to-community map and one lock per
    // vertex. All reads and writes of a vertex's map go through its lock
    // (std::map/unordered_map are not thread-safe).
    std::vector<std::unordered_map<node, double>> weightTo(bound);
    std::vector<omp_lock_t> locks(bound);
    for (auto& lock : locks) omp_init_lock(&lock);
    g.parallelForNodes([&](node u) {
        auto& map = weightTo[u];
        g.forNeighborsOf(u, [&](node v, edgeweight w) {
            if (v != u) map[zeta[v]] += w;
        });
    });

    count totalMoves = 0;
    for (count iteration = 0; iteration < maxIterations; ++iteration) {
        GRAPR_RACE_PHASE("plm.moveCachedMaps");
        count movedThisRound = 0;
        const auto n = static_cast<std::int64_t>(bound);
#pragma omp parallel for default(none)                                       \
    shared(g, zeta, communityVolume, nodeVolume, weightTo, locks, omegaE,    \
               gamma, n)                                                     \
    schedule(guided) reduction(+ : movedThisRound)
        for (std::int64_t su = 0; su < n; ++su) {
            const node u = static_cast<node>(su);
            if (!g.hasNode(u) || g.degree(u) == 0) continue;
            const node current = zeta[u];
            const double volU = nodeVolume[u];

            node bestCommunity = current;
            double bestDelta = 0.0;
            {
                omp_set_lock(&locks[u]);
                const auto& map = weightTo[u];
                const auto itCurrent = map.find(current);
                const double weightToCurrent =
                    itCurrent == map.end() ? 0.0 : itCurrent->second;
                // grapr:benign-race(communityVolume): stale snapshot
                // tolerated by design (see movePhaseImpl).
                double volCurrent;
#pragma omp atomic read
                volCurrent = communityVolume[current];
                volCurrent -= volU;
                for (const auto& [candidate, weight] : map) {
                    if (candidate == current) continue;
                    // grapr:benign-race(communityVolume): stale candidate
                    // volume tolerated by design (see movePhaseImpl).
                    double volCandidate;
#pragma omp atomic read
                    volCandidate = communityVolume[candidate];
                    const double delta =
                        deltaModularity(omegaE, weightToCurrent, weight,
                                        volCurrent, volCandidate, volU,
                                        gamma);
                    // Lowest-id tie break (see movePhaseImpl) — essential
                    // here, where the map's iteration order is arbitrary.
                    if (delta > bestDelta ||
                        (delta == bestDelta && candidate < bestCommunity)) {
                        bestDelta = delta;
                        bestCommunity = candidate;
                    }
                }
                omp_unset_lock(&locks[u]);
            }

            if (bestCommunity != current && bestDelta > 0.0) {
#pragma omp atomic
                communityVolume[current] -= volU;
#pragma omp atomic
                communityVolume[bestCommunity] += volU;
                // No benign-race annotation here: unlike movePhaseImpl,
                // this region never reads zeta at a neighbor index —
                // labels come from the locked per-node cached maps — so
                // the one-writer-per-node zeta.set is a disjoint write,
                // not a tolerated race.
                // grapr:lint-allow(benign-race): proven disjoint by
                // grapr_analyze parallel-effects (no foreign zeta read in
                // this region); the textual publish rule is a pre-screen.
                zeta.set(u, bestCommunity);
                // Propagate the move into every neighbor's cached map.
                g.forNeighborsOf(u, [&](node v, edgeweight w) {
                    if (v == u) return;
                    omp_set_lock(&locks[v]);
                    auto& map = weightTo[v];
                    auto it = map.find(current);
                    if (it != map.end()) {
                        it->second -= w;
                        if (it->second <= 0.0) map.erase(it);
                    }
                    map[bestCommunity] += w;
                    omp_unset_lock(&locks[v]);
                });
                ++movedThisRound;
            }
        }
        totalMoves += movedThisRound;
        if (movedThisRound == 0) break;
    }
    for (auto& lock : locks) omp_destroy_lock(&lock);
    return totalMoves;
}

} // namespace

count Plm::movePhase(const Graph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer) {
    return movePhaseImpl(g, zeta, gamma, maxIterations, tracer);
}

count Plm::movePhase(const CsrGraph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer) {
    return movePhaseTuned(g, zeta, gamma, maxIterations, tracer,
                          PlmKernelConfig{});
}

count Plm::movePhase(const CsrGraph& g, Partition& zeta, double gamma,
                     count maxIterations, IterationTracer* tracer,
                     const PlmKernelConfig& kernel) {
    return movePhaseTuned(g, zeta, gamma, maxIterations, tracer, kernel);
}

count Plm::movePhaseReference(const CsrGraph& g, Partition& zeta, double gamma,
                              count maxIterations, IterationTracer* tracer) {
    return movePhaseImpl(g, zeta, gamma, maxIterations, tracer);
}

count Plm::movePhaseSeeded(const CsrGraph& g, Partition& zeta, double gamma,
                           count maxIterations,
                           const std::vector<node>& seed, node splitBase,
                           count* evaluatedNodes,
                           const PlmKernelConfig& kernel, double minGain) {
    if (splitBase != none) {
        require(static_cast<count>(splitBase) + g.upperNodeIdBound() <=
                    zeta.upperBound(),
                "movePhaseSeeded: zeta.upperBound() must cover the "
                "reserved split-off range [splitBase, splitBase + bound)");
    }
    const SeededSweep restriction{&seed, splitBase, evaluatedNodes, minGain};
    return movePhaseTuned(g, zeta, gamma, maxIterations, nullptr, kernel,
                          &restriction);
}

count Plm::movePhaseCachedMaps(const Graph& g, Partition& zeta, double gamma,
                               count maxIterations) {
    return movePhaseCachedMapsImpl(g, zeta, gamma, maxIterations);
}

count Plm::movePhaseCachedMaps(const CsrGraph& g, Partition& zeta,
                               double gamma, count maxIterations) {
    return movePhaseCachedMapsImpl(g, zeta, gamma, maxIterations);
}

template <typename GraphT>
Partition Plm::runRecursive(const GraphT& g, count level) {
    Partition zeta(g.upperNodeIdBound());
    zeta.allToSingletons();

    PlmLevelInfo info;
    info.nodes = g.numberOfNodes();
    info.edges = g.numberOfEdges();

    IterationTracer moveTracer;
    const count moves =
        config_.strategy == PlmWeightStrategy::CachedMaps
            ? movePhaseCachedMapsImpl(g, zeta, config_.gamma,
                                      config_.maxMoveIterations)
            : moveNodes(g, zeta, config_.gamma, config_.maxMoveIterations,
                        tracer_ ? &moveTracer : nullptr, config_.kernel);
    info.moveIterations = moveTracer.records().size();
    info.totalMoves = moves;
    levels_.push_back(info);
    if (tracer_) {
        for (const auto& r : moveTracer.records()) {
            tracer_->record(level * 1000 + r.iteration, r.active, r.updated);
        }
    }

    if (moves == 0) return zeta; // ζ unchanged: recursion bottoms out

    ParallelPartitionCoarsening coarsener(config_.parallelCoarsening);
    // Overload resolution keeps the recursion in the input layout: a
    // frozen level coarsens CSR-to-CSR (prefix-sum construction), a
    // mutable level through the builder-based scheme.
    auto coarse = coarsener.run(g, zeta);

    // Guard against non-contraction (every community a singleton would
    // reproduce the same graph forever).
    if (coarse.coarseGraph.numberOfNodes() >= g.numberOfNodes()) return zeta;

    const Partition coarseSolution =
        runRecursive(coarse.coarseGraph, level + 1);
    zeta = ClusteringProjector::projectBack(coarseSolution,
                                            coarse.fineToCoarse);

    if (config_.refine) {
        // PLMR: re-evaluate node assignments on this level in view of the
        // changes made on the coarser levels (Algorithm 4 line 7). Runs on
        // the same frozen view as the first move phase — the level is
        // frozen once, not per pass.
        zeta.setUpperBound(
            static_cast<node>(std::max<count>(zeta.upperBound(),
                                              g.upperNodeIdBound())));
        if (config_.strategy == PlmWeightStrategy::CachedMaps) {
            movePhaseCachedMapsImpl(g, zeta, config_.gamma,
                                    config_.maxMoveIterations);
        } else {
            moveNodes(g, zeta, config_.gamma, config_.maxMoveIterations,
                      nullptr, config_.kernel);
        }
    }
    return zeta;
}

Partition Plm::detectFrozen(const CsrGraph& g) {
    if (config_.vertexFollowing) {
        // Collapse degree-1 chains/pendants onto their anchors, detect on
        // the reduced graph, and prolong the labels back — every follower
        // lands exactly in its anchor's community by construction.
        const VertexFollowingReduction reduction = VertexFollowing::reduce(g);
        if (reduction.collapsed > 0) {
            const Partition reducedSolution =
                runRecursive(reduction.reduced, 0);
            Partition zeta = ClusteringProjector::projectBack(
                reducedSolution, reduction.fineToCoarse);
            // The reduction is one more coarsening level, so prolongation
            // gets the same treatment as every other level boundary: one
            // refinement sweep on the full graph. It starts from the
            // near-converged prolonged labels (few iterations to settle)
            // and is what keeps the VF path's quality no worse than the
            // uncollapsed run — the property the VF tests pin.
            zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
            if (config_.strategy == PlmWeightStrategy::CachedMaps) {
                movePhaseCachedMapsImpl(g, zeta, config_.gamma,
                                        config_.maxMoveIterations);
            } else {
                moveNodes(g, zeta, config_.gamma, config_.maxMoveIterations,
                          nullptr, config_.kernel);
            }
            return zeta;
        }
    }
    return runRecursive(g, 0);
}

Partition Plm::run(const Graph& g) {
    levels_.clear();
    Partition zeta;
    if (config_.freeze || config_.vertexFollowing) {
        // Vertex following operates on (and produces) the frozen layout,
        // so enabling it implies the frozen path.
        const CsrGraph frozen(g);
        zeta = detectFrozen(frozen);
    } else {
        zeta = runRecursive(g, 0);
    }
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

Partition Plm::runFrozen(const CsrGraph& g) {
    levels_.clear();
    Partition zeta = detectFrozen(g);
    zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
    zeta.compact();
    return zeta;
}

std::string Plm::toString() const {
    std::string name = config_.refine ? "PLMR" : "PLM";
    if (config_.gamma != 1.0) {
        name += "(gamma=" + std::to_string(config_.gamma) + ")";
    }
    if (!config_.parallelCoarsening) name += "+seqcoarse";
    if (!config_.freeze) name += "+nofreeze";
    if (config_.vertexFollowing) name += "+vf";
    if (config_.kernel.volumePolicy == PlmVolumePolicy::Sharded) {
        name += "+shardedvol";
    }
    if (config_.kernel.schedule == PlmSweepSchedule::Flat) name += "+flat";
    if (config_.kernel.simdScoring) name += "+simd";
    if (config_.kernel.activeNodes) name += "+active";
    return name;
}

} // namespace grapr
