#pragma once
// Overlapping community detection by multi-label propagation, in the style
// of COPRA (Gregory 2010) — the "considering overlapping communities"
// extension the paper's conclusion names for the framework (§VII).
//
// Every node holds up to `maxMemberships` labels with belonging
// coefficients summing to 1. Per synchronous iteration, a node averages
// its neighbors' coefficient vectors (edge-weighted), drops labels below
// the threshold 1/maxMemberships (keeping the strongest if all fall
// below), and renormalizes. Nodes in the overlap of two dense regions
// retain both labels; everyone else converges to one, so with
// maxMemberships = 1 the algorithm degenerates to synchronous label
// propagation.

#include "graph/graph.hpp"
#include "structures/cover.hpp"

namespace grapr {

struct OverlappingLpaConfig {
    /// v in COPRA terms: maximum communities per node.
    count maxMemberships = 2;
    /// Synchronous iterations (COPRA converges within tens).
    count maxIterations = 40;
};

class OverlappingLpa {
public:
    explicit OverlappingLpa(OverlappingLpaConfig config = {})
        : config_(config) {
        require(config_.maxMemberships >= 1,
                "OverlappingLpa: maxMemberships must be >= 1");
    }

    /// Detect overlapping communities of g.
    Cover run(const Graph& g);

    /// Iterations of the last run.
    count iterations() const noexcept { return iterations_; }

private:
    OverlappingLpaConfig config_;
    count iterations_ = 0;
};

} // namespace grapr
