#pragma once
// Incremental community detection over the streaming engine
// (DESIGN.md "Streaming updates and snapshot isolation").
//
// StreamingPlm / StreamingPlp keep a partition continuously up to date
// across StreamingGraph generations: initialize() runs the full static
// detector once on a snapshot, and applyBatch() re-detects after each
// published batch by SEEDING from the previous partition and re-activating
// only the nodes the batch touched (BatchResult::touched), following the
// dynamic-update strategy of Staudt & Meyerhenke (arXiv:1304.4453). The
// sweeps then ride the PR-6 active-set frontier: a move re-activates only
// the mover's neighbors, so re-detection cost scales with the size of the
// perturbation, not with n — lastReactivated() reports the number of
// DISTINCT nodes re-activated, the <10%-of-n metric BENCH_stream.json
// tracks.
//
// Both detectors are single-writer objects: applyBatch() must be called
// once per published generation, in order, by one thread (internally the
// sweeps are parallel). Readers of the partition must not overlap an
// applyBatch() call — snapshot the Partition (cheap copy) if needed.

#include <vector>

#include "community/plm.hpp"
#include "community/plp.hpp"
#include "graph/csr_graph.hpp"
#include "structures/partition.hpp"
#include "support/common.hpp"

namespace grapr {

struct StreamingPlmConfig {
    /// Resolution parameter of the seeded move phase (and the cold start,
    /// which uses cold.gamma — keep them equal for meaningful deltas).
    double gamma = 1.0;
    /// Cap on seeded move sweeps per batch.
    count maxSweeps = 32;
    /// Δmodularity floor for accepting a move during seeded re-detection
    /// (Plm::movePhaseSeeded). A batch shifts ω and therefore nudges every
    /// marginal node's score; the floor keeps converged near-ties far from
    /// the batch from flipping on those micro-gains, so the re-activated
    /// set stays proportional to the perturbation. Costs at most minGain
    /// per suppressed move in modularity — keep it far below the quality
    /// envelope you care about.
    double minGain = 2e-4;
    /// Static detector config for initialize().
    PlmConfig cold = {};
    /// Kernel tuning of the seeded sweeps.
    PlmKernelConfig kernel = {};
};

/// Incremental PLM: warm-starts every batch from the converged previous
/// partition. Each applyBatch compacts the community ids to [0, k),
/// reserves the empty split-off range [k, k + bound) (node u may leave for
/// community k + u when deletions strand it — see Plm::movePhaseSeeded),
/// rebuilds community volumes for the new generation, and runs the seeded
/// restricted move phase from the touched-node frontier.
class StreamingPlm {
public:
    explicit StreamingPlm(StreamingPlmConfig config = {})
        : config_(config) {}

    /// Full static detection on `g` (Plm::runFrozen with config_.cold).
    void initialize(const CsrGraph& g);

    /// Incremental re-detection on the post-batch snapshot `g`, seeded
    /// from the previous partition; `touched` is BatchResult::touched.
    /// Requires initialize() first and g's bound >= the previous bound.
    void applyBatch(const CsrGraph& g, const std::vector<node>& touched);

    bool initialized() const noexcept { return initialized_; }
    /// Current partition (compacted after every batch).
    const Partition& communities() const noexcept { return zeta_; }
    /// Distinct nodes re-activated by the last applyBatch (a node swept
    /// several times counts once) — the re-detection locality; compare
    /// against upperNodeIdBound().
    count lastReactivated() const noexcept { return lastReactivated_; }
    /// Moves performed by the last applyBatch.
    count lastMoves() const noexcept { return lastMoves_; }

private:
    StreamingPlmConfig config_;
    Partition zeta_;
    count lastReactivated_ = 0;
    count lastMoves_ = 0;
    bool initialized_ = false;
};

struct StreamingPlpConfig {
    /// Cap on seeded label sweeps per batch.
    count maxSweeps = 100;
    /// Static detector config for initialize().
    PlpConfig cold = {};
};

/// Incremental PLP: keeps the converged label array and re-propagates only
/// from the touched frontier (dominant-label rule, smaller-id tie break,
/// sticky labels — a node whose current label ties the dominant weight
/// stays, so a converged region is a fixpoint and untouched nodes never
/// churn).
class StreamingPlp {
public:
    explicit StreamingPlp(StreamingPlpConfig config = {})
        : config_(config) {}

    void initialize(const CsrGraph& g);
    void applyBatch(const CsrGraph& g, const std::vector<node>& touched);

    bool initialized() const noexcept { return initialized_; }
    const Partition& labels() const noexcept { return zeta_; }
    count lastReactivated() const noexcept { return lastReactivated_; }
    count lastSweeps() const noexcept { return lastSweeps_; }

private:
    StreamingPlpConfig config_;
    Partition zeta_;
    count lastReactivated_ = 0;
    count lastSweeps_ = 0;
    bool initialized_ = false;
};

} // namespace grapr
