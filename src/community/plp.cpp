#include "community/plp.hpp"

#include <atomic>

#include "graph/graph_tools.hpp"
#include "support/parallel.hpp"
#include "support/race_check.hpp"
#include "support/random.hpp"

namespace grapr {

Partition Plp::run(const Graph& g) {
    if (config_.freeze) {
        const CsrGraph frozen(g);
        return runImpl(frozen);
    }
    return runImpl(g);
}

Partition Plp::runFrozen(const CsrGraph& g) { return runImpl(g); }

template <typename GraphT>
Partition Plp::runImpl(const GraphT& g) {
    const count bound = g.upperNodeIdBound();
    Partition zeta(bound);
    zeta.allToSingletons();
    if (g.isEmpty()) return zeta;

    std::vector<node>& label = zeta.vector();
    std::vector<std::uint8_t> active(bound, 1);

    // Traversal order. The paper's default relies on implicit randomization
    // through parallelism; with few threads (or adversarial id layouts
    // where communities occupy contiguous id blocks) in-order traversal
    // lets the consolidated label of block i flood block i+1 within one
    // sweep. A single upfront shuffle — O(n), amortized over all
    // iterations — restores the needed decorrelation without the
    // per-iteration reshuffle cost the paper measured and rejected;
    // `explicitRandomization` additionally reshuffles every iteration (the
    // ablation variant).
    std::vector<node> order = GraphTools::randomNodeOrder(g);

    const double theta =
        config_.thetaFraction * static_cast<double>(g.numberOfNodes());

    ScratchPool scratch(bound);

    // Weighted dominant-label selection for one node: the label maximizing
    // the incident weight, ties broken uniformly at random by reservoir
    // choice ("breaking ties arbitrarily" in Algorithm 1 — deterministic
    // tie-breaking toward small ids would flood one label through the whole
    // graph on regular structures).
    auto dominantLabel = [&](node v) -> node {
        SparseAccumulator& acc = scratch.local();
        acc.clear();
        g.forNeighborsOf(v, [&](node u, edgeweight w) {
            acc.add(label[u], w);
        });
        node best = label[v];
        double bestWeight = -1.0;
        count ties = 0;
        for (index l : acc.touched()) {
            const double weight = acc[l];
            const node candidate = static_cast<node>(l);
            if (weight > bestWeight) {
                best = candidate;
                bestWeight = weight;
                ties = 1;
            } else if (weight == bestWeight) {
                // Reservoir: the k-th tied label replaces the incumbent
                // with probability 1/k, giving a uniform choice.
                ++ties;
                if (Random::integer(ties) == 0) best = candidate;
            }
        }
        // Sticky current label: if v's own label is among the heaviest,
        // keep it — avoids label churn among equivalent choices, which
        // both speeds convergence and keeps the update counter meaningful.
        if (acc[label[v]] == bestWeight) return label[v];
        return best;
    };

    iterations_ = 0;
    count updated = g.numberOfNodes();
    while (static_cast<double>(updated) > theta &&
           iterations_ < config_.maxIterations) {
        count activeCount = 0;
        if (tracer_) {
            for (node v = 0; v < bound; ++v) activeCount += active[v];
        }

        count updatedThisRound = 0;

        auto processNode = [&](node v, count& localUpdated) {
            if (g.degree(v) == 0) return;
            if (config_.trackActiveNodes) {
                if (!active[v]) return;
                active[v] = 0;
            }
            const node best = dominantLabel(v);
            if (best != label[v]) {
                // grapr:benign-race(label): asynchronous updating — the new
                // label is published non-atomically, so neighbor scans in
                // this round may read the old or the new value (Algorithm
                // 1's contract). Each node is written by exactly one thread
                // per round; the shadow write below enforces that half.
                GRAPR_RACE_WRITE(zeta.raceShadow(), v);
                label[v] = best;
                ++localUpdated;
                if (config_.trackActiveNodes) {
                    g.forNeighborsOf(v, [&](node u, edgeweight) {
                        active[u] = 1;
                    });
                }
            }
        };

        if (config_.explicitRandomization && iterations_ > 0) {
            Random::shuffle(order.begin(), order.end());
        }
        GRAPR_RACE_PHASE("plp.round");
        const auto n = static_cast<std::int64_t>(order.size());
        if (config_.guidedSchedule) {
#pragma omp parallel for default(none) shared(processNode, order, n)         \
    schedule(guided) reduction(+ : updatedThisRound)
            for (std::int64_t i = 0; i < n; ++i) {
                processNode(order[static_cast<std::size_t>(i)],
                            updatedThisRound);
            }
        } else {
#pragma omp parallel for default(none) shared(processNode, order, n)         \
    schedule(static) reduction(+ : updatedThisRound)
            for (std::int64_t i = 0; i < n; ++i) {
                processNode(order[static_cast<std::size_t>(i)],
                            updatedThisRound);
            }
        }

        updated = updatedThisRound;
        ++iterations_;
        if (tracer_) tracer_->record(iterations_, activeCount, updated);
    }

    zeta.setUpperBound(static_cast<node>(bound));
    return zeta;
}

std::string Plp::toString() const {
    std::string name = "PLP";
    if (config_.thetaFraction == 0.0) name += "(theta=0)";
    if (config_.explicitRandomization) name += "+rand";
    if (!config_.guidedSchedule) name += "+static";
    if (!config_.trackActiveNodes) name += "+noactivity";
    if (!config_.freeze) name += "+nofreeze";
    return name;
}

} // namespace grapr
