#include "community/plp.hpp"

#include <algorithm>
#include <atomic>

#include "community/vertex_following.hpp"
#include "graph/graph_tools.hpp"
#include "support/parallel.hpp"
#include "support/race_check.hpp"
#include "support/random.hpp"

namespace grapr {

Partition Plp::run(const Graph& g) {
    if (config_.freeze || config_.vertexFollowing) {
        // Vertex following operates on the frozen layout, so enabling it
        // implies the frozen path.
        const CsrGraph frozen(g);
        return runFrozen(frozen);
    }
    return runImpl(g);
}

Partition Plp::runFrozen(const CsrGraph& g) {
    if (config_.vertexFollowing) {
        const VertexFollowingReduction reduction = VertexFollowing::reduce(g);
        if (reduction.collapsed > 0) {
            const Partition reducedSolution = runImpl(reduction.reduced);
            Partition zeta =
                VertexFollowing::projectBack(reducedSolution, reduction);
            zeta.setUpperBound(static_cast<node>(g.upperNodeIdBound()));
            return zeta;
        }
    }
    return runImpl(g);
}

template <typename GraphT>
Partition Plp::runImpl(const GraphT& g) {
    const count bound = g.upperNodeIdBound();
    Partition zeta(bound);
    zeta.allToSingletons();
    if (g.isEmpty()) return zeta;

    std::vector<node>& label = zeta.vector();
    std::vector<std::uint8_t> active(bound, 1);

    // Traversal order. The paper's default relies on implicit randomization
    // through parallelism; with few threads (or adversarial id layouts
    // where communities occupy contiguous id blocks) in-order traversal
    // lets the consolidated label of block i flood block i+1 within one
    // sweep. A single upfront shuffle — O(n), amortized over all
    // iterations — restores the needed decorrelation without the
    // per-iteration reshuffle cost the paper measured and rejected;
    // `explicitRandomization` additionally reshuffles every iteration (the
    // ablation variant).
    std::vector<node> order = GraphTools::randomNodeOrder(g);

    const double theta =
        config_.thetaFraction * static_cast<double>(g.numberOfNodes());

    ScratchPool scratch(bound);

    // Frontier mode: `order` doubles as the worklist — after each
    // iteration it is rebuilt from the per-thread slices of nodes whose
    // neighborhood changed. `pending` deduplicates insertions (a relaxed
    // test-and-set; the winning thread appends to its slice).
    const bool frontier = config_.frontierSweep;
    std::vector<std::atomic<std::uint8_t>> pending(frontier ? bound : 0);
    ThreadLocalPool<std::vector<node>> frontierSlices;

    // Weighted dominant-label selection for one node: the label maximizing
    // the incident weight, ties broken uniformly at random by reservoir
    // choice ("breaking ties arbitrarily" in Algorithm 1 — deterministic
    // tie-breaking toward small ids would flood one label through the whole
    // graph on regular structures).
    auto dominantLabel = [&](node v) -> node {
        SparseAccumulator& acc = scratch.local();
        acc.clear();
        g.forNeighborsOf(v, [&](node u, edgeweight w) {
            acc.add(label[u], w);
        });
        node best = label[v];
        double bestWeight = -1.0;
        count ties = 0;
        for (index l : acc.touched()) {
            const double weight = acc[l];
            const node candidate = static_cast<node>(l);
            if (weight > bestWeight) {
                best = candidate;
                bestWeight = weight;
                ties = 1;
            } else if (weight == bestWeight) {
                // Reservoir: the k-th tied label replaces the incumbent
                // with probability 1/k, giving a uniform choice.
                ++ties;
                if (Random::integer(ties) == 0) best = candidate;
            }
        }
        // Sticky current label: if v's own label is among the heaviest,
        // keep it — avoids label churn among equivalent choices, which
        // both speeds convergence and keeps the update counter meaningful.
        if (acc[label[v]] == bestWeight) return label[v];
        return best;
    };

    iterations_ = 0;
    count updated = g.numberOfNodes();
    while (static_cast<double>(updated) > theta &&
           iterations_ < config_.maxIterations && !order.empty()) {
        count activeCount = 0;
        if (tracer_) {
            if (frontier) {
                activeCount = static_cast<count>(order.size());
            } else {
                for (node v = 0; v < bound; ++v) activeCount += active[v];
            }
        }

        count updatedThisRound = 0;

        auto processNode = [&](node v, count& localUpdated) {
            if (g.degree(v) == 0) return;
            if (!frontier && config_.trackActiveNodes) {
                if (!active[v]) return;
                // grapr:benign-race(active): the deactivation below races
                // with neighbor re-arms (`active[u] = 1`); losing the race
                // only means one extra evaluation of a converged node next
                // round — the sweep loop re-checks convergence anyway.
                active[v] = 0;
                GRAPR_RACE_BENIGN_SITE("plp.active.clear");
            }
            const node best = dominantLabel(v);
            if (best != label[v]) {
                // grapr:benign-race(label): asynchronous updating — the new
                // label is published non-atomically, so neighbor scans in
                // this round may read the old or the new value (Algorithm
                // 1's contract). Each node is written by exactly one thread
                // per round; the shadow write below enforces that half.
                GRAPR_RACE_WRITE(zeta.raceShadow(), v);
                label[v] = best;
                GRAPR_RACE_BENIGN_SITE("plp.sweep.label");
                ++localUpdated;
                if (frontier) {
                    std::vector<node>& slice = frontierSlices.local();
                    g.forNeighborsOf(v, [&](node u, edgeweight) {
                        if (u == v) return;
                        if (pending[u].load(std::memory_order_relaxed) == 0 &&
                            pending[u].exchange(
                                1, std::memory_order_relaxed) == 0) {
                            slice.push_back(u);
                        }
                    });
                } else if (config_.trackActiveNodes) {
                    g.forNeighborsOf(v, [&](node u, edgeweight) {
                        // grapr:benign-race(active): re-arm flag; byte
                        // stores of the same value from several threads,
                        // and a lost deactivation race is self-healing
                        // (see above).
                        active[u] = 1;
                        GRAPR_RACE_BENIGN_SITE("plp.active.rearm");
                    });
                }
            }
        };

        if (config_.explicitRandomization && iterations_ > 0 && !frontier) {
            Random::shuffle(order.begin(), order.end());
        }
        GRAPR_RACE_PHASE("plp.round");
        const auto n = static_cast<std::int64_t>(order.size());
        if (config_.guidedSchedule) {
#pragma omp parallel for default(none) shared(processNode, order, n)         \
    schedule(guided) reduction(+ : updatedThisRound)
            for (std::int64_t i = 0; i < n; ++i) {
                processNode(order[static_cast<std::size_t>(i)],
                            updatedThisRound);
            }
        } else {
#pragma omp parallel for default(none) shared(processNode, order, n)         \
    schedule(static) reduction(+ : updatedThisRound)
            for (std::int64_t i = 0; i < n; ++i) {
                processNode(order[static_cast<std::size_t>(i)],
                            updatedThisRound);
            }
        }

        updated = updatedThisRound;
        ++iterations_;
        if (tracer_) tracer_->record(iterations_, activeCount, updated);

        if (frontier) {
            // Rebuild the worklist: concatenate the per-thread slices,
            // sort (a canonical order independent of thread interleaving),
            // drop the dedup flags, then reshuffle — the frontier replaces
            // the full sweep, so it needs the same traversal decorrelation
            // the upfront shuffle gave `order`.
            order.clear();
            for (std::size_t t = 0; t < frontierSlices.size(); ++t) {
                std::vector<node>& slice = frontierSlices.slot(t);
                order.insert(order.end(), slice.begin(), slice.end());
                slice.clear();
            }
            std::sort(order.begin(), order.end());
            for (const node v : order) {
                pending[v].store(0, std::memory_order_relaxed);
            }
            Random::shuffle(order.begin(), order.end());
        }
    }

    zeta.setUpperBound(static_cast<node>(bound));
    return zeta;
}

std::string Plp::toString() const {
    std::string name = "PLP";
    if (config_.thetaFraction == 0.0) name += "(theta=0)";
    if (config_.explicitRandomization) name += "+rand";
    if (!config_.guidedSchedule) name += "+static";
    if (!config_.trackActiveNodes) name += "+noactivity";
    if (config_.frontierSweep) name += "+frontier";
    if (config_.vertexFollowing) name += "+vf";
    if (!config_.freeze) name += "+nofreeze";
    return name;
}

} // namespace grapr
