#include "community/dynamic_plp.hpp"

#include <algorithm>

#include "community/plp.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

namespace grapr {

void DynamicPlp::run(const Graph& g) {
    if (hasRun_) {
        // Warm re-detection: seed from the prior labels instead of
        // resetting every untouched node back to a singleton. All nodes
        // are re-activated, but the restricted sweep starts from the
        // converged state — unchanged regions are fixpoints (sticky
        // labels) and drain from the frontier after one evaluation.
        growToBound(g.upperNodeIdBound());
        pending_.clear();
        std::fill(active_.begin(), active_.end(), 0);
        g.forNodes([&](node v) { activate(v); });
        update(g);
        return;
    }
    reset();
    Plp plp;
    zeta_ = plp.run(g);
    active_.assign(g.upperNodeIdBound(), 0);
    pending_.clear();
    lastWork_ = 0;
    hasRun_ = true;
}

void DynamicPlp::reset() {
    hasRun_ = false;
    zeta_ = Partition();
    active_.clear();
    pending_.clear();
    lastWork_ = 0;
}

void DynamicPlp::growToBound(count bound) {
    const count oldSize = zeta_.numberOfElements();
    if (oldSize < bound) {
        Partition grown(bound);
        grown.setUpperBound(
            std::max(zeta_.upperBound(), static_cast<node>(bound)));
        for (node v = 0; v < oldSize; ++v) {
            grown.set(v, zeta_[v]);
        }
        // New nodes start as their own community (the onNodeAdd rule);
        // leaving them at `none` would poison the label accumulator.
        for (count v = oldSize; v < bound; ++v) {
            grown.set(static_cast<node>(v), static_cast<node>(v));
        }
        zeta_ = std::move(grown);
    }
    if (active_.size() < bound) active_.resize(bound, 0);
}

void DynamicPlp::activate(node v) {
    if (v < active_.size() && !active_[v]) {
        active_[v] = 1;
        pending_.push_back(v);
    }
}

void DynamicPlp::onNodeAdd(node v) {
    require(hasRun_, "DynamicPlp: call run() first");
    growToBound(static_cast<count>(v) + 1);
    zeta_.set(v, v); // its own community until it gains edges
    if (zeta_.upperBound() <= v) zeta_.setUpperBound(v + 1);
}

void DynamicPlp::onEdgeInsert(const Graph& g, node u, node v) {
    require(hasRun_, "DynamicPlp: call run() first");
    growToBound(g.upperNodeIdBound());
    // The new edge can flip the dominant label of the endpoints and, via
    // them, of their neighborhoods — activating the endpoints suffices:
    // if one flips, its neighbors are reactivated by the sweep itself.
    activate(u);
    activate(v);
    if (autoUpdate_) update(g);
}

void DynamicPlp::onEdgeRemove(const Graph& g, node u, node v) {
    require(hasRun_, "DynamicPlp: call run() first");
    growToBound(g.upperNodeIdBound());
    activate(u);
    activate(v);
    // A removal can also strand a node whose label only lived on the
    // removed edge; reactivate the immediate neighborhoods so the sweep
    // re-evaluates them.
    if (g.hasNode(u)) {
        g.forNeighborsOf(u, [&](node w, edgeweight) { activate(w); });
    }
    if (g.hasNode(v)) {
        g.forNeighborsOf(v, [&](node w, edgeweight) { activate(w); });
    }
    if (autoUpdate_) update(g);
}

void DynamicPlp::update(const Graph& g) {
    require(hasRun_, "DynamicPlp: call run() first");
    growToBound(g.upperNodeIdBound());
    std::vector<node>& label = zeta_.vector();
    SparseAccumulator acc(zeta_.numberOfElements());
    lastWork_ = 0;

    std::vector<node> frontier;
    frontier.swap(pending_);
    for (count sweep = 0; sweep < maxSweeps_ && !frontier.empty(); ++sweep) {
        std::vector<node> next;
        for (node v : frontier) {
            active_[v] = 0;
            if (!g.hasNode(v) || g.degree(v) == 0) continue;
            ++lastWork_;

            acc.clear();
            g.forNeighborsOf(v, [&](node u, edgeweight w) {
                acc.add(label[u], w);
            });
            node best = label[v];
            double bestWeight = -1.0;
            count ties = 0;
            for (index l : acc.touched()) {
                const double weight = acc[l];
                if (weight > bestWeight) {
                    bestWeight = weight;
                    best = static_cast<node>(l);
                    ties = 1;
                } else if (weight == bestWeight) {
                    ++ties;
                    if (Random::integer(ties) == 0) {
                        best = static_cast<node>(l);
                    }
                }
            }
            if (acc[label[v]] == bestWeight) continue; // sticky label
            if (best != label[v]) {
                label[v] = best;
                g.forNeighborsOf(v, [&](node u, edgeweight) {
                    if (!active_[u]) {
                        active_[u] = 1;
                        next.push_back(u);
                    }
                });
            }
        }
        frontier.swap(next);
    }
    // Anything still active when the sweep cap hits stays pending for the
    // next update() call.
    pending_.insert(pending_.end(), frontier.begin(), frontier.end());
}

} // namespace grapr
