#pragma once
// Dynamic parallel Louvain maintenance: keep a PLM-quality modularity
// solution current across edge insertions and deletions. Where DynamicPlp
// maintains the fast-but-weak label propagation solution, this class
// maintains the paper's recommended-quality solution — together they
// cover both ends of the speed/quality menu for the dynamic-networks
// scenario of the paper's funding project.
//
// Strategy: keep the partition plus the per-community volumes PLM's move
// phase needs; graph mutations adjust the volumes incrementally; updates
// run a *restricted* local-move phase seeded with the affected nodes,
// expanding along actual moves exactly like the static move phase would
// (a moved node reactivates its neighborhood). A node may also split off
// into a fresh singleton community when that is the best move — without
// this, deletions could never dissolve a community.
//
// The maintained solution is a local optimum of the same objective the
// static PLM optimizes; periodic re-runs (e.g. every 10^5 updates) are
// recommended to escape drift, as with every dynamic heuristic.

#include <vector>

#include "community/detector.hpp"

namespace grapr {

class DynamicPlm {
public:
    explicit DynamicPlm(double gamma = 1.0, count maxSweeps = 100)
        : gamma_(gamma), maxSweeps_(maxSweeps) {}

    /// Detect communities on g. The first call runs static PLM from
    /// scratch; any later call is a WARM re-detection seeded from the
    /// prior partition's community ids — volumes and ω(E) are rebuilt for
    /// the current graph, every node is re-activated, and a restricted
    /// move phase settles the solution without discarding convergence
    /// state. Call reset() first to force a cold from-scratch run.
    void run(const Graph& g);

    /// Discard all maintained state; the next run() is a cold start.
    void reset();

    /// Notify that node v was added (isolated); it becomes its own
    /// community until edges arrive.
    void onNodeAdd(node v);

    /// Notify that edge {u, v} with weight w was inserted (call after the
    /// graph mutation).
    void onEdgeInsert(const Graph& g, node u, node v, edgeweight w = 1.0);

    /// Notify that edge {u, v} with weight w was removed.
    void onEdgeRemove(const Graph& g, node u, node v, edgeweight w = 1.0);

    /// Process pending reactivations (automatic unless autoUpdate(false)).
    void update(const Graph& g);

    void autoUpdate(bool enabled) { autoUpdate_ = enabled; }

    const Partition& communities() const { return zeta_; }

    /// Nodes re-evaluated by the last update().
    count lastUpdateWork() const noexcept { return lastWork_; }

private:
    double gamma_;
    count maxSweeps_;
    bool autoUpdate_ = true;
    Partition zeta_;
    std::vector<double> communityVolume_;
    double omegaE_ = 0.0;
    std::vector<std::uint8_t> active_;
    std::vector<node> pending_;
    std::vector<node> freeIds_; // recycled community ids for split-offs
    count lastWork_ = 0;
    bool hasRun_ = false;

    void activate(node v);
    void growToBound(count bound);
    node allocateCommunityId();
};

} // namespace grapr
