#include "community/epp.hpp"

#include "coarsening/parallel_coarsening.hpp"
#include "coarsening/projector.hpp"
#include "community/combiner.hpp"
#include "quality/modularity.hpp"
#include "support/logging.hpp"

namespace grapr {

Epp::Epp(count ensembleSize, DetectorMaker makeBase, DetectorMaker makeFinal,
         std::string name)
    : ensembleSize_(ensembleSize), makeBase_(std::move(makeBase)),
      makeFinal_(std::move(makeFinal)), name_(std::move(name)) {
    require(ensembleSize >= 1, "EPP: ensemble size must be >= 1");
}

Partition Epp::run(const Graph& g) {
    // Base phase. The paper launches the b base instances concurrently
    // ("massive nested parallelism"); here each base algorithm is itself
    // fully parallel, so running them back-to-back performs the same work
    // without oversubscribing — the solutions are identical in
    // distribution either way, and base-solution diversity still comes
    // from the per-run randomness (thread interleaving / RNG draws).
    std::vector<Partition> baseSolutions;
    baseSolutions.reserve(ensembleSize_);
    for (count i = 0; i < ensembleSize_; ++i) {
        auto base = makeBase_();
        baseSolutions.push_back(base->run(g));
    }

    // Consensus: core communities via the b-way hash (Eq. III.2).
    Partition cores = HashingCombiner::combine(baseSolutions);

    // Coarsen by the cores — contested regions stay fine-grained, agreed
    // regions collapse.
    ParallelPartitionCoarsening coarsener(true);
    CoarseningResult coarse = coarsener.run(g, cores);

    // Final phase on the much smaller graph, then prolongation.
    auto finalDetector = makeFinal_();
    const Partition coarseSolution = finalDetector->run(coarse.coarseGraph);
    Partition zeta =
        ClusteringProjector::projectBack(coarseSolution, coarse.fineToCoarse);
    zeta.compact();
    return zeta;
}

std::string Epp::toString() const { return name_; }

EppIterated::EppIterated(count ensembleSize, DetectorMaker makeBase,
                         DetectorMaker makeFinal, double minImprovement,
                         count maxLevels, std::string name)
    : ensembleSize_(ensembleSize), makeBase_(std::move(makeBase)),
      makeFinal_(std::move(makeFinal)), minImprovement_(minImprovement),
      maxLevels_(maxLevels), name_(std::move(name)) {
    require(ensembleSize >= 1, "EPPIterated: ensemble size must be >= 1");
}

Partition EppIterated::run(const Graph& g) {
    const Modularity modularity;
    ParallelPartitionCoarsening coarsener(true);

    Graph current = g; // working copy; coarsens level by level
    std::vector<std::vector<node>> hierarchy;
    double lastQuality = -1.0;

    for (count level = 0; level < maxLevels_; ++level) {
        std::vector<Partition> baseSolutions;
        baseSolutions.reserve(ensembleSize_);
        for (count i = 0; i < ensembleSize_; ++i) {
            auto base = makeBase_();
            baseSolutions.push_back(base->run(current));
        }
        Partition cores = HashingCombiner::combine(baseSolutions);

        // Quality of the cores projected to the input graph.
        Partition projected = cores;
        for (auto it = hierarchy.rbegin(); it != hierarchy.rend(); ++it) {
            projected = ClusteringProjector::projectBack(projected, *it);
        }
        const double quality = modularity.getQuality(projected, g);
        logDebug("EPPIterated level ", level, ": cores=",
                 cores.upperBound(), " quality=", quality);
        if (quality <= lastQuality + minImprovement_) break;
        lastQuality = quality;

        CoarseningResult coarse = coarsener.run(current, cores);
        if (coarse.coarseGraph.numberOfNodes() >= current.numberOfNodes()) {
            break; // no contraction; iterating further cannot help
        }
        hierarchy.push_back(std::move(coarse.fineToCoarse));
        current = std::move(coarse.coarseGraph);
    }

    auto finalDetector = makeFinal_();
    Partition solution = finalDetector->run(current);
    solution = ClusteringProjector::projectThroughHierarchy(solution,
                                                            hierarchy);
    solution.compact();
    return solution;
}

std::string EppIterated::toString() const { return name_; }

} // namespace grapr
