#pragma once
// Dynamic label propagation — the paper's future-work direction (its
// funding project is "Parallel Analysis of Dynamic Networks"): maintain a
// community solution across edge insertions and deletions without
// re-solving from scratch.
//
// Strategy: keep the converged PLP label array; when the graph changes,
// reactivate only the affected region (the edge endpoints and their
// neighborhoods) and re-run the dominant-label iteration restricted to
// the active set until it drains. For localized updates this touches a
// vanishing fraction of the graph; quality tracks a from-scratch PLP run
// (tests pin the agreement).
//
// The graph itself is owned by the caller, who mutates it and *then*
// notifies this class — keeping the detector decoupled from the mutation
// path, like the update-stream pattern of dynamic graph frameworks.

#include <vector>

#include "community/detector.hpp"

namespace grapr {

class DynamicPlp {
public:
    /// `maxSweeps`: cap on restricted iterations per update batch.
    explicit DynamicPlp(count maxSweeps = 100) : maxSweeps_(maxSweeps) {}

    /// Detect communities on g. The first call runs PLP from scratch; any
    /// later call is a WARM re-detection seeded from the prior partition's
    /// labels — every node is re-activated, but untouched converged
    /// regions are fixpoints of the sticky-label sweep, so convergence
    /// state is preserved rather than reset to singletons. Call reset()
    /// first to force a cold from-scratch run.
    void run(const Graph& g);

    /// Discard all maintained state; the next run() is a cold start.
    void reset();

    /// Notify that edge {u, v} was inserted into g (after the insertion).
    void onEdgeInsert(const Graph& g, node u, node v);

    /// Notify that edge {u, v} was removed from g (after the removal).
    void onEdgeRemove(const Graph& g, node u, node v);

    /// Notify that node v was added (isolated); it becomes its own
    /// community until edges arrive.
    void onNodeAdd(node v);

    /// Process all pending reactivations; called automatically by the
    /// notification methods unless `autoUpdate(false)` was set — batching
    /// many updates before one update() call is much cheaper.
    void update(const Graph& g);

    void autoUpdate(bool enabled) { autoUpdate_ = enabled; }

    /// Current solution (valid after run()).
    const Partition& communities() const { return zeta_; }

    /// Nodes re-evaluated by the last update() — the dynamic savings
    /// metric (compare against n for a from-scratch run).
    count lastUpdateWork() const noexcept { return lastWork_; }

private:
    count maxSweeps_;
    bool autoUpdate_ = true;
    Partition zeta_;
    std::vector<std::uint8_t> active_;
    std::vector<node> pending_;
    count lastWork_ = 0;
    bool hasRun_ = false;

    void activate(node v);
    void growToBound(count bound);
};

} // namespace grapr
