#pragma once
// Vertex following (Lu & Halappanavar, "Parallel Heuristics for Scalable
// Community Detection"): a modularity-preserving pre-pass that collapses
// degree-1 chains and pendants onto the node they hang from before the
// detector ever sweeps.
//
// A pendant u with single neighbor a contributes most to modularity inside
// a's community — moving u elsewhere can only lose the u–a edge — so the
// move phase never needs to evaluate it. The collapse is a SINGLE pass
// over the original pendants (chain tips fold one step onto the chain);
// it is deliberately not iterated to a full peel, because a node that has
// absorbed followers is heavy (its collapsed edges became self-loops) and
// the pendant-optimality argument no longer covers moving it — an
// iterated peel dissolves whole trees into one node and craters quality.
// Detection then runs on the reduced graph (noticeably smaller for
// scale-free inputs, where degree-1 nodes are the largest degree class)
// and the labels are prolonged back through the standard projector, so
// every follower lands exactly in its anchor's community by construction.
//
// The reduction reuses ParallelPartitionCoarsening: followers and anchors
// form the blocks of a partition, and contracting the graph by it yields
// the reduced CsrGraph with collapsed edges folded into self-loops — i.e.
// node volumes (and hence modularity arithmetic) are preserved exactly.

#include <vector>

#include "graph/csr_graph.hpp"
#include "structures/partition.hpp"

namespace grapr {

/// Result of the vertex-following reduction of a frozen graph.
struct VertexFollowingReduction {
    /// The contracted graph (weighted; collapsed edges became self-loops).
    CsrGraph reduced;
    /// π: original node id -> reduced node id (input to projectBack).
    std::vector<node> fineToCoarse;
    /// Anchor of every original node in ORIGINAL ids: the live node its
    /// pendant chain resolves to; anchor[u] == u for survivors.
    std::vector<node> anchor;
    /// Number of nodes collapsed away (0 = the input had no pendants).
    count collapsed = 0;
};

namespace VertexFollowing {

/// Collapse every original degree-1 node (self-loops don't count toward
/// degree) onto its unique neighbor — one pass, see the header comment for
/// why it is not iterated — then contract the follower->anchor blocks.
/// O(m) detection, then one parallel coarsening.
VertexFollowingReduction reduce(const CsrGraph& g);

/// ζ(v) = ζ'(π(v)): prolong a solution on the reduced graph back to the
/// original node ids (thin wrapper over ClusteringProjector).
Partition projectBack(const Partition& reducedSolution,
                      const VertexFollowingReduction& reduction);

} // namespace VertexFollowing

} // namespace grapr
