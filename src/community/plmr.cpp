#include "community/plmr.hpp"

// Plmr is a configuration of Plm (see header); no out-of-line definitions.
