#pragma once
// EPP — Ensemble Preprocessing (paper Algorithm 5, §III-D), the adaptation
// of Ovelgönne & Geyer-Schulz's Core Groups Graph Clusterer to this
// framework: run b base algorithms (classically PLP) on G, combine their
// solutions into core communities (consensus: together everywhere or
// split), coarsen G by the cores, run a strong final algorithm (PLM/PLMR)
// on the much smaller coarse graph, and prolong.
//
// EppIterated applies the scheme recursively on the coarsened graph until
// quality stops improving — the EML/CGGCi-style variant the paper examined
// and found unnecessary for its instances (§III-D); included for the
// comparison experiments (CGGCi proxy).

#include <functional>
#include <memory>

#include "community/detector.hpp"

namespace grapr {

/// Factory producing fresh detector instances; EPP owns one per ensemble
/// slot so concurrent base runs don't share mutable state.
using DetectorMaker = std::function<std::unique_ptr<CommunityDetector>()>;

class Epp final : public CommunityDetector {
public:
    /// Ensemble of `ensembleSize` base detectors plus one final detector.
    Epp(count ensembleSize, DetectorMaker makeBase, DetectorMaker makeFinal,
        std::string name = "EPP");

    Partition run(const Graph& g) override;

    std::string toString() const override;

private:
    count ensembleSize_;
    DetectorMaker makeBase_;
    DetectorMaker makeFinal_;
    std::string name_;
};

class EppIterated final : public CommunityDetector {
public:
    /// Iterate ensemble preprocessing until modularity stops improving by
    /// more than `minImprovement`, then run the final detector.
    EppIterated(count ensembleSize, DetectorMaker makeBase,
                DetectorMaker makeFinal, double minImprovement = 1e-4,
                count maxLevels = 16, std::string name = "EPPIterated");

    Partition run(const Graph& g) override;

    std::string toString() const override;

private:
    count ensembleSize_;
    DetectorMaker makeBase_;
    DetectorMaker makeFinal_;
    double minImprovement_;
    count maxLevels_;
    std::string name_;
};

} // namespace grapr
