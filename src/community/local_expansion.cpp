#include "community/local_expansion.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace grapr {

LocalCommunity LocalExpansion::expand(const Graph& g, node seed) const {
    require(g.hasNode(seed), "LocalExpansion: seed does not exist");
    LocalCommunity result;
    const double totalVolume = 2.0 * g.totalEdgeWeight();
    if (totalVolume <= 0.0) {
        result.members = {seed};
        result.conductance = 0.0;
        return result;
    }

    // Greedy growth state: member set, its volume and cut, and for every
    // boundary candidate the weight of its edges into the set.
    std::unordered_set<node> members;
    std::unordered_map<node, double> weightIn; // candidate -> w(cand, set)
    double volume = 0.0;
    double cut = 0.0;

    auto absorb = [&](node v) {
        members.insert(v);
        weightIn.erase(v);
        volume += g.volume(v);
        g.forNeighborsOf(v, [&](node u, edgeweight w) {
            if (u == v) return;
            if (members.count(u)) {
                cut -= w; // edge became internal
            } else {
                cut += w;
                weightIn[u] += w;
            }
        });
    };

    absorb(seed);
    std::vector<node> order{seed};
    double bestConductance =
        cut / std::min(volume, totalVolume - volume);
    std::size_t bestPrefix = 1;

    while (order.size() < maxSize_ && !weightIn.empty()) {
        // Candidate minimizing the resulting conductance.
        node bestCandidate = none;
        double bestScore = std::numeric_limits<double>::max();
        for (const auto& [candidate, wIn] : weightIn) {
            const double newVolume = volume + g.volume(candidate);
            // Cut change: -wIn (internalized) + (deg-out weight of cand).
            const double candidateCut =
                cut - wIn + (g.weightedDegree(candidate) - wIn -
                             g.weight(candidate, candidate));
            const double denom =
                std::min(newVolume, totalVolume - newVolume);
            const double score =
                denom > 0.0 ? candidateCut / denom
                            : std::numeric_limits<double>::max();
            if (score < bestScore ||
                (score == bestScore && candidate < bestCandidate)) {
                bestScore = score;
                bestCandidate = candidate;
            }
        }
        if (bestCandidate == none) break;
        absorb(bestCandidate);
        order.push_back(bestCandidate);

        const double denom = std::min(volume, totalVolume - volume);
        const double conductance =
            denom > 0.0 ? cut / denom : 1.0;
        if (conductance < bestConductance) {
            bestConductance = conductance;
            bestPrefix = order.size();
        }
        // Early exit on a perfectly separated *proper* subset (cut hit
        // zero with volume to spare — i.e. a whole component, not the
        // whole graph).
        if (cut <= 1e-12 && volume < totalVolume - 1e-9) {
            bestConductance = 0.0;
            bestPrefix = order.size();
            break;
        }
    }

    result.members.assign(order.begin(),
                          order.begin() +
                              static_cast<std::ptrdiff_t>(bestPrefix));
    result.conductance = bestConductance;
    return result;
}

} // namespace grapr
