#include "community/combiner.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/common.hpp"

namespace grapr {

namespace {

count commonElementCount(const std::vector<Partition>& baseSolutions) {
    require(!baseSolutions.empty(), "combine: no base solutions");
    const count n = baseSolutions.front().numberOfElements();
    for (const auto& zeta : baseSolutions) {
        require(zeta.numberOfElements() == n,
                "combine: base solutions over different node sets");
    }
    return n;
}

} // namespace

Partition HashingCombiner::combine(
    const std::vector<Partition>& baseSolutions) {
    const count n = commonElementCount(baseSolutions);

    // Parallel phase: hash each node's label vector.
    std::vector<std::uint64_t> hashes(n);
    const auto total = static_cast<std::int64_t>(n);
#pragma omp parallel for default(none) shared(baseSolutions, hashes, total)  \
    schedule(static)
    for (std::int64_t sv = 0; sv < total; ++sv) {
        const node v = static_cast<node>(sv);
        std::uint64_t h = kDjb2Seed;
        for (const auto& zeta : baseSolutions) h = djb2Combine(h, zeta[v]);
        hashes[v] = h;
    }

    // Compaction: 64-bit hash -> small core-community id. Sequential, but
    // a single O(n) hash-map sweep.
    Partition cores(n);
    std::unordered_map<std::uint64_t, node> remap;
    remap.reserve(n / 4 + 16);
    for (node v = 0; v < n; ++v) {
        auto [it, inserted] =
            remap.emplace(hashes[v], static_cast<node>(remap.size()));
        cores.set(v, it->second);
    }
    cores.setUpperBound(static_cast<node>(remap.size()));
    return cores;
}

Partition SortingCombiner::combine(
    const std::vector<Partition>& baseSolutions) {
    const count n = commonElementCount(baseSolutions);
    const count b = baseSolutions.size();

    std::vector<node> order(n);
    std::iota(order.begin(), order.end(), node{0});
    auto labelLess = [&](node a, node c) {
        for (count i = 0; i < b; ++i) {
            if (baseSolutions[i][a] != baseSolutions[i][c]) {
                return baseSolutions[i][a] < baseSolutions[i][c];
            }
        }
        return false;
    };
    std::sort(order.begin(), order.end(), labelLess);

    Partition cores(n);
    node currentId = 0;
    for (index i = 0; i < n; ++i) {
        if (i > 0 && labelLess(order[i - 1], order[i])) ++currentId;
        cores.set(order[i], currentId);
    }
    cores.setUpperBound(n == 0 ? 0 : currentId + 1);
    return cores;
}

} // namespace grapr
