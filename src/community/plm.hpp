#pragma once
// PLM — Parallel Louvain Method (paper Algorithms 2 & 3, §III-B), the first
// shared-memory parallelization of the Louvain community detection method
// for massive inputs, plus the refinement extension that turns it into
// PLMR (Algorithm 4, §III-C).
//
// Each level: a parallel local-move phase greedily relocates nodes to the
// neighboring community with the highest modularity gain until stable; the
// graph is then coarsened by the resulting communities (parallel scheme,
// see coarsening/) and the method recurses, finally prolonging the coarse
// solution and — for PLMR — re-running the move phase as refinement.
//
// The move phase runs over all nodes in parallel with guided scheduling and
// tolerates stale data: concurrent moves may invalidate a Δmod score
// between evaluation and application, occasionally producing a
// modularity-decreasing move, which later iterations correct (§III-B).
// Following the paper's engineering result, the implementation does NOT
// cache per-node neighbor-community weights (maps + locks proved slower);
// it recomputes them per evaluation in per-thread scratch arrays and only
// maintains per-community volumes, updated atomically on each move.

#include <vector>

#include "community/detector.hpp"
#include "graph/csr_graph.hpp"

namespace grapr {

/// Strategy for obtaining the edge weight from a node to its neighboring
/// communities inside the move phase — the paper's central engineering
/// trade-off (§III-B).
enum class PlmWeightStrategy {
    /// Recompute per evaluation in per-thread scratch arrays (the paper's
    /// final, faster choice; the default).
    Recompute,
    /// Maintain a per-node map of neighbor-community weights, protected by
    /// a per-node lock, updated on every move — the paper's *first*
    /// implementation, "later discovered to introduce too much overhead
    /// (map operations, locks)". Kept selectable so the ablation bench can
    /// measure that claim.
    CachedMaps,
};

/// How the move phase maintains the shared per-community volumes (see
/// community/community_volumes.hpp for the two policies).
enum class PlmVolumePolicy {
    /// One shared array under `omp atomic` updates and atomic-read
    /// snapshots — the PR-1 reference scheme and the default; cache lines
    /// of hot communities ping-pong between cores on every move.
    Atomic,
    /// Per-thread write-combining shards with bounded staleness: moves
    /// buffer their volume deltas thread-locally and flush them into the
    /// shared array with batched atomic adds every few evaluated nodes
    /// (community_volumes.hpp documents the staleness bound and why it
    /// must stay small). Coalescing repeated hot-community deltas into one
    /// RMW is an opt-in for contention-heavy many-core runs; on low
    /// contention the buffering is measurable pure overhead, which is why
    /// Atomic stays the default.
    Sharded,
};

/// How the tuned kernel schedules the node sweep.
enum class PlmSweepSchedule {
    /// One guided-schedule loop over all work items (the PR-1 scheme).
    Flat,
    /// Partition the work items into low-degree / mid / hub buckets and
    /// run each with the schedule that fits its row shape: static chunks
    /// for the uniform short rows, guided for the middle, dynamic
    /// work-stealing for the hubs so one thread stuck on a million-entry
    /// row cannot serialize the iteration. With a single thread this
    /// degenerates to the flat in-order sweep (bucketing exists to fix
    /// multi-thread load imbalance; sequentially it is pure overhead and
    /// would change the evaluation order the determinism tests pin).
    DegreeBucketed,
};

/// Tuning knobs of the frozen-layout move kernel. The defaults are the
/// measured fast path (bench/micro_plm_kernels.cpp is the evidence trail);
/// every combination is bit-identical to the reference kernel in
/// single-threaded runs EXCEPT activeNodes (see its comment).
struct PlmKernelConfig {
    PlmVolumePolicy volumePolicy = PlmVolumePolicy::Atomic;
    PlmSweepSchedule schedule = PlmSweepSchedule::DegreeBucketed;
    /// Vectorized (omp simd) batch Δmod scoring over gathered candidate
    /// arrays; the scalar path is the reference oracle and both compute
    /// the exact same FP expressions lane for lane. Forced off when the
    /// build disabled GRAPR_KERNEL_SIMD. Off by default: the gather setup
    /// only amortizes on long candidate lists, and on the benched hosts
    /// the scalar argmax wins even on hub rows — flip it on per run when
    /// the target machine's vector units say otherwise.
    bool simdScoring = false;
    /// Frontier-driven sweeps: after the first full iteration only nodes
    /// whose neighborhood changed (a neighbor moved, deduplicated through
    /// an atomic seen-bitmap) are re-evaluated, instead of rescanning all
    /// n nodes per iteration. This is a *semantic* option, not a pure
    /// scheduling one: a node can profit from a volume change in a
    /// community it merely neighbors, which a frontier sweep only
    /// discovers one iteration later (or not at all if the frontier
    /// empties first), so results are near-identical in quality but not
    /// bit-identical. Off by default; the tuned bench config enables it.
    bool activeNodes = false;
    /// Bucket thresholds: degree < lowDegreeMax → static bucket,
    /// degree >= hubDegreeMin → dynamic hub bucket, guided in between.
    count lowDegreeMax = 32;
    count hubDegreeMin = 256;
};

struct PlmConfig {
    /// Resolution parameter γ ∈ [0, 2m]: 1 = standard modularity, smaller
    /// coarser, larger finer (§III-B).
    double gamma = 1.0;
    /// Add the refinement move phase after every prolongation (PLMR).
    bool refine = false;
    /// Use the parallel coarsening scheme; sequential hash aggregation
    /// otherwise (ablation of the "major sequential bottleneck").
    bool parallelCoarsening = true;
    /// Safety cap on move-phase sweeps per level.
    count maxMoveIterations = 64;
    /// Neighbor-community weight strategy (see PlmWeightStrategy).
    PlmWeightStrategy strategy = PlmWeightStrategy::Recompute;
    /// Freeze the input into a CSR view once per level and run every hot
    /// loop (move phase, coarsening, refinement) over the flat layout —
    /// the cache-friendly fast path. Disable to run directly on the
    /// mutable adjacency lists (the layout ablation; results are
    /// bit-identical single-threaded, see tests/test_csr.cpp).
    bool freeze = true;
    /// Collapse degree-1 chains/pendants onto their anchors before the
    /// first level and project the labels back afterwards (vertex
    /// following, Lu & Halappanavar): a pendant's modularity-optimal
    /// community is its anchor's, so the sweep never needs to evaluate
    /// it. Changes results only on the collapsed nodes (they land exactly
    /// where the anchor lands); opt-in because the default config is the
    /// bit-reproducibility anchor of the test harness. Implies the frozen
    /// path (the reduction operates on and produces a CsrGraph).
    bool vertexFollowing = false;
    /// Frozen-layout move-kernel tuning (volume policy, sweep schedule,
    /// SIMD scoring, active-set frontier). Ignored on the thawed path.
    PlmKernelConfig kernel = {};
};

/// Per-level record of a PLM run, for scaling analyses and tests.
struct PlmLevelInfo {
    count nodes = 0;
    count edges = 0;
    count moveIterations = 0;
    count totalMoves = 0;
};

class Plm : public CommunityDetector {
public:
    explicit Plm(PlmConfig config = {}) : config_(config) {}

    Partition run(const Graph& g) override;

    /// Run on an already-frozen graph (no freeze cost, no conversion):
    /// the entry point for callers that hold a CsrGraph anyway, e.g. the
    /// layout micro benchmarks.
    Partition runFrozen(const CsrGraph& g);

    std::string toString() const override;

    /// Coarsening hierarchy of the last run, finest level first.
    const std::vector<PlmLevelInfo>& levels() const noexcept { return levels_; }

    /// The local move phase (Algorithm 2), exposed for reuse by the
    /// refinement pass, tests, and ablation benches. Moves nodes of g
    /// between the communities of zeta until stable (or the iteration cap);
    /// returns the number of moves performed. zeta must be complete with
    /// ids < zeta.upperBound(). Equal-gain candidates resolve to the
    /// lowest community id, so single-threaded runs are deterministic and
    /// independent of neighbor order.
    static count movePhase(const Graph& g, Partition& zeta, double gamma,
                           count maxIterations, IterationTracer* tracer);
    /// CSR overload — the tuned kernel over the frozen layout with the
    /// default PlmKernelConfig.
    static count movePhase(const CsrGraph& g, Partition& zeta, double gamma,
                           count maxIterations, IterationTracer* tracer);
    /// CSR overload with explicit kernel tuning (volume policy, sweep
    /// schedule, SIMD scoring, active-set frontier) — the entry point of
    /// the kernel ablation bench and the bit-identity property tests.
    static count movePhase(const CsrGraph& g, Partition& zeta, double gamma,
                           count maxIterations, IterationTracer* tracer,
                           const PlmKernelConfig& kernel);
    /// The untuned generic reference kernel on the frozen layout — the
    /// oracle every tuned variant is pinned against bit for bit
    /// (tests/test_move_kernels.cpp). Not a fast path.
    static count movePhaseReference(const CsrGraph& g, Partition& zeta,
                                    double gamma, count maxIterations,
                                    IterationTracer* tracer);

    /// Seeded restricted move phase — the incremental re-detection entry
    /// of the streaming engine (community/streaming_update.hpp). Iteration
    /// 0 evaluates only `seed` (the nodes a batch touched); later
    /// iterations ride the PR-6 active-set frontier, so cost scales with
    /// the perturbation, not n. `zeta` must be complete over g with labels
    /// < zeta.upperBound(). When `splitBase != none`, node u may also
    /// split off into its own reserved empty community `splitBase + u`
    /// (required after deletions; zeta.upperBound() must cover
    /// splitBase + upperNodeIdBound()). `evaluatedNodes`, if non-null,
    /// receives the number of DISTINCT nodes evaluated across iterations —
    /// the re-activation metric BENCH_stream.json reports. `minGain` is a
    /// Δmodularity floor a move must clear: batches shift the total edge
    /// weight, nudging every marginal node's score, and without a floor
    /// converged near-ties far from the batch flip on those micro-gains
    /// and balloon the frontier (0.0 = the static any-positive-gain rule).
    /// Deterministic single-threaded for a fixed seed list.
    static count movePhaseSeeded(const CsrGraph& g, Partition& zeta,
                                 double gamma, count maxIterations,
                                 const std::vector<node>& seed,
                                 node splitBase, count* evaluatedNodes,
                                 const PlmKernelConfig& kernel = {},
                                 double minGain = 0.0);

    /// The abandoned first implementation (per-node cached maps + locks),
    /// same contract as movePhase. Exposed for the strategy ablation.
    static count movePhaseCachedMaps(const Graph& g, Partition& zeta,
                                     double gamma, count maxIterations);
    /// CSR overload of the cached-maps strategy.
    static count movePhaseCachedMaps(const CsrGraph& g, Partition& zeta,
                                     double gamma, count maxIterations);

protected:
    PlmConfig config_;
    std::vector<PlmLevelInfo> levels_;

private:
    /// One level of Algorithm 3, generic over the graph layout: the whole
    /// recursion stays in one representation (CsrGraph on the default fast
    /// path — each level is frozen exactly once and the coarse graphs are
    /// built CSR-to-CSR — or Graph when freezing is disabled).
    template <typename GraphT>
    Partition runRecursive(const GraphT& g, count level);

    /// Frozen-path entry: applies the vertex-following reduction when
    /// configured, then starts the recursion.
    Partition detectFrozen(const CsrGraph& g);
};

} // namespace grapr
