#pragma once
// PLM — Parallel Louvain Method (paper Algorithms 2 & 3, §III-B), the first
// shared-memory parallelization of the Louvain community detection method
// for massive inputs, plus the refinement extension that turns it into
// PLMR (Algorithm 4, §III-C).
//
// Each level: a parallel local-move phase greedily relocates nodes to the
// neighboring community with the highest modularity gain until stable; the
// graph is then coarsened by the resulting communities (parallel scheme,
// see coarsening/) and the method recurses, finally prolonging the coarse
// solution and — for PLMR — re-running the move phase as refinement.
//
// The move phase runs over all nodes in parallel with guided scheduling and
// tolerates stale data: concurrent moves may invalidate a Δmod score
// between evaluation and application, occasionally producing a
// modularity-decreasing move, which later iterations correct (§III-B).
// Following the paper's engineering result, the implementation does NOT
// cache per-node neighbor-community weights (maps + locks proved slower);
// it recomputes them per evaluation in per-thread scratch arrays and only
// maintains per-community volumes, updated atomically on each move.

#include <vector>

#include "community/detector.hpp"
#include "graph/csr_graph.hpp"

namespace grapr {

/// Strategy for obtaining the edge weight from a node to its neighboring
/// communities inside the move phase — the paper's central engineering
/// trade-off (§III-B).
enum class PlmWeightStrategy {
    /// Recompute per evaluation in per-thread scratch arrays (the paper's
    /// final, faster choice; the default).
    Recompute,
    /// Maintain a per-node map of neighbor-community weights, protected by
    /// a per-node lock, updated on every move — the paper's *first*
    /// implementation, "later discovered to introduce too much overhead
    /// (map operations, locks)". Kept selectable so the ablation bench can
    /// measure that claim.
    CachedMaps,
};

struct PlmConfig {
    /// Resolution parameter γ ∈ [0, 2m]: 1 = standard modularity, smaller
    /// coarser, larger finer (§III-B).
    double gamma = 1.0;
    /// Add the refinement move phase after every prolongation (PLMR).
    bool refine = false;
    /// Use the parallel coarsening scheme; sequential hash aggregation
    /// otherwise (ablation of the "major sequential bottleneck").
    bool parallelCoarsening = true;
    /// Safety cap on move-phase sweeps per level.
    count maxMoveIterations = 64;
    /// Neighbor-community weight strategy (see PlmWeightStrategy).
    PlmWeightStrategy strategy = PlmWeightStrategy::Recompute;
    /// Freeze the input into a CSR view once per level and run every hot
    /// loop (move phase, coarsening, refinement) over the flat layout —
    /// the cache-friendly fast path. Disable to run directly on the
    /// mutable adjacency lists (the layout ablation; results are
    /// bit-identical single-threaded, see tests/test_csr.cpp).
    bool freeze = true;
};

/// Per-level record of a PLM run, for scaling analyses and tests.
struct PlmLevelInfo {
    count nodes = 0;
    count edges = 0;
    count moveIterations = 0;
    count totalMoves = 0;
};

class Plm : public CommunityDetector {
public:
    explicit Plm(PlmConfig config = {}) : config_(config) {}

    Partition run(const Graph& g) override;

    /// Run on an already-frozen graph (no freeze cost, no conversion):
    /// the entry point for callers that hold a CsrGraph anyway, e.g. the
    /// layout micro benchmarks.
    Partition runFrozen(const CsrGraph& g);

    std::string toString() const override;

    /// Coarsening hierarchy of the last run, finest level first.
    const std::vector<PlmLevelInfo>& levels() const noexcept { return levels_; }

    /// The local move phase (Algorithm 2), exposed for reuse by the
    /// refinement pass, tests, and ablation benches. Moves nodes of g
    /// between the communities of zeta until stable (or the iteration cap);
    /// returns the number of moves performed. zeta must be complete with
    /// ids < zeta.upperBound(). Equal-gain candidates resolve to the
    /// lowest community id, so single-threaded runs are deterministic and
    /// independent of neighbor order.
    static count movePhase(const Graph& g, Partition& zeta, double gamma,
                           count maxIterations, IterationTracer* tracer);
    /// CSR overload — same kernel over the frozen layout.
    static count movePhase(const CsrGraph& g, Partition& zeta, double gamma,
                           count maxIterations, IterationTracer* tracer);

    /// The abandoned first implementation (per-node cached maps + locks),
    /// same contract as movePhase. Exposed for the strategy ablation.
    static count movePhaseCachedMaps(const Graph& g, Partition& zeta,
                                     double gamma, count maxIterations);
    /// CSR overload of the cached-maps strategy.
    static count movePhaseCachedMaps(const CsrGraph& g, Partition& zeta,
                                     double gamma, count maxIterations);

protected:
    PlmConfig config_;
    std::vector<PlmLevelInfo> levels_;

private:
    /// One level of Algorithm 3, generic over the graph layout: the whole
    /// recursion stays in one representation (CsrGraph on the default fast
    /// path — each level is frozen exactly once and the coarse graphs are
    /// built CSR-to-CSR — or Graph when freezing is disabled).
    template <typename GraphT>
    Partition runRecursive(const GraphT& g, count level);
};

} // namespace grapr
