#include "community/dynamic_plm.hpp"

#include <unordered_map>

#include "community/plm.hpp"
#include "quality/modularity.hpp"
#include "support/parallel.hpp"

namespace grapr {

void DynamicPlm::run(const Graph& g) {
    if (hasRun_) {
        // Warm re-detection: seed from the prior partition instead of
        // resetting to singletons. Volumes and ω(E) are rebuilt for the
        // current graph (mutations between run() calls may not all have
        // been notified), then a restricted move phase over all nodes
        // settles the solution — converged regions drain immediately.
        growToBound(g.upperNodeIdBound());
        omegaE_ = g.totalEdgeWeight();
        std::fill(communityVolume_.begin(), communityVolume_.end(), 0.0);
        g.forNodes(
            [&](node v) { communityVolume_[zeta_[v]] += g.volume(v); });
        pending_.clear();
        std::fill(active_.begin(), active_.end(), 0);
        g.forNodes([&](node v) { activate(v); });
        update(g);
        return;
    }
    Plm plm(PlmConfig{.gamma = gamma_});
    zeta_ = plm.run(g);
    omegaE_ = g.totalEdgeWeight();

    const count bound = g.upperNodeIdBound();
    // Volumes indexed by community id; sized generously so split-offs can
    // allocate fresh ids without reallocation in the common case.
    communityVolume_.assign(std::max<count>(zeta_.upperBound(), bound) + 1,
                            0.0);
    g.forNodes([&](node v) { communityVolume_[zeta_[v]] += g.volume(v); });

    active_.assign(bound, 0);
    pending_.clear();
    freeIds_.clear();
    lastWork_ = 0;
    hasRun_ = true;
}

void DynamicPlm::reset() {
    hasRun_ = false;
    zeta_ = Partition();
    communityVolume_.clear();
    omegaE_ = 0.0;
    active_.clear();
    pending_.clear();
    freeIds_.clear();
    lastWork_ = 0;
}

void DynamicPlm::growToBound(count bound) {
    const count oldSize = zeta_.numberOfElements();
    if (oldSize < bound) {
        Partition grown(bound);
        for (node v = 0; v < oldSize; ++v) grown.set(v, zeta_[v]);
        grown.setUpperBound(zeta_.upperBound());
        zeta_ = std::move(grown);
        // Every new node starts in its own (empty-volume) community; the
        // id allocation also grows communityVolume_, which is what kept
        // onEdgeInsert from indexing out of bounds for grown graphs.
        for (count v = oldSize; v < bound; ++v) {
            zeta_.set(static_cast<node>(v), allocateCommunityId());
        }
    }
    if (active_.size() < bound) active_.resize(bound, 0);
}

void DynamicPlm::activate(node v) {
    if (v < active_.size() && !active_[v]) {
        active_[v] = 1;
        pending_.push_back(v);
    }
}

void DynamicPlm::onNodeAdd(node v) {
    require(hasRun_, "DynamicPlm: call run() first");
    growToBound(static_cast<count>(v) + 1);
}

node DynamicPlm::allocateCommunityId() {
    if (!freeIds_.empty()) {
        const node id = freeIds_.back();
        freeIds_.pop_back();
        return id;
    }
    const node id = zeta_.upperBound();
    zeta_.setUpperBound(id + 1);
    if (communityVolume_.size() <= id) {
        communityVolume_.resize(static_cast<std::size_t>(id) * 2 + 1, 0.0);
    }
    return id;
}

void DynamicPlm::onEdgeInsert(const Graph& g, node u, node v, edgeweight w) {
    require(hasRun_, "DynamicPlm: call run() first");
    growToBound(g.upperNodeIdBound());
    // Volume bookkeeping: each endpoint gains w (a loop gains 2w).
    omegaE_ += w;
    if (u == v) {
        communityVolume_[zeta_[u]] += 2.0 * w;
    } else {
        communityVolume_[zeta_[u]] += w;
        communityVolume_[zeta_[v]] += w;
    }
    activate(u);
    activate(v);
    if (autoUpdate_) update(g);
}

void DynamicPlm::onEdgeRemove(const Graph& g, node u, node v, edgeweight w) {
    require(hasRun_, "DynamicPlm: call run() first");
    growToBound(g.upperNodeIdBound());
    omegaE_ -= w;
    if (u == v) {
        communityVolume_[zeta_[u]] -= 2.0 * w;
    } else {
        communityVolume_[zeta_[u]] -= w;
        communityVolume_[zeta_[v]] -= w;
    }
    activate(u);
    activate(v);
    if (g.hasNode(u)) {
        g.forNeighborsOf(u, [&](node x, edgeweight) { activate(x); });
    }
    if (g.hasNode(v)) {
        g.forNeighborsOf(v, [&](node x, edgeweight) { activate(x); });
    }
    if (autoUpdate_) update(g);
}

void DynamicPlm::update(const Graph& g) {
    require(hasRun_, "DynamicPlm: call run() first");
    if (omegaE_ <= 0.0) {
        pending_.clear();
        return;
    }
    lastWork_ = 0;
    std::unordered_map<node, double> weightTo;

    std::vector<node> frontier;
    frontier.swap(pending_);
    for (count sweep = 0; sweep < maxSweeps_ && !frontier.empty(); ++sweep) {
        std::vector<node> next;
        for (node u : frontier) {
            active_[u] = 0;
            if (!g.hasNode(u)) continue;
            ++lastWork_;

            const node current = zeta_[u];
            const double volU = g.volume(u);

            weightTo.clear();
            g.forNeighborsOf(u, [&](node v, edgeweight w) {
                if (v != u) weightTo[zeta_[v]] += w;
            });

            const auto itCurrent = weightTo.find(current);
            const double weightToCurrent =
                itCurrent == weightTo.end() ? 0.0 : itCurrent->second;
            const double volCurrent = communityVolume_[current] - volU;

            node bestCommunity = current;
            double bestDelta = 0.0;
            for (const auto& [candidate, weight] : weightTo) {
                if (candidate == current) continue;
                const double delta = deltaModularity(
                    omegaE_, weightToCurrent, weight, volCurrent,
                    communityVolume_[candidate], volU, gamma_);
                if (delta > bestDelta) {
                    bestDelta = delta;
                    bestCommunity = candidate;
                }
            }
            // Split-off option: moving u into an empty community. Required
            // so deletions can dissolve communities that stopped paying.
            const double isolateDelta = deltaModularity(
                omegaE_, weightToCurrent, 0.0, volCurrent, 0.0, volU,
                gamma_);
            bool isolate = false;
            if (isolateDelta > bestDelta) {
                bestDelta = isolateDelta;
                isolate = true;
            }

            if (bestDelta > 0.0) {
                node target;
                if (isolate) {
                    target = allocateCommunityId();
                } else {
                    target = bestCommunity;
                }
                communityVolume_[current] -= volU;
                communityVolume_[target] += volU;
                if (communityVolume_[current] <= 1e-12 &&
                    current >= g.upperNodeIdBound()) {
                    freeIds_.push_back(current); // recycle split-off ids
                }
                zeta_.set(u, target);
                g.forNeighborsOf(u, [&](node v, edgeweight) {
                    if (v != u && !active_[v]) {
                        active_[v] = 1;
                        next.push_back(v);
                    }
                });
            }
        }
        frontier.swap(next);
    }
    pending_.insert(pending_.end(), frontier.begin(), frontier.end());
}

} // namespace grapr
