#pragma once
// Local (selective) community detection: find the community of one seed
// node without touching the rest of the graph — the interactive-analysis
// companion to the global algorithms ("which community does this user /
// protein / page belong to?"). Greedy conductance expansion: grow a node
// set from the seed, repeatedly absorbing the boundary node that lowers
// the set's conductance most, and return the best prefix (the standard
// greedy baseline of the seed-set expansion literature).

#include <vector>

#include "graph/graph.hpp"

namespace grapr {

struct LocalCommunity {
    std::vector<node> members;   ///< includes the seed, in absorption order
    double conductance = 1.0;    ///< of the returned set
};

class LocalExpansion {
public:
    /// `maxSize`: hard cap on the community size (also bounds work).
    explicit LocalExpansion(count maxSize = 1000) : maxSize_(maxSize) {}

    /// Community of `seed` in g.
    LocalCommunity expand(const Graph& g, node seed) const;

private:
    count maxSize_;
};

} // namespace grapr
