#pragma once
// Base interface of all community detection algorithms, sequential and
// parallel alike: run() computes a Partition of the node set. The framework
// is deliberately uniform so ensembles (EPP) can be instantiated with any
// base/final algorithm and the benchmark harnesses can treat competitors
// and our algorithms identically.

#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "structures/partition.hpp"
#include "support/progress.hpp"

namespace grapr {

class CommunityDetector {
public:
    virtual ~CommunityDetector() = default;

    /// Compute communities for g. Must be callable repeatedly (each call is
    /// an independent run; randomized algorithms may return different
    /// solutions per call).
    virtual Partition run(const Graph& g) = 0;

    /// Human-readable algorithm label, e.g. "PLM(gamma=1)".
    virtual std::string toString() const = 0;

    /// Attach an iteration tracer (may be nullptr to detach). Algorithms
    /// that do not iterate ignore it.
    void setTracer(IterationTracer* tracer) { tracer_ = tracer; }

protected:
    IterationTracer* tracer_ = nullptr;
};

/// Factory type used by the ensemble scheme and the registry.
using DetectorFactory = std::unique_ptr<CommunityDetector> (*)();

} // namespace grapr
