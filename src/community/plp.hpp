#pragma once
// PLP — Parallel Label Propagation (paper Algorithm 1, §III-A).
//
// Every node starts with a unique label; in each iteration every active
// node adopts the *dominant* label of its neighborhood (the label
// maximizing the incident edge weight into it), ties broken toward the
// smaller label id. Nodes whose label did not change become inactive and
// are reactivated when a neighbor changes. Iteration stops when fewer than
// theta nodes updated (default θ = n·10⁻⁵, the paper's choice: the long
// tail of iterations updates only a handful of high-degree nodes and can
// be cut without measurable quality loss — see the fig1 bench).
//
// Parallelization is a guided-schedule loop over the active nodes sharing
// one label array. The benign race the paper describes is kept: a thread
// may read a neighbor's label from the previous or the current iteration
// (asynchronous updating), which both avoids label oscillation on
// bipartite structures and diversifies ensemble base solutions.

#include "community/detector.hpp"
#include "graph/csr_graph.hpp"

namespace grapr {

struct PlpConfig {
    /// Update threshold as a fraction of n; iteration stops when
    /// updated <= max(1, thetaFraction · n) fails ... i.e. continues while
    /// updated > theta. Set to 0 to run to complete stability.
    double thetaFraction = 1e-5;
    /// Hard cap on iterations (safety net; the paper's instances converge
    /// in tens of iterations).
    count maxIterations = 1000;
    /// Explicitly randomize the node traversal order once up front. The
    /// paper found this unnecessary (parallelism provides implicit
    /// randomization) and costly; kept as an option for the ablation bench.
    bool explicitRandomization = false;
    /// Use guided scheduling (the paper's choice for load balancing on
    /// scale-free graphs); static otherwise — the scheduling ablation.
    bool guidedSchedule = true;
    /// Track active nodes and skip converged ones (§III-A: "it is
    /// unnecessary to recompute the label weights for a node whose
    /// neighborhood has not changed"); false re-evaluates every node in
    /// every iteration — the activity-tracking ablation.
    bool trackActiveNodes = true;
    /// Sweep a frontier instead of all n nodes: after the first full
    /// iteration, only the nodes whose neighborhood changed last iteration
    /// (collected into a deduplicated worklist when their neighbor's label
    /// flipped) are visited at all. Versus trackActiveNodes — which still
    /// walks the full node range and pays a flag check per converged node
    /// — the long convergence tail becomes O(frontier) per iteration. The
    /// frontier is rebuilt (and reshuffled, preserving the traversal
    /// decorrelation) between iterations, so nodes activated late are
    /// visited one iteration later than flag-mode would visit them:
    /// iteration counts and labels differ slightly, which is why this is
    /// opt-in and pinned by its own regression test rather than the
    /// bit-reproducibility harness. Takes precedence over trackActiveNodes.
    bool frontierSweep = false;
    /// Collapse degree-1 chains/pendants onto their anchors before
    /// propagation and project the labels back afterwards (vertex
    /// following; see community/vertex_following.hpp). Implies the frozen
    /// path. Followers adopt their anchor's final label by construction.
    bool vertexFollowing = false;
    /// Freeze the input into a CSR view before iterating: the O(m) freeze
    /// is amortized over tens of label sweeps that then stream flat
    /// arrays. Disable for the layout ablation (bit-identical results
    /// single-threaded, see tests/test_csr.cpp).
    bool freeze = true;
};

class Plp final : public CommunityDetector {
public:
    explicit Plp(PlpConfig config = {}) : config_(config) {}

    Partition run(const Graph& g) override;

    /// Run on an already-frozen graph (no freeze cost, no conversion).
    Partition runFrozen(const CsrGraph& g);

    std::string toString() const override;

    /// Number of iterations of the last run.
    count iterations() const noexcept { return iterations_; }

private:
    PlpConfig config_;
    count iterations_ = 0;

    /// The label-propagation kernel, generic over the graph layout.
    template <typename GraphT>
    Partition runImpl(const GraphT& g);
};

} // namespace grapr
