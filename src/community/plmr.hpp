#pragma once
// PLMR — Parallel Louvain Method with Refinement (paper Algorithm 4,
// §III-C): PLM plus an extra move phase after every prolongation, giving
// each level the chance to re-evaluate assignments in view of decisions
// taken on coarser levels. A thin configuration of Plm, promoted to a
// named class because the paper treats it as a distinct algorithm (and the
// Pareto evaluation scores it separately).

#include "community/plm.hpp"

namespace grapr {

class Plmr final : public Plm {
public:
    explicit Plmr(double gamma = 1.0)
        : Plm(PlmConfig{.gamma = gamma, .refine = true}) {}

    std::string toString() const override {
        std::string name = "PLMR";
        if (config_.gamma != 1.0) {
            name += "(gamma=" + std::to_string(config_.gamma) + ")";
        }
        return name;
    }
};

} // namespace grapr
