#pragma once
// Core-community combination of b base solutions (paper §III-D,
// Eq. III.2): two nodes belong to the same core community iff every base
// solution puts them in the same community.
//
// Two implementations:
//  * HashingCombiner — the paper's highly parallel scheme: hash the vector
//    (ζ₁(v), …, ζ_b(v)) with djb2 to a single 64-bit core-community id.
//    Collisions would merge unrelated cores; with 64-bit hashes they are
//    vanishingly unlikely (the paper accepts the same trade-off).
//  * SortingCombiner — exact, collision-free reference: lexicographic sort
//    of the label vectors. Used by tests as the oracle and available to
//    callers who cannot tolerate hash collisions.

#include <vector>

#include "structures/partition.hpp"

namespace grapr {

class HashingCombiner {
public:
    /// Combine base solutions over the same node set into core communities.
    /// Result ids are compacted to [0, #cores).
    static Partition combine(const std::vector<Partition>& baseSolutions);
};

class SortingCombiner {
public:
    static Partition combine(const std::vector<Partition>& baseSolutions);
};

/// djb2 (D. J. Bernstein) — the hash function the paper selected for the
/// b-way combination; operating on the byte representation of each label.
inline std::uint64_t djb2Combine(std::uint64_t hash, node label) {
    for (int shift = 0; shift < 32; shift += 8) {
        const auto byte =
            static_cast<std::uint64_t>((label >> shift) & 0xffU);
        hash = ((hash << 5) + hash) + byte; // hash * 33 + byte
    }
    return hash;
}

inline constexpr std::uint64_t kDjb2Seed = 5381;

} // namespace grapr
