#pragma once
// Community-volume accumulators for the PLM move phase — the one piece of
// shared mutable interim state the paper's asynchronous contract leaves in
// the kernel. Two interchangeable policies, selected by PlmKernelConfig:
//
//  * AtomicVolumes — the reference scheme (PR 1): a single double array,
//    every move applies two `omp atomic` updates, every Δmod evaluation
//    takes an atomic-read snapshot. Correct and simple, but at high thread
//    counts the hot communities' cache lines ping-pong between cores on
//    every move (the stale-read contract tolerates the ping-pong's
//    *values*; the coherence traffic is pure cost).
//
//  * ShardedVolumes — per-thread write-combining shards with BOUNDED
//    staleness: a move buffers its two volume deltas in the owning
//    thread's cache-line-aligned shard (a stamped sparse cell, no shared
//    write), and the shard is flushed into the base array with batched
//    atomic adds every kFlushIntervalNodes evaluated nodes — or earlier,
//    as soon as the buffered volume exceeds a small slack budget (total
//    volume / 1024), so a hub-sized delta publishes eagerly. Batching
//    coalesces repeated deltas to the same (hot) community into one RMW,
//    which is exactly where the atomic policy's coherence traffic
//    concentrates on skewed graphs. Reads see the shared base (an
//    annotated atomic snapshot, like the atomic policy) plus the own
//    shard's not-yet-flushed deltas, so a thread always observes its own
//    moves and observes other threads' moves at most one flush interval
//    late. The bound matters: an earlier design of this type folded once
//    per ITERATION, and the full-sweep staleness let thousands of nodes
//    pile into the same community before its grown volume became visible —
//    collapsing modularity on skewed inputs. Keep the interval small.
//
// Single-threaded both policies are BIT-IDENTICAL to each other and to the
// reference kernel: a one-thread run flushes after EVERY node (interval 1),
// and a single node's move touches two distinct communities exactly once
// each, so the flush replays the atomic path's update order verbatim — no
// floating-point reassociation ever enters the single-thread path. This is
// what lets the property harness pin the tuned kernel against the
// reference oracle exactly (tests/test_move_kernels.cpp).
//
// The kernel obtains a View once per thread per parallel region and calls
// completeNode() after every evaluated node; the View carries the
// thread-resolved state so neither the per-candidate read nor the
// per-node boundary pays an omp_get_thread_num lookup.

#include <cstdint>
#include <vector>

#include <omp.h>

#include "support/common.hpp"
#include "support/parallel.hpp"

namespace grapr {

/// Reference policy: one shared array under atomic updates (see header).
class AtomicVolumes {
public:
    explicit AtomicVolumes(std::vector<double> initial)
        : values_(std::move(initial)) {}

    class View {
    public:
        explicit View(double* values) : values_(values) {}

        /// Snapshot of community c's volume; concurrent movers may change
        /// it between this read and any move based on it.
        double read(node c) const {
            double v;
            // grapr:benign-race(values_): stale snapshot tolerated by
            // design — the asynchronous move contract (§III-B) accepts
            // Δmod scores computed from concurrently-updated volumes.
#pragma omp atomic read
            v = values_[c];
            return v;
        }

        /// Move `delta` worth of volume in/out of community c, visible to
        /// every thread immediately.
        void apply(node c, double delta) {
#pragma omp atomic
            values_[c] += delta;
        }

        /// Updates are eager; the per-node boundary has nothing to do.
        void completeNode() {}

        void prefetch(node c) const {
            __builtin_prefetch(&values_[c], 0, 1);
        }

    private:
        double* values_;
    };

    /// Thread-resolved handle; obtain once per thread per region.
    View view() { return View(values_.data()); }

    /// Iteration boundary: nothing to fold, updates were eager. Call from
    /// serial code between sweeps.
    void endIteration() {}

    const std::vector<double>& values() const noexcept { return values_; }

private:
    std::vector<double> values_;
};

/// Contention-aware policy: per-thread write-combining shards flushed with
/// batched atomic adds every few nodes (see header).
class ShardedVolumes {
public:
    explicit ShardedVolumes(std::vector<double> initial)
        : base_(std::move(initial)), shards_(base_.size()),
          flushInterval_(omp_get_max_threads() > 1 ? kFlushIntervalNodes
                                                   : 1) {
        double total = 0.0;
        for (const double v : base_) total += v;
        volumeSlack_ = total / 1024.0;
    }

    /// Evaluated nodes between shard flushes in multi-thread runs. Small
    /// on purpose: every node evaluated against volumes more than this
    /// stale risks the pile-on dynamic described in the header. One-thread
    /// runs always flush per node (bit-identity with the atomic path).
    static constexpr int kFlushIntervalNodes = 24;

private:
    struct Cell {
        double pending = 0.0;  ///< own deltas not yet flushed to base
        std::uint32_t stamp = 0;
    };

    /// One thread's write buffer. alignas keeps neighboring shards' hot
    /// headers off each other's cache lines; the cell arrays are separate
    /// heap allocations and never shared between threads at all.
    struct alignas(64) Shard {
        explicit Shard(std::size_t universe) : cells(universe) {}
        std::vector<Cell> cells;
        std::vector<node> touched;
        std::uint32_t generation = 1;
        int nodesSinceFlush = 0;
        double pendingMagnitude = 0.0; ///< Σ|buffered deltas|

        void invalidateStamps() {
            touched.clear();
            if (++generation == 0) { // stamp wraparound: full reset
                cells.assign(cells.size(), Cell{});
                generation = 1;
            }
            nodesSinceFlush = 0;
            pendingMagnitude = 0.0;
        }
    };

public:
    class View {
    public:
        View(double* base, Shard& shard, int flushInterval,
             double volumeSlack)
            : base_(base), shard_(shard), flushInterval_(flushInterval),
              volumeSlack_(volumeSlack) {}

        /// Snapshot of community c's volume: the shared base (other
        /// threads' flushes may land concurrently) plus the calling
        /// thread's own not-yet-flushed deltas.
        double read(node c) const {
            double v;
            // grapr:benign-race(base_): stale snapshot tolerated by
            // design — the asynchronous move contract (§III-B) accepts
            // Δmod scores computed from concurrently-updated volumes.
#pragma omp atomic read
            v = base_[c];
            const Cell& cell = shard_.cells[c];
            return cell.stamp == shard_.generation ? v + cell.pending : v;
        }

        /// Move `delta` worth of volume in/out of community c, visible to
        /// the owning thread immediately and to everyone at the next
        /// flush (at most kFlushIntervalNodes evaluated nodes away).
        void apply(node c, double delta) {
            Cell& cell = shard_.cells[c];
            if (cell.stamp != shard_.generation) {
                cell.stamp = shard_.generation;
                cell.pending = 0.0;
                shard_.touched.push_back(c);
            }
            cell.pending += delta;
            shard_.pendingMagnitude += delta < 0.0 ? -delta : delta;
        }

        /// Per-node boundary: flush the shard once enough nodes have been
        /// evaluated since the last flush, or once the buffered volume
        /// grew past the slack budget. The second trigger is what keeps a
        /// hub's move from staying invisible for a whole interval — a
        /// large unseen volume shift is precisely the pile-on seed the
        /// header warns about, so big deltas publish (nearly) eagerly
        /// while leaf-sized deltas enjoy the full batching win. Call after
        /// every evaluated node, moved or not.
        void completeNode() {
            if (++shard_.nodesSinceFlush < flushInterval_ &&
                shard_.pendingMagnitude < volumeSlack_) {
                return;
            }
            for (const node c : shard_.touched) {
#pragma omp atomic
                base_[c] += shard_.cells[c].pending;
            }
            shard_.invalidateStamps();
        }

        void prefetch(node c) const {
            __builtin_prefetch(&base_[c], 0, 1);
            __builtin_prefetch(&shard_.cells[c], 0, 1);
        }

    private:
        double* base_;
        Shard& shard_;
        int flushInterval_;
        double volumeSlack_;
    };

    /// Thread-resolved handle; obtain once per thread per region, from
    /// the thread that will do the reads/applies.
    View view() {
        return View(base_.data(), shards_.local(), flushInterval_,
                    volumeSlack_);
    }

    /// Drain every shard's remaining deltas into the base array. Must be
    /// called from serial code (after the team joined); the adds run in
    /// slot order, and a one-thread run has nothing left to drain (it
    /// flushed per node), so no reassociation enters the one-thread path.
    void endIteration() {
        for (std::size_t t = 0; t < shards_.size(); ++t) {
            Shard& s = shards_.slot(t);
            for (const node c : s.touched) {
                base_[c] += s.cells[c].pending;
            }
            s.invalidateStamps();
        }
    }

    const std::vector<double>& values() const noexcept { return base_; }

private:
    std::vector<double> base_;
    ThreadLocalPool<Shard> shards_;
    int flushInterval_;
    double volumeSlack_ = 0.0;
};

} // namespace grapr
