#include "generators/grid.hpp"

#include "graph/graph_builder.hpp"
#include "support/random.hpp"

namespace grapr {

GridGenerator::GridGenerator(count rows, count columns, double diagonalChance,
                             double chordChance)
    : rows_(rows), columns_(columns), diagonalChance_(diagonalChance),
      chordChance_(chordChance) {
    require(rows >= 1 && columns >= 1, "Grid: dimensions must be positive");
}

Graph GridGenerator::generate() {
    const count n = rows_ * columns_;
    GraphBuilder builder(n, false);
    auto id = [this](count r, count c) {
        return static_cast<node>(r * columns_ + c);
    };

    const auto rows = static_cast<std::int64_t>(rows_);
#pragma omp parallel for default(none) shared(builder, id, rows, n)          \
    schedule(static)
    for (std::int64_t sr = 0; sr < rows; ++sr) {
        const count r = static_cast<count>(sr);
        // Per-row counter stream (see Random::forStream): the random
        // diagonals and chords of row r depend only on (seed, r).
        SplitMix64 rng = Random::forStream(static_cast<std::uint64_t>(r));
        for (count c = 0; c < columns_; ++c) {
            const node v = id(r, c);
            if (c + 1 < columns_) builder.addEdge(v, id(r, c + 1));
            if (r + 1 < rows_) builder.addEdge(v, id(r + 1, c));
            if (diagonalChance_ > 0.0 && r + 1 < rows_ && c + 1 < columns_ &&
                Random::chance(rng, diagonalChance_)) {
                builder.addEdge(v, id(r + 1, c + 1));
            }
            if (chordChance_ > 0.0 && Random::chance(rng, chordChance_)) {
                const node t =
                    static_cast<node>(Random::integer(rng, n));
                if (t != v) builder.addEdge(v, t);
            }
        }
    }
    // Chords may duplicate lattice edges; dedup keeps the graph simple.
    return builder.build(/*dedup=*/true);
}

} // namespace grapr
