#include "generators/erdos_renyi.hpp"

#include "graph/graph_builder.hpp"
#include "support/random.hpp"

namespace grapr {

ErdosRenyiGenerator::ErdosRenyiGenerator(count n, double p, bool selfLoops)
    : n_(n), p_(p), selfLoops_(selfLoops) {
    require(p >= 0.0 && p <= 1.0, "ErdosRenyi: p must be in [0,1]");
}

Graph ErdosRenyiGenerator::generate() {
    GraphBuilder builder(n_, false);
    if (p_ <= 0.0 || n_ == 0) return builder.build();

    const auto rows = static_cast<std::int64_t>(n_);
#pragma omp parallel for default(none) shared(builder, rows)                 \
    schedule(dynamic, 512)
    for (std::int64_t sv = 0; sv < rows; ++sv) {
        const node v = static_cast<node>(sv);
        // One counter-based stream per row: the row's sequence depends only
        // on (seed, v), so the generated graph is identical for any thread
        // count and schedule.
        SplitMix64 rng = Random::forStream(static_cast<std::uint64_t>(v));
        // Candidates for row v: u in [v+1, n) plus optionally the loop.
        const count rowStart = selfLoops_ ? v : v + 1;
        count u = rowStart;
        for (;;) {
            const count skip = Random::geometricSkip(rng, p_);
            if (skip >= n_ - u) break; // next edge falls beyond the row
            u += skip;
            builder.addEdge(v, static_cast<node>(u));
            ++u;
            if (u >= n_) break;
        }
    }
    return builder.build();
}

} // namespace grapr
