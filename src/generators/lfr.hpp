#pragma once
// LFR benchmark generator (Lancichinetti–Fortunato–Radicchi, Phys. Rev. E
// 78:046110) — the paper's instrument for measuring detection accuracy
// against a known ground truth (Figure 8).
//
// The model: node degrees follow a power law with exponent tau1, community
// sizes follow a power law with exponent tau2, and every node shares a
// fraction (1 - mu) of its edges with its own community and mu with the
// rest of the graph. Small mu = well-separated communities; mu -> 1 =
// structureless noise.
//
// This implementation follows the original construction: sample sequences,
// assign nodes to communities subject to the feasibility constraint that a
// node's internal degree must be smaller than its community, realize the
// internal subgraphs and the external "background" graph with erased
// configuration models, and rewire external edges that accidentally land
// inside a community. The realized mixing parameter therefore tracks the
// requested mu closely but not exactly (as with the reference
// implementation).

#include <vector>

#include "generators/generator.hpp"
#include "structures/partition.hpp"

namespace grapr {

struct LfrParameters {
    count n = 1000;
    count averageDegree = 20;   ///< targeted via the power-law bounds
    count minDegree = 8;
    count maxDegree = 50;
    double degreeExponent = 2.0;    ///< tau1
    count minCommunitySize = 20;
    count maxCommunitySize = 100;
    double communityExponent = 1.0; ///< tau2
    double mu = 0.3;                ///< mixing parameter
};

class LfrGenerator final : public GraphGenerator {
public:
    explicit LfrGenerator(LfrParameters params);

    Graph generate() override;

    /// Ground-truth communities of the last generate() call.
    const Partition& groundTruth() const noexcept { return truth_; }

    /// Realized mixing parameter of the last generate() call: fraction of
    /// edge endpoints leaving their ground-truth community.
    double realizedMu() const noexcept { return realizedMu_; }

private:
    LfrParameters params_;
    Partition truth_;
    double realizedMu_ = 0.0;
};

} // namespace grapr
